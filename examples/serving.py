"""Serving: many clients, one compiled program, shared ciphertext lanes.

The serving runtime (``repro.serve``) turns the one-shot ``repro.run``
API into a job server: programs are registered by structural signature,
compile/keygen artifacts are cached, and independent client requests are
packed into the unused SIMD lanes of shared ciphertexts — k requests for
one request's price.

1. ``serving_demo`` — an encrypted scoring service on the functional
   backend (real encryption): clients submit width-8 vectors, the server
   batches them, and every response is checked against a solo run.
2. ``modeled_demo`` — the same program on the F1 accelerator model:
   requests/s with and without slot batching.

Usage:  python examples/serving.py
"""

import numpy as np

import repro
from repro.bench.loadgen import modeled_f1_throughput, poly_ckks_program


def serving_demo(n: int = 512, clients: int = 24, width: int = 8) -> None:
    print("=== 1. Batched encrypted serving (functional backend) ===")
    program = poly_ckks_program(n)
    x_id, y_id = program.ops[0].op_id, program.ops[1].op_id
    rng = np.random.default_rng(7)
    vectors = [(rng.uniform(-1, 1, width), rng.uniform(-1, 1, width))
               for _ in range(clients)]

    with repro.FheServer(max_batch=8, max_wait_ms=5.0, workers=2) as server:
        futures = [server.submit(program, inputs={x_id: x, y_id: y})
                   for x, y in vectors]
        results = [f.result() for f in futures]
        stats = server.stats()

    for (x, y), result in zip(vectors, results):
        got = next(iter(result.values.values()))[:width]
        assert np.max(np.abs(got - (x * y + x))) < 1e-2
    sample = results[-1]
    print(f"served {stats['requests']} requests in {stats['batches']} batches "
          f"(mean occupancy {stats['mean_occupancy']:.2f})")
    print(f"throughput {stats['requests_per_s']:.0f} req/s, latency "
          f"p50 {stats['latency_ms']['p50']:.1f} ms / "
          f"p99 {stats['latency_ms']['p99']:.1f} ms")
    print(f"compile/keygen cache hit rate {stats['registry']['hit_rate']:.2f} "
          f"(last request: batch of {sample.batch_size}, "
          f"cache_hit={sample.cache_hit})")
    print("every response matches its solo run\n")


def modeled_demo(n: int = 16384, width: int = 8, level: int = 8) -> None:
    print("=== 2. The same service on the F1 accelerator model ===")
    program = poly_ckks_program(n, level=level)
    report = modeled_f1_throughput(program, width=width)
    print(f"batch capacity        : {report['capacity']} requests/ciphertext")
    print(f"modeled batch time    : {report['batch_time_ms']:.4f} ms")
    print(f"one request per run   : {report['requests_per_s_solo']:,.0f} req/s")
    print(f"slot-batched serving  : {report['requests_per_s_batched']:,.0f} req/s "
          f"({report['speedup']:.0f}x)")


if __name__ == "__main__":
    serving_demo()
    modeled_demo()
