"""Quickstart: encrypted computation with BGV, then the F1 pipeline.

Runs in a few seconds:

1. *Functional layer* — encrypt two vectors, compute (x*y + x) under
   encryption, decrypt, and check against the plaintext result.
2. *Accelerator layer* — write the same computation in the F1 DSL, compile it
   with the three-phase static-scheduling compiler, validate the schedule
   with the cycle-accurate checker, and report predicted F1 performance
   against the calibrated CPU baseline.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines.cpu import CpuModel
from repro.compiler.pipeline import compile_program
from repro.dsl.program import Program
from repro.fhe.bgv import BgvContext
from repro.fhe.params import FheParams
from repro.poly.ntt import naive_negacyclic_multiply
from repro.sim.simulator import check_schedule


def functional_demo() -> None:
    print("=== 1. Functional FHE (BGV) ===")
    params = FheParams.build(n=512, levels=4, prime_bits=28, plaintext_modulus=256)
    ctx = BgvContext(params, seed=0)
    rng = np.random.default_rng(42)
    x = rng.integers(0, 256, 512)
    y = rng.integers(0, 256, 512)

    ct_x, ct_y = ctx.encrypt(x), ctx.encrypt(y)
    print(f"encrypted two vectors at N={params.n}, L={params.level} "
          f"(logQ={params.log_q})")
    product = ctx.mod_switch(ctx.mul(ct_x, ct_y))  # standard post-mul switch
    ct_out = ctx.add(product, ctx.mod_switch_to(ct_x, product.level))
    result = ctx.decrypt(ct_out)

    expected = (naive_negacyclic_multiply(x, y, 256) + x) % 256
    assert np.array_equal(result, expected)
    print(f"decrypt(x*y + x) correct; remaining noise budget "
          f"{ctx.noise_budget_bits(ct_out):.0f} bits\n")


def accelerator_demo() -> None:
    print("=== 2. The same computation on F1 ===")
    p = Program(n=16384, name="quickstart")
    x = p.input(level=8, name="x")
    y = p.input(level=8, name="y")
    p.output(p.add(p.mul(x, y), p.mod_switch(x)))

    compiled = compile_program(p)
    report = check_schedule(
        compiled.translation.graph, compiled.movement, compiled.schedule
    )
    report.raise_if_failed()

    cpu_ms = CpuModel().run_program_ms(p)
    print(f"instructions        : {len(compiled.translation.graph.instructions)}")
    print(f"schedule validated  : {report.instructions_checked} instrs, "
          f"{report.transfers_checked} transfers")
    print(f"F1 predicted time   : {compiled.time_ms:.4f} ms "
          f"({compiled.makespan} cycles)")
    print(f"CPU model time      : {cpu_ms:.2f} ms")
    print(f"speedup             : {cpu_ms / compiled.time_ms:,.0f}x")
    print(f"off-chip traffic    : "
          f"{sum(compiled.traffic_breakdown_bytes().values()) / 1e6:.1f} MB")


if __name__ == "__main__":
    functional_demo()
    accelerator_demo()
