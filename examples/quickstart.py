"""Quickstart: one Program, four execution backends.

The computation (x*y + x) is defined exactly once as a DSL ``Program`` and
then lowered onto every substrate via ``repro.run``:

1. ``FunctionalBackend`` — real encryption: encrypt the inputs, execute the
   graph homomorphically (BGV, then CKKS), decrypt, and cross-validate
   against the plaintext reference evaluator (bit-equal for BGV, within
   float tolerance for CKKS).
2. ``F1Backend`` — the three-phase static-scheduling compiler plus the
   cycle-accurate schedule checker and the calibrated performance model.
3. ``CpuBackend`` / ``HeaxBackend`` — the analytic software/FPGA baselines.

Usage:  python examples/quickstart.py
"""

import numpy as np

import repro


def build_program(n: int, *, scheme: str = "bgv", level: int = 8) -> repro.Program:
    """The quickstart computation — written once, runnable everywhere."""
    p = repro.Program(n=n, scheme=scheme, name="quickstart")
    x = p.input(level=level, name="x")
    y = p.input(level=level, name="y")
    p.output(p.add(p.mul(x, y), x), name="x*y + x")
    return p


def functional_demo(n: int = 512) -> None:
    print("=== 1. Real encryption on the functional backend ===")
    for scheme in ("bgv", "ckks"):
        program = build_program(n, scheme=scheme, level=4)
        result = repro.run(program, backend=repro.FunctionalBackend(scheme))
        reference = repro.run(program, backend="reference")
        kind = ("bit-equal to plaintext reference" if scheme == "bgv"
                else f"max error vs reference {result.stats['max_error']:.1e}")
        assert result.stats["validated"]
        assert reference.outputs.keys() == result.outputs.keys()
        print(f"{scheme:4s}: encrypted, executed {sum(result.op_counts.values())} ops, "
              f"decrypted — {kind}")
    print()


def accelerator_demo(n: int = 16384, level: int = 8) -> None:
    print("=== 2. The same computation on the modeled hardware backends ===")
    program = build_program(n, level=level)
    f1 = repro.run(program, backend="f1")
    cpu = repro.run(program, backend="cpu")
    heax = repro.run(program, backend="heax")

    checked = f1.stats["schedule_checked"]
    print(f"instructions        : {f1.stats['instructions']}")
    print(f"schedule validated  : {checked['instructions']} instrs, "
          f"{checked['transfers']} transfers")
    print(f"F1 predicted time   : {f1.time_ms:.4f} ms "
          f"({f1.stats['makespan_cycles']} cycles)")
    print(f"CPU model time      : {cpu.time_ms:.2f} ms "
          f"({cpu.time_ms / f1.time_ms:,.0f}x slower)")
    print(f"HEAX-sigma time     : {heax.time_ms:.3f} ms "
          f"({heax.time_ms / f1.time_ms:,.0f}x slower)")
    print(f"off-chip traffic    : "
          f"{sum(f1.stats['traffic_bytes'].values()) / 1e6:.1f} MB")

    # Every backend consumed the identical op graph.
    functional = repro.run(
        build_program(512, level=level), backend="functional"
    )
    assert f1.op_counts == cpu.op_counts == heax.op_counts == functional.op_counts
    assert f1.distinct_hints == functional.distinct_hints
    print("op graph identical across f1/cpu/heax/functional backends")


if __name__ == "__main__":
    functional_demo()
    accelerator_demo()
