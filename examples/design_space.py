"""Design-space exploration with the static scheduler (Sec. 4.4, Fig. 11).

Because F1's schedules are fully static, the compiler doubles as a
performance model: changing the architecture description re-predicts
performance without RTL.  With the backend API this is one line per design
point — ``repro.run(program, backend=F1Backend(cfg))`` — so this example
sweeps cluster counts, scratchpad banks, and HBM PHYs, printing the
performance/area frontier and the sensitivity of one benchmark to each
resource.

Usage:  python examples/design_space.py
"""

import repro
from repro.bench.workloads import logistic_regression
from repro.core.area import area_mm2


def sweep(scale: float = 0.15) -> None:
    program = logistic_regression(scale=scale)
    print(f"workload: {program.name} ({len(program.ops)} homomorphic ops)\n")
    print(f"{'config':16s} {'area mm^2':>10s} {'time ms':>9s} {'note'}")
    baseline = None
    for clusters, banks, phys, note in [
        (4, 8, 1, "small: quarter compute, half memory"),
        (8, 16, 1, "half compute, full scratchpad, 512 GB/s"),
        (16, 16, 1, "full compute, 512 GB/s"),
        (16, 16, 2, "the paper's 151 mm^2 design point"),
        (32, 16, 2, "double compute, same memory"),
    ]:
        cfg = repro.F1Config().scaled(clusters=clusters, banks=banks, phys=phys)
        result = repro.run(program, backend=repro.F1Backend(cfg, check=False))
        if baseline is None:
            baseline = result.time_ms
        print(
            f"{cfg.name:16s} {area_mm2(cfg):10.1f} {result.time_ms:9.4f} "
            f"({baseline / result.time_ms:4.2f}x vs smallest)  {note}"
        )
    print(
        "\nMemory-bound workloads stop scaling with compute-only growth —\n"
        "the paper's core observation that data movement is the bottleneck."
    )


if __name__ == "__main__":
    sweep()
