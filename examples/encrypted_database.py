"""Encrypted database lookup (the paper's DB Lookup benchmark, Sec. 7).

Part 1 defines the core of a private key-value lookup once as a DSL
``Program`` — an encrypted equality test via the Fermat test
(x^(t-1) mod t is 1 iff x != 0) over a prime plaintext modulus — and runs
it on the functional backend with real BGV encryption: the server learns
neither the query nor which entry matched.  The decrypted match vector is
cross-validated bit-for-bit against the plaintext reference evaluator.

Part 2 compiles the full DB-lookup workload for F1 and reports predicted
performance.

Usage:  python examples/encrypted_database.py
"""

import numpy as np

import repro
from repro.bench.runner import run_benchmark
from repro.bench.workloads import db_lookup
from repro.fhe.encoding import BatchEncoder
from repro.fhe.params import FheParams


def build_equality_program(n: int, t: int) -> repro.Program:
    """1 - diff^(t-1): 1 at slots where query == key, 0 elsewhere.

    With 30-bit limbs, BGV noise control needs *two* limb drops per
    multiplication (production BGV uses ~55-bit primes, one drop; our
    word-sized RNS matches F1's 32-bit datapath).  Writing t-1 = odd * 2^k,
    the square-and-multiply chain costs (odd-1) + k multiplications — for
    the paper's t = 12289 that is cube + 12 squarings (depth 14), which is
    exactly why the DB-lookup benchmark needs deep parameters.
    """
    odd, k = t - 1, 0
    while odd % 2 == 0:
        odd //= 2
        k += 1
    muls = (odd - 1) + k
    level = 2 * muls + 2

    p = repro.Program(n=n, name="encrypted_equality")
    query = p.input(level=level, name="query")
    keys = p.input(level=level, name="keys")

    def level_mul(a, b):
        # mul without the default single drop, then the two drops 30-bit
        # limbs require (operand alignment is handled by the DSL).
        return p.mod_switch(p.mod_switch(p.mul(a, b, rescale=False)))

    diff = p.sub(query, keys)
    acc = diff
    for _ in range(odd - 1):
        acc = level_mul(acc, diff)
    for _ in range(k):
        acc = level_mul(acc, acc)
    # match = 1 - diff^(t-1)
    match = p.add_plain(
        p.mul_plain(acc, p.input_plain(acc.level, name="minus_one")),
        p.input_plain(acc.level, name="one"),
    )
    p.output(match, name="match_bits")
    return p


def encrypted_equality(n: int = 256, t: int = 12289) -> None:
    print("=== 1. Encrypted equality test (BGV + SIMD batching, functional) ===")
    # Slot-wise arithmetic needs the batching encoder: t prime, t ≡ 1 mod 2N.
    program = build_equality_program(n, t)
    level = max(op.level for op in program.ops)
    encoder = BatchEncoder(n, t)

    database_keys = np.array([3, 7, 11, 7, 2] + [0] * (n - 5))
    query_value = 7
    by_name = {op.name: op.op_id for op in program.ops if op.name}
    backend = repro.FunctionalBackend(
        params=FheParams.build(n=n, levels=level, prime_bits=30,
                               plaintext_modulus=t),
        seed=2, ks_variant=2,  # low-noise key switching for the deep chain
    )
    result = repro.run(
        program,
        backend=backend,
        inputs={
            by_name["query"]: encoder.encode(np.full(n, query_value)),
            by_name["keys"]: encoder.encode(database_keys),
        },
        plains={
            by_name["minus_one"]: encoder.encode(np.full(n, t - 1)),
            by_name["one"]: encoder.encode(np.ones(n, dtype=np.int64)),
        },
    )
    got = encoder.decode(result.output_list()[0])[:5]
    expected = (database_keys[:5] == query_value).astype(int)
    print(f"keys        : {database_keys[:5]}")
    print(f"query       : {query_value}")
    print(f"match bits  : {got} (expected {expected})")
    assert result.stats["validated"]  # bit-equal to the plaintext reference
    assert np.array_equal(got % t, expected % t)
    print(f"the server computed the matches without seeing the query "
          f"({sum(result.op_counts.values())} homomorphic ops, depth "
          f"{program.multiplicative_depth()})\n")


def f1_db_lookup(scale: float = 0.25) -> None:
    print("=== 2. DB Lookup on F1 (performance model) ===")
    program = db_lookup(scale=scale)
    result = run_benchmark(program)
    traffic = sum(result.compiled.traffic_breakdown_bytes().values())
    print(f"homomorphic ops : {len(program.ops)} at L=17, N=16K")
    print(f"F1 latency      : {result.f1_ms:.3f} ms   (paper: 4.36 ms at full size)")
    print(f"CPU baseline    : {result.cpu_ms:.0f} ms")
    print(f"speedup         : {result.speedup:,.0f}x  (paper: 6,722x)")
    print(f"off-chip traffic: {traffic / 1e6:.0f} MB — deep and wide, as Sec. 7 notes")


if __name__ == "__main__":
    encrypted_equality()
    f1_db_lookup()
