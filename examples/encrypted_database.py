"""Encrypted database lookup (the paper's DB Lookup benchmark, Sec. 7).

Part 1: a *functional* encrypted equality test with BGV — the core of a
private key-value lookup: the server learns neither the query nor which
entry matched.  Uses the Fermat test (x^(t-1) mod t is 1 iff x != 0) over a
small prime plaintext modulus, evaluated with a square-and-multiply chain of
homomorphic multiplications.

Part 2: compiles the full DB-lookup workload for F1 and reports predicted
performance.

Usage:  python examples/encrypted_database.py
"""

import numpy as np

from repro.bench.runner import run_benchmark
from repro.bench.workloads import db_lookup
from repro.fhe.bgv import BgvContext
from repro.fhe.params import FheParams


def encrypted_equality() -> None:
    print("=== 1. Encrypted equality test (BGV + SIMD batching, functional) ===")
    # Slot-wise arithmetic needs the batching encoder: t prime, t ≡ 1 mod 2N.
    # Fermat: diff^(t-1) is 1 iff diff != 0; with t-1 = 12288 = 3 * 2^12 the
    # chain is cube + 12 squarings (depth 14) — this is exactly why the
    # paper's DB-lookup benchmark needs L = 17.
    from repro.fhe.encoding import BatchEncoder

    # With 30-bit limbs, BGV noise control needs *two* limb drops per
    # multiplication (production BGV uses ~55-bit primes, one drop; our
    # word-sized RNS matches F1's 32-bit datapath), so depth 14 uses 30 limbs.
    n, t = 256, 12289
    params = FheParams.build(n=n, levels=30, prime_bits=30, plaintext_modulus=t)
    ctx = BgvContext(params, seed=2, ks_variant=2)  # low-noise key switching
    encoder = BatchEncoder(n, t)

    def level_mul(a, b):
        return ctx.mod_switch(ctx.mod_switch(ctx.mul(a, b)))

    database_keys = np.array([3, 7, 11, 7, 2] + [0] * (n - 5))
    query_value = 7
    query = ctx.encrypt(encoder.encode(np.full(n, query_value)))
    keys = ctx.encrypt(encoder.encode(database_keys))

    diff = ctx.sub(query, keys)
    square = level_mul(diff, diff)
    cube = level_mul(square, ctx.mod_switch_to(diff, square.level))
    acc = cube
    for _ in range(12):
        acc = level_mul(acc, acc)
    # match = 1 - diff^(t-1): 1 at matches, 0 elsewhere.
    match = ctx.add_plain(
        ctx.mul_plain(acc, encoder.encode(np.full(n, t - 1))),
        encoder.encode(np.ones(n, dtype=np.int64)),
    )
    got = encoder.decode(ctx.decrypt(match))[:5]
    expected = (database_keys[:5] == query_value).astype(int)
    print(f"keys        : {database_keys[:5]}")
    print(f"query       : {query_value}")
    print(f"match bits  : {got} (expected {expected})")
    print(f"noise budget left: {ctx.noise_budget_bits(match):.0f} bits")
    assert np.array_equal(got % t, expected % t)
    print("the server computed the matches without seeing the query\n")


def f1_db_lookup() -> None:
    print("=== 2. DB Lookup on F1 (performance model) ===")
    program = db_lookup(scale=0.25)
    result = run_benchmark(program)
    traffic = sum(result.compiled.traffic_breakdown_bytes().values())
    print(f"homomorphic ops : {len(program.ops)} at L=17, N=16K")
    print(f"F1 latency      : {result.f1_ms:.3f} ms   (paper: 4.36 ms at full size)")
    print(f"CPU baseline    : {result.cpu_ms:.0f} ms")
    print(f"speedup         : {result.speedup:,.0f}x  (paper: 6,722x)")
    print(f"off-chip traffic: {traffic / 1e6:.0f} MB — deep and wide, as Sec. 7 notes")


if __name__ == "__main__":
    encrypted_equality()
    f1_db_lookup()
