"""Private deep-learning inference — the paper's motivating application.

Part 1 defines a small dense layer + square activation (LoLa-style) once as
a CKKS ``Program`` and runs it on the functional backend: inputs are
encrypted, the layer executes homomorphically, and the decrypted result is
cross-validated against the plaintext reference evaluator.

Part 2 compiles the LoLa-MNIST workload (the paper's benchmark) for F1 and
reports the predicted latency against the CPU baseline — the paper's
headline "secure real-time deep learning" result.

Usage:  python examples/private_inference.py
"""

import numpy as np

import repro
from repro.bench.runner import run_benchmark
from repro.bench.workloads import lola_mnist


def build_dense_layer(n: int, *, level: int = 4) -> repro.Program:
    """One neuron: weighted inputs, 8-way rotate-add reduction, square."""
    p = repro.Program(n=n, scheme="ckks", name="dense_layer")
    x = p.input(level=level, name="activations")
    w = p.input_plain(level, name="weights")
    acc = p.mod_switch(p.mul_plain(x, w))        # weighted inputs, rescaled
    for shift in (1, 2, 4):                      # reduce over 8 slots
        acc = p.add(acc, p.rotate(acc, shift))
    p.output(p.mul(acc, acc), name="activated")  # square activation
    return p


def encrypted_dense_layer(n: int = 512) -> None:
    print("=== 1. Encrypted dense layer (CKKS, functional backend) ===")
    program = build_dense_layer(n)
    slots = n // 2
    rng = np.random.default_rng(7)
    x_op = next(op.op_id for op in program.ops if op.name == "activations")
    w_op = next(op.op_id for op in program.ops if op.name == "weights")
    result = repro.run(
        program,
        backend=repro.FunctionalBackend("ckks", seed=1),
        inputs={x_op: rng.normal(size=slots) * 0.5},
        plains={w_op: rng.normal(size=slots) * 0.5},
    )
    err = result.stats["max_error"]
    print(f"8-way neuron + square activation on ciphertext: "
          f"max error vs clear-text reference {err:.2e}")
    assert result.stats["validated"]
    print("matches the clear-text computation\n")


def f1_inference_latency(scale: float = 0.25) -> None:
    print("=== 2. LoLa-MNIST on F1 (performance model) ===")
    program = lola_mnist(encrypted_weights=False, scale=scale)
    result = run_benchmark(program)
    print(f"homomorphic ops    : {len(program.ops)}")
    print(f"F1 latency         : {result.f1_ms:.3f} ms   (paper: 0.17 ms)")
    print(f"CPU baseline       : {result.cpu_ms:.0f} ms   (paper: 2,960 ms)")
    print(f"speedup            : {result.speedup:,.0f}x  (paper: 17,412x)")
    print("-> encrypted inference drops from seconds to real-time")


if __name__ == "__main__":
    encrypted_dense_layer()
    f1_inference_latency()
