"""Private deep-learning inference — the paper's motivating application.

Part 1 runs a real encrypted inference *functionally* with CKKS: a small
dense layer + square activation on encrypted inputs with plaintext weights
(LoLa-style), checked against the clear-text computation.

Part 2 compiles the LoLa-MNIST workload (the paper's benchmark) for F1 and
reports the predicted latency against the CPU baseline — the paper's
headline "secure real-time deep learning" result.

Usage:  python examples/private_inference.py
"""

import numpy as np

from repro.bench.runner import run_benchmark
from repro.bench.workloads import lola_mnist
from repro.fhe.ckks import CkksContext
from repro.fhe.params import FheParams


def encrypted_dense_layer() -> None:
    print("=== 1. Encrypted dense layer (CKKS, functional) ===")
    n, slots = 512, 256
    params = FheParams.build(n=n, levels=5, prime_bits=28, plaintext_modulus=1)
    ctx = CkksContext(params, seed=1)
    rng = np.random.default_rng(7)

    inputs = rng.normal(size=slots) * 0.5
    weights = rng.normal(size=slots) * 0.5

    ct = ctx.encrypt_values(inputs)
    # Dense neuron: weighted inputs, rotate-add reduction over 8 slots, then
    # square activation — all on encrypted data.
    acc = ctx.rescale(ctx.mul_plain(ct, weights))
    for shift in (1, 2, 4):
        acc = ctx.add(acc, ctx.rotate(acc, shift))
    activated = ctx.rescale(ctx.mul(acc, acc))

    got = ctx.decrypt_values(activated, slots).real
    # Clear-text reference.
    prod = inputs * weights
    ref = prod.copy()
    for shift in (1, 2, 4):
        ref = ref + np.roll(ref, -shift)
    ref = ref * ref
    err = np.max(np.abs(got - ref))
    print(f"8-way neuron + square activation on ciphertext: max error {err:.2e}")
    assert err < 1e-2
    print("matches the clear-text computation\n")


def f1_inference_latency() -> None:
    print("=== 2. LoLa-MNIST on F1 (performance model) ===")
    program = lola_mnist(encrypted_weights=False, scale=0.25)
    result = run_benchmark(program)
    print(f"homomorphic ops    : {len(program.ops)}")
    print(f"F1 latency         : {result.f1_ms:.3f} ms   (paper: 0.17 ms)")
    print(f"CPU baseline       : {result.cpu_ms:.0f} ms   (paper: 2,960 ms)")
    print(f"speedup            : {result.speedup:,.0f}x  (paper: 17,412x)")
    print("-> encrypted inference drops from seconds to real-time")


if __name__ == "__main__":
    encrypted_dense_layer()
    f1_inference_latency()
