"""Microbenchmark: batched residue-matrix kernels vs. the per-limb reference.

The batched engine's claim (and F1's premise) is that FHE ops are wide-vector
computations over (L, N) residue matrices; this compares the
:class:`~repro.poly.ntt.RnsNttContext` all-limb NTT and the vectorized CRT
reconstruction against the per-limb / per-coefficient Python-loop reference at
an F1-realistic shape, asserts bit-identity, and records the speedup."""

import time

import numpy as np

from repro.poly.ntt import get_context, get_rns_context
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes

N_BENCH = 4096
L_BENCH = 8
REPS = 5


def _setup():
    basis = RnsBasis(ntt_friendly_primes(N_BENCH, 28, L_BENCH))
    rng = np.random.default_rng(0)
    limbs = np.stack(
        [rng.integers(0, q, N_BENCH, dtype=np.uint64) for q in basis.moduli]
    )
    return basis, limbs


def _time(fn, reps=REPS):
    fn()  # warm caches
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_batched_ntt_vs_per_limb(benchmark, once):
    basis, limbs = _setup()
    ctx = get_rns_context(N_BENCH, basis.moduli)
    per_limb = [get_context(N_BENCH, q) for q in basis.moduli]

    batched = once(benchmark, lambda: ctx.forward(limbs))
    reference = np.stack([c.forward(limbs[i]) for i, c in enumerate(per_limb)])
    assert np.array_equal(batched, reference)  # bit-identical

    t_batched = _time(lambda: ctx.forward(limbs))
    t_per_limb = _time(
        lambda: [c.forward(limbs[i]) for i, c in enumerate(per_limb)]
    )
    print(
        f"\nall-limb NTT (N={N_BENCH}, L={L_BENCH}): "
        f"batched {t_batched * 1e3:.2f} ms vs per-limb {t_per_limb * 1e3:.2f} ms "
        f"({t_per_limb / t_batched:.2f}x)"
    )
    # No wall-clock assertion here: at this large-N shape the two paths are
    # near parity (the batched win is at the small-N/high-L FHE shapes) and
    # CI load would make a ratio check flaky.  benchmarks/check_perf.py is
    # the perf gate; this test guards bit-identity and records the ratio.


def test_vectorized_from_rns_vs_per_coefficient(benchmark, once):
    basis, limbs = _setup()

    def reference():
        # The pre-batching reconstruction: Python loop over N coefficients.
        weights = basis.crt_weights()
        big_q = basis.modulus
        out = []
        for j in range(limbs.shape[1]):
            acc = 0
            for i, (q_over, q_over_inv) in enumerate(weights):
                acc += q_over * ((int(limbs[i, j]) * q_over_inv) % basis.moduli[i])
            out.append(acc % big_q)
        return out

    vectorized = once(benchmark, lambda: basis.from_rns(limbs))
    assert vectorized == reference()

    t_vec = _time(lambda: basis.from_rns(limbs), reps=3)
    t_ref = _time(reference, reps=3)
    print(
        f"\nfrom_rns (N={N_BENCH}, L={L_BENCH}): "
        f"vectorized {t_vec * 1e3:.2f} ms vs per-coefficient {t_ref * 1e3:.2f} ms "
        f"({t_ref / t_vec:.2f}x)"
    )
    assert t_vec < t_ref


def test_hoisted_rotations_beat_sequential(benchmark, once):
    """Halevi-Shoup hoisting: k=8 rotations of one ciphertext reuse a single
    digit decomposition, so the batch must decrypt identically to sequential
    rotates and beat them by >= 3x wall clock (measured the same way, so CI
    load cancels out of the ratio; the theoretical gap at L=8 is ~5x)."""
    import numpy as np

    from repro.fhe.bgv import BgvContext
    from repro.fhe.params import FheParams

    params = FheParams.build(n=512, levels=8, prime_bits=28,
                             plaintext_modulus=256)
    bgv = BgvContext(params, seed=11)
    ct = bgv.encrypt(np.arange(params.n) % 256)
    steps = list(range(1, 9))
    for s in steps:  # hints built outside the timed region
        bgv.hint_v1(f"galois_{bgv._rotation_exponent(s, params.n)}", ct.basis)

    hoisted = once(benchmark, lambda: bgv.rotate_many(ct, steps))
    sequential = [bgv.rotate(ct, s) for s in steps]
    for h, s in zip(hoisted, sequential):
        assert np.array_equal(bgv.decrypt(h), bgv.decrypt(s))

    t_hoisted = _time(lambda: bgv.rotate_many(ct, steps))
    t_seq = _time(lambda: [bgv.rotate(ct, s) for s in steps])
    print(
        f"\nrotate x8 (N=512, L=8): hoisted {t_hoisted * 1e3:.2f} ms vs "
        f"sequential {t_seq * 1e3:.2f} ms ({t_seq / t_hoisted:.2f}x)"
    )
    assert t_seq > 3.0 * t_hoisted
