"""Fig. 9: per-benchmark off-chip traffic breakdown (9a) and average power
breakdown (9b)."""

from repro.bench.runner import fig9_data

SCALE = 0.2

PAPER_POWER_W = {   # Fig. 9b totals
    "lola_cifar": 93, "lola_mnist_uw": 76, "lola_mnist_ew": 82,
    "logistic_regression": 88, "db_lookup": 96,
    "bgv_bootstrapping": 67, "ckks_bootstrapping": 59,
}


def test_fig9(benchmark, once):
    data = once(benchmark, lambda: fig9_data(scale=SCALE))
    print(f"\nFig. 9a — off-chip traffic fractions at scale {SCALE}:")
    for name, d in data.items():
        fr = {k: round(v, 2) for k, v in d["traffic_fractions"].items() if v > 0.01}
        print(f"  {name:22s} total {d['traffic_total_bytes']/1e6:8.1f} MB  {fr}")
    print("\nFig. 9b — average power (measured total | paper):")
    for name, d in data.items():
        p = d["power_w"]
        comps = {k: round(v, 1) for k, v in p.items() if k != "total"}
        print(f"  {name:22s} {p['total']:6.1f} | {PAPER_POWER_W[name]:3d} W   {comps}")

    # Shape assertions from Sec. 8.2.
    for name in ("logistic_regression", "bgv_bootstrapping", "db_lookup"):
        fr = data[name]["traffic_fractions"]
        ksh = fr["ksh_compulsory"] + fr["ksh_capacity"]
        assert ksh > 0.5, f"{name}: KSH should dominate deep workloads"
    for name, d in data.items():
        p = d["power_w"]
        movement = p["HBM"] + p["Scratchpad"] + p["NoC"] + p["RegFiles"]
        assert movement > p["FUs"], f"{name}: data movement should dominate power"
        assert 10 < p["total"] < 400, name
