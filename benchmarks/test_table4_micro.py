"""Table 4: microbenchmarks — F1 reciprocal throughput and speedups over the
CPU and HEAX-sigma, at the paper's three (N, logQ) points."""

from repro.bench.runner import table4_rows


def test_table4(benchmark, once):
    rows = once(benchmark, table4_rows)
    print("\nTable 4 — microbenchmarks (measured | paper):")
    for row in rows:
        print(
            f"  {row['op']:4s} N=2^{row['n'].bit_length()-1:2d} logQ={row['log_q']:3d}  "
            f"F1 {row['f1_ns']:7.1f} | {row['paper_f1_ns']:7.1f} ns   "
            f"vs CPU {row['speedup_vs_cpu']:6d} | {row['paper_speedup_vs_cpu']:6d}   "
            f"vs HEAX {row['speedup_vs_heax']:5d} | {row['paper_speedup_vs_heax']:5d}"
        )
        # F1 absolute reciprocal throughput within 2x of the paper's.
        assert row["paper_f1_ns"] / 2 < row["f1_ns"] < row["paper_f1_ns"] * 2
        # CPU speedups: 3.5-5 orders of magnitude, as in the paper.
        assert 3_000 < row["speedup_vs_cpu"] < 120_000
    # NTT-vs-HEAX band is the paper's headline 1600x claim (Sec. 8.1).
    ntt_rows = [r for r in rows if r["op"] == "ntt"]
    for r in ntt_rows:
        assert 800 < r["speedup_vs_heax"] < 3600
    # Automorphism band ~430x.
    for r in (r for r in rows if r["op"] == "aut"):
        assert 200 < r["speedup_vs_heax"] < 900
