"""Table 1: modular multiplier area/power/delay comparison."""

from repro.rns.multipliers import FheFriendlyMultiplier, multiplier_comparison_table
from repro.rns.primes import fhe_friendly_primes

PAPER = {
    "Barrett": (5271, 18.40, 1317),
    "Montgomery": (2916, 9.29, 1040),
    "NTT-friendly": (2165, 5.36, 1000),
    "FHE-friendly (ours)": (1817, 4.10, 1000),
}


def test_table1(benchmark, once):
    rows = once(benchmark, multiplier_comparison_table)
    print("\nTable 1 — modular multipliers (measured | paper):")
    for row in rows:
        p = PAPER[row["design"]]
        print(
            f"  {row['design']:22s} area {row['area_um2']:7.1f} | {p[0]:5d} um^2   "
            f"power {row['power_mw']:5.2f} | {p[1]:5.2f} mW   "
            f"delay {row['delay_ps']:6.1f} | {p[2]:4d} ps"
        )
        assert abs(row["area_um2"] - p[0]) / p[0] < 0.10
        assert abs(row["power_mw"] - p[1]) / p[1] < 0.10


def test_fhe_friendly_throughput(benchmark):
    """Functional throughput of the paper's multiplier design (per-call)."""
    q = fhe_friendly_primes(16384, 32, 1)[0]
    mult = FheFriendlyMultiplier(q)

    def run():
        acc = 1
        for a in range(1000, 1100):
            acc = mult.multiply(acc, a)
        return acc

    benchmark(run)


def test_prime_count_claim(benchmark, once):
    """Sec. 5.3: 'our approach allows for 6,186 prime moduli'."""
    from repro.rns.primes import count_fhe_friendly_32bit

    count = once(benchmark, count_fhe_friendly_32bit)
    print(f"\n32-bit FHE-friendly primes: {count} (paper: 6,186)")
    assert abs(count - 6186) / 6186 < 0.05
