"""Fig. 11: gmean performance vs. area across F1 configurations."""

from repro.bench.runner import fig11_points

SCALE = 0.12


def test_fig11(benchmark, once):
    points = once(benchmark, lambda: fig11_points(scale=SCALE))
    print(f"\nFig. 11 — performance vs area at scale {SCALE}:")
    for pt in points:
        print(
            f"  {pt['config']:14s} {pt['area_mm2']:7.1f} mm^2   "
            f"gmean {pt['gmean_time_ms']:8.4f} ms   perf {pt['normalized_perf']:5.3f}"
        )
    # Shape: performance grows with area (paper: "about linearly").
    areas = [pt["area_mm2"] for pt in points]
    perfs = [pt["normalized_perf"] for pt in points]
    assert areas == sorted(areas)
    for lo, hi in zip(perfs, perfs[1:]):
        assert hi >= lo * 0.92  # monotone within noise
    assert perfs[-1] / perfs[0] > 1.4  # meaningful scaling across the range
