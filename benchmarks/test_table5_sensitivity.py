"""Table 5: sensitivity to F1's design choices — low-throughput NTT and
automorphism FUs (HEAX-style, same aggregate throughput) and the CSR
register-pressure scheduler baseline."""

from repro.bench.runner import table5_rows

SCALE = 0.2


def test_table5(benchmark, once):
    rows = once(benchmark, lambda: table5_rows(scale=SCALE))
    print(f"\nTable 5 — slowdowns of F1 variants at scale {SCALE} (measured | paper):")
    for row in rows:
        def fmt(key):
            val = row.get(key)
            ref = row.get(f"paper_{key}")
            if val is None:
                return "   (csr intractable)"
            return f"{val:5.2f}x | {ref if ref is not None else ' -- '}"
        print(
            f"  {row['benchmark']:22s} LT-NTT {fmt('lt_ntt')}   "
            f"LT-Aut {fmt('lt_aut')}   CSR {fmt('csr')}"
        )
    # Directional shape: variants are slower-or-equal at compute-leaning
    # benchmarks; at this scale some memory-bound benchmarks are insensitive
    # (the paper's full-size runs show larger penalties — see EXPERIMENTS.md).
    mnist = next(r for r in rows if r["benchmark"] == "lola_mnist_uw")
    assert mnist["lt_ntt"] >= 1.0
    assert mnist["lt_aut"] >= 0.95
    for row in rows:
        for key in ("lt_ntt", "lt_aut"):
            assert row[key] is None or row[key] > 0.7
