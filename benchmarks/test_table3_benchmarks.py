"""Table 3: full-program execution times, F1 vs CPU, and speedups.

The workloads run at ``SCALE`` of the paper's sizes (see DESIGN.md on
scale-parameterized workloads); speedups compare F1 and the CPU model over
the *same* scaled op graph, so they are directly comparable to the paper's
full-size ratios.  Shape criteria asserted: F1 wins by >=3 orders of
magnitude everywhere, bootstrapping sits at the bottom, the LoLa-MNIST
variants at the top, and the gmean lands within ~2x of the paper's 5,432x.
"""

import math

from repro.bench.runner import PAPER_TABLE3_SPEEDUPS, table3_rows

SCALE = 0.25


def test_table3(benchmark, once):
    rows = once(benchmark, lambda: table3_rows(scale=SCALE))
    print(f"\nTable 3 — full benchmarks at scale {SCALE} (measured | paper speedup):")
    by_name = {}
    for row in rows:
        if row["benchmark"] == "gmean":
            print(f"  {'gmean':22s} {row['speedup']:9.0f}x | {row['paper_speedup']}x")
            gmean = row["speedup"]
            continue
        by_name[row["benchmark"]] = row["speedup"]
        print(
            f"  {row['benchmark']:22s} cpu {row['cpu_ms']:10.1f} ms   "
            f"f1 {row['f1_ms']:8.4f} ms   {row['speedup']:9.0f}x | "
            f"{row['paper_speedup']}x"
        )
    # Shape assertions.
    for name, speedup in by_name.items():
        assert speedup > 1000, (name, speedup)
    bottom_two = sorted(by_name, key=by_name.get)[:3]
    assert "ckks_bootstrapping" in bottom_two
    assert "bgv_bootstrapping" in bottom_two
    top_two = sorted(by_name, key=by_name.get, reverse=True)[:3]
    assert "lola_mnist_uw" in top_two or "lola_mnist_ew" in top_two
    paper_gmean = 5432
    assert paper_gmean / 2.5 < gmean < paper_gmean * 2.5
