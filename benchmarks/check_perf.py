#!/usr/bin/env python
"""Perf-regression harness for the batched-engine hot paths.

Usage (from the repo root):

    PYTHONPATH=src python benchmarks/check_perf.py            # check vs baseline
    PYTHONPATH=src python benchmarks/check_perf.py --write    # (re)write baseline
    PYTHONPATH=src python benchmarks/check_perf.py --compare  # old-vs-new ratios
    PYTHONPATH=src python benchmarks/check_perf.py --tolerance 3.0

Times a fixed set of hot kernels (all-limb NTT, CRT conversions, base
extension — both the batched conversion-table path and the per-modulus
reference it replaced, the object-free scale-down and its big-int oracle,
the lazy word-matmul CRT reconstruction on a tall 16-limb basis, a
2-thread stacked NTT, Listing-1 key switch, hoisted rotations, the
chained modulus switch, plus the serving hot paths: slot pack/unpack, registry lookup,
the context serde round-trip paid when replicating state into a worker
process, the executor's batch-dispatch overhead, the level/rotation
batching paths: a mixed-level BGV batch and a masked CKKS rotation batch,
and the network tier: the frame codec round-trip and a full remote batch
dispatch against a live local worker-host subprocess, plus the
observability guards: the disabled-tracing span check and a metrics-blob
histogram merge, and the resilience guards: the per-routing-decision
circuit-breaker check and the retry wrapper's no-fault dispatch overhead)
and compares each against the recorded baseline in ``BENCH_engine.json``
next to this script.  A kernel regresses if it is more than ``--tolerance``
times slower than baseline (generous by default: baselines travel between
machines).  Exits non-zero on regression so CI can gate on it.

``--compare`` prints the per-kernel old-vs-new speedup table (baseline time
divided by measured time) without gating — the tool for quantifying a perf
PR before rewriting the baseline with ``--write``.  It also derives the
hoisting payoff (``rotate_sequential / rotate_many_hoisted``) and the
round-2 kernel payoffs, each measured reference-vs-fast on identical
inputs in the same process: batched base extension, object-free
scale-down, and lazy CRT reconstruction.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"
DEFAULT_TOLERANCE = 2.5


def _kernels():
    from repro.fhe.bgv import BgvContext
    from repro.fhe.keyswitch import (
        base_extend,
        base_extend_reference,
        key_switch_v1,
        scale_down,
        scale_down_reference,
    )
    from repro.fhe.params import FheParams
    from repro.fhe.sampling import uniform_poly
    from repro.poly import parallel
    from repro.poly.ntt import get_rns_context
    from repro.poly.polynomial import Domain, RnsPolynomial
    from repro.rns import convert
    from repro.rns.crt import RnsBasis
    from repro.rns.primes import ntt_friendly_primes

    n, level = 1024, 8
    rng = np.random.default_rng(17)
    basis = RnsBasis(ntt_friendly_primes(n, 28, level))
    ctx = get_rns_context(n, basis.moduli)
    limbs = np.stack(
        [rng.integers(0, q, n, dtype=np.uint64) for q in basis.moduli]
    )
    evals = ctx.forward(limbs)
    ints = basis.from_rns(limbs)
    special = RnsBasis(
        [p for p in ntt_friendly_primes(n, 27, level + 4) if p not in basis.moduli][
            :level
        ]
    )
    extended = RnsBasis(basis.moduli + special.moduli)
    x_coeff = RnsPolynomial(basis, limbs, Domain.COEFF)

    # Round-2 conversion kernels: the batched conversion-table path vs the
    # per-modulus reference it replaced (same inputs, same process), the
    # object-free scale-down vs its big-int oracle, the lazy word-matmul
    # CRT reconstruction on a tall 16-limb basis (where the big-int sum it
    # replaces is most expensive), and a 2-thread stacked NTT fan.
    base_conv = convert.get_base_conversion(basis.moduli, extended.moduli)
    base_conv.convert(limbs)  # build cached tables outside the timed region
    ext_limbs = np.stack(
        [rng.integers(0, q, n, dtype=np.uint64) for q in extended.moduli]
    )
    x_ext = RnsPolynomial(extended, ext_limbs, Domain.COEFF)
    tall = RnsBasis(ntt_friendly_primes(n, 28, 16))
    tall_limbs = np.stack(
        [rng.integers(0, q, n, dtype=np.uint64) for q in tall.moduli]
    )
    ntt_stack = np.stack([limbs] * 8)

    def _ntt_threaded_stack():
        prev = parallel.set_num_threads(2)
        try:
            return ctx.forward(ntt_stack)
        finally:
            parallel.set_num_threads(prev)

    params = FheParams.build(n=256, levels=4, prime_bits=28, plaintext_modulus=256)
    bgv = BgvContext(params, seed=3)
    ks_basis = params.basis
    hint = bgv.hint_v1("relin", ks_basis)
    ks_x = uniform_poly(ks_basis, params.n, rng, Domain.NTT)

    # Hoisted rotations: one ciphertext rotated 8 ways (the dot-product /
    # convolution access pattern) vs. 8 independent rotates; plus the
    # chained modulus switch (level 4 -> 1 in one coefficient-domain pass).
    rot_ct = bgv.encrypt(np.arange(params.n) % 256)
    rot_steps = list(range(1, 9))
    for s in rot_steps:  # build galois hints outside the timed region
        bgv.hint_v1(f"galois_{bgv._rotation_exponent(s, params.n)}", ks_basis)

    # Serving hot paths: per-request slot pack/unpack and the registry's
    # signature-hash + cache-hit lookup (paid on every submitted request).
    from repro.bench.loadgen import poly_ckks_program, synthetic_requests
    from repro.serve import ProgramRegistry, SlotBatcher

    serve_program = poly_ckks_program(1024)
    batcher = SlotBatcher(serve_program, width=16)
    serve_requests = synthetic_requests(
        serve_program, batcher.capacity, width=16, seed=5
    )
    packed_inputs, _ = batcher.pack(serve_requests)
    out_id = serve_program.ops[-1].op_id
    packed_outputs = {out_id: next(iter(packed_inputs.values()))}
    registry = ProgramRegistry()
    registry.compiled_for(serve_program, check=False)  # warm: time the hit path

    # Serde + executor dispatch paths: a full context pickle round-trip
    # (what replicating one registry entry into a worker process costs) and
    # the executor's batch-dispatch overhead on a modeled backend (the
    # serving layer's per-batch bookkeeping, minus the FHE math itself).
    import pickle

    from repro.backends import CpuBackend
    from repro.serve.executor import BatchJob, ThreadExecutor

    dispatch_executor = ThreadExecutor()
    dispatch_job = BatchJob(
        program=serve_program, signature=serve_program.signature(),
        requests=serve_requests, batcher=batcher, backend=CpuBackend(),
    )

    # Level- and rotation-aware batching hot paths: a mixed-level BGV
    # batch (per-cohort encrypt + mod-switch + merge at the INPUTs) and a
    # CKKS rotation batch (rotate-then-mask lowering), both end-to-end
    # batcher.run calls on prebuilt contexts so keygen stays untimed.
    from repro.backends import FunctionalBackend
    from repro.bench.loadgen import (
        linear_bgv_program,
        mixed_level_requests,
        rotation_ckks_program,
    )

    cross_program = linear_bgv_program(256)
    cross_batcher = SlotBatcher(cross_program, width=8)
    cross_requests = mixed_level_requests(
        cross_program, 4, width=8, levels=(3, 2), seed=5
    )
    cross_entry, _ = registry.context_for(cross_program, seed=3)
    rot_program = rotation_ckks_program(256)
    rot_batcher = SlotBatcher(rot_program, width=8)
    rot_requests = mixed_level_requests(
        rot_program, 4, width=8, levels=(3, 3), seed=5
    )
    rot_entry, _ = registry.context_for(rot_program, seed=3)
    serve_backend = FunctionalBackend(validate=False)

    # Network tier: the wire codec on a representative EXECUTE payload
    # (header build + validation + both checksums, both directions), and a
    # full dispatch round-trip — coordinator-side pickling, framed socket
    # send, worker-host execution of a small BGV batch, framed reply —
    # against a live worker subprocess (replication happens in the warmup
    # call, so the timed region is the steady-state per-batch cost).
    from repro.net.cluster import LocalCluster
    from repro.net.framing import MsgType, decode_frame, encode_frame

    frame_payload = pickle.dumps(
        [(r.inputs, r.plains, r.seed, r.level, r.trace)
         for r in serve_requests]
    )
    net_program = linear_bgv_program(128)
    net_batcher = SlotBatcher(net_program, width=4)
    net_requests = mixed_level_requests(
        net_program, 4, width=4, levels=(3,), seed=5
    )
    net_entry, _ = registry.context_for(net_program, seed=3)
    net_cluster = LocalCluster(1)          # atexit-reaped with the process
    net_executor = net_cluster.executor()
    net_job = BatchJob(
        program=net_program, signature=net_program.signature(),
        requests=net_requests, batcher=net_batcher, backend=serve_backend,
        context_entry=net_entry,
    )

    # Observability hot paths: the disabled-tracing guard the serving
    # layer pays on every request (must stay a bare attribute read), and
    # a cross-process histogram merge of two realistic metrics blobs
    # (what every HEARTBEAT/RESULT reply costs the coordinator).
    from repro.obs.metrics import MetricsRegistry, merge_snapshots
    from repro.obs.trace import span_overhead_probe

    def _metrics_blob(seed: int) -> dict:
        blob_rng = np.random.default_rng(seed)
        reg = MetricsRegistry()
        for name in ("serve.latency_ms", "serve.queue_ms",
                     "serve.execute_ms", "kernel.ntt_forward.ms"):
            h = reg.histogram(name)
            for v in blob_rng.lognormal(1.0, 1.5, 512):
                h.observe(float(v))
        reg.counter("serve.requests").inc(512)
        return reg.snapshot()

    blob_a, blob_b = _metrics_blob(1), _metrics_blob(2)

    # Resilience hot paths: the per-routing-decision circuit-breaker
    # check and the per-batch retry-wrapper bookkeeping (deadline math,
    # breaker peek, one backoff computation) — the no-fault overhead the
    # resilience tier adds to every dispatch.
    from repro.serve.resilience import breaker_check_probe, retry_overhead_probe

    return {
        "ntt_forward_all_limb": lambda: ctx.forward(limbs),
        "ntt_inverse_all_limb": lambda: ctx.inverse(evals),
        "crt_to_rns_wide": lambda: basis.to_rns(ints),
        "crt_from_rns": lambda: basis.from_rns(limbs),
        "crt_from_rns_lazy": lambda: tall.from_rns(tall_limbs),
        "crt_from_rns_reference": lambda: tall._from_rns_exact(tall_limbs),
        "base_extend": lambda: base_extend(x_coeff, extended),
        "base_extend_batched": lambda: base_conv.convert(limbs),
        "base_extend_reference": lambda: base_extend_reference(
            x_coeff, extended
        ),
        "scale_down_batched": lambda: scale_down(x_ext, special, 256),
        "scale_down_reference": lambda: scale_down_reference(
            x_ext, special, 256
        ),
        "ntt_threaded_stack": _ntt_threaded_stack,
        "key_switch_v1": lambda: key_switch_v1(ks_x, hint),
        "rotate_many_hoisted": lambda: bgv.rotate_many(rot_ct, rot_steps),
        "rotate_sequential": lambda: [bgv.rotate(rot_ct, s) for s in rot_steps],
        "mod_switch_chain": lambda: bgv.mod_switch_to(rot_ct, 1),
        "serve_slot_pack": lambda: batcher.pack(serve_requests),
        "serve_slot_unpack": lambda: batcher.unpack(
            packed_outputs, batcher.capacity
        ),
        "serve_registry_lookup": lambda: registry.compiled_for(
            serve_program, check=False
        ),
        "serde_context_roundtrip": lambda: pickle.loads(pickle.dumps(bgv)),
        "serve_dispatch": lambda: dispatch_executor.execute(dispatch_job),
        "serve_cross_level_pack": lambda: cross_batcher.run(
            cross_requests, backend=serve_backend,
            context=cross_entry.context, seed=3,
        ),
        "serve_rotation_batch": lambda: rot_batcher.run(
            rot_requests, backend=serve_backend,
            context=rot_entry.context, seed=3,
        ),
        "net_frame_roundtrip": lambda: decode_frame(
            encode_frame(MsgType.EXECUTE, frame_payload)
        ),
        "net_dispatch": lambda: net_executor.execute(net_job),
        "obs_span_overhead": lambda: span_overhead_probe(),
        "metrics_histogram_merge": lambda: merge_snapshots(blob_a, blob_b),
        "resilience_breaker_check": lambda: breaker_check_probe(),
        "retry_dispatch_overhead": lambda: retry_overhead_probe(),
    }


def _time(fn, *, reps: int = 7) -> float:
    fn()  # warm caches (twiddle tables, lru caches)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="write the measured times as the new baseline")
    parser.add_argument("--compare", action="store_true",
                        help="print old-vs-new speedup ratios (no gating)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="regression threshold (x slower than baseline)")
    args = parser.parse_args(argv)

    measured = {name: _time(fn) for name, fn in _kernels().items()}

    if args.compare:
        baseline = (
            json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
        )
        print(f"{'kernel':24s} {'baseline':>10s} {'now':>10s} {'speedup':>8s}")
        for name, t in measured.items():
            ref = baseline.get(name)
            if ref is None:
                print(f"{name:24s} {'(new)':>10s} {t * 1e3:9.3f}ms        -")
            else:
                print(f"{name:24s} {ref * 1e3:9.3f}ms {t * 1e3:9.3f}ms "
                      f"{ref / t:7.2f}x")
        hoisted = measured.get("rotate_many_hoisted")
        seq = measured.get("rotate_sequential")
        if hoisted and seq:
            print(f"\nhoisting payoff (k=8): sequential/hoisted = "
                  f"{seq / hoisted:.2f}x")
        for label, fast, ref in (
            ("batched base-extend payoff",
             "base_extend_batched", "base_extend_reference"),
            ("object-free scale-down payoff",
             "scale_down_batched", "scale_down_reference"),
            ("lazy CRT payoff (L=16)",
             "crt_from_rns_lazy", "crt_from_rns_reference"),
        ):
            if measured.get(fast) and measured.get(ref):
                print(f"{label}: reference/fast = "
                      f"{measured[ref] / measured[fast]:.2f}x")
        return 0

    if args.write:
        BASELINE_PATH.write_text(
            json.dumps({k: round(v, 6) for k, v in measured.items()}, indent=2)
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
        for name, t in measured.items():
            print(f"  {name:24s} {t * 1e3:8.3f} ms")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --write first", file=sys.stderr)
        return 2

    baseline = json.loads(BASELINE_PATH.read_text())
    failed = []
    print(f"{'kernel':24s} {'baseline':>10s} {'now':>10s} {'ratio':>7s}")
    for name, t in measured.items():
        ref = baseline.get(name)
        if ref is None:
            print(f"{name:24s} {'(new)':>10s} {t * 1e3:9.3f}ms      -")
            continue
        ratio = t / ref
        flag = "  REGRESSION" if ratio > args.tolerance else ""
        print(f"{name:24s} {ref * 1e3:9.3f}ms {t * 1e3:9.3f}ms {ratio:6.2f}x{flag}")
        if ratio > args.tolerance:
            failed.append(name)
    if failed:
        print(f"\nperf regression in: {', '.join(failed)} "
              f"(> {args.tolerance}x baseline)", file=sys.stderr)
        return 1
    print("\nall kernels within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
