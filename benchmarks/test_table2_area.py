"""Table 2: area and TDP of F1, by component."""

from repro.core.area import area_report
from repro.core.config import F1Config

PAPER = {
    "NTT FU": (2.27, 4.80),
    "Automorphism FU": (0.58, 0.99),
    "Multiply FU": (0.25, 0.60),
    "Add FU": (0.03, 0.05),
    "Vector RegFile (512 KB)": (0.56, 1.67),
    "Compute cluster": (3.97, 8.75),
    "Total compute": (63.52, 140.0),
    "Scratchpad": (48.09, 20.35),
    "NoC": (10.02, 19.65),
    "Memory interface": (29.80, 0.45),
    "Total memory system": (87.91, 40.45),
    "Total F1": (151.4, 180.4),
}


def test_table2(benchmark, once):
    report = once(benchmark, area_report, F1Config())
    print("\nTable 2 — area and TDP (measured | paper):")
    for name, (paper_area, paper_tdp) in PAPER.items():
        row = report[name]
        print(
            f"  {name:26s} {row['area_mm2']:7.2f} | {paper_area:7.2f} mm^2   "
            f"{row['tdp_w']:7.2f} | {paper_tdp:7.2f} W"
        )
        assert abs(row["area_mm2"] - paper_area) / max(paper_area, 0.1) < 0.12
