"""Fig. 10: functional-unit and HBM utilization over time for LoLa-MNIST
unencrypted weights."""

import numpy as np

from repro.bench.runner import fig10_data

SCALE = 0.25


def test_fig10(benchmark, once):
    tl = once(benchmark, lambda: fig10_data(scale=SCALE, windows=48))
    print(f"\nFig. 10 — LoLa-MNIST UW utilization over time ({len(tl.time_us)} windows):")
    bars = ""
    for i in range(len(tl.time_us)):
        total_active = sum(float(tl.active_fus[k][i]) for k in tl.active_fus)
        bars += f"  t={tl.time_us[i]:7.2f}us  FUs {total_active:5.1f}  HBM {tl.hbm_utilization[i]*100:5.1f}%\n"
    print(bars[:1200])

    hbm = tl.hbm_utilization
    active = sum(np.asarray(tl.active_fus[k]) for k in tl.active_fus)
    # Paper's shape: an initially memory-bound phase (HBM high, few FUs
    # active), then compute intensity grows.
    first_quarter = slice(0, max(1, len(hbm) // 4))
    assert float(np.mean(hbm[first_quarter])) > 0.5
    assert float(active.max()) > float(np.mean(active[first_quarter])) * 1.5
    # Decoupling keeps utilization physical.
    assert float(hbm.max()) <= 1.0 + 1e-6
