"""Benchmark harness configuration.

Each benchmark module regenerates one of the paper's tables/figures and
prints the rows/series alongside the paper's reference numbers; the
pytest-benchmark timing wraps the full compile+schedule+simulate pipeline.
Heavy pipelines run one round only (they are deterministic)."""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time a deterministic, expensive pipeline exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
