"""Resilience primitives: retry backoff, circuit breakers, load shedding.

The serving stack's failure policy is built from three small, unit-
testable pieces (every one takes an injectable clock, so tests drive
state machines without sleeping):

- :class:`RetryPolicy` — capped exponential backoff with jitter, made
  **deadline-aware**: a retry is only scheduled while the batch's
  earliest request deadline still has budget, and the sleep never eats
  more than half of what remains.  Retrying a batch elsewhere is *safe*
  in this stack because execution is pure and every request carries its
  own seed — re-execution is bit-identical, so retries preserve the
  batched == solo invariant.
- :class:`CircuitBreaker` — the classic closed → open → half-open
  machine, one per worker host.  Consecutive transport failures open
  the breaker; routing then skips the host *before* paying a timeout.
  After ``reset_after_s`` one probe (the executor's heartbeat) is let
  through; success closes the breaker, failure re-opens it.
- :class:`LoadShedder` — submit-time overload protection.  It tracks an
  EWMA of observed per-request service time and the number of admitted,
  unresolved requests; when ``queue depth x service rate`` says a new
  request's deadline is infeasible, the request is shed immediately
  (``status == "shed"``) instead of queueing to certain expiry.

The typed error family at the top is the vocabulary the retry loop and
the server speak to each other: :class:`HostFailure` (one host died
mid-call — retryable), :class:`ExecutorUnavailable` (no routable host
at all — the server degrades to its local fallback), and
:class:`RetriesExhausted` (hosts exist but the batch kept failing —
futures resolve with ``status == "failed"`` carrying the error chain).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass


class ResilienceError(RuntimeError):
    """Base class for the serving stack's typed failure vocabulary."""


class HostFailure(ResilienceError):
    """One worker host failed a call at the transport level (died,
    timed out, or desynchronized its stream) — the batch is retryable
    on a survivor."""


class ExecutorUnavailable(ResilienceError):
    """No routable worker host right now: every host is dead or its
    breaker is open.  The server reacts by degrading to its embedded
    local fallback executor instead of failing the batch."""


class RetriesExhausted(ResilienceError):
    """The batch failed on every attempt the policy allowed.

    ``causes`` is the typed error chain, oldest first; the server
    resolves every future in the batch with ``status == "failed"``
    and this chain in ``RequestResult.stats["causes"]``.
    """

    def __init__(self, message: str, causes: list[BaseException] | None = None):
        super().__init__(message)
        self.causes: list[BaseException] = list(causes or [])


@dataclass(frozen=True)
class RetryPolicy:
    """Capped, deadline-aware exponential backoff with jitter.

    ``max_attempts`` counts total tries (the first dispatch included).
    ``backoff_s(failures, ...)`` returns how long to sleep before the
    next attempt, or ``None`` when the budget — attempts or deadline —
    is exhausted and the caller must stop retrying.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.02
    multiplier: float = 2.0
    max_delay_s: float = 0.5
    jitter: float = 0.5      # fraction of the delay added uniformly at random

    def backoff_s(self, failures: int, *, rng=None,
                  remaining_s: float | None = None) -> float | None:
        """Sleep before retry number ``failures`` (1-based), or ``None``.

        ``remaining_s`` is the batch's deadline budget: once it is
        spent there is no point re-executing (the server would expire
        the results anyway), and a scheduled sleep never consumes more
        than half of what remains, so the retry itself still fits.
        """
        if failures >= self.max_attempts:
            return None
        delay = min(self.base_delay_s * self.multiplier ** (failures - 1),
                    self.max_delay_s)
        if self.jitter:
            draw = rng.random() if rng is not None else random.random()
            delay *= 1.0 + self.jitter * draw
        if remaining_s is not None:
            if remaining_s <= 0:
                return None
            delay = min(delay, remaining_s / 2.0)
        return delay


class CircuitBreaker:
    """Per-host circuit breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` refuses traffic without touching the host.
    After ``reset_after_s`` the breaker turns half-open and lets exactly
    one probe through (the executor uses its heartbeat); the probe's
    outcome decides between closing and re-opening.  ``clock`` is
    injectable so unit tests step time explicitly.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: int = 3,
                 reset_after_s: float = 1.0, clock=time.monotonic,
                 on_transition=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    def _set_state(self, state: str) -> None:
        old, self._state = self._state, state
        if old != state and self._on_transition is not None:
            self._on_transition(old, state)

    def _roll_locked(self) -> None:
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.reset_after_s):
            self._set_state(self.HALF_OPEN)
            self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._roll_locked()
            return self._state

    def allow(self) -> bool:
        """May traffic flow to this host now?  In half-open, exactly one
        caller gets ``True`` (the probe) until its outcome is recorded."""
        with self._lock:
            self._roll_locked()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def would_allow(self) -> bool:
        """Non-consuming peek: like :meth:`allow` but never claims the
        half-open probe slot (for routing-candidate filtering)."""
        with self._lock:
            self._roll_locked()
            return self._state != self.OPEN

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            self._set_state(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            probing = self._probing
            self._probing = False
            if (self._state == self.HALF_OPEN and probing) \
                    or self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._set_state(self.OPEN)


class LoadShedder:
    """Submit-time deadline-feasibility estimator.

    Tracks the number of admitted-but-unresolved requests and an EWMA
    of per-request service time (each completed batch contributes
    ``service_s / batch_size``).  :meth:`should_shed` answers: given
    the current queue, can a request with this deadline plausibly be
    served in time?  Cold starts never shed (``min_samples`` batches of
    history are required), so the estimator cannot refuse traffic it
    has never measured.
    """

    ALPHA = 0.2    # EWMA smoothing for per-request service time

    def __init__(self, *, workers: int = 1, min_samples: int = 4,
                 margin: float = 1.0):
        self.workers = max(1, workers)
        self.min_samples = min_samples
        self.margin = margin
        self._lock = threading.Lock()
        self._service_s: float | None = None
        self._samples = 0
        self._queued = 0

    def admitted(self) -> None:
        with self._lock:
            self._queued += 1

    def resolved(self, n: int = 1) -> None:
        with self._lock:
            self._queued = max(0, self._queued - n)

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    def observe_batch(self, service_s: float, batch_size: int) -> None:
        per_request = service_s / max(1, batch_size)
        with self._lock:
            self._samples += 1
            self._service_s = (per_request if self._service_s is None
                               else (1 - self.ALPHA) * self._service_s
                               + self.ALPHA * per_request)

    def estimated_wait_s(self) -> float:
        """Predicted queueing delay for a request admitted now."""
        with self._lock:
            if self._service_s is None:
                return 0.0
            return self._queued * self._service_s / self.workers

    def should_shed(self, deadline_budget_s: float) -> bool:
        """True when the queue ahead makes ``deadline_budget_s`` infeasible."""
        with self._lock:
            if self._samples < self.min_samples or self._service_s is None:
                return False
            wait = self._queued * self._service_s / self.workers
            return wait > deadline_budget_s * self.margin


# ------------------------------------------------------------- perf probes
def breaker_check_probe(n: int = 1024) -> int:
    """Hot-path cost of consulting a breaker per routing decision
    (timed by ``check_perf.py`` as ``resilience_breaker_check``)."""
    breaker = CircuitBreaker()
    for _ in range(n):
        breaker.allow()
        breaker.record_success()
    return n


def retry_overhead_probe(n: int = 1024) -> int:
    """Per-batch bookkeeping the retry wrapper adds on the no-fault hot
    path: deadline math, a breaker peek, and one backoff computation
    (timed by ``check_perf.py`` as ``retry_dispatch_overhead``)."""
    policy = RetryPolicy()
    breaker = CircuitBreaker()
    rng = random.Random(0)
    clock = time.perf_counter
    sink = 0.0
    for _ in range(n):
        deadline = clock() + 1.0
        remaining = deadline - clock()
        if breaker.would_allow():
            delay = policy.backoff_s(1, rng=rng, remaining_s=remaining)
            sink += delay if delay is not None else 0.0
    return n
