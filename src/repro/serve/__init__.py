"""Serving runtime: compile-once registry, slot batching, and a job server.

The paper's argument is that FHE pays off when huge ciphertext vectors
amortize cost across many values; this package applies it across *users*:

- :mod:`repro.serve.registry` — :class:`ProgramRegistry` caches
  compiled programs, parameter sets, and keygenned contexts per
  ``(Program.signature(), params)``, so repeat traffic never re-compiles
  or re-keygens;
- :mod:`repro.serve.batcher` — :class:`SlotBatcher` packs k independent
  requests into one ciphertext's unused lanes and demultiplexes the
  outputs, k requests for one request's price;
- :mod:`repro.serve.executor` — the :class:`Executor` seam batches run
  through: :class:`ThreadExecutor` (in-process, per-context lock) or
  :class:`ProcessExecutor` (a pool of worker processes, each holding its
  own context replica restored from the parent's serialized keys — true
  multi-core parallelism with no cross-request lock);
- :mod:`repro.serve.server` — :class:`FheServer` ties them to a bounded
  queue, a priority/deadline-aware size-or-deadline flush policy, and a
  worker pool, with per-request and aggregate telemetry.

Ten-line tour::

    import repro

    program = ...            # any batchable DSL Program
    with repro.FheServer(max_batch=8, max_wait_ms=5.0) as server:
        futures = [server.submit(program, inputs={x.op_id: vec})
                   for vec in client_vectors]
        results = [f.result() for f in futures]
    # results[i].values, .latency_ms, .batch_occupancy, .cache_hit
"""

from repro.serve.batcher import (
    BatchUnsupported,
    Request,
    SlotBatcher,
    unbatchable_reason,
)
from repro.serve.executor import (
    BatchJob,
    Executor,
    ProcessExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.serve.registry import CompiledEntry, ContextEntry, ProgramRegistry
from repro.serve.resilience import (
    CircuitBreaker,
    ExecutorUnavailable,
    HostFailure,
    LoadShedder,
    ResilienceError,
    RetriesExhausted,
    RetryPolicy,
)
from repro.serve.server import (
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    FheServer,
    RequestResult,
)

__all__ = [
    "BatchJob",
    "BatchUnsupported",
    "CircuitBreaker",
    "CompiledEntry",
    "ContextEntry",
    "Executor",
    "ExecutorUnavailable",
    "FheServer",
    "HostFailure",
    "LoadShedder",
    "ProcessExecutor",
    "ProgramRegistry",
    "Request",
    "RequestResult",
    "ResilienceError",
    "RetriesExhausted",
    "RetryPolicy",
    "STATUS_EXPIRED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SHED",
    "SlotBatcher",
    "ThreadExecutor",
    "resolve_executor",
    "unbatchable_reason",
]
