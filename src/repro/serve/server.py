"""FheServer: a multi-worker FHE job server with slot-level batching.

The serving loop the ROADMAP's "heavy traffic" north star needs, built on
the PR 2 backend API plus the registry/batcher/executor of this package:

1. ``submit(program, inputs, plains, priority=, deadline_ms=)`` returns a
   :class:`concurrent.futures.Future` immediately; admission is bounded
   (``queue_depth``), so overload applies backpressure instead of growing
   without limit.
2. Requests are bucketed by ``Program.signature()``.  A bucket flushes
   when it reaches the batch capacity (``max_batch`` clamped to the slot
   layout's), when its oldest request's adaptive flush bound lapses (a
   per-signature :class:`_FlushController` predicts fill time from the
   measured arrival rate and shortens the wait accordingly —
   ``max_wait_ms`` stays the hard ceiling), or when a request's
   ``deadline_ms`` is about to lapse — buckets flush
   earliest-deadline-first, and within a bucket the most urgent
   (earliest deadline, then highest priority) requests claim the batch
   slots.  A request whose deadline has already passed fails fast with
   ``status="expired"`` instead of occupying a batch slot.  Requests at
   different arrival depths (``submit(level=)``) share a bucket: the
   pack mod-switches everything to the deepest arrival's waterline.
3. Worker threads hand flushed batches to the server's
   :class:`~repro.serve.executor.Executor`: compile/keygen artifacts come
   from the shared :class:`~repro.serve.registry.ProgramRegistry` (so only
   the first request of a signature pays setup), values are packed by the
   bucket's :class:`~repro.serve.batcher.SlotBatcher`, the program runs
   *once* per batch, and per-request outputs are demultiplexed into each
   request's :class:`RequestResult`.  The default
   :class:`~repro.serve.executor.ThreadExecutor` runs batches in-process
   under a per-context lock; a
   :class:`~repro.serve.executor.ProcessExecutor` shards them across
   worker-process context replicas with no cross-request lock at all.
4. Programs a batcher cannot pack (BGV rotations/ct x ct MUL, CKKS
   negative-step rotations) still serve correctly in batches of one —
   batching is an optimization, never a semantic restriction.  CKKS
   programs with non-negative rotations *do* batch (rotate-then-mask over
   the packed ciphertext, hoisted through ``rotate_many``).

Every result carries latency, queue time, batch size/occupancy, and
whether setup artifacts were cache hits; :meth:`FheServer.stats`
aggregates p50/p99 latency, requests/s, mean occupancy, registry hit
rates, and executor dispatch counters.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.backends import (
    F1Backend,
    FunctionalBackend,
    RunResult,
    program_width,
    resolve_backend,
    validate_run_args,
)
from repro.dsl.program import Program
from repro.obs.metrics import (
    MetricsRegistry,
    global_metrics,
    merge_snapshots,
    summarize_state,
)
from repro.obs.profile import kernel_breakdown
from repro.obs.trace import new_trace_id, perf_to_us, tracer
from repro.serve.batcher import (
    BatchUnsupported,
    Request,
    SlotBatcher,
    check_request_level,
    level_alignment_plan,
)
from repro.serve.executor import (
    BatchJob,
    Executor,
    executes_values,
    resolve_executor,
)
from repro.serve.registry import ProgramRegistry
from repro.serve.resilience import (
    ExecutorUnavailable,
    LoadShedder,
    RetriesExhausted,
)

#: :attr:`RequestResult.status` values — the complete vocabulary; every
#: submitted Future resolves with exactly one of these (or an exception
#: for in-process/application errors).
STATUS_OK = "ok"
STATUS_EXPIRED = "expired"
STATUS_FAILED = "failed"
STATUS_SHED = "shed"


@dataclass
class RequestResult:
    """What serving one request produced, with per-request accounting.

    ``status`` is :data:`STATUS_OK` for a served request;
    :data:`STATUS_EXPIRED` for one whose ``deadline_ms`` lapsed before a
    batch could run it; :data:`STATUS_FAILED` for one whose batch
    exhausted its transport-level retries (the typed error chain is in
    ``stats``); :data:`STATUS_SHED` for one refused at submit because the
    queue could not meet its deadline.  All three non-ok statuses resolve
    the Future with this distinct status (``values`` empty) rather than
    an exception — an exception on the Future means an in-process or
    application error, which is deterministic and never retried.
    """

    values: dict[int, np.ndarray]
    latency_ms: float          # submit -> result, as observed by the client
    queue_ms: float            # submit -> batch execution start
    batch_size: int
    batch_occupancy: float     # batch_size / slot capacity of the layout
    cache_hit: bool            # compile/keygen artifacts came from the registry
    backend: str
    backend_time_ms: float | None   # backend time amortized over the batch
    signature: str
    stats: dict = field(default_factory=dict)
    status: str = STATUS_OK


@dataclass
class _Pending:
    request: Request
    future: Future
    enqueued: float
    priority: int = 0
    deadline: float | None = None    # absolute perf_counter seconds
    #: when the size-or-wait policy owes this request a flush; caps the
    #: urgency key so deadline-free requests age instead of starving
    flush_by: float = math.inf

    def urgency(self) -> tuple:
        """EDF order: earliest effective deadline (the request's own, or
        its max_wait flush bound — so nothing starves), then highest
        priority, then FIFO."""
        effective = min(self.deadline if self.deadline is not None
                        else math.inf, self.flush_by)
        return (effective, -self.priority, self.enqueued)


class _FlushController:
    """Per-signature adaptive flush policy, driven by the group's own
    arrival/occupancy telemetry.

    The static policy ("wait ``max_wait_ms``, hoping the bucket fills")
    is right only when the arrival rate is unknown.  Once this signature
    has traffic history, the controller predicts how long filling the
    *remaining* capacity will actually take (mean recent inter-arrival
    gap x remaining slots x a 25% safety margin) and bounds the wait by
    that — so slow traffic stops paying the full window for occupancy
    that was never coming, and bursty traffic keeps batching up to
    capacity via the size trigger as before.

    The controller only ever *shortens* the wait: ``max_wait_ms``
    remains the documented ceiling (every existing timing contract
    holds), and a floor of ``max_wait/8`` keeps a noisy gap estimate
    from degenerating into flush-per-request.  Groups with capacity 1
    (unbatchable programs) always use the floor — waiting cannot improve
    their occupancy.
    """

    WINDOW = 64          # arrival timestamps / occupancy samples retained
    FLOOR_FRACTION = 1 / 8
    SAFETY = 1.25

    def __init__(self, base_wait_s: float, capacity: int):
        self.base_wait_s = base_wait_s
        self.capacity = capacity
        self.arrivals: deque[float] = deque(maxlen=self.WINDOW)
        self.occupancies: deque[float] = deque(maxlen=self.WINDOW)

    def observe_submit(self, now: float, pending_count: int) -> float:
        """Record one arrival; returns this request's flush wait (s)."""
        self.arrivals.append(now)
        return self.effective_wait_s(pending_count)

    def observe_batch(self, occupancy: float) -> None:
        self.occupancies.append(occupancy)

    def interarrival_s(self) -> float | None:
        """Mean gap between recent submits, or None with no history."""
        if len(self.arrivals) < 2:
            return None
        span = self.arrivals[-1] - self.arrivals[0]
        return span / (len(self.arrivals) - 1)

    def effective_wait_s(self, pending_count: int = 0) -> float:
        base = self.base_wait_s
        floor = base * self.FLOOR_FRACTION
        if self.capacity <= 1:
            return floor
        gap = self.interarrival_s()
        if gap is None:
            return base    # cold start: no rate estimate, honor the window
        remaining = max(self.capacity - pending_count, 0)
        predicted = remaining * gap * self.SAFETY
        return min(base, max(floor, predicted))


class _Group:
    """All state for one program signature: batcher, bucket, registry
    entry, flush controller, and per-signature telemetry histograms."""

    def __init__(self, program: Program, signature: str, width: int,
                 max_batch: int | None, max_wait_s: float = 0.01,
                 metrics: MetricsRegistry | None = None):
        self.program = program
        self.signature = signature
        self.width = width
        try:
            self.batcher: SlotBatcher | None = SlotBatcher(
                program, width=width, max_batch=max_batch
            )
            self.capacity = self.batcher.capacity
        except BatchUnsupported:
            self.batcher = None
            self.capacity = 1
        self.pending: list[_Pending] = []
        #: shared MUL_PLAIN operands of the *current* bucket; re-established
        #: whenever the bucket empties, so weights may change between
        #: batches but never diverge within one.
        self.shared_plains: dict[int, np.ndarray] | None = None
        #: cross-level admission envelope, computed once per group (the
        #: batcher already has one; unbatchable programs get their own)
        self.level_plan = (self.batcher.level_plan if self.batcher is not None
                          else level_alignment_plan(program))
        self.lock = threading.Lock()
        self.controller = _FlushController(max_wait_s, self.capacity)
        # Per-signature telemetry (guarded by the server's telemetry
        # lock): mergeable log-bucket histograms in the server's metrics
        # registry — bounded memory by construction, and the same schema
        # every other layer reports through — plus an exact batch-size
        # histogram.
        metrics = metrics if metrics is not None else MetricsRegistry()
        self.latencies_ms = metrics.histogram(f"sig.{signature}.latency_ms")
        self.queue_ms = metrics.histogram(f"sig.{signature}.queue_ms")
        self.occupancies = metrics.histogram(f"sig.{signature}.occupancy")
        self.batch_sizes: dict[int, int] = {}
        self.completed = 0
        self.batches = 0

    def due_time(self, deadline_slack_s: float) -> float:
        """When this bucket must flush (caller holds ``lock``).

        Each pending request is due at its ``flush_by`` bound (assigned
        at submit by the adaptive controller, never later than
        ``enqueued + max_wait``) or slightly *before* its deadline
        (``deadline_slack_s`` early, so a deadline-driven batch can
        still execute inside its budget), whichever comes first; the
        bucket is due with its most urgent request — the flusher visits
        buckets earliest-deadline-first.
        """
        return min(
            (min(p.flush_by,
                 p.deadline - deadline_slack_s if p.deadline is not None
                 else math.inf)
             for p in self.pending),
            default=math.inf,
        )

    def take_batch(self) -> list[_Pending]:
        """Claim up to ``capacity`` live requests, most urgent first
        (caller holds ``lock``).

        Requests whose deadline has already lapsed do *not* count against
        capacity — they ride along at the end of the returned list purely
        so the executing worker resolves them with the expired status and
        releases their admission slots; the batch's capacity slots all go
        to live requests.
        """
        now = time.perf_counter()
        live: list[_Pending] = []
        lapsed: list[_Pending] = []
        for p in self.pending:
            (lapsed if p.deadline is not None and p.deadline <= now
             else live).append(p)
        live.sort(key=_Pending.urgency)
        batch, self.pending = live[: self.capacity], live[self.capacity:]
        return batch + lapsed


class FheServer:
    """Batched, multi-worker serving of DSL programs on any backend.

    ``backend`` is a name or instance as in ``repro.run``; the string
    ``"functional"`` constructs a non-validating backend (validation
    re-executes the program on the plaintext reference — a test-time
    check, not a serving-time one; pass an instance to override).  An
    injected :class:`FunctionalBackend`'s scheme/params/ks settings are
    honored when building cached contexts; ``seed`` (the server's, not
    the backend's) seeds each signature's cached encryption keys.

    ``executor`` decides where flushed batches run: ``"thread"`` (default,
    in-process with a per-context lock), ``"process"``/a
    :class:`~repro.serve.executor.ProcessExecutor` instance (a pool of
    worker-process context replicas, no cross-request lock), ``"remote"``/
    a :class:`~repro.net.remote.RemoteExecutor` instance (worker *hosts*
    over the socket transport, sharded by consistent hash — the string
    spawns a local cluster sized to ``workers``), or any
    :class:`~repro.serve.executor.Executor`.  Construct process executors
    *before* heavily threaded work so the fork happens from a quiet
    parent; the server closes an executor it constructed from a name, and
    leaves injected instances to their owner.
    """

    def __init__(self, backend="functional", *,
                 registry: ProgramRegistry | None = None, workers: int = 2,
                 max_batch: int | None = None, max_wait_ms: float = 10.0,
                 queue_depth: int = 128, seed: int = 0,
                 executor: Executor | str = "thread",
                 trace: bool = False, degrade: bool = True):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if trace:
            # Per-request span tracing: ids minted at submit ride each
            # request through pipes/sockets; dump_trace() exports the
            # stitched Chrome trace-event timeline.
            tracer().set_label("coordinator")
            tracer().enable()
        if isinstance(backend, str) and backend == "functional":
            self.backend = FunctionalBackend(validate=False)
        else:
            self.backend = resolve_backend(backend)
        # Resolve (and, for "process", fork) the executor before any worker
        # thread starts.  The string "process" sizes the pool to ``workers``
        # so every worker thread can drive its own process replica.
        self._own_executor = isinstance(executor, str)
        if executor == "process":
            from repro.serve.executor import ProcessExecutor

            self.executor: Executor = ProcessExecutor(workers)
        elif executor == "remote":
            # Size the local worker-host cluster to ``workers`` so every
            # worker thread can keep its own host busy.
            from repro.net.cluster import remote_executor

            self.executor = remote_executor(workers)
        else:
            self.executor = resolve_executor(executor)
        self.registry = registry if registry is not None else ProgramRegistry()
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.seed = seed
        self._admission = threading.BoundedSemaphore(queue_depth)
        self._groups: dict[str, _Group] = {}
        self._groups_lock = threading.Lock()
        #: (urgency, group, batch) triples; workers pop the most urgent
        self._jobs: list[tuple[tuple, _Group, list[_Pending]]] = []
        self._jobs_ready = threading.Condition()
        #: separate from _jobs_ready so a worker-bound notify is never
        #: consumed by the flusher (and vice versa)
        self._flusher_wake = threading.Condition()
        self._closed = False   # admission gate (set first during close)
        self._stop = False     # worker/flusher shutdown
        self._telemetry_lock = threading.Lock()
        # Serving telemetry lives in a mergeable metrics registry
        # (repro.obs.metrics): counters stay exact, latency/queue/
        # occupancy distributions are fixed-log-bucket histograms whose
        # percentiles stay correct when worker-host blobs merge in.
        self.metrics = MetricsRegistry()
        self._latencies_ms = self.metrics.histogram("serve.latency_ms")
        self._queue_ms = self.metrics.histogram("serve.queue_ms")
        self._occupancies = self.metrics.histogram("serve.occupancy")
        #: wall time of executor.execute per batch — the dispatch cost the
        #: executor tier adds (pipe/socket round-trips included)
        self._dispatch_ms = self.metrics.histogram("serve.dispatch_ms")
        self._completed = self.metrics.counter("serve.requests")
        self._batches = self.metrics.counter("serve.batches")
        self._errors = self.metrics.counter("serve.errors")
        self._expired = self.metrics.counter("serve.expired")
        self._failed = self.metrics.counter("serve.failed")
        self._shed = self.metrics.counter("serve.shed")
        self._degradations = self.metrics.counter("serve.degradations")
        # Graceful degradation: when a remote executor reports every host
        # unroutable (ExecutorUnavailable), batches run on an embedded
        # ThreadExecutor fallback until a heartbeat probe revives a host.
        self.degrade = degrade
        self._degraded = False
        self._degrade_lock = threading.Lock()
        self._fallback: Executor | None = None
        # Submit-time load shedding: EWMA of per-request service time x
        # queue depth vs the request's deadline budget.
        self._shedder = LoadShedder(workers=workers)
        self._first_submit: float | None = None
        self._last_done: float | None = None
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"fhe-worker-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="fhe-flusher", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------ client API
    def submit(self, program: Program, inputs=None, plains=None, *,
               width: int | None = None, priority: int = 0,
               deadline_ms: float | None = None,
               seed: int | None = None, level: int | None = None) -> Future:
        """Enqueue one request; returns a Future[RequestResult].

        ``width`` fixes the per-request vector length for this program's
        slot layout; it defaults to the longest vector in the first
        request (later requests must fit the established layout).  Blocks
        when ``queue_depth`` requests are already in flight.

        ``priority`` breaks ties among equally urgent requests (higher
        first); ``deadline_ms`` is the client's latency budget — it pulls
        the bucket's flush forward, orders batch admission
        earliest-deadline-first, and a request whose budget lapses before
        execution resolves with ``status="expired"`` instead of occupying
        a batch slot.  ``seed`` pins per-request randomness for requests
        served singly (it rides the request through any executor).

        ``level`` is the request's arrival depth (RNS limbs its inputs
        carry); ``None`` means the program's declared input level.
        Same-signature requests at different levels share one batch: the
        pack mod-switches every request down to the deepest arrival's
        waterline first.  The level must sit inside the program's
        batchable range (validated here, synchronously).

        Admission is strict for batchable programs: vectors must fit the
        group's layout and (on value-executing backends) every INPUT op
        needs a value — rejected here, synchronously, so one malformed
        request can never fail the innocent requests it would have been
        batched with.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        request = Request(inputs=dict(inputs or {}), plains=dict(plains or {}),
                          seed=seed, level=level)
        tr = tracer()
        admit_start = time.perf_counter() if tr.enabled else 0.0
        if tr.enabled:
            request.trace = new_trace_id()
        validate_run_args(program, request.inputs or None,
                          request.plains or None)
        group = self._group_for(program, request, width)
        shared = None
        if group.batcher is not None:
            group.batcher.check_request(
                request, require_inputs=self._executes_values()
            )
            shared = group.batcher.shared_plain_values(request)
        elif level is not None:
            # Unbatchable programs still honor arrival levels — served
            # solo with the same graph lowering a batch would apply.
            check_request_level(group.level_plan, level)
        if (deadline_ms is not None
                and self._shedder.should_shed(deadline_ms / 1e3)):
            # The queue's observed service rate cannot meet this budget:
            # refuse now (cheap, honest) rather than admit work that will
            # expire after consuming a batch slot's worth of queueing.
            return self._shed_request(group, deadline_ms)
        future: Future = Future()
        self._admission.acquire()
        self._shedder.admitted()
        now = time.perf_counter()
        with self._telemetry_lock:
            if self._first_submit is None:
                self._first_submit = now
        ready = None
        try:
            with group.lock:
                if self._closed:
                    # close() set the flag before its final flush; anything
                    # appended now would be stranded, so refuse instead.
                    raise RuntimeError("server is closed")
                if shared:
                    if not group.pending:
                        group.shared_plains = shared
                    else:
                        self._check_shared(group, shared)
                wait_s = group.controller.observe_submit(
                    now, len(group.pending)
                )
                group.pending.append(_Pending(
                    request, future, now, priority=priority,
                    deadline=(now + deadline_ms / 1e3
                              if deadline_ms is not None else None),
                    flush_by=now + wait_s,
                ))
                if len(group.pending) >= group.capacity:
                    ready = group.take_batch()
        except Exception:
            self._admission.release()
            self._shedder.resolved()
            raise
        if tr.enabled:
            # Admission span: validation + layout checks + enqueue.
            end = time.perf_counter()
            tr.record("admit", perf_to_us(admit_start),
                      (end - admit_start) * 1e6, trace=request.trace,
                      signature=group.signature[:16])
        if ready is not None:
            self._dispatch(group, ready)
        elif deadline_ms is not None:
            # Tight budgets cannot wait for the flusher's next scheduled
            # scan: wake it so a deadline shorter than the scan tick is
            # dispatched (and served) rather than discovered already dead.
            with self._flusher_wake:
                self._flusher_wake.notify()
        return future

    def request(self, program: Program, inputs=None, plains=None, *,
                width: int | None = None, priority: int = 0,
                deadline_ms: float | None = None,
                seed: int | None = None,
                level: int | None = None) -> RequestResult:
        """Synchronous convenience: submit and wait."""
        return self.submit(program, inputs, plains, width=width,
                           priority=priority, deadline_ms=deadline_ms,
                           seed=seed, level=level).result()

    def flush(self) -> None:
        """Dispatch every pending bucket now, regardless of age or size."""
        with self._groups_lock:
            groups = list(self._groups.values())
        for group in groups:
            while True:
                with group.lock:
                    if not group.pending:
                        break
                    ready = group.take_batch()
                self._dispatch(group, ready)

    def close(self) -> None:
        """Flush, drain, and stop the worker/flusher threads."""
        with self._groups_lock:
            if self._closed:
                return
            self._closed = True
        # _closed is set before this flush, so a racing submit either got
        # its request into a bucket we are about to drain or observes the
        # flag under the group lock and raises — no future is stranded.
        self.flush()
        with self._jobs_ready:
            self._stop = True
            self._jobs_ready.notify_all()
        with self._flusher_wake:
            self._flusher_wake.notify_all()
        for thread in self._workers:
            thread.join()
        self._flusher.join()
        if self._own_executor:
            self.executor.close()
        if self._fallback is not None:
            self._fallback.close()

    def __enter__(self) -> "FheServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _executes_values(self) -> bool:
        return executes_values(self.backend)

    @staticmethod
    def _check_shared(group: _Group, shared: dict[int, np.ndarray]) -> None:
        """Reject a request whose shared weights diverge from its bucket."""
        for op_id, values in shared.items():
            want = group.shared_plains.get(op_id)
            if want is None or (values.shape == want.shape
                                and np.array_equal(values, want)):
                continue
            raise BatchUnsupported(
                f"plain input {op_id} feeds a BGV MUL_PLAIN and must match "
                f"the weights of the batch currently forming; resubmit "
                f"after the bucket flushes or align the weights"
            )

    def _group_for(self, program: Program, request: Request,
                   width: int | None) -> _Group:
        signature = program.signature()
        with self._groups_lock:
            group = self._groups.get(signature)
            if group is None:
                if width is None:
                    lengths = [np.asarray(v).shape[0]
                               for v in request.inputs.values()]
                    width = max(lengths, default=program_width(program))
                group = _Group(program, signature, width, self.max_batch,
                               max_wait_s=self.max_wait_ms / 1e3,
                               metrics=self.metrics)
                self._groups[signature] = group
            return group

    def _shed_request(self, group: _Group, deadline_ms: float) -> Future:
        """Resolve a refused submit immediately with ``status="shed"``."""
        with self._telemetry_lock:
            self._shed.inc()
        tracer().event("shed", signature=group.signature[:16],
                       deadline_ms=deadline_ms,
                       estimated_wait_ms=self._shedder.estimated_wait_s() * 1e3)
        future: Future = Future()
        future.set_running_or_notify_cancel()
        future.set_result(RequestResult(
            values={},
            latency_ms=0.0,
            queue_ms=0.0,
            batch_size=0,
            batch_occupancy=0.0,
            cache_hit=False,
            backend=getattr(self.backend, "name", str(self.backend)),
            backend_time_ms=None,
            signature=group.signature,
            status=STATUS_SHED,
            stats={"estimated_wait_ms":
                   self._shedder.estimated_wait_s() * 1e3,
                   "deadline_ms": deadline_ms},
        ))
        return future

    def _dispatch(self, group: _Group, batch: list[_Pending]) -> None:
        # Jobs carry their batch's best urgency: when workers are saturated
        # and batches queue up, the most urgent batch (earliest deadline,
        # then highest priority) is executed first — this is where
        # ``priority=`` becomes observable under load.  Already-lapsed
        # ride-along requests are excluded from the key: their past
        # deadlines must not let a batch with no urgent live work preempt
        # a genuinely urgent one.
        now = time.perf_counter()
        live = [p for p in batch
                if p.deadline is None or p.deadline > now]
        urgency = min(p.urgency() for p in (live or batch))
        with self._jobs_ready:
            self._jobs.append((urgency, group, batch))
            self._jobs_ready.notify()

    def _flusher_loop(self) -> None:
        tick = min(max(self.max_wait_ms / 4.0, 0.5), 50.0) / 1e3
        while True:
            with self._jobs_ready:
                if self._stop:
                    return
            now = time.perf_counter()
            with self._groups_lock:
                groups = list(self._groups.values())
            # Earliest-deadline-first across buckets: the most urgent
            # bucket's batch reaches the job queue (and a worker) first.
            due: list[tuple[float, _Group]] = []
            for group in groups:
                with group.lock:
                    # Two ticks of deadline slack: one is consumed by the
                    # scan interval itself, the second is real execution
                    # margin — without it a serviceable request could be
                    # discovered exactly at its deadline and expire idle.
                    when = group.due_time(2 * tick)
                if when <= now:
                    due.append((when, group))
            for _, group in sorted(due, key=lambda pair: pair[0]):
                with group.lock:
                    ready = group.take_batch() if group.pending else None
                if ready:
                    self._dispatch(group, ready)
            with self._flusher_wake:
                # Sleep one tick, but wake early for tight-deadline
                # submits (see submit()).
                self._flusher_wake.wait(timeout=tick)

    def _worker_loop(self) -> None:
        while True:
            with self._jobs_ready:
                while not self._jobs and not self._stop:
                    self._jobs_ready.wait()
                if not self._jobs and self._stop:
                    return
                next_idx = min(range(len(self._jobs)),
                               key=lambda i: self._jobs[i][0])
                _, group, batch = self._jobs.pop(next_idx)
            try:
                self._execute(group, batch)
            except (RetriesExhausted, ExecutorUnavailable) as exc:
                # Transport-level exhaustion: the batch was retried (or no
                # host was routable and degradation is off).  These resolve
                # with the distinct "failed" status — the inputs were fine,
                # the fleet was not — carrying the typed error chain.
                self._fail_batch(group, batch, exc)
            except Exception as exc:  # noqa: BLE001 — delivered to futures
                with self._telemetry_lock:
                    self._errors.inc(len(batch))
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            finally:
                self._shedder.resolved(len(batch))
                for _ in batch:
                    self._admission.release()

    def _run_batch(self, group: _Group,
                   batch: list[_Pending]) -> tuple[list[dict], RunResult, bool]:
        """Build the batch job (registry lookups included) and execute it."""
        program = group.program
        requests = [p.request for p in batch]
        job = BatchJob(
            program=program, signature=group.signature, requests=requests,
            batcher=group.batcher, backend=self.backend,
            # The earliest live deadline rides the job so a remote
            # executor can bound its per-attempt watchdog and its retry
            # backoff by the real budget.
            deadline=min((p.deadline for p in batch
                          if p.deadline is not None), default=None),
        )
        hit = False
        if isinstance(self.backend, FunctionalBackend):
            job.context_entry, hit = self.registry.context_for(
                program, scheme=self.backend.scheme,
                prime_bits=self.backend.prime_bits,
                plaintext_modulus=self.backend.plaintext_modulus,
                seed=self.seed, ks_variant=self.backend.ks_variant,
                params=self.backend.params,
            )
            # Cache the cross-level plan on the entry so every later
            # consumer of this (signature, params) pair — including other
            # servers sharing the registry — skips the graph walk.
            self.registry.level_plan_for(program, job.context_entry)
        elif isinstance(self.backend, F1Backend):
            job.compiled_entry, hit = self.registry.compiled_for(
                program, self.backend.config,
                scheduler=self.backend.scheduler,
                ks_choice=self.backend.ks_choice, check=self.backend.check,
            )
        tr = tracer()
        dispatch_start = time.perf_counter()
        executor = self.executor
        was_degraded = self._degraded
        if was_degraded and not getattr(executor, "healthy", lambda: True)():
            # Still degraded and the remote tier reports nothing routable:
            # go straight to the embedded fallback rather than paying a
            # guaranteed-to-fail dispatch per batch.
            executor = self._fallback_executor()
        try:
            outputs, result = executor.execute(job)
        except ExecutorUnavailable:
            if not self.degrade:
                raise
            # Every host dead or breaker-open: degrade to embedded local
            # execution.  Correctness is unchanged (execution is pure and
            # per-request seeds ride the requests); only the isolation/
            # parallelism of the remote tier is lost, which stats()
            # surfaces via ``degraded``.
            executor = self._fallback_executor()
            self._set_degraded(True)
            outputs, result = executor.execute(job)
        else:
            if was_degraded and executor is self.executor:
                # A remote batch succeeded again: recovery.
                self._set_degraded(False)
        dispatch_end = time.perf_counter()
        if tr.enabled:
            tr.record("dispatch", perf_to_us(dispatch_start),
                      (dispatch_end - dispatch_start) * 1e6,
                      traces=[r.trace for r in requests if r.trace],
                      executor=executor.name, k=len(requests))
        with self._telemetry_lock:
            self._dispatch_ms.observe((dispatch_end - dispatch_start) * 1e3)
        self._shedder.observe_batch(dispatch_end - dispatch_start,
                                    len(requests))
        return outputs, result, hit

    def _fallback_executor(self) -> Executor:
        """The lazily-built embedded executor degraded batches run on."""
        with self._degrade_lock:
            if self._fallback is None:
                from repro.serve.executor import ThreadExecutor

                self._fallback = ThreadExecutor()
            return self._fallback

    def _set_degraded(self, flag: bool) -> None:
        with self._telemetry_lock:
            if flag == self._degraded:
                return
            self._degraded = flag
            if flag:
                self._degradations.inc()
        tracer().event("degrade" if flag else "recover",
                       executor=self.executor.name)

    def _fail_batch(self, group: _Group, batch: list[_Pending],
                    exc: Exception) -> None:
        """Resolve a transport-exhausted batch with ``status="failed"``.

        Futures already resolved (expired ride-alongs) are skipped; the
        rest carry the typed error chain in ``stats`` — no future is ever
        left pending.
        """
        now = time.perf_counter()
        causes = [f"{type(c).__name__}: {c}"
                  for c in getattr(exc, "causes", [])]
        tracer().event("batch_failed", signature=group.signature[:16],
                       error=f"{type(exc).__name__}: {exc}",
                       attempts=len(causes) or 1)
        delivered = 0
        for pending in batch:
            if pending.future.done():
                continue
            if (not pending.future.running()
                    and not pending.future.set_running_or_notify_cancel()):
                continue
            pending.future.set_result(RequestResult(
                values={},
                latency_ms=(now - pending.enqueued) * 1e3,
                queue_ms=(now - pending.enqueued) * 1e3,
                batch_size=0,
                batch_occupancy=0.0,
                cache_hit=False,
                backend=getattr(self.backend, "name", str(self.backend)),
                backend_time_ms=None,
                signature=group.signature,
                status=STATUS_FAILED,
                stats={"error": f"{type(exc).__name__}: {exc}",
                       "causes": causes},
            ))
            delivered += 1
        with self._telemetry_lock:
            self._failed.inc(delivered)

    def _expire(self, group: _Group, pending: _Pending, now: float) -> None:
        """Resolve one past-deadline request with the distinct status."""
        if pending.future.set_running_or_notify_cancel():
            pending.future.set_result(RequestResult(
                values={},
                latency_ms=(now - pending.enqueued) * 1e3,
                queue_ms=(now - pending.enqueued) * 1e3,
                batch_size=0,
                batch_occupancy=0.0,
                cache_hit=False,
                backend=getattr(self.backend, "name", str(self.backend)),
                backend_time_ms=None,
                signature=group.signature,
                status=STATUS_EXPIRED,
            ))
        with self._telemetry_lock:
            self._expired.inc()

    def _execute(self, group: _Group, batch: list[_Pending]) -> None:
        # Fail past-deadline requests fast: they resolve with the expired
        # status immediately and never occupy a batch slot.
        now = time.perf_counter()
        live_batch = []
        for pending in batch:
            if pending.deadline is not None and now >= pending.deadline:
                self._expire(group, pending, now)
            else:
                live_batch.append(pending)
        if not live_batch:
            return
        # Claim every future up front: one that a client already cancelled
        # is simply skipped, and can no longer flip to cancelled while we
        # deliver results below.
        live = [p.future.set_running_or_notify_cancel() for p in live_batch]
        started = time.perf_counter()
        tr = tracer()
        if tr.enabled:
            # One queue span per request: submit -> batch execution start.
            for pending in live_batch:
                if pending.request.trace:
                    tr.record("queue", perf_to_us(pending.enqueued),
                              (started - pending.enqueued) * 1e6,
                              trace=pending.request.trace)
        outputs, result, hit = self._run_batch(group, live_batch)
        done = time.perf_counter()
        k = len(live_batch)
        batched = group.batcher is not None
        occupancy = group.batcher.occupancy(k) if batched else 1.0
        time_share = (result.time_ms / k
                      if result.time_ms is not None and batched else result.time_ms)
        # Execution attribution survives demux: every RequestResult says
        # which executor kind / worker pid / host / replica served it, so
        # per-request results join against traces and per-host telemetry.
        executed_on = (result.stats.get("executed_on")
                       if isinstance(result.stats, dict) else None)
        for pending, values, alive in zip(live_batch, outputs, live):
            if not alive:
                continue
            pending.future.set_result(RequestResult(
                values=values,
                latency_ms=(done - pending.enqueued) * 1e3,
                queue_ms=(started - pending.enqueued) * 1e3,
                batch_size=k,
                batch_occupancy=occupancy,
                cache_hit=hit,
                backend=result.backend,
                backend_time_ms=time_share,
                signature=group.signature,
                stats={"time_kind": result.stats.get("time_kind"),
                       "executed_on": executed_on,
                       "trace": pending.request.trace},
            ))
        demux_done = time.perf_counter()
        if tr.enabled:
            tr.record("demux", perf_to_us(done),
                      (demux_done - done) * 1e6,
                      traces=[p.request.trace for p in live_batch
                              if p.request.trace], k=k)
        group.controller.observe_batch(occupancy)
        with self._telemetry_lock:
            self._batches.inc()
            self._completed.inc(k)
            self._occupancies.observe(occupancy)
            self._last_done = done
            group.batches += 1
            group.completed += k
            group.occupancies.observe(occupancy)
            group.batch_sizes[k] = group.batch_sizes.get(k, 0) + 1
            for pending in live_batch:
                latency = (done - pending.enqueued) * 1e3
                queued = (started - pending.enqueued) * 1e3
                self._latencies_ms.observe(latency)
                self._queue_ms.observe(queued)
                group.latencies_ms.observe(latency)
                group.queue_ms.observe(queued)

    # -------------------------------------------------------------- telemetry
    def dump_trace(self, path: str) -> int:
        """Export recorded spans as Chrome trace-event JSON.

        The file loads in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``; spans shipped back from worker processes
        and hosts appear as their own process tracks, joined to the
        coordinator's by the per-request ``trace`` arg.  Returns the
        number of spans written.  Requires ``FheServer(trace=True)``.
        """
        return tracer().dump(path)

    def metrics_snapshot(self) -> dict:
        """The fleet-wide merged metrics blob: this server's registry,
        the process-global registry (kernel timers, in-process executor
        timings), and the latest blob from every worker process/host."""
        blobs = getattr(self.executor, "metrics_blobs", lambda: [])()
        return merge_snapshots(self.metrics.snapshot(),
                               global_metrics().snapshot(), *blobs)

    def stats(self) -> dict:
        """Aggregate serving telemetry since construction.

        Every distribution here is computed from the mergeable metrics
        registry (``repro.obs.metrics``): the server's own histograms
        merged with the latest piggybacked blob from every worker
        process and host, so p50/p99 stay correct under multi-process
        and multi-host serving.  The full merged blob is under
        ``"metrics"``; ``"execute_ms"`` is the fleet-wide executor-tier
        run time (recorded wherever the batch actually ran);
        ``"kernels"`` is the per-signature hot-kernel breakdown when
        kernel profiling (``REPRO_OBS_KERNELS=1``) is on.

        ``per_signature`` breaks the same occupancy/latency/queue numbers
        down by program signature, each with an exact batch-size
        histogram and the flush controller's current effective wait —
        the adaptive controller's inputs, exposed for dashboards.

        ``executor`` is the executor tier's own telemetry (see the README
        observability section for the schema): dispatch counters and, for
        the pool executors, per-worker/per-host breakdowns —
        ``inflight_per_replica`` on a process pool, and per-host
        ``inflight``/``dispatched``/``reconnects``/``latency_ms`` rows on
        a remote pool.  ``dispatch_ms`` is the server-side wall time of
        ``executor.execute`` per batch — what the executor tier (pipe or
        socket round-trips included) adds on top of the FHE math.
        """
        with self._groups_lock:
            groups = list(self._groups.values())
        merged = self.metrics_snapshot()

        def _summary(name: str) -> dict:
            state = merged.get(name)
            return (summarize_state(state) if state is not None
                    else {"p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
                          "count": 0})

        with self._telemetry_lock:
            completed = self._completed.value
            batches = self._batches.value
            span = ((self._last_done - self._first_submit)
                    if self._last_done and self._first_submit else 0.0)
            out = {
                "requests": completed,
                "batches": batches,
                "errors": self._errors.value,
                "expired": self._expired.value,
                "failed": self._failed.value,
                "shed": self._shed.value,
                "degraded": self._degraded,
                "degradations": self._degradations.value,
                "requests_per_s": completed / span if span > 0 else 0.0,
                "mean_batch_size": (completed / batches if batches else 0.0),
                "mean_occupancy": self._occupancies.mean,
                "latency_ms": _summary("serve.latency_ms"),
                "queue_ms": _summary("serve.queue_ms"),
                "dispatch_ms": _summary("serve.dispatch_ms"),
                "execute_ms": _summary("serve.execute_ms"),
                "per_signature": {
                    g.signature: {
                        "program": g.program.name,
                        "requests": g.completed,
                        "batches": g.batches,
                        "capacity": g.capacity,
                        "batchable": g.batcher is not None,
                        "mean_occupancy": g.occupancies.mean,
                        "latency_ms": g.latencies_ms.summary(),
                        "queue_ms": g.queue_ms.summary(),
                        "batch_size_histogram": dict(sorted(
                            g.batch_sizes.items()
                        )),
                        "effective_wait_ms":
                            g.controller.effective_wait_s() * 1e3,
                    }
                    for g in groups if g.completed
                },
            }
        out["metrics"] = merged
        out["kernels"] = kernel_breakdown(merged)
        out["registry"] = self.registry.stats()
        out["executor"] = self.executor.stats()
        return out
