"""FheServer: a multi-worker FHE job server with slot-level batching.

The serving loop the ROADMAP's "heavy traffic" north star needs, built on
the PR 2 backend API plus the registry/batcher of this package:

1. ``submit(program, inputs, plains)`` returns a
   :class:`concurrent.futures.Future` immediately; admission is bounded
   (``queue_depth``), so overload applies backpressure instead of growing
   without limit.
2. Requests are bucketed by ``Program.signature()``.  A bucket flushes
   when it reaches the batch capacity (``max_batch`` clamped to the slot
   layout's) or when its oldest request has waited ``max_wait_ms`` — the
   classic size-or-deadline policy, so tail latency is bounded even at
   low traffic.
3. Worker threads execute flushed batches: compile/keygen artifacts come
   from the shared :class:`~repro.serve.registry.ProgramRegistry` (so only
   the first request of a signature pays setup), values are packed by the
   bucket's :class:`~repro.serve.batcher.SlotBatcher`, the program runs
   *once* per batch, and per-request outputs are demultiplexed into each
   request's :class:`RequestResult`.
4. Programs a batcher cannot pack (rotations, BGV ct x ct MUL) still
   serve correctly in batches of one — batching is an optimization, never
   a semantic restriction.

Every result carries latency, queue time, batch size/occupancy, and
whether setup artifacts were cache hits; :meth:`FheServer.stats`
aggregates p50/p99 latency, requests/s, mean occupancy, and registry hit
rates.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.backends import (
    F1Backend,
    FunctionalBackend,
    ReferenceBackend,
    RunResult,
    program_width,
    resolve_backend,
    validate_run_args,
)
from repro.dsl.program import Program
from repro.serve.batcher import BatchUnsupported, Request, SlotBatcher
from repro.serve.registry import ProgramRegistry

#: most-recent samples kept for p50/p99/occupancy telemetry; counters
#: (requests, batches, errors) stay exact regardless.
TELEMETRY_WINDOW = 4096


@dataclass
class RequestResult:
    """What serving one request produced, with per-request accounting."""

    values: dict[int, np.ndarray]
    latency_ms: float          # submit -> result, as observed by the client
    queue_ms: float            # submit -> batch execution start
    batch_size: int
    batch_occupancy: float     # batch_size / slot capacity of the layout
    cache_hit: bool            # compile/keygen artifacts came from the registry
    backend: str
    backend_time_ms: float | None   # backend time amortized over the batch
    signature: str
    stats: dict = field(default_factory=dict)


@dataclass
class _Pending:
    request: Request
    future: Future
    enqueued: float


class _Group:
    """All state for one program signature: batcher, bucket, registry entry."""

    def __init__(self, program: Program, signature: str, width: int,
                 max_batch: int | None):
        self.program = program
        self.signature = signature
        self.width = width
        try:
            self.batcher: SlotBatcher | None = SlotBatcher(
                program, width=width, max_batch=max_batch
            )
            self.capacity = self.batcher.capacity
        except BatchUnsupported:
            self.batcher = None
            self.capacity = 1
        self.pending: list[_Pending] = []
        #: shared MUL_PLAIN operands of the *current* bucket; re-established
        #: whenever the bucket empties, so weights may change between
        #: batches but never diverge within one.
        self.shared_plains: dict[int, np.ndarray] | None = None
        self.lock = threading.Lock()


class FheServer:
    """Batched, multi-worker serving of DSL programs on any backend.

    ``backend`` is a name or instance as in ``repro.run``; the string
    ``"functional"`` constructs a non-validating backend (validation
    re-executes the program on the plaintext reference — a test-time
    check, not a serving-time one; pass an instance to override).  An
    injected :class:`FunctionalBackend`'s scheme/params/ks settings are
    honored when building cached contexts; ``seed`` (the server's, not
    the backend's) seeds each signature's cached encryption keys.
    """

    def __init__(self, backend="functional", *,
                 registry: ProgramRegistry | None = None, workers: int = 2,
                 max_batch: int | None = None, max_wait_ms: float = 10.0,
                 queue_depth: int = 128, seed: int = 0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if isinstance(backend, str) and backend == "functional":
            self.backend = FunctionalBackend(validate=False)
        else:
            self.backend = resolve_backend(backend)
        self.registry = registry if registry is not None else ProgramRegistry()
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.seed = seed
        self._admission = threading.BoundedSemaphore(queue_depth)
        self._groups: dict[str, _Group] = {}
        self._groups_lock = threading.Lock()
        self._jobs: list[tuple[_Group, list[_Pending]]] = []
        self._jobs_ready = threading.Condition()
        self._closed = False   # admission gate (set first during close)
        self._stop = False     # worker/flusher shutdown
        self._telemetry_lock = threading.Lock()
        # Bounded windows: counters stay exact for the server's lifetime,
        # percentiles/occupancy reflect the most recent traffic.
        self._latencies_ms: deque[float] = deque(maxlen=TELEMETRY_WINDOW)
        self._queue_ms: deque[float] = deque(maxlen=TELEMETRY_WINDOW)
        self._occupancies: deque[float] = deque(maxlen=TELEMETRY_WINDOW)
        self._completed = 0
        self._batches = 0
        self._errors = 0
        self._first_submit: float | None = None
        self._last_done: float | None = None
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"fhe-worker-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="fhe-flusher", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------ client API
    def submit(self, program: Program, inputs=None, plains=None, *,
               width: int | None = None) -> Future:
        """Enqueue one request; returns a Future[RequestResult].

        ``width`` fixes the per-request vector length for this program's
        slot layout; it defaults to the longest vector in the first
        request (later requests must fit the established layout).  Blocks
        when ``queue_depth`` requests are already in flight.

        Admission is strict for batchable programs: vectors must fit the
        group's layout and (on value-executing backends) every INPUT op
        needs a value — rejected here, synchronously, so one malformed
        request can never fail the innocent requests it would have been
        batched with.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        request = Request(inputs=dict(inputs or {}), plains=dict(plains or {}))
        validate_run_args(program, request.inputs or None,
                          request.plains or None)
        group = self._group_for(program, request, width)
        shared = None
        if group.batcher is not None:
            group.batcher.check_request(
                request, require_inputs=self._executes_values()
            )
            shared = group.batcher.shared_plain_values(request)
        future: Future = Future()
        self._admission.acquire()
        now = time.perf_counter()
        with self._telemetry_lock:
            if self._first_submit is None:
                self._first_submit = now
        ready = None
        try:
            with group.lock:
                if self._closed:
                    # close() set the flag before its final flush; anything
                    # appended now would be stranded, so refuse instead.
                    raise RuntimeError("server is closed")
                if shared:
                    if not group.pending:
                        group.shared_plains = shared
                    else:
                        self._check_shared(group, shared)
                group.pending.append(_Pending(request, future, now))
                if len(group.pending) >= group.capacity:
                    ready = group.pending
                    group.pending = []
        except Exception:
            self._admission.release()
            raise
        if ready is not None:
            self._dispatch(group, ready)
        return future

    def request(self, program: Program, inputs=None, plains=None, *,
                width: int | None = None) -> RequestResult:
        """Synchronous convenience: submit and wait."""
        return self.submit(program, inputs, plains, width=width).result()

    def flush(self) -> None:
        """Dispatch every pending bucket now, regardless of age or size."""
        with self._groups_lock:
            groups = list(self._groups.values())
        for group in groups:
            with group.lock:
                ready, group.pending = group.pending, []
            if ready:
                self._dispatch(group, ready)

    def close(self) -> None:
        """Flush, drain, and stop the worker/flusher threads."""
        with self._groups_lock:
            if self._closed:
                return
            self._closed = True
        # _closed is set before this flush, so a racing submit either got
        # its request into a bucket we are about to drain or observes the
        # flag under the group lock and raises — no future is stranded.
        self.flush()
        with self._jobs_ready:
            self._stop = True
            self._jobs_ready.notify_all()
        for thread in self._workers:
            thread.join()
        self._flusher.join()

    def __enter__(self) -> "FheServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _executes_values(self) -> bool:
        """Whether the backend encrypts/evaluates request values (as opposed
        to the analytic models, which only need the op graph)."""
        return isinstance(self.backend, (FunctionalBackend, ReferenceBackend))

    @staticmethod
    def _check_shared(group: _Group, shared: dict[int, np.ndarray]) -> None:
        """Reject a request whose shared weights diverge from its bucket."""
        for op_id, values in shared.items():
            want = group.shared_plains.get(op_id)
            if want is None or (values.shape == want.shape
                                and np.array_equal(values, want)):
                continue
            raise BatchUnsupported(
                f"plain input {op_id} feeds a BGV MUL_PLAIN and must match "
                f"the weights of the batch currently forming; resubmit "
                f"after the bucket flushes or align the weights"
            )

    def _group_for(self, program: Program, request: Request,
                   width: int | None) -> _Group:
        signature = program.signature()
        with self._groups_lock:
            group = self._groups.get(signature)
            if group is None:
                if width is None:
                    lengths = [np.asarray(v).shape[0]
                               for v in request.inputs.values()]
                    width = max(lengths, default=program_width(program))
                group = _Group(program, signature, width, self.max_batch)
                self._groups[signature] = group
            return group

    def _dispatch(self, group: _Group, batch: list[_Pending]) -> None:
        with self._jobs_ready:
            self._jobs.append((group, batch))
            self._jobs_ready.notify()

    def _flusher_loop(self) -> None:
        tick = min(max(self.max_wait_ms / 4.0, 0.5), 50.0) / 1e3
        while True:
            with self._jobs_ready:
                if self._stop:
                    return
            deadline = time.perf_counter() - self.max_wait_ms / 1e3
            with self._groups_lock:
                groups = list(self._groups.values())
            for group in groups:
                ready = None
                with group.lock:
                    if group.pending and group.pending[0].enqueued <= deadline:
                        ready, group.pending = group.pending, []
                if ready:
                    self._dispatch(group, ready)
            time.sleep(tick)

    def _worker_loop(self) -> None:
        while True:
            with self._jobs_ready:
                while not self._jobs and not self._stop:
                    self._jobs_ready.wait()
                if not self._jobs and self._stop:
                    return
                group, batch = self._jobs.pop(0)
            try:
                self._execute(group, batch)
            except Exception as exc:  # noqa: BLE001 — delivered to futures
                with self._telemetry_lock:
                    self._errors += len(batch)
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            finally:
                for _ in batch:
                    self._admission.release()

    def _run_batch(self, group: _Group,
                   batch: list[_Pending]) -> tuple[list[dict], RunResult, bool]:
        """Execute one batch; returns per-request outputs + cache hit flag."""
        program = group.program
        requests = [p.request for p in batch]
        if isinstance(self.backend, FunctionalBackend):
            entry, hit = self.registry.context_for(
                program, scheme=self.backend.scheme,
                prime_bits=self.backend.prime_bits,
                plaintext_modulus=self.backend.plaintext_modulus,
                seed=self.seed, ks_variant=self.backend.ks_variant,
                params=self.backend.params,
            )
            with entry.lock:
                if group.batcher is not None:
                    outputs, result = group.batcher.run(
                        requests, self.backend, context=entry.context
                    )
                else:
                    outputs, result = self._run_singly(
                        program, requests, context=entry.context
                    )
            return outputs, result, hit
        if isinstance(self.backend, F1Backend):
            entry, hit = self.registry.compiled_for(
                program, self.backend.config,
                scheduler=self.backend.scheduler,
                ks_choice=self.backend.ks_choice, check=self.backend.check,
            )
            result = self.backend.run(program, compiled=entry.compiled)
            k = len(batch)
            outputs = (group.batcher.unpack(result.outputs, k)
                       if group.batcher is not None else [{} for _ in batch])
            return outputs, result, hit
        if not self._executes_values():
            # Analytic models (cpu, heax): one run models the whole batch;
            # there are no values to pack and no outputs to demux.
            result = self.backend.run(program)
            return [{} for _ in batch], result, False
        # Reference backend: packs and executes values, no cacheable setup.
        if group.batcher is not None:
            outputs, result = group.batcher.run(requests, self.backend)
        else:
            outputs, result = self._run_singly(program, requests)
        return outputs, result, False

    def _run_singly(self, program: Program, requests: list[Request],
                    **run_kw) -> tuple[list[dict], RunResult]:
        """Fallback for unbatchable programs: one backend run per request."""
        outputs = []
        result: RunResult | None = None
        for req in requests:
            result = self.backend.run(
                program, inputs=req.inputs or None, plains=req.plains or None,
                **run_kw,
            )
            outputs.append(result.outputs)
        return outputs, result

    def _execute(self, group: _Group, batch: list[_Pending]) -> None:
        # Claim every future up front: one that a client already cancelled
        # is simply skipped, and can no longer flip to cancelled while we
        # deliver results below.
        live = [p.future.set_running_or_notify_cancel() for p in batch]
        started = time.perf_counter()
        outputs, result, hit = self._run_batch(group, batch)
        done = time.perf_counter()
        k = len(batch)
        batched = group.batcher is not None
        occupancy = group.batcher.occupancy(k) if batched else 1.0
        time_share = (result.time_ms / k
                      if result.time_ms is not None and batched else result.time_ms)
        for pending, values, alive in zip(batch, outputs, live):
            if not alive:
                continue
            pending.future.set_result(RequestResult(
                values=values,
                latency_ms=(done - pending.enqueued) * 1e3,
                queue_ms=(started - pending.enqueued) * 1e3,
                batch_size=k,
                batch_occupancy=occupancy,
                cache_hit=hit,
                backend=result.backend,
                backend_time_ms=time_share,
                signature=group.signature,
                stats={"time_kind": result.stats.get("time_kind")},
            ))
        with self._telemetry_lock:
            self._batches += 1
            self._completed += k
            self._occupancies.append(occupancy)
            self._last_done = done
            for pending in batch:
                self._latencies_ms.append((done - pending.enqueued) * 1e3)
                self._queue_ms.append((started - pending.enqueued) * 1e3)

    # -------------------------------------------------------------- telemetry
    def stats(self) -> dict:
        """Aggregate serving telemetry since construction."""
        with self._telemetry_lock:
            latencies = np.asarray(self._latencies_ms)
            queue = np.asarray(self._queue_ms)
            span = ((self._last_done - self._first_submit)
                    if self._last_done and self._first_submit else 0.0)
            out = {
                "requests": self._completed,
                "batches": self._batches,
                "errors": self._errors,
                "requests_per_s": self._completed / span if span > 0 else 0.0,
                "mean_batch_size": (self._completed / self._batches
                                    if self._batches else 0.0),
                "mean_occupancy": (float(np.mean(self._occupancies))
                                   if self._occupancies else 0.0),
                "latency_ms": _percentiles(latencies),
                "queue_ms": _percentiles(queue),
            }
        out["registry"] = self.registry.stats()
        return out


def _percentiles(values: np.ndarray) -> dict:
    if values.size == 0:
        return {"p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "p50": float(np.percentile(values, 50)),
        "p99": float(np.percentile(values, 99)),
        "mean": float(np.mean(values)),
        "max": float(np.max(values)),
    }
