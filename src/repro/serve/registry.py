"""Program registry: compile-once / keygen-once caching for repeat traffic.

F1 is a server-class accelerator: the same handful of programs (an
inference network, a database lookup circuit) is executed over and over
for different clients.  Before this layer every ``repro.run`` call paid
the full setup cost again — parameter generation, secret-key and
key-switch-hint generation for the functional path, the three-phase
compile plus schedule check for the accelerator model.  The registry
amortizes all of it:

- artifacts are keyed by ``(Program.signature(), parameter fingerprint)``
  — the *structural* identity of the computation, so clients that rebuild
  an identical program each request still hit the cache;
- :meth:`ProgramRegistry.context_for` caches the
  :class:`~repro.fhe.context.FheContext` (keys + hints + params) the
  functional backend needs;
- :meth:`ProgramRegistry.compiled_for` caches the checked
  :class:`~repro.compiler.pipeline.CompiledProgram` the F1 backend needs.

Both are thread-safe with per-key build locks, so concurrent workers
racing on a cold entry perform exactly one keygen/compile.  Execution
serialization is *not* this layer's concern: a cached context is shared
mutable state (one RNG, one hint cache), and whichever
:class:`~repro.serve.executor.Executor` runs batches decides how to keep
that safe — :class:`~repro.serve.executor.ThreadExecutor` holds one
execution lock per entry, while
:class:`~repro.serve.executor.ProcessExecutor` gives each worker process
its own context replica and needs no lock at all.

**Cross-process convergence rule**: registry entries for the same
``(signature, params)`` must converge even when worker *processes* are
involved.  Keygen happens exactly once, in the parent registry; worker
replicas are restored from the parent entry's serialized keys
(``context.to_state()`` ships the secret-key coefficients), so every
replica decrypts identically — there is no silent per-worker keygen.
Workers regenerate *hints* locally with fresh randomness, which is
semantically irrelevant: hints re-encrypt the same secret, so decrypted
values stay bit-identical (BGV) / tolerance-equal (CKKS) across
replicas.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.backends import params_for_program
from repro.obs.metrics import MetricsRegistry
from repro.compiler.pipeline import CompiledProgram, compile_program
from repro.serve.batcher import level_alignment_plan
from repro.core.config import F1Config
from repro.dsl.program import Program
from repro.fhe.bgv import BgvContext
from repro.fhe.ckks import CkksContext
from repro.fhe.context import FheContext
from repro.fhe.params import FheParams
from repro.sim.simulator import check_schedule


@dataclass
class ContextEntry:
    """A cached functional-execution artifact: params + keys + hints.

    Entries carry no execution lock — serializing access to the shared
    context (or avoiding the sharing entirely, via per-process replicas)
    is the executor's job, not the cache's.
    """

    signature: str
    scheme: str
    params: FheParams
    context: FheContext
    hits: int = 0
    # Lazily cached cross-level batching envelope for this (signature,
    # params) pair; see ProgramRegistry.level_plan_for.
    level_plan: dict | None = None


@dataclass
class CompiledEntry:
    """A cached accelerator artifact: the checked static schedule."""

    signature: str
    compiled: CompiledProgram
    checked: bool
    hits: int = 0


class ProgramRegistry:
    """Caches per-(signature, params) execution artifacts across requests.

    ``context_for`` / ``compiled_for`` return ``(entry, cache_hit)`` so
    callers (the serving layer) can report hit rates per request.
    """

    def __init__(self):
        self._guard = threading.Lock()
        self._building: dict[tuple, threading.Lock] = {}
        self._contexts: dict[tuple, ContextEntry] = {}
        self._compiled: dict[tuple, CompiledEntry] = {}
        # Hit/miss counters live in a mergeable obs registry so the
        # registry reports through the same schema as every other layer.
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter("registry.hits")
        self._misses = self.metrics.counter("registry.misses")

    # ------------------------------------------------------------- internals
    def _build_lock(self, key: tuple) -> threading.Lock:
        with self._guard:
            return self._building.setdefault(key, threading.Lock())

    def _lookup(self, cache: dict, key: tuple):
        with self._guard:
            entry = cache.get(key)
            if entry is not None:
                entry.hits += 1
                self._hits.inc()
            return entry

    # ------------------------------------------------------------ functional
    def context_for(self, program: Program, *, scheme: str | None = None,
                    prime_bits: int = 28, plaintext_modulus: int | None = None,
                    seed: int = 0, ks_variant: int | None = None,
                    params: FheParams | None = None,
                    ) -> tuple[ContextEntry, bool]:
        """The cached (or freshly keygenned) FheContext for this program.

        The parameter fingerprint mirrors what a fresh
        :class:`~repro.backends.FunctionalBackend` would build, so cached
        and uncached runs decrypt identical values.  An explicit ``params``
        overrides the derived set and becomes part of the cache key.
        """
        scheme = scheme or ("ckks" if program.scheme == "ckks" else "bgv")
        key = ("ctx", program.signature(), scheme, prime_bits,
               plaintext_modulus, seed, ks_variant, params)
        entry = self._lookup(self._contexts, key)
        if entry is not None:
            return entry, True
        with self._build_lock(key):
            # Double-checked: a racing worker may have built it meanwhile.
            entry = self._lookup(self._contexts, key)
            if entry is not None:
                return entry, True
            if params is None:
                params = params_for_program(
                    program, scheme, prime_bits=prime_bits,
                    plaintext_modulus=plaintext_modulus,
                )
            if scheme == "ckks":
                kw = {"ks_variant": ks_variant} if ks_variant else {}
                context: FheContext = CkksContext(params, seed=seed, **kw)
            else:
                context = BgvContext(params, seed=seed,
                                     ks_variant=ks_variant or 1)
            entry = ContextEntry(
                signature=program.signature(), scheme=scheme,
                params=params, context=context,
            )
            with self._guard:
                self._contexts[key] = entry
                self._misses.inc()
            return entry, False

    def level_plan_for(self, program: Program, entry: ContextEntry) -> dict:
        """The level-alignment plan for this (signature, params) entry.

        Computed once per entry and cached on it, so admission-time level
        validation for repeat traffic is a dict lookup, not a graph walk.
        The plan also records how many limbs the entry's params actually
        provide, which bounds how deep an arrival the context can serve.
        """
        plan = entry.level_plan
        if plan is None:
            plan = dict(level_alignment_plan(program))
            plan["params_level"] = entry.params.level
            with self._guard:
                if entry.level_plan is None:
                    entry.level_plan = plan
                plan = entry.level_plan
        return plan

    # ----------------------------------------------------------- accelerator
    def compiled_for(self, program: Program, config: F1Config | None = None,
                     *, scheduler: str = "f1", ks_choice=None,
                     check: bool = True) -> tuple[CompiledEntry, bool]:
        """The cached (or freshly compiled + checked) F1 schedule."""
        config = config or F1Config()
        key = ("f1", program.signature(), config, scheduler, ks_choice)
        entry = self._lookup(self._compiled, key)
        if entry is not None:
            self._ensure_checked(entry, check, key)
            return entry, True
        with self._build_lock(key):
            entry = self._lookup(self._compiled, key)
            if entry is not None:
                self._ensure_checked(entry, check, key)
                return entry, True
            compiled = compile_program(
                program, config, scheduler=scheduler, ks_choice=ks_choice,
            )
            if check:
                check_schedule(
                    compiled.translation.graph, compiled.movement,
                    compiled.schedule,
                ).raise_if_failed()
            entry = CompiledEntry(
                signature=program.signature(), compiled=compiled, checked=check,
            )
            with self._guard:
                self._compiled[key] = entry
                self._misses.inc()
            return entry, False

    def _ensure_checked(self, entry: CompiledEntry, check: bool,
                        key: tuple) -> None:
        """Upgrade a cache hit built with check=False when a caller now
        requires a validated schedule — check once, never re-compile."""
        if not check or entry.checked:
            return
        with self._build_lock(("check",) + key):
            if entry.checked:
                return
            compiled = entry.compiled
            check_schedule(
                compiled.translation.graph, compiled.movement,
                compiled.schedule,
            ).raise_if_failed()
            entry.checked = True

    # -------------------------------------------------------------- telemetry
    def stats(self) -> dict:
        with self._guard:
            hits, misses = self._hits.value, self._misses.value
            total = hits + misses
            return {
                "entries": len(self._contexts) + len(self._compiled),
                "contexts": len(self._contexts),
                "compiled": len(self._compiled),
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total if total else 0.0,
            }
