"""Executor layer: where flushed batches actually run.

F1 gets its throughput from many independent compute clusters operating on
decoupled ciphertext state; the software serving analogue is a pool of
*worker processes*, each holding its own replica of the per-signature FHE
context.  This module names that seam: :class:`FheServer` hands every
flushed batch to an :class:`Executor`, and two implementations exist:

- :class:`ThreadExecutor` — in-process execution.  Because a
  :class:`~repro.fhe.context.FheContext` is shared mutable state (RNG,
  hint caches), it serializes batches per context with an execution lock.
  This is the pre-executor behavior, now an implementation detail of this
  class rather than of the registry.
- :class:`repro.net.remote.RemoteExecutor` (the network tier) — the same
  seam stretched over the framed socket transport: registry entries
  replicate into :mod:`repro.net.worker` hosts instead of forked
  processes, sharded by consistent hash of ``(signature, params)``.
- :class:`ProcessExecutor` — warms N worker processes and *replicates* a
  registry entry's context into each worker exactly once, from its
  serialized keys (``context.to_state()``: params + secret coefficients +
  RNG state; derived caches — NTT twiddles, Shoup quotients, key-switch
  hints — are rebuilt worker-side, never shipped).  After replication,
  batches are sharded across replicas with **no cross-request lock**: each
  replica owns its context copy outright, so same-signature traffic runs
  in true parallel on multi-core hosts.

Replication correctness: every replica is restored from the parent's
serialized secret key — workers never keygen — so decrypted outputs are
bit-identical (BGV) / tolerance-equal (CKKS) to the parent's, regardless
of which replica served a request.  Each replica's RNG is reseeded with
fresh entropy at replication time (identical encryption-randomness
streams across replicas would leak plaintext differences), and
regenerated hints likewise draw fresh worker randomness — both are
semantically irrelevant, since ciphertext randomness never affects
decrypted values.  ``Request.seed`` travels inside the job payload, so
``repro.run(..., seed=)`` determinism holds across process boundaries:
the seed rides with the request, not with whichever process runs it.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.backends import (
    F1Backend,
    FunctionalBackend,
    ReferenceBackend,
    RunResult,
)
from repro.dsl.program import Program
from repro.obs import profile as _obs_profile
from repro.obs.metrics import global_metrics
from repro.obs.trace import tracer
from repro.serve.batcher import Request, SlotBatcher, solo_layout
from repro.serve.registry import CompiledEntry, ContextEntry


@dataclass
class BatchJob:
    """One flushed batch, with every artifact its execution needs.

    The server performs the registry lookups (keygen/compile paid once, in
    the parent) and attaches the entries here; executors decide where and
    how the batch runs.
    """

    program: Program
    signature: str
    requests: list[Request]
    batcher: SlotBatcher | None
    backend: object
    context_entry: ContextEntry | None = None
    compiled_entry: CompiledEntry | None = None
    #: earliest absolute request deadline in the batch (perf_counter
    #: seconds), or None.  Executors with a retry path derive their
    #: per-batch execute watchdog and backoff budget from it.
    deadline: float | None = None


@runtime_checkable
class Executor(Protocol):
    """Where a :class:`BatchJob` runs: in-process threads or a process pool."""

    name: str

    def execute(self, job: BatchJob) -> tuple[list[dict], RunResult]:
        """Run one batch; returns (per-request outputs, the RunResult)."""
        ...

    def stats(self) -> dict: ...

    def close(self) -> None: ...


def executes_values(backend) -> bool:
    """Whether the backend encrypts/evaluates request values (as opposed to
    the analytic models, which only need the op graph)."""
    return isinstance(backend, (FunctionalBackend, ReferenceBackend))


def pick_least_inflight(candidates, *, tiebreak=None):
    """The shared routing rule for replica/host pools: least in-flight
    work first, ties broken by ``tiebreak`` (fewest total dispatches by
    default, so an idle pool round-robins instead of pinning one member).

    Used by :class:`ProcessExecutor` across its worker replicas and by
    :class:`repro.net.remote.RemoteExecutor` along its consistent-hash
    ring walk (there the tiebreak is ring order, so an idle cluster keeps
    one signature's traffic on its stable primary host).
    """
    if tiebreak is None:
        tiebreak = lambda c: c.dispatched  # noqa: E731 — tiny default
    return min(candidates, key=lambda c: (c.inflight, tiebreak(c)))


def _run_singly(program: Program, requests: list[Request], backend,
                **run_kw) -> tuple[list[dict], RunResult]:
    """Fallback for unbatchable programs: one backend run per request.

    Each request's own ``seed`` is threaded through, so seeded runs stay
    deterministic wherever (and in whichever process) they execute.  A
    request that arrived below the program's input level gets a
    one-request :func:`~repro.serve.batcher.solo_layout`, so its whole
    run executes that many limbs lower — the same lowering a real batch
    would apply.
    """
    outputs = []
    result: RunResult | None = None
    tr = tracer()
    for req in requests:
        kw = run_kw
        if req.level is not None:
            kw = {**run_kw, "batch_layout": solo_layout(program, req.level)}
        trace = getattr(req, "trace", None)
        with tr.span("execute", traces=[trace] if trace else [], solo=True):
            result = backend.run(
                program, inputs=req.inputs or None, plains=req.plains or None,
                seed=req.seed, **kw,
            )
        outputs.append(result.outputs)
    return outputs, result


#: guards lazy creation of per-context execution locks (see _context_lock)
_context_lock_guard = threading.Lock()


def _context_lock(context) -> threading.RLock:
    """The process-wide execution lock for one context instance.

    Stored on the context object itself so that *every* ThreadExecutor in
    the process — e.g. two servers sharing one registry — serializes on
    the same lock, and so the lock's lifetime matches the context's
    (``to_state()`` never ships it; a restored context starts unlocked).
    """
    lock = getattr(context, "_exec_lock", None)
    if lock is None:
        with _context_lock_guard:
            lock = getattr(context, "_exec_lock", None)
            if lock is None:
                lock = threading.RLock()
                context._exec_lock = lock
    return lock


class ThreadExecutor:
    """Runs batches on the calling worker thread.

    Shared-context safety lives here: a cached
    :class:`~repro.fhe.context.FheContext` is not thread-safe (one RNG, one
    hint cache), so batches hold that context's process-wide execution
    lock (attached to the context object, shared by every executor that
    touches it) for their duration.  Distinct signatures still proceed in
    parallel; same-signature batches serialize — the limitation
    :class:`ProcessExecutor` removes.
    """

    name = "thread"

    def __init__(self):
        self._guard = threading.Lock()
        self._dispatched = 0

    def execute(self, job: BatchJob) -> tuple[list[dict], RunResult]:
        with self._guard:
            self._dispatched += 1
        # Attribute kernel timers to this signature and record the
        # executor-tier execute time into the process-global registry —
        # in a pool replica or worker host this is the local registry
        # whose snapshot ships upstream, so fleet-wide execute_ms merges.
        t0 = time.perf_counter()
        with _obs_profile.attributed(job.signature):
            outputs, result = self._dispatch(job)
        global_metrics().histogram("serve.execute_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        if isinstance(result.stats, dict):
            result.stats.setdefault(
                "executed_on", {"executor": self.name, "pid": os.getpid()}
            )
        return outputs, result

    def _dispatch(self, job: BatchJob) -> tuple[list[dict], RunResult]:
        backend = job.backend
        if isinstance(backend, FunctionalBackend) and job.context_entry is not None:
            entry = job.context_entry
            with _context_lock(entry.context):
                if job.batcher is not None:
                    return job.batcher.run(
                        job.requests, backend, context=entry.context
                    )
                return _run_singly(
                    job.program, job.requests, backend, context=entry.context
                )
        if isinstance(backend, F1Backend) and job.compiled_entry is not None:
            result = backend.run(job.program, compiled=job.compiled_entry.compiled)
            outputs = (job.batcher.unpack(result.outputs, len(job.requests))
                       if job.batcher is not None
                       else [{} for _ in job.requests])
            return outputs, result
        if not executes_values(backend):
            # Analytic models (cpu, heax): one run models the whole batch;
            # there are no values to pack and no outputs to demux.
            result = backend.run(job.program)
            return [{} for _ in job.requests], result
        # Reference backend: packs and executes values, no cacheable setup.
        if job.batcher is not None:
            return job.batcher.run(job.requests, backend)
        return _run_singly(job.program, job.requests, backend)

    def stats(self) -> dict:
        with self._guard:
            return {"executor": self.name, "dispatched": self._dispatched}

    def metrics_blobs(self) -> list[dict]:
        """Remote metrics snapshots to merge (none: we run in-process,
        so our timings are already in the caller's global registry)."""
        return []

    def close(self) -> None:
        pass


# --------------------------------------------------------------- process pool
def _worker_main(conn) -> None:
    """Worker-process loop: replicate contexts once, then run batches.

    Contexts arrive as compact serialized state and are cached by key;
    programs are cached by signature.  Twiddle/Shoup/hint caches populate
    lazily in this process as batches execute.
    """
    from repro.fhe.context import context_from_state

    contexts: dict[int, object] = {}
    programs: dict[str, Program] = {}
    backends: dict[int, object] = {}
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        op = msg["op"]
        if op == "exit":
            return
        try:
            if op == "context":
                ctx = context_from_state(msg["state"])
                if msg.get("reseed") is not None:
                    # Replicas must not share the parent's randomness
                    # stream: identical (a, e) draws across replicas would
                    # leak plaintext differences.  Fresh per-replica
                    # entropy replaces the restored RNG; the secret key —
                    # the part that must converge — is untouched.
                    import numpy as np

                    ctx.rng = np.random.default_rng(
                        np.random.SeedSequence(msg["reseed"])
                    )
                contexts[msg["key"]] = ctx
                conn.send({"ok": True})
            elif op == "program":
                programs[msg["key"]] = msg["program"]
                conn.send({"ok": True})
            elif op == "backend":
                backends[msg["key"]] = msg["backend"]
                conn.send({"ok": True})
            elif op == "drop_context":
                contexts.pop(msg["key"], None)
                conn.send({"ok": True})
            elif op == "drop_backend":
                backends.pop(msg["key"], None)
                conn.send({"ok": True})
            elif op == "probe":
                ctx = contexts[msg["key"]]
                conn.send({
                    "ok": True,
                    "pid": os.getpid(),
                    "secret_sha": hashlib.sha256(
                        ctx.secret.coeffs.tobytes()
                    ).hexdigest(),
                    "moduli": ctx.params.basis.moduli,
                    # Diagnostic draw (advances this replica's stream):
                    # lets tests verify replicas were reseeded apart.
                    "rng_fingerprint": ctx.rng.integers(
                        0, 2**63, 4
                    ).tolist(),
                })
            elif op == "run":
                ctx = contexts[msg["key"]]
                program = programs[msg["program_key"]]
                backend = backends[msg["backend_key"]]
                # Traced batches capture this replica's spans and ship
                # them back on the reply; every reply piggybacks the
                # replica's metrics snapshot so the parent's percentiles
                # cover worker-side time.
                tr = tracer()
                if msg["mode"] == "batched":
                    traces = msg.get("traces") or []
                    cap = tr.capture() if traces else nullcontext([])
                    with _obs_profile.attributed(msg["program_key"]), \
                            cap as spans:
                        t0 = time.perf_counter()
                        with tr.span("execute", traces=traces):
                            result = backend.run(
                                program, inputs=msg["inputs"],
                                plains=msg["plains"], context=ctx,
                                batch_layout=msg.get("layout"),
                            )
                        global_metrics().histogram(
                            "serve.execute_ms"
                        ).observe((time.perf_counter() - t0) * 1e3)
                    conn.send({"ok": True, "result": result,
                               "pid": os.getpid(), "spans": spans,
                               "metrics": global_metrics().snapshot()})
                else:
                    requests = [Request(inputs=i, plains=p, seed=s,
                                        level=lv, trace=t)
                                for i, p, s, lv, t in msg["requests"]]
                    traced = any(r.trace for r in requests)
                    cap = tr.capture() if traced else nullcontext([])
                    with _obs_profile.attributed(msg["program_key"]), \
                            cap as spans:
                        t0 = time.perf_counter()
                        outputs, result = _run_singly(
                            program, requests, backend, context=ctx
                        )
                        global_metrics().histogram(
                            "serve.execute_ms"
                        ).observe((time.perf_counter() - t0) * 1e3)
                    conn.send({"ok": True, "result": result,
                               "outputs": outputs, "pid": os.getpid(),
                               "spans": spans,
                               "metrics": global_metrics().snapshot()})
            else:
                conn.send({"ok": False,
                           "error": f"unknown op {op!r}", "traceback": ""})
        except BaseException as exc:  # noqa: BLE001 — reported to the parent
            conn.send({
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            })


class _Replica:
    """Parent-side handle for one worker process: pipe + replication sets."""

    def __init__(self, mp_ctx, index: int):
        parent_conn, child_conn = mp_ctx.Pipe()
        self.conn = parent_conn
        #: serializes the request/response exchange on this replica's pipe
        self.lock = threading.Lock()
        self.index = index
        self.contexts: set[int] = set()
        self.programs: set[str] = set()
        self.backends: set[int] = set()
        self.inflight = 0
        self.dispatched = 0
        self.dead = False
        #: latest metrics snapshot piggybacked on a run reply (cumulative
        #: per worker process, so latest-wins is the correct fold)
        self.metrics: dict | None = None
        self.process = mp_ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"fhe-executor-{index}", daemon=True,
        )
        self.process.start()
        child_conn.close()

    def call(self, msg: dict) -> dict:
        """One request/response exchange (caller must hold ``lock``).

        A broken pipe (worker crashed or was killed) marks this replica
        dead so the dispatcher routes around it and revives a successor.
        """
        try:
            self.conn.send(msg)
            reply = self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            self.dead = True
            raise RuntimeError(
                f"executor worker {self.index} died (pipe closed); "
                f"the batch fails and the replica will be respawned"
            ) from None
        if not reply.get("ok"):
            raise RuntimeError(
                f"executor worker failed: {reply.get('error')}\n"
                f"{reply.get('traceback', '')}"
            )
        return reply


class ProcessExecutor:
    """Runs functional batches on a pool of warmed worker processes.

    ``processes`` worker replicas are forked at construction (create the
    executor *before* starting server threads).  The first batch of each
    ``(signature, params)`` replicates the registry entry's context into
    the chosen worker from its serialized keys — amortized exactly like
    the registry's keygen — and later batches of that signature shard
    across replicas by least-in-flight.  There is no per-context execution
    lock: each replica owns its context replica outright.

    Backends that do not execute encrypted values (f1/cpu/heax models, the
    plaintext reference) have no per-process state worth replicating and
    fall back to an inner :class:`ThreadExecutor`.
    """

    name = "process"

    def __init__(self, processes: int = 2, *, start_method: str | None = None):
        if processes < 1:
            raise ValueError("processes must be >= 1")
        import multiprocessing as mp

        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else None)
        mp_ctx = mp.get_context(start_method)
        self._mp_ctx = mp_ctx
        self.processes = processes
        self._fallback = ThreadExecutor()
        self._guard = threading.Lock()
        # id(entry) -> (replication key, strong reference).  The reference
        # pins the entry alive until release() or close(), so a freed
        # entry's id can never be reused by a different entry and silently
        # resolve to the wrong worker-side context.
        self._ctx_keys: dict[int, tuple[int, ContextEntry]] = {}
        self._ctx_counter = itertools.count()
        # Same id-pinning scheme for backends: shipped to a worker once,
        # then referenced by key on every run message (a context-bound
        # backend would otherwise re-serialize its context per batch).
        self._backend_keys: dict[int, tuple[int, object]] = {}
        self._backend_counter = itertools.count()
        self._closed = False
        self._replicas = [_Replica(mp_ctx, i) for i in range(processes)]

    # ------------------------------------------------------------- internals
    def _ctx_key(self, entry: ContextEntry) -> int:
        with self._guard:
            known = self._ctx_keys.get(id(entry))
            if known is None:
                known = (next(self._ctx_counter), entry)
                self._ctx_keys[id(entry)] = known
            return known[0]

    def _backend_key(self, backend) -> int:
        with self._guard:
            known = self._backend_keys.get(id(backend))
            if known is None:
                known = (next(self._backend_counter), backend)
                self._backend_keys[id(backend)] = known
            return known[0]

    def _pick(self) -> _Replica:
        with self._guard:
            if self._closed:
                raise RuntimeError("executor is closed")
            self._revive_dead_locked()
            # Least in-flight first; ties (an idle pool) break by fewest
            # total dispatches, so sequential traffic round-robins instead
            # of pinning one replica.
            replica = pick_least_inflight(self._replicas)
            replica.inflight += 1
            replica.dispatched += 1
            return replica

    def _revive_dead_locked(self) -> None:
        """Replace crashed workers with fresh ones (caller holds _guard).

        A replacement starts with empty replication sets, so the next
        batch routed to it re-ships context/program/backend state —
        self-healing at the cost of one re-replication.
        """
        for i, replica in enumerate(self._replicas):
            if replica.dead:
                if replica.process.is_alive():
                    replica.process.terminate()
                self._replicas[i] = _Replica(self._mp_ctx, replica.index)

    def _release(self, replica: _Replica) -> None:
        with self._guard:
            replica.inflight -= 1

    @staticmethod
    def _replicate_context(replica: _Replica, entry: ContextEntry,
                           key: int) -> None:
        """Ship one entry's serialized state to this replica (caller holds
        the replica lock).  Each replica's RNG is reseeded with fresh OS
        entropy so no two replicas (or the parent) ever draw the same
        encryption randomness; the secret key still converges."""
        import numpy as np

        replica.call({
            "op": "context", "key": key,
            "state": entry.context.to_state(),
            "reseed": np.random.SeedSequence().entropy,
        })
        replica.contexts.add(key)

    def _ensure_replicated(self, replica: _Replica, job: BatchJob,
                           key: int, backend_key: int) -> int:
        """Ship context/program/backend state to this replica once (caller
        holds the replica lock); returns the authoritative context key."""
        entry = job.context_entry
        with self._guard:
            # A concurrent release() may have unpinned the entry between
            # key capture and this point; re-pin (keeping any newer key)
            # so whatever we ship below stays reachable — and therefore
            # evictable — from the parent map.
            known = self._ctx_keys.setdefault(id(entry), (key, entry))
        key = known[0]
        if key not in replica.contexts:
            self._replicate_context(replica, entry, key)
        if job.signature not in replica.programs:
            replica.call({
                "op": "program", "key": job.signature,
                "program": job.program,
            })
            replica.programs.add(job.signature)
        if backend_key not in replica.backends:
            replica.call({
                "op": "backend", "key": backend_key,
                "backend": job.backend,
            })
            replica.backends.add(backend_key)
        return key

    # ---------------------------------------------------------------- public
    def execute(self, job: BatchJob) -> tuple[list[dict], RunResult]:
        backend = job.backend
        if not isinstance(backend, FunctionalBackend) or job.context_entry is None:
            return self._fallback.execute(job)
        key = self._ctx_key(job.context_entry)
        backend_key = self._backend_key(backend)
        tr = tracer()
        traces = [r.trace for r in job.requests if getattr(r, "trace", None)]
        replica = self._pick()
        try:
            with replica.lock:
                key = self._ensure_replicated(replica, job, key, backend_key)
                if job.batcher is not None:
                    with tr.span("pack", traces=traces, k=len(job.requests)):
                        inputs, plains = job.batcher.pack(job.requests)
                        layout = job.batcher.layout(job.requests)
                    # The layout (levels, rotation masking) is computed
                    # parent-side with the packing and travels with the
                    # run message — it is a small frozen dataclass.
                    reply = replica.call({
                        "op": "run", "mode": "batched", "key": key,
                        "program_key": job.signature,
                        "backend_key": backend_key,
                        "inputs": inputs, "plains": plains,
                        "layout": layout, "traces": traces,
                    })
                    result = self._absorb(replica, reply)
                    with tr.span("unpack", traces=traces):
                        outputs = job.batcher.unpack(
                            result.outputs, len(job.requests)
                        )
                    return outputs, result
                reply = replica.call({
                    "op": "run", "mode": "singly", "key": key,
                    "program_key": job.signature,
                    "backend_key": backend_key,
                    "requests": [(r.inputs, r.plains, r.seed, r.level,
                                  getattr(r, "trace", None))
                                 for r in job.requests],
                })
                return reply["outputs"], self._absorb(replica, reply)
        finally:
            self._release(replica)

    def _absorb(self, replica: _Replica, reply: dict) -> RunResult:
        """Fold a run reply's observability payload into the parent:
        ingest worker spans, keep the replica's latest metrics blob, and
        stamp execution attribution onto the result."""
        tracer().ingest(reply.get("spans"))
        if reply.get("metrics") is not None:
            replica.metrics = reply["metrics"]
        result = reply["result"]
        if isinstance(result.stats, dict):
            result.stats["executed_on"] = {
                "executor": self.name,
                "replica": replica.index,
                "pid": reply.get("pid"),
            }
        return result

    def release(self, entry: ContextEntry) -> None:
        """Drop a replicated entry: unpin it in the parent and evict its
        replica from every worker.

        Replication pins each entry (and its growing hint caches) for the
        pool's lifetime — the right default for steady traffic, but a
        long-lived pool cycling through many ``(signature, params)``
        combinations should release entries it has retired, or memory
        grows without bound on both sides of the pipe.  Releasing an
        entry that was never replicated is a no-op; a later batch for it
        simply replicates again.  Backends follow the same pinning scheme
        (a context-bound backend can be as heavy as an entry) — retire
        one with :meth:`release_backend`.
        """
        with self._guard:
            known = self._ctx_keys.pop(id(entry), None)
        if known is None:
            return
        key = known[0]
        for replica in self._replicas:
            with replica.lock:
                if key in replica.contexts:
                    replica.call({"op": "drop_context", "key": key})
                    replica.contexts.discard(key)

    def release_backend(self, backend) -> None:
        """Drop a shipped backend: unpin it in the parent and evict it
        from every worker (see :meth:`release`)."""
        with self._guard:
            known = self._backend_keys.pop(id(backend), None)
        if known is None:
            return
        key = known[0]
        for replica in self._replicas:
            with replica.lock:
                if key in replica.backends:
                    replica.call({"op": "drop_backend", "key": key})
                    replica.backends.discard(key)

    def probe(self, entry: ContextEntry) -> list[dict]:
        """Replicate ``entry`` everywhere and report each replica's view.

        Diagnostic/test hook for the replication invariant: every replica
        must hold the parent's secret (same ``secret_sha``) in a distinct
        process (different ``pid``) — workers never keygen on their own.
        """
        key = self._ctx_key(entry)
        out = []
        for replica in self._replicas:
            with replica.lock:
                if key not in replica.contexts:
                    self._replicate_context(replica, entry, key)
                out.append(replica.call({"op": "probe", "key": key}))
        return out

    def stats(self) -> dict:
        with self._guard:
            return {
                "executor": self.name,
                "processes": self.processes,
                "dispatched": sum(r.dispatched for r in self._replicas),
                "dispatched_per_replica": [r.dispatched
                                           for r in self._replicas],
                "inflight_per_replica": [r.inflight
                                         for r in self._replicas],
                "replicated_contexts": [len(r.contexts)
                                        for r in self._replicas],
                "fallback": self._fallback.stats(),
            }

    def metrics_blobs(self) -> list[dict]:
        """Latest metrics snapshot from each replica (cumulative per
        worker process), for the server to merge into its registry."""
        with self._guard:
            return [r.metrics for r in self._replicas if r.metrics]

    def close(self) -> None:
        with self._guard:
            if self._closed:
                return
            self._closed = True
        for replica in self._replicas:
            with replica.lock:
                try:
                    replica.conn.send({"op": "exit"})
                except (BrokenPipeError, OSError):
                    pass
                replica.conn.close()
        for replica in self._replicas:
            replica.process.join(timeout=5)
            if replica.process.is_alive():
                replica.process.terminate()
        with self._guard:
            self._ctx_keys.clear()
            self._backend_keys.clear()
        self._fallback.close()

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def resolve_executor(executor) -> Executor:
    """Accept an Executor instance or a name: ``"thread"``, ``"process"``,
    or ``"remote"``.

    ``"remote"`` spawns a local 2-host worker cluster
    (:func:`repro.net.cluster.remote_executor`) and fronts it with a
    :class:`~repro.net.remote.RemoteExecutor` that owns it — the sharded
    network tier, working out of the box; pass a RemoteExecutor instance
    to front real remote hosts instead.
    """
    if isinstance(executor, str):
        if executor == "thread":
            return ThreadExecutor()
        if executor == "process":
            return ProcessExecutor()
        if executor == "remote":
            from repro.net.cluster import remote_executor

            return remote_executor()
        raise ValueError(
            f"unknown executor {executor!r}; choose 'thread', 'process', "
            f"'remote', or pass an Executor instance"
        )
    if isinstance(executor, Executor):
        return executor
    raise TypeError(f"not an executor: {executor!r}")


def process_smoke(processes: int = 2, *, verbose: bool = True) -> int:
    """Tiny end-to-end exercise of the fork path, for CI gating.

    Builds a context in the parent, replicates it into ``processes``
    workers, checks the replication invariant (same secret, distinct
    pids), and verifies a process-executed batch is bit-identical to the
    thread-executed one.  Returns 0 on success (suitable as an exit code).
    """
    import numpy as np

    from repro.dsl.program import Program
    from repro.serve.registry import ProgramRegistry

    program = Program(n=128, scheme="bgv", name="process_smoke")
    x = program.input(2, name="x")
    w = program.input_plain(2, name="w")
    program.output(program.mul_plain(x, w))
    registry = ProgramRegistry()
    entry, _ = registry.context_for(program, seed=11)
    batcher = SlotBatcher(program, width=4)
    rng = np.random.default_rng(0)
    shared_w = rng.integers(0, 256, 4)
    requests = [Request(inputs={x.op_id: rng.integers(0, 256, 4)},
                        plains={w.op_id: shared_w}) for _ in range(4)]
    backend = FunctionalBackend(validate=False)
    job = BatchJob(program=program, signature=program.signature(),
                   requests=requests, batcher=batcher, backend=backend,
                   context_entry=entry)
    with ProcessExecutor(processes) as executor:
        probes = executor.probe(entry)
        shas = {p["secret_sha"] for p in probes}
        pids = {p["pid"] for p in probes}
        if len(shas) != 1 or len(pids) != processes:
            if verbose:
                print(f"process smoke FAILED: replicas diverged "
                      f"(secrets={len(shas)}, pids={len(pids)})")
            return 1
        proc_outputs, _ = executor.execute(job)
    thread_outputs, _ = ThreadExecutor().execute(job)
    for got, want in zip(proc_outputs, thread_outputs):
        for out_id in want:
            if not np.array_equal(got[out_id], want[out_id]):
                if verbose:
                    print("process smoke FAILED: outputs diverged")
                return 1
    if verbose:
        print(f"process smoke OK: {processes} replicas, shared secret, "
              f"batched outputs bit-identical to in-process execution")
    return 0
