"""Slot-level request batching: many clients, one ciphertext.

The paper's economics (Sec. 2.3): an F1-scale ciphertext carries tens of
thousands of coefficients/slots, and every homomorphic op pays for all of
them whether they hold useful data or not.  A single client request that
uses a width-``w`` vector leaves the other ``N - w`` lanes idle.  The
:class:`SlotBatcher` reclaims them by packing ``k`` independent requests
for the *same program* into disjoint lanes of one set of input vectors,
running the program once, and demultiplexing per-request output blocks —
k requests for one request's price.

Packing is only sound when every program op acts lane-wise on the packed
layout, which depends on the scheme's plaintext semantics (defined by
:mod:`repro.sim.reference`):

- **CKKS** values live in N/2 canonical-embedding slots and *every* DSL op
  except ROTATE is slot-wise (including ct x ct MUL) — so any
  rotation-free CKKS program batches, with per-request plains tiled into
  each block.  A ROTATE is *also* batchable when every step is
  non-negative: the packed ciphertext is rotated once globally, then a
  0/1 plaintext mask zeroes the lanes that received a neighbor block's
  values — exactly the lanes a solo run's zero padding would leave empty,
  since leftward rotation keeps each request's data inside its own block.
  Negative steps move data *rightwards* past the block edge (where solo
  runs keep it and a mask would destroy it), so they stay unbatchable.
- **BGV** values are coefficient vectors; ADD/SUB/ADD_PLAIN/MOD_SWITCH are
  coefficient-wise, but MUL/MUL_PLAIN are negacyclic convolutions.  A
  ct x ct MUL mixes blocks irrecoverably (cross terms land on diagonal
  offsets), so programs containing one do not batch.  MUL_PLAIN *does*
  batch when the plain operand is shared by every request (the usual case
  — model weights): convolution is shift-equivariant, so
  ``(x << j*S) * p == (x * p) << j*S`` as long as blocks are spaced widely
  enough that products never spill into the next block.  The stride
  therefore grows by ``plain_width - 1`` per MUL_PLAIN *on the deepest
  dependency chain* (parallel branches overlay the same lanes), and
  ADD_PLAIN plains are tiled per request while MUL_PLAIN plains stay
  shared and untiled.

:class:`SlotBatcher` checks these rules at construction
(:func:`unbatchable_reason`), computes the layout (stride, capacity), and
exposes ``pack`` / ``unpack`` / ``run``.  Under-filled batches are first
class: ``occupancy(k) = k / capacity`` is reported per batch so serving
telemetry makes wasted lanes visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends import resolve_backend
from repro.dsl.program import OpKind, Program
from repro.obs.trace import tracer
from repro.poly import parallel


class BatchUnsupported(ValueError):
    """This program cannot be slot-batched; serve it one request at a time."""


@dataclass
class Request:
    """One client request: values for the program's INPUT/INPUT_PLAIN ops.

    ``seed`` pins per-request randomness (generated default inputs) for
    runs served one at a time; it travels *with the request* through
    whatever executor/process ends up running it, so seeded runs are
    deterministic across process boundaries.

    ``level`` is the request's arrival depth: the number of RNS limbs its
    fresh inputs carry, at most the program's declared input level
    (``None`` means "at the program's level", the common case).  Requests
    at different levels still share a batch: packing mod-switches every
    cohort down to the shallowest request's waterline before the program
    runs (see :func:`level_alignment_plan`).

    ``trace`` is the observability join key (``repro.obs``): minted by
    the server at submit when tracing is on, it travels with the request
    through executor pipes and the wire so every span recorded for this
    request — in any process — lands on one stitched timeline.
    """

    inputs: dict[int, np.ndarray] = field(default_factory=dict)
    plains: dict[int, np.ndarray] = field(default_factory=dict)
    seed: int | None = None
    level: int | None = None
    trace: str | None = None


@dataclass(frozen=True)
class BatchLayout:
    """How a specific batch maps onto the packed ciphertext.

    Produced by :meth:`SlotBatcher.layout` and handed to value backends as
    the ``batch_layout`` run argument; it is ``None`` (and omitted) for
    the plain uniform case, so single-request and rotation-free
    uniform-level runs execute exactly as before.  The dataclass is frozen
    and holds only primitives, so it pickles across the process-pool
    executor boundary unchanged.

    ``levels[j]`` is request j's arrival level; ``base_level`` the
    program's declared input level.  ``masked_rotations`` tells the
    interpreter to follow every ROTATE with the 0/1 block-edge mask
    (CKKS-only; always False when the program has no rotations).
    """

    scheme: str
    width: int
    stride: int
    count: int
    base_level: int
    levels: tuple[int, ...]
    masked_rotations: bool


#: The envelope assumes the repo's default 28-bit limbs: ``Delta`` (the
#: CKKS encoding scale) is one limb wide and rotation masks cost half a
#: limb (``mul_mask`` encodes at ``2^14 ~ sqrt(Delta)``).
_LIMB_BITS = 28
_MASK_BITS = _LIMB_BITS // 2
#: Headroom reserved above the accumulated scale for the plaintext value
#: and noise: the phase ``scale * v`` must stay under Q/2 at every op, so
#: batched CKKS values are assumed to stay below ~2^5 in magnitude.
_VALUE_MARGIN_BITS = 6
#: Scale-mismatch adds amplify both sides by up to 2^20 so the fixup
#: constant keeps enough bits (see FunctionalSim._matched_ckks).
_AMP_BITS = 20


def _added_scale(s0, s1):
    """Scale state after a CKKS add: ``(delta_exp, pow2_bits, exact)``.

    Scales are exactly ``Delta^a * 2^m`` until a rescale divides by a
    prime limb.  Equal Delta-exponents give an exact power-of-two ratio,
    which `_matched_ckks` fixes up with no amplification; anything else
    may amplify both addends by up to ``2^_AMP_BITS`` unless the ratio is
    already wide enough to encode accurately.
    """
    a0, m0, e0 = s0
    a1, m1, e1 = s1
    if e0 and e1 and a0 == a1:
        return (a0, max(m0, m1), True)
    b0 = _LIMB_BITS * a0 + m0
    b1 = _LIMB_BITS * a1 + m1
    big = s0 if b0 >= b1 else s1
    if abs(b0 - b1) >= _AMP_BITS:
        return big
    return (big[0], big[1] + _AMP_BITS, False)


def _ckks_min_level(program: Program, base: int) -> int:
    """Deepest arrival level at which every op's phase still fits Q.

    Walks the op graph tracking each ciphertext's scale as
    ``Delta^a * 2^m`` (plus an exactness flag that survives everything but
    rescaling).  An op shifted ``delta`` levels down keeps its value iff
    its modulus still dominates its phase:
    ``_LIMB_BITS * (op.level - delta) >= scale_bits + _VALUE_MARGIN_BITS``.
    The batch may shift only as deep as the *tightest* op allows.
    """
    state: dict[int, tuple[int, int, bool]] = {}
    max_delta = base - 1
    for op in program.ops:
        kind = op.kind
        if kind is OpKind.INPUT:
            s = (1, 0, True)
        elif kind is OpKind.INPUT_PLAIN:
            continue
        elif kind in (OpKind.ADD, OpKind.SUB):
            s = _added_scale(state[op.args[0]], state[op.args[1]])
        elif kind is OpKind.MUL:
            a0, m0, e0 = state[op.args[0]]
            a1, m1, e1 = state[op.args[1]]
            s = (a0 + a1, m0 + m1, e0 and e1)
        elif kind is OpKind.MUL_PLAIN:
            a, m, e = state[op.args[0]]
            s = (a + 1, m, e)
        elif kind is OpKind.ROTATE:
            # Batched CKKS rotations are always masked (rotate-then-mask).
            a, m, e = state[op.args[0]]
            s = (a, m + _MASK_BITS, e)
        elif kind is OpKind.MOD_SWITCH:
            # Mirrors FunctionalSim._level_drop: rescale (divide by one
            # prime limb) only while the result keeps >= sqrt(Delta) of
            # scale, else the value-preserving mod-down.
            a, m, e = state[op.args[0]]
            if _LIMB_BITS * a + m - _LIMB_BITS >= _MASK_BITS:
                s = (a - 1, m, False)
            else:
                s = (a, m, e)
        else:  # ADD_PLAIN keeps the ct scale; OUTPUT inherits its arg.
            s = state[op.args[0]]
        state[op.op_id] = s
        a, m, _ = s
        need = -(-(_LIMB_BITS * a + m + _VALUE_MARGIN_BITS) // _LIMB_BITS)
        max_delta = min(max_delta, op.level - need)
    return base - max(0, max_delta)


def level_alignment_plan(program: Program) -> dict:
    """The per-program cross-level batching envelope.

    ``base_level`` is the program's declared input depth (what a
    ``level=None`` request means); ``min_level`` the deepest arrival level
    a request may have while every op still keeps enough limbs after the
    whole graph is shifted down by the request's deficit.  Shifting is
    sound because BGV modulus switching preserves the plaintext exactly
    and CKKS ``mod_switch`` preserves value and scale, so a program run
    ``delta`` levels lower computes the same function.

    BGV only needs one limb everywhere (the plaintext lives mod t,
    independent of Q).  CKKS is bounded by *scale headroom*: the phase is
    ``scale * v`` with the scale compounding through every multiplicative
    op (one limb per MUL_PLAIN, half a limb per rotation mask), and once
    it crowds the shifted modulus the values wrap and decrypt to noise —
    :func:`_ckks_min_level` walks the graph to find the deepest safe
    shift.
    """
    input_levels = [op.level for op in program.ops if op.kind is OpKind.INPUT]
    base = max(input_levels, default=1)
    if program.scheme == "ckks":
        min_level = _ckks_min_level(program, base)
    else:
        min_op = min((op.level for op in program.ops), default=1)
        min_level = max(1, base - (min_op - 1))
    return {
        "base_level": base,
        "min_level": min(base, min_level),
        "input_levels": tuple(input_levels),
    }


def check_request_level(plan: dict, level: int) -> None:
    """Admission-time validation of a request's arrival level."""
    lo, hi = plan["min_level"], plan["base_level"]
    if not lo <= level <= hi:
        raise ValueError(
            f"request level {level} outside this program's batchable range "
            f"[{lo}, {hi}] (inputs at level {hi}; deeper arrivals would "
            f"drop some op below one limb)"
        )


def solo_layout(program: Program, level: int) -> BatchLayout:
    """A one-request layout: run the whole program ``base - level`` limbs
    lower, with the request owning every lane.

    This is how unbatchable programs (and batches of one) honor a
    request's arrival level — same INPUT lowering as a real batch, no
    packing and no rotation masks.
    """
    plan = level_alignment_plan(program)
    check_request_level(plan, level)
    lanes = program.n // 2 if program.scheme == "ckks" else program.n
    return BatchLayout(
        scheme="ckks" if program.scheme == "ckks" else "bgv",
        width=lanes, stride=lanes, count=1,
        base_level=plan["base_level"], levels=(level,),
        masked_rotations=False,
    )


def _coerce(request) -> Request:
    if isinstance(request, Request):
        return request
    if isinstance(request, tuple) and len(request) == 2:
        return Request(inputs=request[0] or {}, plains=request[1] or {})
    raise TypeError(f"not a request: {request!r} (want Request or (inputs, plains))")


def unbatchable_reason(program: Program) -> str | None:
    """Why this program cannot be slot-batched, or None if it can.

    CKKS ROTATE batches when every step is non-negative (lowered to
    rotate-then-mask; see the module docstring) — negative steps push
    request data rightwards across its block edge, where the mask that
    keeps neighbor blocks out would also destroy the request's own values.
    BGV ROTATE is a coefficient automorphism (index map ``i -> i*3^s``)
    that scatters lanes across the whole ring, so it never batches.  For
    BGV (coefficient semantics) ct x ct MUL is a full negacyclic
    convolution whose cross-request terms cannot be separated; and a plain
    input that feeds both a MUL_PLAIN (must stay shared/untiled) and an
    ADD_PLAIN (must be tiled per request) has no consistent packing.
    """
    kinds = {op.kind for op in program.ops}
    if OpKind.ROTATE in kinds:
        if program.scheme != "ckks":
            return ("BGV ROTATE is a coefficient automorphism that scatters "
                    "values across the whole ring")
        if any(op.rotate_steps < 0 for op in program.ops
               if op.kind is OpKind.ROTATE):
            return ("CKKS ROTATE with negative steps pushes request values "
                    "across their block edge where the batch mask would "
                    "destroy them")
    if program.scheme != "ckks":
        if OpKind.MUL in kinds:
            return ("BGV ct x ct MUL is a negacyclic convolution that mixes "
                    "request blocks")
        for op in program.ops:
            if op.kind is not OpKind.INPUT_PLAIN:
                continue
            consumers = {program.ops[u].kind for u in op.users}
            if OpKind.MUL_PLAIN in consumers and OpKind.ADD_PLAIN in consumers:
                return (f"plain input {op.op_id} feeds both MUL_PLAIN "
                        f"(needs a shared operand) and ADD_PLAIN (needs a "
                        f"tiled one)")
    return None


class SlotBatcher:
    """Packs k same-signature requests into one program invocation.

    ``width`` is the per-request vector length every request must respect.
    For BGV, ``plain_width`` (default ``width``) bounds each shared
    MUL_PLAIN operand; the inter-request stride grows by
    ``plain_width - 1`` per MUL_PLAIN on the deepest dependency chain so
    convolution products never cross block boundaries.  ``capacity`` is
    how many requests one ciphertext carries at this layout.
    """

    def __init__(self, program: Program, *, width: int,
                 plain_width: int | None = None, max_batch: int | None = None):
        reason = unbatchable_reason(program)
        if reason is not None:
            raise BatchUnsupported(
                f"program {program.name!r} cannot be slot-batched: {reason}"
            )
        if width < 1:
            raise ValueError("width must be >= 1")
        self.program = program
        self.scheme = "ckks" if program.scheme == "ckks" else "bgv"
        self.width = width
        self.plain_width = width if plain_width is None else plain_width
        self._lanes = program.n // 2 if self.scheme == "ckks" else program.n
        # BGV convolution growth is a per-value property: each MUL_PLAIN on
        # a value's dependency path widens it by plain_width - 1.  The
        # stride only needs to contain the *widest* value the program ever
        # holds (the deepest MUL_PLAIN chain), not one growth per MUL_PLAIN
        # op in the program — parallel branches share the same lanes.  The
        # same per-op growth numbers give each OUTPUT its own demux width,
        # so multi-output programs demux each output at its exact extent.
        self._growth = self._convolution_growth(program)
        max_growth = max(self._growth, default=0)
        if self.scheme == "ckks":
            self.stride = width
        else:
            self.stride = width + max_growth * (self.plain_width - 1)
        self.rotation_steps = tuple(sorted({
            op.rotate_steps for op in program.ops
            if op.kind is OpKind.ROTATE and op.rotate_steps
        }))
        # Rotate-then-mask keeps blocks separate only while no rotation
        # wraps the *last* block's data around to lane 0 (np.roll / slot
        # rotation is cyclic); every interior block edge is handled by the
        # mask, the ring edge is not.
        if self.rotation_steps:
            max_step = max(self.rotation_steps)
            if self.stride + max_step > self._lanes:
                raise BatchUnsupported(
                    f"rotation by {max_step} wraps the last request block "
                    f"around the ring edge (stride {self.stride}, "
                    f"{self._lanes} lanes); shrink width or the ring"
                )
        self.level_plan = level_alignment_plan(program)
        self.output_widths: dict[int, int] = {
            op.op_id: (width if self.scheme == "ckks"
                       else width + self._growth[op.op_id]
                       * (self.plain_width - 1))
            for op in program.ops if op.kind is OpKind.OUTPUT
        }
        capacity = self._lanes // self.stride
        if capacity < 1:
            raise BatchUnsupported(
                f"stride {self.stride} exceeds the {self._lanes} available "
                f"lanes at N={program.n}; shrink width or grow the ring"
            )
        self.capacity = capacity if max_batch is None else min(capacity, max_batch)
        # Plain ops whose operand stays shared/untiled (BGV MUL_PLAIN).
        self._shared_plains = {
            op.op_id
            for op in program.ops
            if op.kind is OpKind.INPUT_PLAIN and self.scheme != "ckks"
            and any(program.ops[u].kind is OpKind.MUL_PLAIN for u in op.users)
        }
        self._input_ids = [
            op.op_id for op in program.ops if op.kind is OpKind.INPUT
        ]
        self._plain_ids = [
            op.op_id for op in program.ops if op.kind is OpKind.INPUT_PLAIN
        ]

    # ---------------------------------------------------------------- layout
    @staticmethod
    def _convolution_growth(program: Program) -> list[int]:
        """Per-op count of MUL_PLAIN ops on the deepest dependency path.

        Growth propagates as the max over arguments (parallel branches
        overlay the same lanes; chained multiplies accumulate), plus one
        for the op itself when it is a MUL_PLAIN.
        """
        growth = [0] * len(program.ops)
        for op in program.ops:
            g = max((growth[a] for a in op.args), default=0)
            if op.kind is OpKind.MUL_PLAIN:
                g += 1
            growth[op.op_id] = g
        return growth

    def occupancy(self, k: int) -> float:
        return k / self.capacity

    def check_request(self, request, *, require_inputs: bool = True) -> None:
        """Validate one request against this layout without packing.

        Used at admission time so a malformed request is rejected on its
        own ``submit`` call instead of poisoning the batch it would have
        joined.  With ``require_inputs`` every INPUT op must carry a value
        (batched serving cannot generate per-request defaults).
        """
        request = _coerce(request)
        if request.level is not None:
            check_request_level(self.level_plan, request.level)
        if require_inputs:
            missing = [op_id for op_id in self._input_ids
                       if op_id not in request.inputs]
            if missing:
                raise ValueError(
                    f"request is missing values for INPUT ops {missing}; "
                    f"batched serving needs every encrypted input supplied"
                )
        for op_id, values in request.inputs.items():
            self._checked(values, self.width, f"input {op_id}")
        for op_id, values in request.plains.items():
            limit = (self.plain_width if op_id in self._shared_plains
                     else self.width)
            self._checked(values, limit, f"plain {op_id}")

    def shared_plain_values(self, request) -> dict[int, np.ndarray]:
        """This request's MUL_PLAIN operands, normalized (missing -> [1]).

        The serving layer compares these across a bucket at admission time
        so a request with divergent shared weights is rejected on its own
        submit instead of failing the batch it would have joined.
        """
        request = _coerce(request)
        return {
            op_id: np.asarray(request.plains.get(op_id, np.ones(1))).reshape(-1)
            for op_id in self._shared_plains
        }

    def _dtype(self):
        return np.complex128 if self.scheme == "ckks" else np.int64

    def _checked(self, values, limit: int, what: str) -> np.ndarray:
        arr = np.asarray(values).reshape(-1)
        if arr.shape[0] > limit:
            raise ValueError(
                f"{what} has {arr.shape[0]} values; the batch layout allows "
                f"at most {limit}"
            )
        return arr

    # ------------------------------------------------------------- pack/unpack
    def pack(self, requests) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
        """k requests -> one (inputs, plains) pair for ``repro.run``.

        Request j occupies lanes ``[j*stride, j*stride + width)``.  Missing
        plains default to ``[1]`` (per request), matching solo-run
        semantics; every INPUT op must be present in every request.

        Each packed vector is assembled on a C-contiguous ``(k, stride)``
        block buffer (one reshaped view of the flat lane array) instead of
        k strided writes, and independent ops fan across the
        :mod:`repro.poly.parallel` pool when ``REPRO_NUM_THREADS`` > 1 —
        the ops touch disjoint arrays, so threaded packing is bit-identical
        to the serial loop.
        """
        requests = [_coerce(r) for r in requests]
        k = len(requests)
        if not 1 <= k <= self.capacity:
            raise ValueError(
                f"batch of {k} requests outside [1, {self.capacity}] for "
                f"this layout"
            )
        dtype = self._dtype()
        # Pre-seeded keys keep dict iteration order independent of which
        # worker thread finishes first.
        inputs: dict[int, np.ndarray] = {op_id: None for op_id in self._input_ids}
        plains: dict[int, np.ndarray] = {op_id: None for op_id in self._plain_ids}

        def pack_input(op_id: int) -> None:
            vecs = []
            for j, req in enumerate(requests):
                if op_id not in req.inputs:
                    raise ValueError(
                        f"request {j} is missing a value for INPUT op {op_id}"
                    )
                vecs.append(self._checked(
                    req.inputs[op_id], self.width, f"request {j} input {op_id}"
                ))
            inputs[op_id] = self._pack_blocks(vecs, dtype)

        def pack_plain(op_id: int) -> None:
            if op_id in self._shared_plains:
                plains[op_id] = self._shared_plain(op_id, requests)
                return
            vecs = [
                self._checked(
                    req.plains.get(op_id, np.ones(1)), self.width,
                    f"request {j} plain {op_id}",
                )
                for j, req in enumerate(requests)
            ]
            plains[op_id] = self._pack_blocks(vecs, dtype)

        parallel.run_tasks(
            [(lambda op_id=op_id: pack_input(op_id))
             for op_id in self._input_ids]
            + [(lambda op_id=op_id: pack_plain(op_id))
               for op_id in self._plain_ids]
        )
        return inputs, plains

    def _pack_blocks(self, vecs: list[np.ndarray], dtype) -> np.ndarray:
        """Write per-request vectors into the block-diagonal lane layout.

        The first ``k*stride`` lanes are viewed as a C-contiguous
        ``(k, stride)`` matrix so equal-width batches (the common case)
        land in one stacked assignment with unit-stride rows; values and
        casts are exactly those of the old per-request strided writes.
        """
        k = len(vecs)
        packed = np.zeros(self._lanes, dtype=dtype)
        block = packed[: k * self.stride].reshape(k, self.stride)
        widths = {vec.shape[0] for vec in vecs}
        if len(widths) == 1 and len({vec.dtype for vec in vecs}) == 1:
            w = widths.pop()
            if w:
                block[:, :w] = vecs  # one C-level (k, w) gather + cast
        else:
            for j, vec in enumerate(vecs):
                block[j, : vec.shape[0]] = vec
        return packed

    def _shared_plain(self, op_id: int, requests: list[Request]) -> np.ndarray:
        """A MUL_PLAIN operand: identical across the batch, passed untiled."""
        first = self._checked(
            requests[0].plains.get(op_id, np.ones(1)), self.plain_width,
            f"shared plain {op_id}",
        )
        for j, req in enumerate(requests[1:], start=1):
            other = np.asarray(req.plains.get(op_id, np.ones(1))).reshape(-1)
            if other.shape != first.shape or not np.array_equal(other, first):
                raise BatchUnsupported(
                    f"plain input {op_id} feeds a BGV MUL_PLAIN and must be "
                    f"identical across the batch; request {j} differs"
                )
        return first

    def unpack(self, outputs: dict[int, np.ndarray], k: int) -> list[dict[int, np.ndarray]]:
        """One packed output dict -> k per-request output dicts.

        Each output is demuxed at its *own* width (``output_widths``):
        ``width`` plus that output's convolution growth for BGV, so a
        program with several OUTPUT handles of differing widths gives every
        request exactly the lanes a solo run would populate — block j of
        output o equals lanes ``[0, output_widths[o])`` of a solo run.

        Demuxing reshapes each packed output into a contiguous ``(k, w)``
        block matrix once (one gather instead of k strided slices);
        independent outputs fan across the :mod:`repro.poly.parallel` pool.
        """
        per_request: list[dict[int, np.ndarray]] = [
            {out_id: None for out_id in outputs} for _ in range(k)
        ]
        span = k * self.stride

        def demux(out_id: int, vec) -> None:
            arr = np.asarray(vec)
            w = self.output_widths.get(out_id, self.stride)
            if arr.ndim == 1 and arr.shape[0] >= span:
                block = np.ascontiguousarray(
                    arr[:span].reshape(k, self.stride)[:, :w]
                )
                for j in range(k):
                    per_request[j][out_id] = block[j].copy()
            else:  # ragged/short output: keep the strided slice semantics
                for j in range(k):
                    lo = j * self.stride
                    per_request[j][out_id] = arr[lo: lo + w].copy()

        parallel.run_tasks(
            [(lambda out_id=out_id, vec=vec: demux(out_id, vec))
             for out_id, vec in outputs.items()]
        )
        return per_request

    # ---------------------------------------------------------------- levels
    def layout(self, requests) -> BatchLayout | None:
        """The :class:`BatchLayout` this batch needs, or None for the plain
        uniform case (no rotations, every request at the program's level).

        Returning None keeps the default run path byte-for-byte what it
        was before cross-level/rotation batching existed.
        """
        requests = [_coerce(r) for r in requests]
        base = self.level_plan["base_level"]
        levels = []
        for req in requests:
            if req.level is not None:
                check_request_level(self.level_plan, req.level)
            levels.append(base if req.level is None else req.level)
        masked = bool(self.rotation_steps) and self.scheme == "ckks"
        if not masked and all(level == base for level in levels):
            return None
        return BatchLayout(
            scheme=self.scheme, width=self.width, stride=self.stride,
            count=len(requests), base_level=base, levels=tuple(levels),
            masked_rotations=masked,
        )

    # ------------------------------------------------------------------- run
    def run(self, requests, backend="functional", *, seed: int | None = None,
            **run_kw):
        """Pack, execute once on ``backend``, demux.

        Returns ``(per_request_outputs, run_result)`` — the second element
        is the underlying :class:`~repro.backends.RunResult` so callers can
        amortize its modeled/measured time over the batch.
        """
        requests = list(requests)
        tr = tracer()
        if not tr.active:
            inputs, plains = self.pack(requests)
            layout = self.layout(requests)
            if layout is not None:
                run_kw = {**run_kw, "batch_layout": layout}
            result = resolve_backend(backend).run(
                self.program, inputs=inputs, plains=plains, seed=seed, **run_kw
            )
            return self.unpack(result.outputs, len(requests)), result
        # Traced path: identical work, with pack/execute/unpack spans
        # carrying the batch's trace ids (runs coordinator-side under a
        # ThreadExecutor and worker-side under a remote host alike).
        traces = [r.trace for r in requests if getattr(r, "trace", None)]
        with tr.span("pack", traces=traces, k=len(requests)):
            inputs, plains = self.pack(requests)
            layout = self.layout(requests)
        if layout is not None:
            run_kw = {**run_kw, "batch_layout": layout}
        backend_label = backend if isinstance(backend, str) else type(backend).__name__
        with tr.span("execute", traces=traces, backend=backend_label):
            result = resolve_backend(backend).run(
                self.program, inputs=inputs, plains=plains, seed=seed, **run_kw
            )
        with tr.span("unpack", traces=traces):
            unpacked = self.unpack(result.outputs, len(requests))
        return unpacked, result
