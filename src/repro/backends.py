"""Unified execution backends: one ``Program``, many substrates.

The paper's central claim is that a single logical HE program can be lowered
onto very different execution substrates with identical semantics — a CPU
baseline, the HEAX FPGA pipeline, or the F1 accelerator.  This module makes
that the shape of the top-level API: every backend consumes the same
:class:`~repro.dsl.program.Program` and returns a :class:`RunResult`.

- :class:`FunctionalBackend` — interprets the program op-by-op with *real*
  encryption (BGV or CKKS), decrypts the outputs, and cross-validates them
  against the plaintext reference evaluator;
- :class:`ReferenceBackend` — the plaintext reference evaluator itself
  (defines program semantics; no encryption);
- :class:`F1Backend` — the three-phase static-scheduling compiler plus the
  cycle-accurate schedule checker and performance/traffic statistics;
- :class:`CpuBackend` / :class:`HeaxBackend` — the calibrated analytic
  baseline models.

Entry point::

    import repro

    result = repro.run(program, backend="f1")          # or a Backend instance
    repro.run(program, backend=repro.FunctionalBackend("ckks"))

Every RunResult records the op/hint counts of the graph the backend
consumed, so functional-vs-compiled cross-checks are one dict comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.baselines.cpu import CpuModel
from repro.baselines.heax import HeaxModel
from repro.compiler.pipeline import CompiledProgram, compile_program
from repro.core.config import F1Config
from repro.dsl.program import KS_OPS, OpKind, Program
from repro.fhe.context import FheContext
from repro.fhe.params import FheParams
from repro.sim.functional import FunctionalSimulator
from repro.sim.reference import evaluate_reference
from repro.sim.simulator import check_schedule

#: default BGV plaintext modulus for generated parameter sets; a power of
#: two <= 2N keeps modulus switching free of plaintext-scale corrections.
DEFAULT_PLAINTEXT_MODULUS = 256

#: seed for generated default inputs when the caller passes none and no
#: explicit per-run seed; shared by every value-executing backend so the
#: same program gets the same generated data on each of them.
DEFAULT_INPUT_SEED = 1234


@dataclass
class RunResult:
    """What running a program on some backend produced.

    ``outputs`` holds per-OUTPUT-op decrypted (or reference) value vectors
    for backends that execute values; analytic/simulated backends leave it
    empty and report ``time_ms``.  ``op_counts`` / ``distinct_hints``
    describe the op graph the backend actually consumed, enabling
    cross-backend graph checks.  ``stats`` carries backend-specific detail.
    """

    backend: str
    program: str
    outputs: dict[int, np.ndarray] = field(default_factory=dict)
    time_ms: float | None = None
    op_counts: dict[str, int] = field(default_factory=dict)
    distinct_hints: int = 0
    stats: dict = field(default_factory=dict)

    def output_list(self) -> list[np.ndarray]:
        """Outputs in program order (most programs have exactly one)."""
        return [self.outputs[k] for k in sorted(self.outputs)]


@runtime_checkable
class Backend(Protocol):
    """An execution substrate for DSL programs."""

    name: str

    def run(self, program: Program, *, inputs=None, plains=None,
            seed: int | None = None) -> RunResult:
        """Execute (or model the execution of) ``program``.

        ``seed``, when given, makes the run self-contained and
        deterministic: it seeds both generated default inputs and (for
        value-executing backends) the fresh encryption context, so
        concurrent workers never share hidden RNG state.  Modeled backends
        accept and ignore it.
        """
        ...


def _graph_stats(program: Program) -> tuple[dict[str, int], int]:
    stats = program.stats()
    return stats["counts"], stats["distinct_hints"]


def program_width(program: Program) -> int:
    """Values per input vector: N coefficients (BGV) or N/2 slots (CKKS)."""
    return program.n // 2 if program.scheme == "ckks" else program.n


def validate_run_args(program: Program, inputs=None, plains=None) -> None:
    """Reject malformed run requests with a clear error, up front.

    Covers the failure shapes that otherwise surface as deep ``KeyError`` /
    numpy broadcasting errors mid-interpretation: empty programs, value
    dicts keyed by ops that are not (the right kind of) inputs, missing
    INPUT values when an ``inputs`` dict is given, and vectors longer than
    the program width.  Missing *plains* stay legal — they default to
    ``[1]``, matching the reference evaluator.
    """
    if not program.ops:
        raise ValueError(
            f"program {program.name!r} is empty: declare inputs, ops, and "
            f"outputs before running it"
        )
    input_ids = {op.op_id for op in program.ops if op.kind is OpKind.INPUT}
    plain_ids = {op.op_id for op in program.ops if op.kind is OpKind.INPUT_PLAIN}
    if inputs is not None:
        unknown = sorted(set(inputs) - input_ids)
        if unknown:
            raise ValueError(
                f"inputs for {program.name!r} name ops {unknown} which are "
                f"not INPUT ops (INPUT op ids: {sorted(input_ids)})"
            )
        missing = sorted(input_ids - set(inputs))
        if missing:
            raise ValueError(
                f"inputs for {program.name!r} missing values for INPUT ops "
                f"{missing}; pass every encrypted input (or inputs=None to "
                f"generate all of them)"
            )
    if plains is not None:
        unknown = sorted(set(plains) - plain_ids)
        if unknown:
            raise ValueError(
                f"plains for {program.name!r} name ops {unknown} which are "
                f"not INPUT_PLAIN ops (INPUT_PLAIN op ids: {sorted(plain_ids)})"
            )
    width = program_width(program)
    for label, mapping in (("inputs", inputs), ("plains", plains)):
        for op_id, values in (mapping or {}).items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError(
                    f"{label}[{op_id}] for {program.name!r} must be a 1-D "
                    f"vector, got shape {arr.shape}"
                )
            if arr.shape[0] > width:
                raise ValueError(
                    f"{label}[{op_id}] has {arr.shape[0]} values but "
                    f"{program.scheme} programs at N={program.n} hold at "
                    f"most {width}"
                )


def default_plaintext_modulus(program: Program) -> int:
    """Default BGV t for a program: a power of two <= 2N keeps modulus
    switching free of plaintext-scale corrections at any ring size.  The
    functional and reference backends share this policy so their generated
    inputs and mod-t semantics always agree."""
    return min(DEFAULT_PLAINTEXT_MODULUS, 2 * program.n)


def default_inputs(program: Program, *, seed: int = DEFAULT_INPUT_SEED,
                   plaintext_modulus: int = DEFAULT_PLAINTEXT_MODULUS):
    """Deterministic random inputs for every INPUT/INPUT_PLAIN op.

    BGV programs get integer vectors mod t; CKKS programs get real slot
    values in [-1, 1).  Useful when a caller just wants to exercise a
    program without caring about specific data.
    """
    rng = np.random.default_rng(seed)
    width = program.n // 2 if program.scheme == "ckks" else program.n
    inputs: dict[int, np.ndarray] = {}
    plains: dict[int, np.ndarray] = {}
    for op in program.ops:
        if op.kind not in (OpKind.INPUT, OpKind.INPUT_PLAIN):
            continue
        if program.scheme == "ckks":
            data = rng.uniform(-1.0, 1.0, width)
        else:
            data = rng.integers(0, plaintext_modulus, width)
        (inputs if op.kind is OpKind.INPUT else plains)[op.op_id] = data
    return inputs, plains


def params_for_program(program: Program, scheme: str, *, prime_bits: int = 28,
                       plaintext_modulus: int | None = None) -> FheParams:
    """The toy parameter set the functional path uses for a program.

    Sized to the program: one ``prime_bits``-bit limb per program level;
    BGV ``t`` defaults to :func:`default_plaintext_modulus`.  Kept as a
    module-level function so the serving registry derives byte-identical
    parameters to a fresh :class:`FunctionalBackend` run.
    """
    if scheme == "ckks":
        t = 1
    elif plaintext_modulus is not None:
        t = plaintext_modulus
    else:
        t = default_plaintext_modulus(program)
    levels = max((op.level for op in program.ops), default=1)
    return FheParams.build(
        n=program.n, levels=levels, prime_bits=prime_bits, plaintext_modulus=t,
    )


class FunctionalBackend:
    """Real-encryption interpreter: encrypt inputs, execute, decrypt outputs.

    ``scheme`` defaults to the program's own; ``params`` defaults to a toy
    parameter set sized to the program (prime_bits-bit primes, one limb per
    program level).  With ``validate=True`` (the default) the decrypted
    outputs are checked against the plaintext reference evaluator — exactly
    for BGV, within ``tolerance`` for CKKS — and a mismatch raises.

    ``run`` accepts two serving-oriented extras: ``seed`` makes one run
    self-contained (fresh context keys *and* generated inputs both derive
    from it), and ``context`` injects a pre-built
    :class:`~repro.fhe.context.FheContext` — e.g. one cached by
    :class:`repro.serve.ProgramRegistry` — so repeat traffic skips keygen.
    A context may also be bound at construction time.
    """

    name = "functional"

    def __init__(self, scheme: str | None = None, *, params: FheParams | None = None,
                 seed: int = 0, ks_variant: int | None = None,
                 prime_bits: int = 28, plaintext_modulus: int | None = None,
                 validate: bool = True, tolerance: float = 1e-2,
                 context: FheContext | None = None):
        if scheme not in (None, "bgv", "ckks"):
            raise ValueError(f"unsupported scheme {scheme!r}")
        self.scheme = scheme
        self.params = params
        self.seed = seed
        self.ks_variant = ks_variant
        self.prime_bits = prime_bits
        self.plaintext_modulus = plaintext_modulus
        self.validate = validate
        self.tolerance = tolerance
        self.context = context

    def _params_for(self, program: Program, scheme: str) -> FheParams:
        if self.params is not None:
            return self.params
        return params_for_program(
            program, scheme, prime_bits=self.prime_bits,
            plaintext_modulus=self.plaintext_modulus,
        )

    def run(self, program: Program, *, inputs=None, plains=None,
            seed: int | None = None, context: FheContext | None = None,
            batch_layout=None) -> RunResult:
        validate_run_args(program, inputs, plains)
        scheme = self.scheme or ("ckks" if program.scheme == "ckks" else "bgv")
        if scheme != program.scheme and not (scheme == "bgv" and program.scheme == "gsw"):
            # Interpreting a program under the other scheme is legitimate
            # (the graph is scheme-agnostic) but the program must agree so
            # rotation/encoding semantics line up.
            program_scheme = program.scheme
            raise ValueError(
                f"FunctionalBackend(scheme={scheme!r}) cannot run a "
                f"{program_scheme!r} program; rebuild the Program with "
                f"scheme={scheme!r}"
            )
        context = context if context is not None else self.context
        params = context.params if context is not None else self._params_for(program, scheme)
        if inputs is None or plains is None:
            gen_inputs, gen_plains = default_inputs(
                program,
                seed=DEFAULT_INPUT_SEED if seed is None else seed,
                plaintext_modulus=params.plaintext_modulus
                if scheme == "bgv" else DEFAULT_PLAINTEXT_MODULUS,
            )
            inputs = gen_inputs if inputs is None else inputs
            plains = gen_plains if plains is None else plains
        sim = FunctionalSimulator(
            program, params, seed=self.seed if seed is None else seed,
            ks_variant=self.ks_variant, context=context,
        )
        start = time.perf_counter()
        outputs = sim.run(inputs or {}, plains or {}, batch_layout=batch_layout)
        wall_ms = (time.perf_counter() - start) * 1e3
        stats: dict = {
            "scheme": scheme,
            "params": {"n": params.n, "levels": params.level,
                       "log_q": params.log_q},
            "time_kind": "measured_wall",
        }
        if self.validate:
            reference = evaluate_reference(
                program, inputs or {}, plains or {},
                plaintext_modulus=params.plaintext_modulus,
                batch_layout=batch_layout,
            )
            stats.update(self._validated(scheme, params, outputs, reference))
        return RunResult(
            backend=self.name,
            program=program.name,
            outputs=outputs,
            time_ms=wall_ms,
            op_counts=dict(sim.executed_counts),
            distinct_hints=len(sim.hints_used),
            stats=stats,
        )

    def _validated(self, scheme, params, outputs, reference) -> dict:
        if outputs.keys() != reference.keys():
            raise AssertionError("functional and reference outputs disagree on keys")
        if scheme == "ckks":
            max_err = 0.0
            for key, ref in reference.items():
                got = outputs[key][: ref.shape[0]]
                max_err = max(max_err, float(np.max(np.abs(got - ref))) if ref.size else 0.0)
            if max_err > self.tolerance:
                raise AssertionError(
                    f"CKKS output error {max_err:.3e} exceeds tolerance "
                    f"{self.tolerance:.1e}"
                )
            return {"validated": True, "max_error": max_err}
        t = params.plaintext_modulus
        for key, ref in reference.items():
            if not np.array_equal(outputs[key] % t, ref % t):
                raise AssertionError(
                    f"BGV output {key} does not match the plaintext reference"
                )
        return {"validated": True, "max_error": 0.0}


class ReferenceBackend:
    """Plaintext reference evaluator as a backend (defines the semantics)."""

    name = "reference"

    def __init__(self, *, plaintext_modulus: int | None = None):
        self.plaintext_modulus = plaintext_modulus

    def run(self, program: Program, *, inputs=None, plains=None,
            seed: int | None = None, batch_layout=None) -> RunResult:
        validate_run_args(program, inputs, plains)
        t = self.plaintext_modulus or default_plaintext_modulus(program)
        if inputs is None or plains is None:
            gen_inputs, gen_plains = default_inputs(
                program, seed=DEFAULT_INPUT_SEED if seed is None else seed,
                plaintext_modulus=t,
            )
            inputs = gen_inputs if inputs is None else inputs
            plains = gen_plains if plains is None else plains
        start = time.perf_counter()
        outputs = evaluate_reference(
            program, inputs or {}, plains or {}, plaintext_modulus=t,
            batch_layout=batch_layout,
        )
        wall_ms = (time.perf_counter() - start) * 1e3
        counts, hints = _graph_stats(program)
        return RunResult(
            backend=self.name, program=program.name, outputs=outputs,
            time_ms=wall_ms, op_counts=counts, distinct_hints=hints,
            stats={"time_kind": "measured_wall"},
        )


class F1Backend:
    """The F1 accelerator: compile, check the static schedule, model time.

    ``run(compiled=...)`` accepts a pre-built :class:`CompiledProgram`
    (e.g. from :class:`repro.serve.ProgramRegistry`) and skips both the
    compile and the schedule check — the caller vouches for the artifact.
    :meth:`ProgramRegistry.compiled_for(check=True)
    <repro.serve.ProgramRegistry.compiled_for>` provides that guarantee,
    checking even artifacts first built with ``check=False``.
    """

    name = "f1"

    def __init__(self, config: F1Config | None = None, *, scheduler: str = "f1",
                 check: bool = True, ks_choice=None):
        self.config = config or F1Config()
        self.scheduler = scheduler
        self.check = check
        self.ks_choice = ks_choice

    def run(self, program: Program, *, inputs=None, plains=None,
            seed: int | None = None,
            compiled: CompiledProgram | None = None) -> RunResult:
        validate_run_args(program, inputs, plains)
        reused = compiled is not None
        if not reused:
            compiled = compile_program(
                program, self.config, scheduler=self.scheduler,
                ks_choice=self.ks_choice,
            )
        stats = compiled.summary()
        stats["traffic_bytes"] = compiled.traffic_breakdown_bytes()
        stats["config"] = compiled.config.name
        stats["compiled"] = compiled
        stats["time_kind"] = "modeled"
        stats["compile_reused"] = reused
        if self.check and not reused:
            report = check_schedule(
                compiled.translation.graph, compiled.movement, compiled.schedule
            )
            report.raise_if_failed()
            stats["schedule_checked"] = {
                "instructions": report.instructions_checked,
                "transfers": report.transfers_checked,
            }
        counts, hints = _graph_stats(program)
        return RunResult(
            backend=self.name, program=program.name, time_ms=compiled.time_ms,
            op_counts=counts, distinct_hints=hints, stats=stats,
        )


class CpuBackend:
    """The calibrated multicore CPU software baseline."""

    name = "cpu"

    def __init__(self, threads: int = 1, *, model: CpuModel | None = None,
                 software_factor: float = 1.0):
        self.model = model or CpuModel(threads=threads)
        self.software_factor = software_factor

    def run(self, program: Program, *, inputs=None, plains=None,
            seed: int | None = None) -> RunResult:
        validate_run_args(program, inputs, plains)
        time_ms = self.model.run_program_ms(program) * self.software_factor
        counts, hints = _graph_stats(program)
        return RunResult(
            backend=self.name, program=program.name, time_ms=time_ms,
            op_counts=counts, distinct_hints=hints,
            stats={"threads": self.model.threads,
                   "software_factor": self.software_factor,
                   "time_kind": "modeled"},
        )


class HeaxBackend:
    """The HEAX-sigma FPGA accelerator baseline."""

    name = "heax"

    def __init__(self, model: HeaxModel | None = None):
        self.model = model or HeaxModel()

    def run(self, program: Program, *, inputs=None, plains=None,
            seed: int | None = None) -> RunResult:
        validate_run_args(program, inputs, plains)
        time_ms = self.model.run_program_ms(program)
        counts, hints = _graph_stats(program)
        return RunResult(
            backend=self.name, program=program.name, time_ms=time_ms,
            op_counts=counts, distinct_hints=hints,
            stats={"pipelines": self.model.pipelines, "time_kind": "modeled"},
        )


#: string shorthands accepted by :func:`run`
BACKENDS = {
    "functional": FunctionalBackend,
    "reference": ReferenceBackend,
    "f1": F1Backend,
    "cpu": CpuBackend,
    "heax": HeaxBackend,
}


def resolve_backend(backend) -> Backend:
    """Accept a Backend instance or one of the names in :data:`BACKENDS`."""
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]()
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            ) from None
    if isinstance(backend, type):
        raise TypeError(
            f"not a backend: {backend!r} is a class — instantiate it, "
            f"e.g. backend={backend.__name__}()"
        )
    if isinstance(backend, Backend):
        return backend
    raise TypeError(f"not a backend: {backend!r}")


def run(program: Program, backend="f1", *, inputs=None, plains=None,
        seed: int | None = None) -> RunResult:
    """Run one program on one backend — the write-once/run-anywhere entry.

    ``backend`` is a :class:`Backend` instance or a name from
    :data:`BACKENDS` (``"functional"``, ``"reference"``, ``"f1"``, ``"cpu"``,
    ``"heax"``).  ``inputs``/``plains`` map INPUT / INPUT_PLAIN op ids to
    value vectors; value-executing backends generate deterministic random
    data when omitted.  ``seed`` pins all per-run randomness (generated
    inputs and fresh encryption keys), making runs reproducible even from
    concurrent workers; every backend rejects malformed requests via
    :func:`validate_run_args` before any work happens.
    """
    return resolve_backend(backend).run(
        program, inputs=inputs, plains=plains, seed=seed
    )
