"""The seven full-program benchmarks of Table 3, as DSL generators.

Each generator documents how its structure maps to the paper's workload:
scheme, starting level, layer/iteration structure, and — critically for F1 —
the key-switch-hint reuse pattern, which determines whether the program is
compute- or memory-bound (Sec. 8.2).
"""

from __future__ import annotations

import math

from repro.dsl.program import CtHandle, Program


def _rotate_accumulate(p: Program, x: CtHandle, amounts: list[int]) -> CtHandle:
    """Rotate-and-add reduction over the given amounts (hints reused across
    calls that share amounts)."""
    acc = x
    for amt in amounts:
        acc = p.add(acc, p.rotate(acc, amt))
    return acc


def _fc_layer(
    p: Program,
    x: CtHandle,
    outputs: int,
    *,
    encrypted_weights: bool,
    reduce_steps: int,
) -> CtHandle:
    """Fully-connected layer in the LoLa style: per output neuron, a weighted
    copy of the activations followed by a rotate-add inner sum.  All neurons
    share the same rotation amounts, so rotation hints are reused
    ``outputs``-fold — the reuse the phase-1 clustering exploits."""
    amounts = [1 << i for i in range(reduce_steps)]
    partials = []
    for _ in range(outputs):
        if encrypted_weights:
            w = p.input(x.level)
            prod = p.mul(w, x)
        else:
            prod = p.mul_plain(x)
        partials.append(_rotate_accumulate(p, prod, amounts))
    acc = partials[0]
    for t in partials[1:]:
        acc = p.add(acc, t)
    return acc


def lola_mnist(*, encrypted_weights: bool = False, scale: float = 1.0, n: int = 16384) -> Program:
    """LoLa-MNIST [15]: LeNet-style conv -> square -> FC -> square -> FC.

    Starting level 4 (unencrypted weights) or 6 (encrypted), as in Sec. 7.
    Frequent rotations with shared amounts; low L keeps it compute-leaning.
    """
    level = 6 if encrypted_weights else 4
    name = "lola_mnist_ew" if encrypted_weights else "lola_mnist_uw"
    p = Program(n, scheme="ckks", name=name)
    x = p.input(level, name="image")
    # Convolution: windows are rotations of the packed image with per-window
    # weights, accumulated.  25 windows at full scale (5x5 kernel).
    windows = max(2, int(25 * scale))
    acc = p.mul(p.input(level), x) if encrypted_weights else p.mul_plain(x)
    for i in range(1, windows):
        r = p.rotate(x, i)
        w = p.mul(p.input(level), r) if encrypted_weights else p.mul_plain(r)
        acc = p.add(acc, w)
    act1 = p.square(acc)
    # FC hidden layer then square activation, then the output layer.
    hidden = _fc_layer(
        p, act1, max(2, int(8 * scale)),
        encrypted_weights=encrypted_weights,
        reduce_steps=max(3, int(math.log2(n)) - 6),
    )
    act2 = p.square(hidden)
    out = _fc_layer(
        p, act2, max(1, int(4 * scale)),
        encrypted_weights=encrypted_weights,
        reduce_steps=max(3, int(math.log2(n)) - 7),
    )
    p.output(out, name="logits")
    return p


def lola_cifar(*, scale: float = 1.0, n: int = 16384) -> Program:
    """LoLa-CIFAR [15]: a 6-layer network (MobileNet-v3-like compute), L=8,
    unencrypted weights.  Much wider than MNIST: many live ciphertexts per
    layer force intermediate spills, reproducing Fig. 9a's
    intermediate-dominated traffic."""
    p = Program(n, scheme="ckks", name="lola_cifar")
    level = 8
    widths = [max(2, int(w * scale)) for w in (16, 16, 32, 32, 64, 10)]
    xs = [p.input(level, name=f"img{c}") for c in range(max(2, int(3 * scale) or 2))]
    current = xs
    for layer, width in enumerate(widths):
        amounts = [1 << i for i in range(3 + (layer % 3))]
        nxt = []
        for _ in range(width):
            acc = None
            for x in current:
                t = p.mul_plain(x)
                acc = t if acc is None else p.add(acc, t)
            acc = _rotate_accumulate(p, acc, amounts)
            nxt.append(acc)
        # Square activation between conv blocks (consumes a level).
        if layer % 2 == 1 and nxt[0].level > 2:
            nxt = [p.square(v) for v in nxt]
        current = nxt
    for i, v in enumerate(current):
        p.output(v, name=f"logit{i}")
    return p


def logistic_regression(*, scale: float = 1.0, n: int = 16384) -> Program:
    """HELR [40]: one batch of logistic-regression training, CKKS, L=16,
    256 features / 256 samples at full scale.  Deep (L=16 down to ~9) with
    large-L ciphertexts, so key-switch hints dominate traffic (Fig. 9a)."""
    p = Program(n, scheme="ckks", name="logistic_regression")
    level = 16
    blocks = max(2, int(8 * scale))       # feature blocks packed per ct
    x = [p.input(level, name=f"x{b}") for b in range(blocks)]
    y = p.input(level, name="y")
    w = [p.input(level, name=f"w{b}") for b in range(blocks)]
    reduce_steps = max(4, int(math.log2(n)) - 6)
    amounts = [1 << i for i in range(reduce_steps)]
    # z = sum_b innerSum(x_b * w_b)
    partials = [
        _rotate_accumulate(p, p.mul(xb, wb), amounts) for xb, wb in zip(x, w)
    ]
    z = partials[0]
    for t in partials[1:]:
        z = p.add(z, t)
    # Degree-7 sigmoid approximation (HELR): via z2, z3, z4+... powers.
    z2 = p.square(z)
    z3 = p.mul(z2, z)
    z4 = p.square(z2)
    z7 = p.mul(z4, z3)
    s = p.add_plain(p.add(p.add(z3, z7), z2))
    # Gradient: per block, innerSum((s - y) * x_b); weight update.
    err = p.sub(s, y)
    for b in range(blocks):
        g = _rotate_accumulate(p, p.mul(err, x[b]), amounts)
        upd = p.sub(w[b], p.mul_plain(g))
        p.output(upd, name=f"w{b}'")
    return p


def db_lookup(*, scale: float = 1.0, n: int = 16384, level: int = 17) -> Program:
    """HElib's BGV_country_db_lookup [41] at L=17, N=16K (Sec. 7).

    The database is packed into a handful of ciphertexts (HElib packs all
    entries into slots); equality against the query is the Fermat test
    ``(query - key)^(t-1)`` — a square-and-multiply chain whose depth is what
    forces L=17 — evaluated *level-synchronously* across the database
    ciphertexts (as HElib does), so each level's relinearization hint is
    reused across the whole database.  Matches mask the value ciphertexts and
    a rotate-add ladder aggregates the result.  Deep and wide: substantial
    off-chip data movement."""
    p = Program(n, scheme="bgv", name="db_lookup")
    query = p.input(level, name="query")
    db_cts = max(2, int(16 * scale))
    keys = [p.input(level, name=f"keys{e}") for e in range(db_cts)]
    # Two byte-blocks per entry group, each a Fermat chain; level-major so
    # all database ciphertexts advance together and share each level's hint.
    chains = [p.sub(query, k) for k in keys]
    chains += [p.sub(p.rotate(query, 1), k) for k in keys]
    square_steps = level - 3
    for _ in range(square_steps):
        if chains[0].level <= 4:
            break
        chains = [p.square(c) for c in chains]
    # AND the two byte-block equalities per entry group.
    eqs = [
        p.mul_plain(p.mul(chains[e], chains[db_cts + e]))
        for e in range(db_cts)
    ]
    values = [p.input(eqs[0].level, name=f"vals{e}") for e in range(db_cts)]
    masked = [p.mul(eq, v) for eq, v in zip(eqs, values)]
    acc = masked[0]
    for t in masked[1:]:
        acc = p.add(acc, t)
    # Collapse matched slots into the result positions.
    for i in range(int(math.log2(n)) // 2):
        acc = p.add(acc, p.rotate(acc, 1 << i))
    p.output(acc, name="result")
    return p


def bgv_bootstrapping(*, scale: float = 1.0, n: int = 16384, l_max: int = 24) -> Program:
    """Non-packed BGV bootstrapping (Alperin-Sheriff & Peikert [3]), L_max=24:
    homomorphic inner product with the bootstrapping key, a trace ladder of
    log2(N) automorphisms isolating the constant coefficient, and GHS digit
    extraction (a chain of squarings, one level each).  Every rotation amount
    is distinct and every squaring sits at its own level, so hints see no
    reuse — this is what exercises the compiler's key-switch algorithm choice
    (Sec. 7)."""
    p = Program(n, scheme="bgv", name="bgv_bootstrapping")
    bk = p.input(l_max, name="bootstrap_key")
    # Linear part: Enc(b - a*s) = AddPlain(MulPlain(bk, -a), b).
    u = p.add_plain(p.mul_plain(bk))
    # Trace ladder: sum over the Galois group in log2(N) + 1 stages.
    # Bootstrapping has no "width" to scale — its depth is fixed by L_max —
    # so scale only shortens it below 0.25 (for fast unit tests).
    depth_scale = min(1.0, scale * 4)
    ladder_steps = max(4, int(math.log2(n) * depth_scale))
    for j in range(ladder_steps):
        u = p.add(u, p.rotate(u, 1 << j))
    # GHS digit extraction, triangular table (Halevi-Shoup): digit j is
    # lifted by a chain of squarings B[j][j] -> B[j][e-1]; the running value
    # advances via (B[j][j] - B[j][j+1]) / 2.  ~e^2/2 squarings of depth e —
    # the bulk of bootstrapping's "tens to hundreds" of homomorphic ops.
    e = max(4, int(15 * depth_scale))
    table: dict[tuple[int, int], CtHandle] = {(0, 0): u}
    z = u
    for j in range(e):
        cur = table.get((j, j))
        if cur is None or cur.level <= 2:
            break
        lifted = cur
        for i in range(j, e - 1):
            if lifted.level <= 2:
                break
            lifted = p.square(lifted)
            table[(j, i + 1)] = lifted
        nxt = table.get((j, j + 1))
        if j < e - 1 and nxt is not None and cur.level > 2:
            table[(j + 1, j + 1)] = p.mul_plain(p.sub(cur, nxt))
            z = table[(j + 1, j + 1)]
    p.output(z, name="refreshed")
    return p


def ckks_bootstrapping(*, scale: float = 1.0, n: int = 16384, l_max: int = 24) -> Program:
    """Non-packed CKKS bootstrapping (HEAAN [16]), L_max=24: CoeffToSlot
    (log N rotations + plaintext multiplies), EvalSine via double-angle
    squarings, SlotToCoeff.  Far fewer ciphertext multiplications than BGV
    bootstrapping, so key-switch hints see almost no reuse and the program is
    memory-bound — the paper's lowest speedup."""
    p = Program(n, scheme="ckks", name="ckks_bootstrapping")
    ct = p.input(l_max, name="exhausted_ct")
    # Fixed depth, as for BGV bootstrapping: scale only trims below 0.25.
    depth_scale = min(1.0, scale * 4)
    steps = max(4, int(math.log2(n) * depth_scale))
    # CoeffToSlot: FFT-like stages of rotate + mul_plain + add.
    v = ct
    for j in range(steps):
        v = p.add(p.mul_plain(p.rotate(v, 1 << j)), p.mul_plain(v))
    # EvalSine: Taylor kernel then double-angle squarings.
    sine_depth = max(3, int(8 * depth_scale))
    s = p.square(v)
    s = p.add(p.mul_plain(s), p.mul_plain(v))
    for _ in range(sine_depth):
        if s.level <= 3:
            break
        s = p.add_plain(p.square(s))
    # SlotToCoeff at the remaining low level.
    w = s
    for j in range(max(2, steps // 2)):
        w = p.add(p.mul_plain(p.rotate(w, -(1 << j))), p.mul_plain(w))
    p.output(w, name="refreshed")
    return p


def benchmark_suite(*, scale: float = 0.25, n: int = 16384) -> dict[str, Program]:
    """The Table-3 benchmark set at a common scale."""
    return {
        "lola_cifar": lola_cifar(scale=scale, n=n),
        "lola_mnist_uw": lola_mnist(encrypted_weights=False, scale=scale, n=n),
        "lola_mnist_ew": lola_mnist(encrypted_weights=True, scale=scale, n=n),
        "logistic_regression": logistic_regression(scale=scale, n=n),
        "db_lookup": db_lookup(scale=scale, n=n),
        "bgv_bootstrapping": bgv_bootstrapping(scale=scale, n=n),
        "ckks_bootstrapping": ckks_bootstrapping(scale=scale, n=n),
    }
