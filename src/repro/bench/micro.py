"""Microbenchmarks (Table 4): NTT, automorphism, homomorphic multiply, and
homomorphic permutation on single ciphertexts, at the paper's three parameter
points.

F1's numbers are *reciprocal throughput* (ns per ciphertext operation in
steady state): we obtain them analytically from the architecture model — a
fully-pipelined back-to-back stream of the operation's residue-vector ops
spread over the relevant FUs — which matches how a fixed-latency,
statically-scheduled machine is characterized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import F1Config

#: (N, logQ) points of Table 4, with L = ceil(logQ / 32).
MICRO_PARAM_SETS = (
    (1 << 12, 109),
    (1 << 13, 218),
    (1 << 14, 438),
)


def level_for_log_q(log_q: int, word_bits: int = 32) -> int:
    return max(1, (log_q + word_bits - 1) // word_bits)


@dataclass
class MicroCounts:
    """Residue-vector op counts of one ciphertext-level operation."""

    ntt: int = 0
    aut: int = 0
    mul: int = 0
    add: int = 0

    @classmethod
    def ciphertext_ntt(cls, level: int) -> "MicroCounts":
        return cls(ntt=2 * level)

    @classmethod
    def ciphertext_aut(cls, level: int) -> "MicroCounts":
        return cls(aut=2 * level)

    @classmethod
    def homomorphic_mul(cls, level: int) -> "MicroCounts":
        ks_ntt = level + level * (level - 1)      # Listing 1
        return cls(
            ntt=ks_ntt,
            mul=4 * level + 2 * level * level,
            add=3 * level + 2 * level * level,
        )

    @classmethod
    def homomorphic_perm(cls, level: int) -> "MicroCounts":
        ks_ntt = level + level * (level - 1)
        return cls(
            ntt=ks_ntt,
            aut=2 * level,
            mul=2 * level * level,
            add=level + 2 * level * level,
        )


def microbenchmark_f1_ns(op: str, n: int, log_q: int, config: F1Config | None = None) -> float:
    """Steady-state reciprocal throughput of one ciphertext op, in ns.

    The bottleneck FU family determines throughput: time = max over FU kinds
    of (ops * occupancy / units) at the configured clock.
    """
    config = config or F1Config()
    level = level_for_log_q(log_q)
    counts = {
        "ntt": MicroCounts.ciphertext_ntt,
        "aut": MicroCounts.ciphertext_aut,
        "mul": MicroCounts.homomorphic_mul,
        "perm": MicroCounts.homomorphic_perm,
    }[op](level)
    per_fu_cycles = {
        "ntt": counts.ntt * config.fu_occupancy("ntt", n) / config.fu_count("ntt"),
        "aut": counts.aut * config.fu_occupancy("aut", n) / config.fu_count("aut"),
        "mul": counts.mul * config.fu_occupancy("mul", n) / config.fu_count("mul"),
        "add": counts.add * config.fu_occupancy("add", n) / config.fu_count("add"),
    }
    cycles = max(per_fu_cycles.values())
    return cycles / config.frequency_ghz
