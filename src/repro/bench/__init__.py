"""Benchmark workloads (Sec. 7) and the harnesses regenerating Tables 3-5
and Figures 9-11.

Workload generators emit DSL programs with the same *structure* as the
paper's benchmarks (scheme, starting level, op mix, rotation/hint patterns,
depth); a ``scale`` parameter shrinks widths so compile+simulate stays fast
in CI, while ``scale=1.0`` approaches paper-sized instruction counts.
"""

from repro.bench.workloads import (
    bgv_bootstrapping,
    ckks_bootstrapping,
    db_lookup,
    lola_cifar,
    lola_mnist,
    logistic_regression,
    benchmark_suite,
)
from repro.bench.micro import microbenchmark_f1_ns, MICRO_PARAM_SETS
from repro.bench.runner import (
    run_benchmark,
    table3_rows,
    table4_rows,
    table5_rows,
    fig9_data,
    fig10_data,
    fig11_points,
)

__all__ = [
    "bgv_bootstrapping",
    "ckks_bootstrapping",
    "db_lookup",
    "lola_cifar",
    "lola_mnist",
    "logistic_regression",
    "benchmark_suite",
    "microbenchmark_f1_ns",
    "MICRO_PARAM_SETS",
    "run_benchmark",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "fig9_data",
    "fig10_data",
    "fig11_points",
]
