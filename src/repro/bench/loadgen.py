"""Synthetic-traffic load generator for the serving runtime.

Measures what the serve layer buys over the pre-serving status quo, where
every request is one isolated ``repro.run`` call that compiles, keygens,
and executes alone:

- **measured** requests/s on :class:`~repro.backends.FunctionalBackend` —
  real encryption, wall-clock timed — for batched serving
  (:class:`~repro.serve.FheServer`) vs the sequential baseline, with the
  registry's compile/keygen cache hit rate and batch occupancy reported;
- **modeled** requests/s on :class:`~repro.backends.F1Backend` — the slot
  layout's capacity divided by the accelerator's modeled batch time;
- a correctness cross-check: a sample of served outputs must match solo
  runs (bit-identical for BGV, within tolerance for CKKS).

Run it::

    PYTHONPATH=src python -m repro.bench.loadgen
    PYTHONPATH=src python -m repro.bench.loadgen --requests 256 --n 1024
"""

from __future__ import annotations

import argparse
import time

import numpy as np

import repro
from repro.backends import FunctionalBackend, default_plaintext_modulus
from repro.dsl.program import OpKind, Program
from repro.serve import FheServer, ProgramRegistry, Request, SlotBatcher


# ------------------------------------------------------------------ workloads
def linear_bgv_program(n: int = 512, *, level: int = 3) -> Program:
    """A batchable BGV scoring circuit: x*w + bias (shared model weights)."""
    p = Program(n=n, scheme="bgv", name="serve_linear_bgv")
    x = p.input(level, name="x")
    w = p.input_plain(level, name="weights")
    bias = p.input_plain(level, name="bias")
    p.output(p.add_plain(p.mul_plain(x, w), bias), name="score")
    return p


def poly_ckks_program(n: int = 512, *, level: int = 4) -> Program:
    """A batchable CKKS polynomial: x*y + x (slot-wise ct x ct multiply)."""
    p = Program(n=n, scheme="ckks", name="serve_poly_ckks")
    x = p.input(level, name="x")
    y = p.input(level, name="y")
    p.output(p.add(p.mul(x, y), x), name="x*y + x")
    return p


def synthetic_requests(program: Program, count: int, *, width: int,
                       seed: int = 0) -> list[Request]:
    """Deterministic per-client request vectors for every input/plain op.

    BGV plains are shared across requests (model weights — also what the
    slot batcher requires for MUL_PLAIN operands); CKKS plains and all
    encrypted inputs are drawn per request.
    """
    rng = np.random.default_rng(seed)
    t = default_plaintext_modulus(program)
    is_ckks = program.scheme == "ckks"

    def draw():
        return (rng.uniform(-1.0, 1.0, width) if is_ckks
                else rng.integers(0, t, width))

    input_ids = [op.op_id for op in program.ops if op.kind is OpKind.INPUT]
    plain_ids = [op.op_id for op in program.ops
                 if op.kind is OpKind.INPUT_PLAIN]
    shared_plains = {op_id: draw() for op_id in plain_ids} if not is_ckks else {}
    requests = []
    for _ in range(count):
        requests.append(Request(
            inputs={op_id: draw() for op_id in input_ids},
            plains=(dict(shared_plains) if not is_ckks
                    else {op_id: draw() for op_id in plain_ids}),
        ))
    return requests


# ----------------------------------------------------------------- harnesses
def sequential_throughput(program: Program, requests: list[Request],
                          *, seed: int = 0) -> dict:
    """The status quo: one isolated ``repro.run`` per request.

    Each call constructs a fresh functional backend, so every request
    pays parameter generation, keygen, and hint generation again —
    exactly what a naive per-request service would do.
    """
    start = time.perf_counter()
    outputs = []
    for request in requests:
        result = repro.run(
            program, backend=FunctionalBackend(validate=False),
            inputs=request.inputs, plains=request.plains or None, seed=seed,
        )
        outputs.append(result.outputs)
    elapsed = time.perf_counter() - start
    return {
        "requests": len(requests),
        "elapsed_s": elapsed,
        "requests_per_s": len(requests) / elapsed,
        "outputs": outputs,
    }


def serving_throughput(program: Program, requests: list[Request], *,
                       width: int, max_batch: int | None = None,
                       workers: int = 2, max_wait_ms: float = 5.0,
                       seed: int = 0) -> dict:
    """Batched serving through :class:`FheServer`, wall-clock timed."""
    registry = ProgramRegistry()
    start = time.perf_counter()
    with FheServer(max_batch=max_batch, max_wait_ms=max_wait_ms,
                   workers=workers, registry=registry, seed=seed) as server:
        futures = [
            server.submit(program, inputs=request.inputs,
                          plains=request.plains, width=width)
            for request in requests
        ]
        server.flush()
        results = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
        stats = server.stats()
    return {
        "requests": len(requests),
        "elapsed_s": elapsed,
        "requests_per_s": len(requests) / elapsed,
        "mean_occupancy": stats["mean_occupancy"],
        "mean_batch_size": stats["mean_batch_size"],
        "cache_hit_rate": stats["registry"]["hit_rate"],
        "latency_ms": stats["latency_ms"],
        "results": results,
    }


def modeled_f1_throughput(program: Program, *, width: int,
                          config=None) -> dict:
    """Modeled accelerator serving rate: capacity requests per batch time."""
    batcher = SlotBatcher(program, width=width)
    registry = ProgramRegistry()
    entry, _ = registry.compiled_for(program, config)
    time_ms = entry.compiled.time_ms
    return {
        "capacity": batcher.capacity,
        "batch_time_ms": time_ms,
        "requests_per_s_batched": batcher.capacity / time_ms * 1e3,
        "requests_per_s_solo": 1.0 / time_ms * 1e3,
        "speedup": float(batcher.capacity),
    }


def crosscheck(program: Program, served: list, sequential_outputs: list,
               *, width: int, sample: int = 4) -> float:
    """Served outputs must match solo runs; returns the max CKKS error."""
    t = default_plaintext_modulus(program)
    max_err = 0.0
    step = max(1, len(served) // sample)
    for idx in range(0, len(served), step):
        for out_id, solo in sequential_outputs[idx].items():
            got = served[idx].values[out_id]
            want = np.asarray(solo)[: got.shape[0]]
            if program.scheme == "ckks":
                max_err = max(max_err, float(np.max(np.abs(got - want))))
            elif not np.array_equal(got % t, np.asarray(want) % t):
                raise AssertionError(
                    f"served output {out_id} of request {idx} is not "
                    f"bit-identical to the solo run"
                )
    if program.scheme == "ckks" and max_err > 1e-2:
        raise AssertionError(f"served CKKS outputs drift {max_err:.2e} from solo runs")
    return max_err


def run_loadgen(*, n: int = 512, width: int = 8, requests: int = 64,
                workers: int = 2, max_wait_ms: float = 5.0,
                seed: int = 0, verbose: bool = True) -> dict:
    """Full report: measured BGV + CKKS serving speedups and modeled F1."""
    report: dict = {}
    for program in (linear_bgv_program(n), poly_ckks_program(n)):
        reqs = synthetic_requests(program, requests, width=width, seed=seed)
        seq = sequential_throughput(program, reqs, seed=seed)
        srv = serving_throughput(program, reqs, width=width,
                                 workers=workers, max_wait_ms=max_wait_ms,
                                 seed=seed)
        err = crosscheck(program, srv["results"], seq["outputs"], width=width)
        speedup = srv["requests_per_s"] / seq["requests_per_s"]
        report[program.name] = {
            "scheme": program.scheme,
            "sequential_rps": seq["requests_per_s"],
            "serving_rps": srv["requests_per_s"],
            "speedup": speedup,
            "mean_occupancy": srv["mean_occupancy"],
            "cache_hit_rate": srv["cache_hit_rate"],
            "p50_latency_ms": srv["latency_ms"]["p50"],
            "p99_latency_ms": srv["latency_ms"]["p99"],
            "max_ckks_error": err,
        }
        if verbose:
            row = report[program.name]
            print(f"{program.name} ({program.scheme}, N={n}, width={width}, "
                  f"{requests} requests)")
            print(f"  sequential repro.run : {row['sequential_rps']:8.1f} req/s")
            print(f"  batched FheServer    : {row['serving_rps']:8.1f} req/s "
                  f"({speedup:.1f}x)")
            print(f"  occupancy {row['mean_occupancy']:.2f}, cache hit rate "
                  f"{row['cache_hit_rate']:.2f}, p50 {row['p50_latency_ms']:.1f} ms, "
                  f"p99 {row['p99_latency_ms']:.1f} ms")
    f1_program = poly_ckks_program(16384, level=8)
    f1 = modeled_f1_throughput(f1_program, width=width)
    report["f1_modeled"] = f1
    if verbose:
        print(f"{f1_program.name} on F1 (modeled, N=16384, width={width})")
        print(f"  one request per run  : {f1['requests_per_s_solo']:8.1f} req/s")
        print(f"  {f1['capacity']} requests per batch: "
              f"{f1['requests_per_s_batched']:8.1f} req/s ({f1['speedup']:.0f}x)")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=512, help="ring degree")
    parser.add_argument("--width", type=int, default=8,
                        help="values per request")
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    args = parser.parse_args(argv)
    report = run_loadgen(n=args.n, width=args.width, requests=args.requests,
                         workers=args.workers, max_wait_ms=args.max_wait_ms)
    measured = [row["speedup"] for key, row in report.items()
                if key != "f1_modeled"]
    floor = min(measured)
    print(f"\nmin measured serving speedup: {floor:.1f}x "
          f"({'>=' if floor >= 5 else '<'} 5x target)")
    return 0 if floor >= 5.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
