"""Synthetic-traffic load generator for the serving runtime.

Measures what the serve layer buys over the pre-serving status quo, where
every request is one isolated ``repro.run`` call that compiles, keygens,
and executes alone:

- **measured** requests/s on :class:`~repro.backends.FunctionalBackend` —
  real encryption, wall-clock timed — for batched serving
  (:class:`~repro.serve.FheServer`) vs the sequential baseline, with the
  registry's compile/keygen cache hit rate and batch occupancy reported;
- **modeled** requests/s on :class:`~repro.backends.F1Backend` — the slot
  layout's capacity divided by the accelerator's modeled batch time;
- a correctness cross-check: a sample of served outputs must match solo
  runs (bit-identical for BGV, within tolerance for CKKS);
- a **mixed-depth + rotation** scenario: traffic arriving at several
  levels (cross-level packing) and a CKKS rotation stencil
  (rotate-then-mask batching) measured against the old solo-fallback
  eligibility, with per-signature occupancy from ``FheServer.stats()``.

With ``--processes N`` it instead measures the *executor* axis: the same
traffic through the threaded executor (GIL-bound, per-context lock) versus
the :class:`~repro.serve.executor.ProcessExecutor` (N worker-process
context replicas, no cross-request lock), on a CPU-bound program mix.
Process outputs are cross-checked bit-identical (BGV) / tolerance-equal
(CKKS) against solo threaded runs.  Real multi-core speedup obviously
requires multiple cores; on a single-core host the report still validates
correctness and prints the core count next to the measured ratio.

With ``--hosts N`` it measures the *network* tier: the same CPU-bound mix
served through a :class:`~repro.net.remote.RemoteExecutor` over N local
worker-host subprocesses (consistent-hash sharding, framed socket
transport) versus the identical stack over a single host.  Each
measurement spawns its own fresh cluster, so both sides start cold —
the ratio isolates what sharding across hosts buys, and remote outputs
are cross-checked against solo runs exactly like the process mode.

With ``--chaos SEED`` it runs the *resilience* soak instead: the same
traffic through a fault-injected local cluster
(:mod:`repro.net.chaos` — seeded drops, corrupt frames, delays, plus a
worker kill and restart mid-run), asserting the resilience contract:
zero lost futures, every status in ``{ok, expired, failed, shed}``, and
every ok result identical to a solo run despite retries and failover.

Run it::

    PYTHONPATH=src python -m repro.bench.loadgen
    PYTHONPATH=src python -m repro.bench.loadgen --requests 256 --n 1024
    PYTHONPATH=src python -m repro.bench.loadgen --processes 4
    PYTHONPATH=src python -m repro.bench.loadgen --hosts 2
    PYTHONPATH=src python -m repro.bench.loadgen --chaos 7
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

import repro
from repro.backends import FunctionalBackend, default_plaintext_modulus
from repro.dsl.program import OpKind, Program
from repro.serve import FheServer, ProcessExecutor, ProgramRegistry, Request, SlotBatcher
from repro.serve.batcher import solo_layout


# ------------------------------------------------------------------ workloads
def linear_bgv_program(n: int = 512, *, level: int = 3) -> Program:
    """A batchable BGV scoring circuit: x*w + bias (shared model weights)."""
    p = Program(n=n, scheme="bgv", name="serve_linear_bgv")
    x = p.input(level, name="x")
    w = p.input_plain(level, name="weights")
    bias = p.input_plain(level, name="bias")
    p.output(p.add_plain(p.mul_plain(x, w), bias), name="score")
    return p


def poly_ckks_program(n: int = 512, *, level: int = 4) -> Program:
    """A batchable CKKS polynomial: x*y + x (slot-wise ct x ct multiply)."""
    p = Program(n=n, scheme="ckks", name="serve_poly_ckks")
    x = p.input(level, name="x")
    y = p.input(level, name="y")
    p.output(p.add(p.mul(x, y), x), name="x*y + x")
    return p


def rotation_ckks_program(n: int = 512, *, level: int = 3) -> Program:
    """A batchable CKKS stencil: x + rot(x,1) + rot(x,2).

    All rotations share one source handle, so the functional path hoists
    them into one ``rotate_many`` call; under slot batching each global
    rotation is lowered to rotate-then-mask.  Before rotation-tolerant
    batching this traffic class was served strictly solo.
    """
    p = Program(n=n, scheme="ckks", name="serve_rotation_ckks")
    x = p.input(level, name="x")
    acc = p.add(x, p.rotate(x, 1))
    p.output(p.add(acc, p.rotate(x, 2)), name="stencil")
    return p


def deep_ckks_program(n: int = 1024, *, level: int = 6) -> Program:
    """A CPU-bound batchable CKKS chain: three ct x ct multiplies.

    Each multiply pays a tensor product plus a key switch, so one batch is
    dominated by numpy-heavy kernel work — the mix where a process pool
    pays off over GIL-bound threads.
    """
    p = Program(n=n, scheme="ckks", name="serve_deep_ckks")
    x = p.input(level, name="x")
    y = p.input(level, name="y")
    acc = p.mul(x, y)
    acc = p.mul(acc, x)
    acc = p.mul(acc, y)
    p.output(acc, name="x^2*y^2*x... chain")
    return p


def synthetic_requests(program: Program, count: int, *, width: int,
                       seed: int = 0) -> list[Request]:
    """Deterministic per-client request vectors for every input/plain op.

    BGV plains are shared across requests (model weights — also what the
    slot batcher requires for MUL_PLAIN operands); CKKS plains and all
    encrypted inputs are drawn per request.
    """
    rng = np.random.default_rng(seed)
    t = default_plaintext_modulus(program)
    is_ckks = program.scheme == "ckks"

    def draw():
        return (rng.uniform(-1.0, 1.0, width) if is_ckks
                else rng.integers(0, t, width))

    input_ids = [op.op_id for op in program.ops if op.kind is OpKind.INPUT]
    plain_ids = [op.op_id for op in program.ops
                 if op.kind is OpKind.INPUT_PLAIN]
    shared_plains = {op_id: draw() for op_id in plain_ids} if not is_ckks else {}
    requests = []
    for _ in range(count):
        requests.append(Request(
            inputs={op_id: draw() for op_id in input_ids},
            plains=(dict(shared_plains) if not is_ckks
                    else {op_id: draw() for op_id in plain_ids}),
        ))
    return requests


def mixed_level_requests(program: Program, count: int, *, width: int,
                         levels: tuple[int, ...], seed: int = 0,
                         ) -> list[Request]:
    """Synthetic traffic whose arrival levels cycle through ``levels``.

    Models a fleet of clients at different depths of a larger pipeline
    (some mid-computation, some fresh) hitting the same scoring circuit.
    """
    requests = synthetic_requests(program, count, width=width, seed=seed)
    for i, request in enumerate(requests):
        request.level = levels[i % len(levels)]
    return requests


# ----------------------------------------------------------------- harnesses
def sequential_throughput(program: Program, requests: list[Request],
                          *, seed: int = 0) -> dict:
    """The status quo: one isolated ``repro.run`` per request.

    Each call constructs a fresh functional backend, so every request
    pays parameter generation, keygen, and hint generation again —
    exactly what a naive per-request service would do.
    """
    start = time.perf_counter()
    outputs = []
    for request in requests:
        result = repro.run(
            program, backend=FunctionalBackend(validate=False),
            inputs=request.inputs, plains=request.plains or None, seed=seed,
        )
        outputs.append(result.outputs)
    elapsed = time.perf_counter() - start
    return {
        "requests": len(requests),
        "elapsed_s": elapsed,
        "requests_per_s": len(requests) / elapsed,
        "outputs": outputs,
    }


def serving_throughput(program: Program, requests: list[Request], *,
                       width: int, max_batch: int | None = None,
                       workers: int = 2, max_wait_ms: float = 5.0,
                       seed: int = 0, executor="thread") -> dict:
    """Batched serving through :class:`FheServer`, wall-clock timed."""
    registry = ProgramRegistry()
    start = time.perf_counter()
    with FheServer(max_batch=max_batch, max_wait_ms=max_wait_ms,
                   workers=workers, registry=registry, seed=seed,
                   executor=executor) as server:
        futures = [
            server.submit(program, inputs=request.inputs,
                          plains=request.plains, width=width)
            for request in requests
        ]
        server.flush()
        results = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
        stats = server.stats()
    return {
        "requests": len(requests),
        "elapsed_s": elapsed,
        "requests_per_s": len(requests) / elapsed,
        "mean_occupancy": stats["mean_occupancy"],
        "mean_batch_size": stats["mean_batch_size"],
        "cache_hit_rate": stats["registry"]["hit_rate"],
        "latency_ms": stats["latency_ms"],
        "results": results,
    }


def solo_fallback_throughput(program: Program, requests: list[Request],
                             *, seed: int = 0) -> dict:
    """The pre-rotation/cross-level *eligibility* baseline.

    Before this traffic class became batchable (rotations lowered to
    rotate-then-mask, off-base arrival levels mod-switched to a common
    waterline), the server's ``unbatchable_reason`` gate sent every such
    request down the solo path: registry-cached context — setup is still
    amortized — but one full program execution per request, leveled
    requests honored via :func:`~repro.serve.batcher.solo_layout`.
    """
    registry = ProgramRegistry()
    entry, _ = registry.context_for(program, seed=seed)
    backend = FunctionalBackend(validate=False)
    base = max((op.level for op in program.ops
                if op.kind is OpKind.INPUT), default=1)
    start = time.perf_counter()
    outputs = []
    for request in requests:
        kw = {}
        if request.level is not None and request.level != base:
            kw["batch_layout"] = solo_layout(program, request.level)
        result = backend.run(
            program, inputs=request.inputs, plains=request.plains or None,
            seed=seed, context=entry.context, **kw,
        )
        outputs.append(result.outputs)
    elapsed = time.perf_counter() - start
    return {
        "requests": len(requests),
        "elapsed_s": elapsed,
        "requests_per_s": len(requests) / elapsed,
        "outputs": outputs,
    }


def mixed_serving_throughput(program: Program, requests: list[Request], *,
                             width: int, max_batch: int | None = None,
                             workers: int = 2, max_wait_ms: float = 5.0,
                             seed: int = 0) -> dict:
    """Batched serving of leveled traffic through :class:`FheServer`."""
    registry = ProgramRegistry()
    start = time.perf_counter()
    with FheServer(max_batch=max_batch, max_wait_ms=max_wait_ms,
                   workers=workers, registry=registry, seed=seed) as server:
        futures = [
            server.submit(program, inputs=request.inputs,
                          plains=request.plains, width=width,
                          level=request.level)
            for request in requests
        ]
        server.flush()
        results = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
        stats = server.stats()
    sig_rows = list(stats["per_signature"].values())
    occupancy = sig_rows[0]["mean_occupancy"] if sig_rows else 0.0
    return {
        "requests": len(requests),
        "elapsed_s": elapsed,
        "requests_per_s": len(requests) / elapsed,
        "mean_occupancy": occupancy,
        "batch_size_histogram": (sig_rows[0]["batch_size_histogram"]
                                 if sig_rows else {}),
        "results": results,
    }


def run_mixed_loadgen(*, n: int = 512, width: int = 8, requests: int = 64,
                      workers: int = 2, max_wait_ms: float = 5.0,
                      seed: int = 0, verbose: bool = True) -> dict:
    """Mixed-depth + rotation traffic: batched serving vs solo fallback.

    Two scenarios that the old eligibility rules forced down the solo
    path: a BGV scoring circuit with requests arriving at alternating
    depths, and a CKKS rotation stencil with arrivals at two depths.
    Both are cross-checked request-by-request against solo executions.
    """
    scenarios = [
        (linear_bgv_program(n), (3, 2)),
        (rotation_ckks_program(n), (3, 2)),
    ]
    report: dict = {}
    for program, levels in scenarios:
        reqs = mixed_level_requests(program, requests, width=width,
                                    levels=levels, seed=seed)
        solo = solo_fallback_throughput(program, reqs, seed=seed)
        srv = mixed_serving_throughput(program, reqs, width=width,
                                       workers=workers,
                                       max_wait_ms=max_wait_ms, seed=seed)
        err = crosscheck(program, srv["results"], solo["outputs"],
                         width=width)
        speedup = srv["requests_per_s"] / solo["requests_per_s"]
        report[program.name] = {
            "scheme": program.scheme,
            "levels": levels,
            "solo_fallback_rps": solo["requests_per_s"],
            "serving_rps": srv["requests_per_s"],
            "speedup": speedup,
            "mean_occupancy": srv["mean_occupancy"],
            "max_ckks_error": err,
        }
        if verbose:
            row = report[program.name]
            print(f"{program.name} ({program.scheme}, N={n}, width={width}, "
                  f"{requests} requests at levels {levels})")
            print(f"  solo fallback        : {row['solo_fallback_rps']:8.1f} req/s")
            print(f"  batched FheServer    : {row['serving_rps']:8.1f} req/s "
                  f"({speedup:.1f}x), occupancy {row['mean_occupancy']:.2f}")
    return report


def modeled_f1_throughput(program: Program, *, width: int,
                          config=None) -> dict:
    """Modeled accelerator serving rate: capacity requests per batch time."""
    batcher = SlotBatcher(program, width=width)
    registry = ProgramRegistry()
    entry, _ = registry.compiled_for(program, config)
    time_ms = entry.compiled.time_ms
    return {
        "capacity": batcher.capacity,
        "batch_time_ms": time_ms,
        "requests_per_s_batched": batcher.capacity / time_ms * 1e3,
        "requests_per_s_solo": 1.0 / time_ms * 1e3,
        "speedup": float(batcher.capacity),
    }


def _compare_one(program: Program, served_values: dict, solo_outputs: dict,
                 t: int, idx: int) -> float:
    """One served result vs its solo-run outputs; returns the CKKS error."""
    max_err = 0.0
    for out_id, solo in solo_outputs.items():
        got = served_values[out_id]
        want = np.asarray(solo)[: got.shape[0]]
        if program.scheme == "ckks":
            max_err = max(max_err, float(np.max(np.abs(got - want))))
        elif not np.array_equal(got % t, want % t):
            raise AssertionError(
                f"served output {out_id} of request {idx} is not "
                f"bit-identical to the solo run"
            )
    return max_err


def _check_ckks_drift(program: Program, max_err: float) -> float:
    if program.scheme == "ckks" and max_err > 1e-2:
        raise AssertionError(
            f"served CKKS outputs drift {max_err:.2e} from solo runs"
        )
    return max_err


def crosscheck(program: Program, served: list, sequential_outputs: list,
               *, width: int, sample: int = 4) -> float:
    """Served outputs must match solo runs; returns the max CKKS error."""
    t = default_plaintext_modulus(program)
    max_err = 0.0
    step = max(1, len(served) // sample)
    for idx in range(0, len(served), step):
        max_err = max(max_err, _compare_one(
            program, served[idx].values, sequential_outputs[idx], t, idx
        ))
    return _check_ckks_drift(program, max_err)


def process_crosscheck(program: Program, served: list,
                       requests: list[Request], *, sample: int = 4) -> float:
    """A sample of process-served outputs must match solo threaded runs.

    Each sampled request is re-run alone, in this process, on a fresh
    functional backend — the comparison itself (bit-identical BGV,
    tolerance CKKS) is shared with :func:`crosscheck`.
    """
    t = default_plaintext_modulus(program)
    max_err = 0.0
    step = max(1, len(served) // sample)
    for idx in range(0, len(served), step):
        solo = repro.run(
            program, backend=FunctionalBackend(validate=False),
            inputs=requests[idx].inputs, plains=requests[idx].plains or None,
            seed=1,
        )
        max_err = max(max_err, _compare_one(
            program, served[idx].values, solo.outputs, t, idx
        ))
    return _check_ckks_drift(program, max_err)


def run_process_loadgen(*, processes: int = 4, n: int = 1024, width: int = 16,
                        requests: int = 48, max_wait_ms: float = 5.0,
                        seed: int = 0, workers: int | None = None,
                        verbose: bool = True) -> dict:
    """Thread-executor vs process-executor serving on a CPU-bound mix.

    Both sides run the identical :class:`FheServer` configuration
    (``workers`` threads, default ``processes``) — only the executor
    changes, so the measured ratio isolates what worker-process context
    replicas buy over the GIL-bound per-context-lock path.
    """
    workers = workers or processes
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    programs = [linear_bgv_program(n, level=3), deep_ckks_program(n)]
    report: dict = {"processes": processes, "cores": cores}
    # Fork the pool before any server thread exists, and reuse it across
    # the whole mix — contexts replicate once per signature per worker.
    pool = ProcessExecutor(processes)
    try:
        for program in programs:
            reqs = synthetic_requests(program, requests, width=width,
                                      seed=seed)
            threaded = serving_throughput(
                program, reqs, width=width, workers=workers,
                max_wait_ms=max_wait_ms, seed=seed, executor="thread",
            )
            processed = serving_throughput(
                program, reqs, width=width, workers=workers,
                max_wait_ms=max_wait_ms, seed=seed, executor=pool,
            )
            err = process_crosscheck(program, processed["results"], reqs)
            speedup = (processed["requests_per_s"]
                       / threaded["requests_per_s"])
            report[program.name] = {
                "scheme": program.scheme,
                "thread_rps": threaded["requests_per_s"],
                "process_rps": processed["requests_per_s"],
                "speedup": speedup,
                "max_ckks_error": err,
            }
            if verbose:
                row = report[program.name]
                print(f"{program.name} ({program.scheme}, N={n}, "
                      f"width={width}, {requests} requests, "
                      f"{processes} workers, {cores} core(s))")
                print(f"  ThreadExecutor       : {row['thread_rps']:8.1f} req/s")
                print(f"  ProcessExecutor      : {row['process_rps']:8.1f} req/s "
                      f"({speedup:.2f}x)")
    finally:
        pool.close()
    return report


def run_cluster_loadgen(*, hosts: int = 2, n: int = 1024, width: int = 16,
                        requests: int = 48, max_batch: int = 8,
                        max_wait_ms: float = 5.0, seed: int = 0,
                        workers: int | None = None,
                        verbose: bool = True) -> dict:
    """Single-host vs N-host remote serving on the CPU-bound mix.

    Every measurement spawns a *fresh* local cluster (cold twiddle/hint
    caches on every host) and tears it down afterwards, so the single-
    and multi-host numbers are directly comparable; ``max_batch`` keeps
    several batches in flight per program, which is what gives the
    consistent-hash router spillover traffic to shard.
    """
    from repro.net.cluster import LocalCluster

    workers = workers or hosts
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    programs = [linear_bgv_program(n, level=3), deep_ckks_program(n)]
    report: dict = {"hosts": hosts, "cores": cores}

    def measure(program, reqs, host_count):
        with LocalCluster(host_count) as cluster:
            with cluster.executor() as pool:
                return serving_throughput(
                    program, reqs, width=width, max_batch=max_batch,
                    workers=workers, max_wait_ms=max_wait_ms, seed=seed,
                    executor=pool,
                )

    for program in programs:
        reqs = synthetic_requests(program, requests, width=width, seed=seed)
        single = measure(program, reqs, 1)
        sharded = measure(program, reqs, hosts)
        err = process_crosscheck(program, sharded["results"], reqs)
        speedup = sharded["requests_per_s"] / single["requests_per_s"]
        report[program.name] = {
            "scheme": program.scheme,
            "single_host_rps": single["requests_per_s"],
            "sharded_rps": sharded["requests_per_s"],
            "speedup": speedup,
            "max_ckks_error": err,
        }
        if verbose:
            row = report[program.name]
            print(f"{program.name} ({program.scheme}, N={n}, width={width}, "
                  f"{requests} requests, max_batch={max_batch}, "
                  f"{hosts} hosts, {cores} core(s))")
            print(f"  1 worker host        : {row['single_host_rps']:8.1f} req/s")
            print(f"  {hosts} worker hosts       : {row['sharded_rps']:8.1f} req/s "
                  f"({speedup:.2f}x)")
    return report


def run_loadgen(*, n: int = 512, width: int = 8, requests: int = 64,
                workers: int = 2, max_wait_ms: float = 5.0,
                seed: int = 0, verbose: bool = True) -> dict:
    """Full report: measured BGV + CKKS serving speedups and modeled F1."""
    report: dict = {}
    for program in (linear_bgv_program(n), poly_ckks_program(n)):
        reqs = synthetic_requests(program, requests, width=width, seed=seed)
        seq = sequential_throughput(program, reqs, seed=seed)
        srv = serving_throughput(program, reqs, width=width,
                                 workers=workers, max_wait_ms=max_wait_ms,
                                 seed=seed)
        err = crosscheck(program, srv["results"], seq["outputs"], width=width)
        speedup = srv["requests_per_s"] / seq["requests_per_s"]
        report[program.name] = {
            "scheme": program.scheme,
            "sequential_rps": seq["requests_per_s"],
            "serving_rps": srv["requests_per_s"],
            "speedup": speedup,
            "mean_occupancy": srv["mean_occupancy"],
            "cache_hit_rate": srv["cache_hit_rate"],
            "p50_latency_ms": srv["latency_ms"]["p50"],
            "p99_latency_ms": srv["latency_ms"]["p99"],
            "max_ckks_error": err,
        }
        if verbose:
            row = report[program.name]
            print(f"{program.name} ({program.scheme}, N={n}, width={width}, "
                  f"{requests} requests)")
            print(f"  sequential repro.run : {row['sequential_rps']:8.1f} req/s")
            print(f"  batched FheServer    : {row['serving_rps']:8.1f} req/s "
                  f"({speedup:.1f}x)")
            print(f"  occupancy {row['mean_occupancy']:.2f}, cache hit rate "
                  f"{row['cache_hit_rate']:.2f}, p50 {row['p50_latency_ms']:.1f} ms, "
                  f"p99 {row['p99_latency_ms']:.1f} ms")
    f1_program = poly_ckks_program(16384, level=8)
    f1 = modeled_f1_throughput(f1_program, width=width)
    report["f1_modeled"] = f1
    if verbose:
        print(f"{f1_program.name} on F1 (modeled, N=16384, width={width})")
        print(f"  one request per run  : {f1['requests_per_s_solo']:8.1f} req/s")
        print(f"  {f1['capacity']} requests per batch: "
              f"{f1['requests_per_s_batched']:8.1f} req/s ({f1['speedup']:.0f}x)")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # n/width/requests default to None so each mode can pick its own
    # defaults (classic: 512/8/64; --processes: 1024/16/48) without
    # clobbering explicitly passed values.
    parser.add_argument("--n", type=int, default=None, help="ring degree")
    parser.add_argument("--width", type=int, default=None,
                        help="values per request")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None,
                        help="server worker threads (classic mode: 2; "
                             "--processes mode: the process count)")
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--processes", type=int, default=0,
                        help="compare thread vs process executors with this "
                             "many workers (0 = classic batching report)")
    parser.add_argument("--hosts", type=int, default=0,
                        help="compare 1-host vs N-host remote serving over "
                             "local worker-host subprocesses (0 = off)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record per-request spans and write a Chrome "
                             "trace-event JSON timeline here (open in "
                             "ui.perfetto.dev); works in every mode, "
                             "including --hosts")
    parser.add_argument("--chaos", metavar="SEED", type=int, default=None,
                        help="run the seeded chaos soak instead: loadgen "
                             "traffic through a fault-injected local "
                             "cluster (drops, corrupt frames, delays, one "
                             "worker kill + restart); exits non-zero if "
                             "any future is lost or any ok result "
                             "diverges from a solo run")
    args = parser.parse_args(argv)
    if not args.trace:
        return _run(args)
    # Enable the process-wide tracer up front: FheServer.submit mints a
    # trace id per request whenever the tracer is live, and worker-side
    # spans ship back over the wire into the coordinator ring dumped below.
    from repro.obs.trace import tracer

    tracer().set_label("coordinator")
    tracer().enable()
    try:
        return _run(args)
    finally:
        n_spans = tracer().dump(args.trace)
        print(f"trace: {n_spans} spans -> {args.trace}")


def _run(args) -> int:
    if args.chaos is not None:
        from repro.net.chaos import chaos_soak

        return chaos_soak(
            seed=args.chaos,
            hosts=args.hosts or 2,
            requests=args.requests or 32,
            n=args.n or 256,
            width=args.width or 8,
        )
    if args.hosts:
        report = run_cluster_loadgen(
            hosts=args.hosts,
            n=args.n or 1024,
            width=args.width or 16,
            requests=args.requests or 48,
            max_wait_ms=args.max_wait_ms,
            workers=args.workers,
        )
        speedups = [row["speedup"] for row in report.values()
                    if isinstance(row, dict)]
        floor = min(speedups)
        cores = report["cores"]
        print(f"\nmin sharded-vs-single-host speedup: {floor:.2f}x on "
              f"{cores} core(s) ({'>=' if floor >= 1.5 else '<'} 1.5x "
              f"target; outputs cross-checked against solo runs)")
        if cores < 2:
            print("single-core host: the 1.5x multi-core target cannot "
                  "materialize here; correctness cross-check is the gate")
            return 0
        return 0 if floor >= 1.5 else 1
    if args.processes:
        report = run_process_loadgen(
            processes=args.processes,
            n=args.n or 1024,
            width=args.width or 16,
            requests=args.requests or 48,
            max_wait_ms=args.max_wait_ms,
            workers=args.workers,
        )
        speedups = [row["speedup"] for key, row in report.items()
                    if isinstance(row, dict)]
        floor = min(speedups)
        cores = report["cores"]
        print(f"\nmin process-vs-thread speedup: {floor:.2f}x on "
              f"{cores} core(s) ({'>=' if floor >= 2 else '<'} 2x target; "
              f"outputs cross-checked against solo runs)")
        if cores < 2:
            print("single-core host: the 2x multi-core target cannot "
                  "materialize here; correctness cross-check is the gate")
            return 0
        return 0 if floor >= 2.0 else 1
    report = run_loadgen(n=args.n or 512, width=args.width or 8,
                         requests=args.requests or 64,
                         workers=args.workers or 2,
                         max_wait_ms=args.max_wait_ms)
    measured = [row["speedup"] for key, row in report.items()
                if key != "f1_modeled"]
    floor = min(measured)
    print(f"\nmin measured serving speedup: {floor:.1f}x "
          f"({'>=' if floor >= 5 else '<'} 5x target)")
    print()
    mixed = run_mixed_loadgen(n=args.n or 512, width=args.width or 8,
                              requests=args.requests or 64,
                              workers=args.workers or 2,
                              max_wait_ms=args.max_wait_ms)
    mixed_floor = min(row["speedup"] for row in mixed.values())
    print(f"\nmin mixed-depth/rotation speedup over solo fallback: "
          f"{mixed_floor:.1f}x ({'>=' if mixed_floor >= 2 else '<'} 2x "
          f"target; outputs cross-checked against solo runs)")
    return 0 if floor >= 5.0 and mixed_floor >= 2.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
