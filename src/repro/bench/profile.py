"""cProfile-based hot-kernel breakdown for the functional engine.

The perf gate (``benchmarks/check_perf.py``) tells you *whether* a kernel got
slower; this tool tells you *where the next bottleneck is*.  It runs a
workload program on the real-encryption functional backend under cProfile
and reports two views:

- a **kernel-bucket summary**: cumulative time attributed to the engine's
  hot layers (NTT stage loops, modular kernels, key switching, the RNS base
  conversions — ``base_extend`` / ``scale_down`` / ``crt_from_rns`` each get
  their own bucket — automorphisms, sampling, and raw numpy), so a perf PR
  can see at a glance which layer dominates;
- the raw **top functions by self time**, for drilling past the buckets.

Usage (any checkout)::

    PYTHONPATH=src python -m repro.bench.profile lola_mnist_uw
    PYTHONPATH=src python -m repro.bench.profile db_lookup --n 1024 --scale 0.1
    PYTHONPATH=src python -m repro.bench.profile serve_linear_bgv --json

``--json`` emits one machine-readable object (workload metadata, bucket
self-times, top functions) on stdout instead of the tables, for scripted
before/after comparisons across perf PRs.

Workloads are the Table-3 DSL generators (:mod:`repro.bench.workloads`) plus
the small serving circuits from :mod:`repro.bench.loadgen`; sizes default to
functional-simulator-friendly N=1024, scale=0.1.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys

#: function-name -> kernel bucket, checked before the path buckets so the
#: base-conversion pipeline is split out of the files that host it.
FUNCTION_BUCKETS = {
    "base_extend": "base-extend",
    "base_extend_reference": "base-extend",
    "scale_down": "scale-down",
    "_scale_down_fast": "scale-down",
    "scale_down_reference": "scale-down",
    "from_rns": "crt-from-rns",
    "_from_rns_exact": "crt-from-rns",
    "reconstruct": "crt-from-rns",
}

#: path substring -> kernel bucket (first match wins, top to bottom).
KERNEL_BUCKETS = [
    ("repro/poly/ntt.py", "ntt"),
    ("repro/poly/parallel.py", "thread-fan"),
    ("repro/poly/kernels.py", "modular-kernels"),
    ("repro/rns/convert.py", "base-extend"),
    ("repro/fhe/keyswitch.py", "key-switch"),
    ("repro/rns/crt.py", "crt"),
    ("repro/poly/automorphism.py", "automorphism"),
    ("repro/poly/polynomial.py", "poly-elementwise"),
    ("repro/fhe/sampling.py", "sampling"),
    ("repro/fhe/encoding.py", "encoding"),
    ("repro/fhe/", "scheme-ops"),
    ("repro/sim/", "interpreter"),
]


def available_workloads(n: int, scale: float) -> dict:
    from repro.bench.loadgen import linear_bgv_program, poly_ckks_program
    from repro.bench.workloads import benchmark_suite

    progs = dict(benchmark_suite(scale=scale, n=n))
    progs["serve_linear_bgv"] = linear_bgv_program(n)
    progs["serve_poly_ckks"] = poly_ckks_program(n)
    return progs


def _bucket_of(path: str, func: str) -> str | None:
    path = path.replace("\\", "/")
    if "repro/" in path and func in FUNCTION_BUCKETS:
        return FUNCTION_BUCKETS[func]
    for needle, bucket in KERNEL_BUCKETS:
        if needle in path:
            return bucket
    return None


def profile_workload(name: str, *, n: int = 1024, scale: float = 0.1,
                     top: int = 20, seed: int = 0,
                     as_json: bool = False) -> pstats.Stats:
    """Run ``name`` under cProfile and print the kernel breakdown."""
    progs = available_workloads(n, scale)
    if name not in progs:
        raise SystemExit(
            f"unknown workload {name!r}; available: {', '.join(sorted(progs))}"
        )
    program = progs[name]
    from repro.backends import FunctionalBackend

    # validate=False: the plaintext reference evaluation would dominate the
    # profile, and several Table-3 workloads only meet the CKKS tolerance at
    # full-size parameters anyway — this tool measures engine time, not
    # numerical accuracy (the tier-1 suites own that).
    backend = FunctionalBackend(validate=False)
    backend.run(program, seed=seed)  # warm NTT plans / hint caches / lru tables

    profiler = cProfile.Profile()
    profiler.enable()
    backend.run(program, seed=seed)
    profiler.disable()

    stats = pstats.Stats(profiler)
    total = stats.total_tt

    # Bucket self-time (tottime) by engine layer.
    buckets: dict[str, float] = {}
    numpy_time = 0.0
    for (path, _line, func), (_cc, _nc, tt, _ct, _callers) in stats.stats.items():
        bucket = _bucket_of(path, func)
        if bucket is None and ("numpy" in path or path == "~"):
            numpy_time += tt
            continue
        if bucket is not None:
            buckets[bucket] = buckets.get(bucket, 0.0) + tt
    buckets["numpy-builtin"] = numpy_time

    if as_json:
        top_funcs = sorted(
            (
                {"file": path, "line": line, "function": func,
                 "self_s": round(tt, 6), "cumulative_s": round(ct, 6),
                 "calls": nc}
                for (path, line, func), (_cc, nc, tt, ct, _callers)
                in stats.stats.items()
            ),
            key=lambda d: -d["self_s"],
        )[:top]
        print(json.dumps({
            "workload": name,
            "n": program.n,
            "scheme": program.scheme,
            "ops": len(program.ops),
            "seed": seed,
            "total_s": round(total, 6),
            "buckets": {
                b: round(tt, 6)
                for b, tt in sorted(buckets.items(), key=lambda kv: -kv[1])
                if tt > 0
            },
            "top": top_funcs,
        }, indent=2))
        return stats

    print(f"\nworkload {name}: N={program.n}, scheme={program.scheme}, "
          f"{len(program.ops)} ops — total {total:.3f}s")
    print(f"\n{'kernel bucket':20s} {'self-time':>10s} {'share':>7s}")
    for bucket, tt in sorted(buckets.items(), key=lambda kv: -kv[1]):
        if tt > 0:
            print(f"{bucket:20s} {tt:9.3f}s {100 * tt / total:6.1f}%")

    print(f"\ntop {top} functions by self time:")
    stats.sort_stats("tottime").print_stats(top)
    return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("workload", help="workload name (see module docstring)")
    parser.add_argument("--n", type=int, default=1024)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON object instead "
                             "of the tables")
    args = parser.parse_args(argv)
    profile_workload(args.workload, n=args.n, scale=args.scale,
                     top=args.top, seed=args.seed, as_json=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
