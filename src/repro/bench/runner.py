"""Harnesses regenerating every table and figure of the evaluation (Sec. 8).

Each ``tableN_rows`` / ``figN_data`` function returns plain dict/list data so
the pytest-benchmark suites under ``benchmarks/`` can both time the pipeline
and print the same rows/series the paper reports.  Paper reference numbers
live alongside for EXPERIMENTS.md comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.backends import CpuBackend, F1Backend
from repro.baselines.cpu import CpuModel
from repro.baselines.heax import HeaxModel
from repro.bench.micro import MICRO_PARAM_SETS, level_for_log_q, microbenchmark_f1_ns
from repro.bench.workloads import benchmark_suite
from repro.compiler.pipeline import CompiledProgram, compile_program
from repro.core.area import area_mm2
from repro.core.config import F1Config
from repro.dsl.program import Program
from repro.sim.stats import power_breakdown, traffic_fractions, utilization_timeline

#: Table 3 paper reference speedups (for EXPERIMENTS.md comparison).
PAPER_TABLE3_SPEEDUPS = {
    "lola_cifar": 5011,
    "lola_mnist_uw": 17412,
    "lola_mnist_ew": 15086,
    "logistic_regression": 7217,
    "db_lookup": 6722,
    "bgv_bootstrapping": 1830,
    "ckks_bootstrapping": 1195,
}

#: Benchmarks whose CPU baseline the paper runs multithreaded (DB lookup is
#: explicitly parallelized across all 8 threads, Sec. 7).
CPU_THREADS = {"db_lookup": 8}

#: Software-stack efficiency factors: the paper's CPU baselines are specific
#: measured implementations, not the idealized hand-tuned kernels our
#: CpuModel constants are fitted to (Table 4's primitives).  Factors are
#: derived by dividing the paper's measured full-benchmark CPU time by the
#: CpuModel's prediction over the same op graph at paper scale (see
#: EXPERIMENTS.md): HELib/HEAAN kernels run ~1.7-4.3x off the primitive model
#: (cache misses at large L, allocation churn), while LoLa's released B/FV
#: implementation is ~10x off.  LoLa-CIFAR keeps factor 1.0: its measured
#: 127x raw ratio is dominated by the size gap between our scaled network and
#: the real 6-layer CIFAR model rather than per-op inefficiency, and the gap
#: cancels in the speedup since F1 runs the same scaled graph (EXPERIMENTS.md
#: discusses this limitation).
CPU_SOFTWARE_FACTOR = {
    "lola_cifar": 1.0,
    "lola_mnist_uw": 10.8,
    "lola_mnist_ew": 9.6,
    "logistic_regression": 1.71,
    # HElib per-op gap, consistent with the other HElib-family rows (the
    # residual vs. the measured 29.3 s is the width gap between our scaled
    # database and the full country DB; see EXPERIMENTS.md).
    "db_lookup": 10.9,
    "bgv_bootstrapping": 0.73,   # HElib's tuned extraction beats the naive table
    "ckks_bootstrapping": 0.67,
}


@dataclass
class BenchmarkResult:
    name: str
    compiled: CompiledProgram
    cpu_ms: float
    checked: bool

    @property
    def f1_ms(self) -> float:
        return self.compiled.time_ms

    @property
    def speedup(self) -> float:
        return self.cpu_ms / self.f1_ms


def run_benchmark(
    program: Program,
    config: F1Config | None = None,
    *,
    scheduler: str = "f1",
    check: bool = True,
) -> BenchmarkResult:
    """Run one workload on the F1 and CPU backends and pair the results.

    This is per-backend plumbing over :mod:`repro.backends`: the F1 side
    compiles/checks/models through :class:`F1Backend`, the CPU side through
    :class:`CpuBackend` with the paper's thread counts and software-stack
    efficiency factors applied.
    """
    f1 = F1Backend(config, scheduler=scheduler, check=check).run(program)
    cpu = CpuBackend(
        threads=CPU_THREADS.get(program.name, 1),
        software_factor=CPU_SOFTWARE_FACTOR.get(program.name, 1.0),
    ).run(program)
    return BenchmarkResult(
        name=program.name,
        compiled=f1.stats["compiled"],
        cpu_ms=cpu.time_ms,
        checked=check,
    )


def _gmean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


# --------------------------------------------------------------------- Table 3
def table3_rows(*, scale: float = 0.25, n: int = 16384, config: F1Config | None = None) -> list[dict]:
    """Full-benchmark F1 vs CPU execution times and speedups."""
    rows = []
    for name, program in benchmark_suite(scale=scale, n=n).items():
        result = run_benchmark(program, config)
        rows.append(
            {
                "benchmark": name,
                "cpu_ms": round(result.cpu_ms, 3),
                "f1_ms": round(result.f1_ms, 4),
                "speedup": round(result.speedup, 1),
                "paper_speedup": PAPER_TABLE3_SPEEDUPS[name],
            }
        )
    rows.append(
        {
            "benchmark": "gmean",
            "speedup": round(_gmean(r["speedup"] for r in rows), 1),
            "paper_speedup": 5432,
        }
    )
    return rows


# --------------------------------------------------------------------- Table 4
PAPER_TABLE4 = {
    # op -> {(n, logq): (f1_ns, cpu_speedup, heax_speedup)}
    "ntt": {(1 << 12, 109): (12.8, 17148, 1600), (1 << 13, 218): (44.8, 10736, 1733),
            (1 << 14, 438): (179.2, 8838, 1866)},
    "aut": {(1 << 12, 109): (12.8, 7364, 440), (1 << 13, 218): (44.8, 8250, 426),
            (1 << 14, 438): (179.2, 16957, 430)},
    "mul": {(1 << 12, 109): (60.0, 48640, 172), (1 << 13, 218): (300.0, 27069, 148),
            (1 << 14, 438): (2000.0, 14396, 190)},
    "perm": {(1 << 12, 109): (40.0, 17488, 256), (1 << 13, 218): (224.0, 10814, 198),
             (1 << 14, 438): (1680.0, 6421, 227)},
}


def table4_rows(config: F1Config | None = None) -> list[dict]:
    """Microbenchmark reciprocal throughputs and speedups vs CPU / HEAX-σ."""
    cpu = CpuModel()
    heax = HeaxModel()
    cpu_ms = {
        "ntt": cpu.ciphertext_ntt_ms, "aut": cpu.ciphertext_aut_ms,
        "mul": cpu.homomorphic_mul_ms, "perm": cpu.homomorphic_perm_ms,
    }
    heax_ms = {
        "ntt": heax.ciphertext_ntt_ms, "aut": heax.ciphertext_aut_ms,
        "mul": heax.homomorphic_mul_ms, "perm": heax.homomorphic_perm_ms,
    }
    rows = []
    for op in ("ntt", "aut", "mul", "perm"):
        for n, log_q in MICRO_PARAM_SETS:
            level = level_for_log_q(log_q)
            f1_ns = microbenchmark_f1_ns(op, n, log_q, config)
            c_ms = cpu_ms[op](n, level)
            h_ms = heax_ms[op](n, level)
            paper = PAPER_TABLE4[op][(n, log_q)]
            rows.append(
                {
                    "op": op, "n": n, "log_q": log_q,
                    "f1_ns": round(f1_ns, 1),
                    "speedup_vs_cpu": round(c_ms * 1e6 / f1_ns),
                    "speedup_vs_heax": round(h_ms * 1e6 / f1_ns),
                    "paper_f1_ns": paper[0],
                    "paper_speedup_vs_cpu": paper[1],
                    "paper_speedup_vs_heax": paper[2],
                }
            )
    return rows


# --------------------------------------------------------------------- Table 5
def table5_rows(*, scale: float = 0.2, n: int = 16384) -> list[dict]:
    """Slowdowns of the low-throughput-FU and CSR-scheduled variants."""
    base_cfg = F1Config()
    variants = {
        "lt_ntt": (base_cfg.with_low_throughput_ntt(), "f1"),
        "lt_aut": (base_cfg.with_low_throughput_aut(), "f1"),
        "csr": (base_cfg, "csr"),
    }
    paper = {
        "lt_ntt": {"lola_cifar": 3.5, "lola_mnist_uw": 5.0, "lola_mnist_ew": 5.1,
                   "logistic_regression": 1.7, "db_lookup": 2.8,
                   "bgv_bootstrapping": 1.5, "ckks_bootstrapping": 1.1},
        "lt_aut": {"lola_cifar": 12.1, "lola_mnist_uw": 4.2, "lola_mnist_ew": 11.9,
                   "logistic_regression": 2.3, "db_lookup": 2.2,
                   "bgv_bootstrapping": 1.3, "ckks_bootstrapping": 1.2},
        "csr": {"lola_mnist_uw": 1.1, "lola_mnist_ew": 7.5,
                "logistic_regression": 11.7, "bgv_bootstrapping": 5.0,
                "ckks_bootstrapping": 2.7},
    }
    rows = []
    for name, program in benchmark_suite(scale=scale, n=n).items():
        base = run_benchmark(program, base_cfg, check=False)
        row = {"benchmark": name, "f1_ms": round(base.f1_ms, 4)}
        for vname, (cfg, sched) in variants.items():
            if vname == "csr" and name not in paper["csr"]:
                row[vname] = None   # paper: "CSR is intractable for this one"
                continue
            variant = run_benchmark(program, cfg, scheduler=sched, check=False)
            row[vname] = round(variant.f1_ms / base.f1_ms, 2)
            row[f"paper_{vname}"] = paper[vname].get(name)
        rows.append(row)
    return rows


# --------------------------------------------------------------------- Fig. 9
def fig9_data(*, scale: float = 0.25, n: int = 16384) -> dict:
    """Per-benchmark off-chip traffic fractions (9a) and power breakdown (9b)."""
    out = {}
    for name, program in benchmark_suite(scale=scale, n=n).items():
        compiled = compile_program(program)
        rvec = compiled.config.rvec_bytes(n)
        out[name] = {
            "traffic_total_bytes": sum(compiled.traffic_breakdown_bytes().values()),
            "traffic_fractions": traffic_fractions(compiled.movement, rvec),
            "power_w": power_breakdown(compiled.schedule, compiled.movement),
        }
    return out


# -------------------------------------------------------------------- Fig. 10
def fig10_data(*, scale: float = 0.25, n: int = 16384, windows: int = 64):
    """FU + HBM utilization over time for LoLa-MNIST unencrypted weights."""
    from repro.bench.workloads import lola_mnist

    compiled = compile_program(lola_mnist(encrypted_weights=False, scale=scale, n=n))
    return utilization_timeline(compiled.schedule, windows=windows)


# -------------------------------------------------------------------- Fig. 11
def fig11_points(*, scale: float = 0.15, n: int = 16384) -> list[dict]:
    """Performance vs area across scaled-down F1 configurations."""
    sweep = [
        F1Config().scaled(clusters=c, banks=b, phys=p)
        for c, b, p in [
            (4, 8, 1), (8, 8, 1), (8, 16, 1), (12, 16, 2), (16, 16, 2),
        ]
    ]
    programs = benchmark_suite(scale=scale, n=n)
    points = []
    for cfg in sweep:
        times = [run_benchmark(prog, cfg, check=False).f1_ms
                 for prog in programs.values()]
        points.append(
            {
                "config": cfg.name,
                "area_mm2": area_mm2(cfg),
                "gmean_time_ms": round(_gmean(times), 4),
            }
        )
    best = min(pt["gmean_time_ms"] for pt in points)
    for pt in points:
        pt["normalized_perf"] = round(best / pt["gmean_time_ms"], 3)
    return points
