"""Energy model for the Fig. 9b power breakdowns.

Per-event energies are derived from the Table 2 TDP figures (a component at
TDP for one cycle consumes TDP/f joules) plus standard HBM2 per-byte energy.
The simulator multiplies these by per-component activity counts; average
power = total energy / (makespan / f).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.area import (
    ADD_FU_TDP,
    AUT_FU_TDP,
    MUL_FU_TDP,
    NTT_FU_TDP,
    RF_TDP_PER_512KB,
    NOC_TDP_16x16_3X,
    SCRATCHPAD_TDP_PER_4MB_BANK,
)
from repro.core.config import F1Config


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in nanojoules."""

    fu_busy_nj_per_cycle: dict
    rf_access_nj_per_rvec_chunk: float
    scratchpad_nj_per_byte: float
    noc_nj_per_byte: float
    hbm_nj_per_byte: float

    @classmethod
    def from_config(cls, cfg: F1Config) -> "EnergyModel":
        f_ghz = cfg.frequency_ghz
        # One busy cycle at TDP: TDP[W] / f[GHz] = nJ per cycle.
        fu = {
            "ntt": NTT_FU_TDP / f_ghz / cfg.ntt.throughput_div,
            "aut": AUT_FU_TDP / f_ghz / cfg.aut.throughput_div,
            "mul": MUL_FU_TDP / f_ghz,
            "add": ADD_FU_TDP / f_ghz,
        }
        # RF at TDP serves ~10 reads + 6 writes of E elements per cycle.
        rf_chunk = RF_TDP_PER_512KB / f_ghz / 16
        # Scratchpad at TDP streams banks * 512 B per cycle.
        scratch_per_byte = (SCRATCHPAD_TDP_PER_4MB_BANK * 16 / f_ghz) / (16 * 512)
        # NoC at TDP moves 3 crossbars * 16 ports * 512 B per cycle.
        noc_per_byte = (NOC_TDP_16x16_3X / f_ghz) / (3 * 16 * 512)
        # HBM2: ~7 pJ/bit off-chip + PHY, standard figure.
        hbm_per_byte = 7.0 * 8 / 1000  # nJ/byte
        return cls(
            fu_busy_nj_per_cycle=fu,
            rf_access_nj_per_rvec_chunk=rf_chunk,
            scratchpad_nj_per_byte=scratch_per_byte,
            noc_nj_per_byte=noc_per_byte,
            hbm_nj_per_byte=hbm_per_byte,
        )
