"""Area and TDP model (Table 2), config-scaled for the Fig. 11 sweep.

Per-component constants are the paper's 14/12 nm synthesis results; the model
composes them for arbitrary :class:`~repro.core.config.F1Config` instances.
The paper's default configuration must reproduce Table 2's totals
(151.4 mm^2 / 180.4 W) exactly — a unit test pins this.
"""

from __future__ import annotations

from repro.core.config import F1Config

# Table 2 constants (mm^2, W).
NTT_FU_AREA, NTT_FU_TDP = 2.27, 4.80
AUT_FU_AREA, AUT_FU_TDP = 0.58, 0.99
MUL_FU_AREA, MUL_FU_TDP = 0.25, 0.60
ADD_FU_AREA, ADD_FU_TDP = 0.03, 0.05
RF_AREA_PER_512KB, RF_TDP_PER_512KB = 0.56, 1.67
SCRATCHPAD_AREA_PER_4MB_BANK, SCRATCHPAD_TDP_PER_4MB_BANK = 48.09 / 16, 20.35 / 16
NOC_AREA_16x16_3X, NOC_TDP_16x16_3X = 10.02, 19.65
HBM_PHY_AREA, HBM_PHY_TDP = 29.80 / 2, 0.45 / 2


def cluster_area_mm2(cfg: F1Config) -> float:
    """One compute cluster: FUs plus the banked vector register file."""
    return (
        cfg.ntt.count * NTT_FU_AREA / cfg.ntt.throughput_div
        + cfg.aut.count * AUT_FU_AREA / cfg.aut.throughput_div
        + cfg.mul.count * MUL_FU_AREA
        + cfg.add.count * ADD_FU_AREA
        + (cfg.register_file_kb / 512) * RF_AREA_PER_512KB
    )


def cluster_tdp_w(cfg: F1Config) -> float:
    return (
        cfg.ntt.count * NTT_FU_TDP / cfg.ntt.throughput_div
        + cfg.aut.count * AUT_FU_TDP / cfg.aut.throughput_div
        + cfg.mul.count * MUL_FU_TDP
        + cfg.add.count * ADD_FU_TDP
        + (cfg.register_file_kb / 512) * RF_TDP_PER_512KB
    )


def area_report(cfg: F1Config | None = None) -> dict:
    """Regenerate Table 2 for a configuration (default: the paper's)."""
    cfg = cfg or F1Config()
    bank_mb = cfg.scratchpad_mb / cfg.scratchpad_banks
    scratch_area = cfg.scratchpad_banks * SCRATCHPAD_AREA_PER_4MB_BANK * (bank_mb / 4)
    scratch_tdp = cfg.scratchpad_banks * SCRATCHPAD_TDP_PER_4MB_BANK * (bank_mb / 4)
    # The three crossbars scale ~quadratically with port count [58]; Table 2's
    # constant is for 16x16.
    ports = max(cfg.clusters, cfg.scratchpad_banks)
    noc_area = NOC_AREA_16x16_3X * (ports / 16) ** 2
    noc_tdp = NOC_TDP_16x16_3X * (ports / 16) ** 2
    rows = {
        "NTT FU": (NTT_FU_AREA, NTT_FU_TDP),
        "Automorphism FU": (AUT_FU_AREA, AUT_FU_TDP),
        "Multiply FU": (MUL_FU_AREA, MUL_FU_TDP),
        "Add FU": (ADD_FU_AREA, ADD_FU_TDP),
        "Vector RegFile (512 KB)": (RF_AREA_PER_512KB, RF_TDP_PER_512KB),
        "Compute cluster": (cluster_area_mm2(cfg), cluster_tdp_w(cfg)),
        "Total compute": (cluster_area_mm2(cfg) * cfg.clusters,
                          cluster_tdp_w(cfg) * cfg.clusters),
        "Scratchpad": (scratch_area, scratch_tdp),
        "NoC": (noc_area, noc_tdp),
        "Memory interface": (HBM_PHY_AREA * cfg.hbm_phys, HBM_PHY_TDP * cfg.hbm_phys),
        "Total memory system": (
            scratch_area + noc_area + HBM_PHY_AREA * cfg.hbm_phys,
            scratch_tdp + noc_tdp + HBM_PHY_TDP * cfg.hbm_phys,
        ),
    }
    total_area = rows["Total compute"][0] + rows["Total memory system"][0]
    total_tdp = rows["Total compute"][1] + rows["Total memory system"][1]
    rows["Total F1"] = (total_area, total_tdp)
    return {name: {"area_mm2": round(a, 2), "tdp_w": round(t, 2)}
            for name, (a, t) in rows.items()}


def area_mm2(cfg: F1Config) -> float:
    return area_report(cfg)["Total F1"]["area_mm2"]


def tdp_w(cfg: F1Config) -> float:
    return area_report(cfg)["Total F1"]["tdp_w"]
