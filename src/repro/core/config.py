"""F1 architecture description (Fig. 3's "Architecture Description" input).

The default configuration is the paper's 151.4 mm^2 design point (Sec. 6):
16 compute clusters (1 NTT, 1 automorphism, 2 multiplier, 2 adder FUs each,
E = 128 lanes), a 64 MB scratchpad in 16 banks, 3 bit-sliced 16x16 crossbars
with 512-byte ports, and 2 HBM2 PHYs totalling 1 TB/s.  Logic runs at 1 GHz
(memories double-pumped at 2 GHz); all timing below is in 1 GHz cycles.

Functional-unit timing: every FU is fully pipelined and consumes E elements
per cycle, so the *occupancy* of one residue-vector op is G = N/E cycles; the
result emerges after occupancy plus a fixed pipeline depth.  The NTT and
automorphism units buffer a full residue polynomial for their transpose
stages, so their depths include G.

Table-5 variants: ``low_throughput_ntt`` / ``low_throughput_aut`` configs use
HEAX-style FUs processing one butterfly stage (resp. one SRAM port) per
cycle — per-unit throughput drops by the stage count, and the unit count is
scaled up to hold aggregate throughput constant, exactly as in Sec. 8.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class FuSpec:
    """One functional-unit kind inside a cluster."""

    count: int            # units per cluster
    throughput_div: int   # occupancy multiplier vs. fully-pipelined (1 = full)
    pipeline_depth: int   # extra latency cycles beyond occupancy


@dataclass(frozen=True)
class F1Config:
    name: str = "F1"
    clusters: int = 16
    lanes: int = 128                      # E
    # Per-cluster functional units (Sec. 3: 1 NTT, 1 aut, 2 mul, 2 add).
    ntt: FuSpec = FuSpec(count=1, throughput_div=1, pipeline_depth=0)
    aut: FuSpec = FuSpec(count=1, throughput_div=1, pipeline_depth=0)
    mul: FuSpec = FuSpec(count=2, throughput_div=1, pipeline_depth=12)
    add: FuSpec = FuSpec(count=2, throughput_div=1, pipeline_depth=4)
    # Memory system.
    scratchpad_mb: int = 64
    scratchpad_banks: int = 16
    register_file_kb: int = 512           # per cluster
    hbm_phys: int = 2
    hbm_gb_per_s_per_phy: int = 512       # 1 TB/s total by default
    hbm_latency_cycles: int = 120
    noc_port_bytes: int = 512             # crossbar port width
    frequency_ghz: float = 1.0

    # ------------------------------------------------------------- derived
    def rvec_bytes(self, n: int) -> int:
        """Size of one residue vector (N x 32-bit words)."""
        return 4 * n

    def chunks(self, n: int) -> int:
        """G = N / E: cycles of occupancy for one fully-pipelined vector op."""
        return max(1, n // self.lanes)

    def scratchpad_capacity_rvecs(self, n: int) -> int:
        return (self.scratchpad_mb << 20) // self.rvec_bytes(n)

    def hbm_bytes_per_cycle(self) -> float:
        total_gb_s = self.hbm_phys * self.hbm_gb_per_s_per_phy
        return total_gb_s / self.frequency_ghz  # GB/s at GHz = bytes/cycle

    def load_cycles(self, n: int) -> float:
        """Aggregate-bandwidth occupancy of loading one residue vector."""
        return self.rvec_bytes(n) / self.hbm_bytes_per_cycle()

    def transfer_cycles(self, n: int) -> int:
        """Bank->cluster (or cluster->cluster) transfer of one residue vector.

        Ports are 512 B wide, so a vector streams at the FU consumption rate:
        N*4 / 512 cycles = G for E = 128.
        """
        return max(1, (self.rvec_bytes(n) + self.noc_port_bytes - 1) // self.noc_port_bytes)

    def fu_occupancy(self, kind: str, n: int) -> int:
        spec = self._spec(kind)
        return self.chunks(n) * spec.throughput_div

    def fu_latency(self, kind: str, n: int) -> int:
        """Issue-to-result latency of one residue-vector op."""
        spec = self._spec(kind)
        g = self.chunks(n)
        base = g * spec.throughput_div + spec.pipeline_depth
        if kind in ("ntt", "intt"):
            # Four-step pipeline: NTT, twiddle multiply, transpose (buffers
            # the G x E matrix: G cycles), NTT (Sec. 5.2).
            return base + g + 2 * _log2(self.lanes) + 8
        if kind == "aut":
            # Column permute, transpose, row permute, transpose (Sec. 5.1).
            return base + 2 * g + 4
        return base

    def _spec(self, kind: str) -> FuSpec:
        if kind in ("ntt", "intt"):
            return self.ntt
        if kind == "aut":
            return self.aut
        if kind == "mul":
            return self.mul
        if kind in ("add", "sub"):
            return self.add
        raise ValueError(f"unknown FU kind {kind!r}")

    def fu_count(self, kind: str) -> int:
        return self._spec(kind).count * self.clusters

    # ------------------------------------------------------------- variants
    def with_low_throughput_ntt(self) -> "F1Config":
        """HEAX-style NTT FUs: one butterfly stage per cycle, count scaled up
        to keep aggregate throughput constant (Table 5, 'LT NTT')."""
        stages = _log2(self.lanes)
        return replace(
            self,
            name=self.name + "+LT-NTT",
            ntt=FuSpec(count=self.ntt.count * stages, throughput_div=stages,
                       pipeline_depth=self.ntt.pipeline_depth),
        )

    def with_low_throughput_aut(self) -> "F1Config":
        """Serial-SRAM automorphism FUs (Table 5, 'LT Aut')."""
        slowdown = 8  # SRAM-bank serial access vs. 128-lane vector unit
        return replace(
            self,
            name=self.name + "+LT-Aut",
            aut=FuSpec(count=self.aut.count * slowdown, throughput_div=slowdown,
                       pipeline_depth=self.aut.pipeline_depth),
        )

    def scaled(self, *, clusters: int | None = None, banks: int | None = None,
               phys: int | None = None, scratchpad_mb: int | None = None) -> "F1Config":
        """Resized configuration for the Fig. 11 design-space sweep."""
        return replace(
            self,
            name=f"F1-c{clusters or self.clusters}b{banks or self.scratchpad_banks}"
                 f"p{phys or self.hbm_phys}",
            clusters=clusters or self.clusters,
            scratchpad_banks=banks or self.scratchpad_banks,
            scratchpad_mb=scratchpad_mb
            or (self.scratchpad_mb * (banks or self.scratchpad_banks)
                // self.scratchpad_banks),
            hbm_phys=phys or self.hbm_phys,
        )


def _log2(x: int) -> int:
    return x.bit_length() - 1


DEFAULT_CONFIG = F1Config()
