"""F1's instruction set at residue-vector (RVec) granularity.

A ciphertext polynomial is L residue vectors; every compute instruction reads
one or two RVecs and produces one.  This is the granularity the paper's
compiler schedules ("our scratchpad stores at least 1024 residue vectors").

Values carry a *kind* so the data-movement scheduler can classify traffic the
way Fig. 9a does: key-switch hints (KSH), program inputs, plaintext operands,
and intermediates (which spill/fill).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class InstrKind(enum.Enum):
    NTT = "ntt"
    INTT = "intt"
    MUL = "mul"
    ADD = "add"
    SUB = "sub"
    AUT = "aut"

    @property
    def fu(self) -> str:
        """Functional-unit family executing this instruction."""
        if self in (InstrKind.NTT, InstrKind.INTT):
            return "ntt"
        if self is InstrKind.AUT:
            return "aut"
        if self is InstrKind.MUL:
            return "mul"
        return "add"


class ValueKind(enum.Enum):
    INPUT = "input"        # encrypted program input (off-chip master copy)
    KSH = "ksh"            # key-switch hint RVec (off-chip master copy)
    PLAIN = "plain"        # unencrypted operand (off-chip master copy)
    INTERMEDIATE = "intermediate"
    OUTPUT = "output"


@dataclass
class Value:
    """One residue vector flowing through the instruction DFG."""

    value_id: int
    kind: ValueKind
    producer: int | None = None          # instruction id, None for off-chip
    users: list[int] = field(default_factory=list)
    hint_id: str | None = None           # for KSH values: which hint
    name: str = ""

    @property
    def off_chip_master(self) -> bool:
        """True if the value originates off-chip (loads of it are clean)."""
        return self.kind in (ValueKind.INPUT, ValueKind.KSH, ValueKind.PLAIN)


@dataclass
class Instruction:
    """One vector operation; ``priority`` is the phase-1 global order."""

    instr_id: int
    kind: InstrKind
    inputs: tuple[int, ...]
    output: int
    n: int
    priority: int = 0
    he_op: int = -1                      # originating homomorphic op
    rotate_exponent: int = 0             # for AUT


class InstructionGraph:
    """Instruction-level dataflow graph (the output of compiler phase 1)."""

    def __init__(self, n: int):
        self.n = n
        self.instructions: list[Instruction] = []
        self.values: list[Value] = []

    # ------------------------------------------------------------- building
    def new_value(self, kind: ValueKind, *, producer: int | None = None,
                  hint_id: str | None = None, name: str = "") -> int:
        v = Value(value_id=len(self.values), kind=kind, producer=producer,
                  hint_id=hint_id, name=name)
        self.values.append(v)
        return v.value_id

    def emit(self, kind: InstrKind, inputs: tuple[int, ...], *,
             he_op: int = -1, rotate_exponent: int = 0,
             out_kind: ValueKind = ValueKind.INTERMEDIATE) -> int:
        """Append an instruction; returns the produced value id."""
        instr_id = len(self.instructions)
        out = self.new_value(out_kind, producer=instr_id)
        instr = Instruction(
            instr_id=instr_id, kind=kind, inputs=inputs, output=out,
            n=self.n, priority=instr_id, he_op=he_op,
            rotate_exponent=rotate_exponent,
        )
        for vid in inputs:
            self.values[vid].users.append(instr_id)
        self.instructions.append(instr)
        return out

    # ------------------------------------------------------------ queries
    def stats(self) -> dict:
        by_kind: dict[str, int] = {}
        for ins in self.instructions:
            by_kind[ins.kind.value] = by_kind.get(ins.kind.value, 0) + 1
        by_value: dict[str, int] = {}
        for v in self.values:
            by_value[v.kind.value] = by_value.get(v.kind.value, 0) + 1
        return {
            "instructions": len(self.instructions),
            "values": len(self.values),
            "by_kind": by_kind,
            "by_value_kind": by_value,
        }

    def validate(self) -> None:
        """Structural invariants: SSA, topological order, user lists correct."""
        for ins in self.instructions:
            for vid in ins.inputs:
                v = self.values[vid]
                if v.producer is not None and v.producer >= ins.instr_id:
                    raise ValueError(
                        f"instr {ins.instr_id} uses value {vid} produced later"
                    )
                if ins.instr_id not in v.users:
                    raise ValueError(f"user list of value {vid} is stale")
            out = self.values[ins.output]
            if out.producer != ins.instr_id:
                raise ValueError(f"output of instr {ins.instr_id} mislinked")
