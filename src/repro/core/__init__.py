"""F1 architecture model (Sec. 3, 5, 6).

- :mod:`repro.core.config`: the "architecture description file" of Fig. 3 —
  cluster/FU counts, memory sizes, latencies, bandwidths.  Includes the
  paper's default 151 mm^2 configuration and the Table-5 low-throughput
  variants.
- :mod:`repro.core.isa`: the instruction set at residue-vector granularity
  and the instruction-level dataflow graph the compiler manipulates.
- :mod:`repro.core.area`: the Table-2 area/TDP model, config-scaled for the
  Fig. 11 Pareto sweep.
- :mod:`repro.core.energy`: per-event energies used for the Fig. 9b power
  breakdowns.
"""

from repro.core.config import F1Config, FuSpec
from repro.core.isa import Instruction, InstructionGraph, InstrKind, Value, ValueKind
from repro.core.area import area_report, area_mm2
from repro.core.energy import EnergyModel

__all__ = [
    "F1Config",
    "FuSpec",
    "Instruction",
    "InstructionGraph",
    "InstrKind",
    "Value",
    "ValueKind",
    "area_report",
    "area_mm2",
    "EnergyModel",
]
