"""Baseline scheduler: Code Scheduling to minimize Register usage (CSR).

Goodman & Hsu's register-pressure-aware list scheduler [37], applied — as the
paper does in Sec. 8.3 — as the off-chip data-movement scheduler over the
full instruction dataflow graph, treating the scratchpad as the register
file.  The heuristic greedily picks, among ready instructions, the one that
releases the most live values (last uses) net of the value it creates; ties
break toward the original priority.

The paper finds this produces schedules with a large blowup of live
intermediates (it is blind to key-switch-hint reuse across homomorphic
operations) and therefore scratchpad thrashing — Table 5's 4.2x gmean
slowdown.  It is also computationally expensive; we keep the priority queue
implementation honest rather than micro-optimizing it.
"""

from __future__ import annotations

import heapq

from repro.core.isa import InstructionGraph


def csr_order(graph: InstructionGraph) -> list[int]:
    """Topological order minimizing live-value count, Goodman-Hsu style."""
    instructions = graph.instructions
    values = graph.values
    remaining_uses = [len(v.users) for v in values]
    indegree = [0] * len(instructions)
    for instr in instructions:
        for vid in instr.inputs:
            if values[vid].producer is not None:
                indegree[instr.instr_id] += 1

    def score(instr_id: int) -> tuple[int, int]:
        """(negated net released values, original priority)."""
        instr = instructions[instr_id]
        released = sum(
            1 for vid in set(instr.inputs) if remaining_uses[vid] == _uses_by(instr, vid)
        )
        # Creating the output adds one live value.
        return (-(released - 1), instr_id)

    def _uses_by(instr, vid: int) -> int:
        return sum(1 for v in instr.inputs if v == vid)

    ready = [score(i.instr_id) for i in instructions if indegree[i.instr_id] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    emitted = [False] * len(instructions)
    users_of_output = [
        [u for u in values[instr.output].users] for instr in instructions
    ]

    while ready:
        _, instr_id = heapq.heappop(ready)
        if emitted[instr_id]:
            continue
        # Scores go stale as uses retire; recompute lazily.
        current = score(instr_id)
        if ready and current > ready[0]:
            heapq.heappush(ready, current)
            continue
        emitted[instr_id] = True
        order.append(instr_id)
        instr = instructions[instr_id]
        for vid in instr.inputs:
            remaining_uses[vid] -= 1
        for user in users_of_output[instr_id]:
            indegree[user] -= 1
            if indegree[user] == 0:
                heapq.heappush(ready, score(user))
    if len(order) != len(instructions):
        raise ValueError("CSR scheduler failed to order all instructions")
    return order
