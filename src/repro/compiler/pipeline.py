"""End-to-end compilation driver: DSL program -> static schedule + stats."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.csr_scheduler import csr_order
from repro.compiler.cycle_scheduler import CycleSchedule, schedule_cycles
from repro.compiler.data_scheduler import DataMovementSchedule, schedule_data_movement
from repro.compiler.hecompiler import KsChoice, TranslationResult, compile_to_instructions
from repro.core.config import F1Config
from repro.dsl.program import Program


@dataclass
class CompiledProgram:
    program: Program
    translation: TranslationResult
    movement: DataMovementSchedule
    schedule: CycleSchedule
    config: F1Config

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def time_ms(self) -> float:
        return self.schedule.time_ms

    def traffic_breakdown_bytes(self) -> dict:
        return self.movement.traffic.breakdown(self.config.rvec_bytes(self.program.n))

    def summary(self) -> dict:
        return {
            "program": self.program.name,
            "n": self.program.n,
            "instructions": len(self.translation.graph.instructions),
            "makespan_cycles": self.makespan,
            "time_ms": round(self.time_ms, 4),
            "offchip_bytes": sum(self.traffic_breakdown_bytes().values()),
            "fu_utilization": {
                k: round(v, 3) for k, v in self.schedule.fu_utilization().items()
            },
            "hbm_utilization": round(self.schedule.hbm_utilization(), 3),
        }


def compile_program(
    program: Program,
    config: F1Config | None = None,
    *,
    ks_choice: KsChoice | None = None,
    scheduler: str = "f1",
) -> CompiledProgram:
    """Run all three compiler phases.

    ``scheduler`` selects the phase-2 instruction order: "f1" (the paper's,
    i.e. phase-1 priority order) or "csr" (the Goodman-Hsu baseline of
    Sec. 8.3 / Table 5).
    """
    config = config or F1Config()
    translation = compile_to_instructions(
        program, ks_choice=ks_choice,
        capacity_rvecs=config.scratchpad_capacity_rvecs(program.n),
    )
    order = None
    if scheduler == "csr":
        order = csr_order(translation.graph)
    elif scheduler != "f1":
        raise ValueError(f"unknown scheduler {scheduler!r}")
    movement = schedule_data_movement(
        translation.graph, translation.outputs, config, order=order
    )
    schedule = schedule_cycles(translation.graph, movement, config)
    return CompiledProgram(
        program=program,
        translation=translation,
        movement=movement,
        schedule=schedule,
        config=config,
    )
