"""The F1 compiler (Sec. 4, Fig. 3): three phases.

1. :mod:`repro.compiler.hecompiler` — orders homomorphic operations to
   maximize key-switch-hint reuse and translates them into an
   instruction-level dataflow graph (no loads/stores yet).
2. :mod:`repro.compiler.data_scheduler` — schedules off-chip data movement
   against a simplified machine (scratchpad directly feeding FUs): greedy
   instruction issue, priority-ordered loads, Belady-style eviction, spills.
3. :mod:`repro.compiler.cycle_scheduler` — resource-constrained cycle-level
   scheduling across clusters; being fully static, it doubles as the
   performance model (Sec. 4.4).

:mod:`repro.compiler.csr_scheduler` implements the register-pressure-aware
baseline (Goodman & Hsu's CSR) the paper compares against in Table 5, and
:func:`repro.compiler.pipeline.compile_program` runs the whole stack.
"""

from repro.compiler.hecompiler import compile_to_instructions, order_he_ops
from repro.compiler.data_scheduler import DataMovementSchedule, schedule_data_movement
from repro.compiler.cycle_scheduler import CycleSchedule, schedule_cycles
from repro.compiler.csr_scheduler import csr_order
from repro.compiler.pipeline import CompiledProgram, compile_program

__all__ = [
    "compile_to_instructions",
    "order_he_ops",
    "DataMovementSchedule",
    "schedule_data_movement",
    "CycleSchedule",
    "schedule_cycles",
    "csr_order",
    "CompiledProgram",
    "compile_program",
]
