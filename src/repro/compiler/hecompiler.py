"""Compiler phase 1: homomorphic-operation ordering and translation (Sec. 4.2).

**Ordering** clusters independent homomorphic operations that consume the same
key-switch hint and list-schedules the clusters, so that e.g. all four
multiplies of Listing 2 run back-to-back and reuse one relinearization hint,
then all four Rotate(x, 1), and so on.  Hint-free operations (adds, plaintext
ops, mod switches) are emitted eagerly whenever ready since they unlock
successors without any hint traffic.

**Translation** lowers each homomorphic operation to residue-vector
instructions using the scheme's implementation (Sec. 2.2.1 / Listing 1),
choosing between the two key-switching algorithms per operation (the
"algorithmic choice" of Sec. 4.2): the L^2-hint RNS-decomposition variant
when the hint is highly reused or L is small, and the O(L)-hint
raised-modulus variant when hints would dominate traffic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.isa import InstructionGraph, InstrKind, ValueKind
from repro.dsl.program import HeOp, OpKind, Program


# ----------------------------------------------------------------- ordering
def order_he_ops(program: Program, *, capacity_rvecs: int = 1024) -> list[int]:
    """Hint-reuse-clustered list schedule of the homomorphic ops.

    Same-hint clusters are emitted in *chunks* sized so one chunk's live
    ciphertexts fit in the scratchpad alongside the (shared, resident) hint:
    unbounded clustering maximizes hint reuse but explodes the intermediate
    footprint (the tension Sec. 2.4 calls out), and the hint stays on-chip
    between consecutive chunks anyway, so chunking preserves the reuse.
    """
    ops = program.ops
    indegree = {op.op_id: len(op.args) for op in ops}
    ready: set[int] = {op.op_id for op in ops if indegree[op.op_id] == 0}
    order: list[int] = []

    def emit(op_id: int) -> None:
        order.append(op_id)
        ready.discard(op_id)
        for user in ops[op_id].users:
            indegree[user] -= 1
            if indegree[user] == 0:
                ready.add(user)

    def chunk_cap(level: int) -> int:
        # One op holds roughly: 2 input cts (4L), its result (2L), and key-
        # switch temporaries (~4L) live at once; the 2L^2 hint is shared.
        hint_rvecs = min(2 * level * level, capacity_rvecs // 2)
        per_op = 10 * level
        return max(2, (capacity_rvecs - hint_rvecs) // per_op)

    while ready:
        # Drain hint-free ops first — they are cheap and unlock work.
        progressed = True
        while progressed:
            progressed = False
            for op_id in sorted(op for op in ready if ops[op].hint_id is None):
                emit(op_id)
                progressed = True
        if not ready:
            break
        # Among ready hinted ops, batch the cluster that contains the
        # earliest op in program order (list scheduling by priority): all
        # ready ops sharing its hint run back to back, reusing the hint,
        # while priority order keeps the live intermediate set bounded
        # (depth-first across independent subtrees).
        groups: dict[str, list[int]] = defaultdict(list)
        for op_id in ready:
            groups[ops[op_id].hint_id].append(op_id)
        hint = min(groups, key=lambda h: min(groups[h]))
        chosen = sorted(groups[hint])
        for op_id in chosen[: chunk_cap(ops[chosen[0]].level)]:
            emit(op_id)
    if len(order) != len(ops):
        raise ValueError("cycle detected in homomorphic-operation graph")
    return order


# -------------------------------------------------------------- translation
@dataclass
class KsChoice:
    """Key-switch algorithm selection policy (Sec. 4.2's algorithmic choice)."""

    force: int | None = None      # 1, 2, or None for automatic
    # Sec. 2.4: the O(L)-hint variant "becomes attractive for very large L
    # (~20)".  The concrete tipping point is when the 2L^2-RVec hint no
    # longer fits in the 1024-RVec scratchpad (L >= 23 at N = 16K): below it,
    # a reused v1 hint stays resident and its lower compute wins.
    v2_level_threshold: int = 23  # prefer v2 at very large L...
    v2_reuse_threshold: int = 2   # ...when the hint is barely reused

    def pick(self, level: int, hint_reuse: int) -> int:
        if self.force in (1, 2):
            return self.force
        if level >= self.v2_level_threshold and hint_reuse < self.v2_reuse_threshold:
            return 2
        return 1


@dataclass
class CtValues:
    """Residue-vector value ids of one ciphertext: a/b polys, L limbs each."""

    a: list[int]
    b: list[int]
    level: int


@dataclass
class TranslationResult:
    graph: InstructionGraph
    outputs: set[int] = field(default_factory=set)
    he_order: list[int] = field(default_factory=list)
    hint_rvecs: dict[str, int] = field(default_factory=dict)  # hint -> #RVecs
    ks_variant_used: dict[int, int] = field(default_factory=dict)  # op -> 1|2


class _Translator:
    """Lowers one program to an InstructionGraph, caching hint values."""

    def __init__(self, program: Program, ks_choice: KsChoice):
        self.program = program
        self.graph = InstructionGraph(program.n)
        self.ks_choice = ks_choice
        self.ct: dict[int, CtValues] = {}
        self.plain: dict[int, list[int]] = {}
        # hint_id -> grids of value ids; generated lazily, shared across ops.
        self._hints_v1: dict[str, tuple[list[list[int]], list[list[int]]]] = {}
        self._hints_v2: dict[str, tuple[list[int], list[int]]] = {}
        self.result = TranslationResult(graph=self.graph)
        self._hint_reuse = defaultdict(int)
        for op in program.ops:
            if op.hint_id:
                self._hint_reuse[op.hint_id] += 1

    # ------------------------------------------------------------ hint data
    def hint_v1_values(self, hint_id: str, level: int):
        grids = self._hints_v1.get(hint_id)
        if grids is None:
            g = self.graph
            hint0 = [[g.new_value(ValueKind.KSH, hint_id=hint_id,
                                  name=f"{hint_id}.h0[{i}][{j}]")
                      for j in range(level)] for i in range(level)]
            hint1 = [[g.new_value(ValueKind.KSH, hint_id=hint_id,
                                  name=f"{hint_id}.h1[{i}][{j}]")
                      for j in range(level)] for i in range(level)]
            grids = (hint0, hint1)
            self._hints_v1[hint_id] = grids
            self.result.hint_rvecs[hint_id] = 2 * level * level
        return grids

    def hint_v2_values(self, hint_id: str, level: int):
        pair = self._hints_v2.get(hint_id)
        if pair is None:
            g = self.graph
            ext = 2 * level  # extended basis Q*P with P ~ Q
            key = hint_id + ":v2"
            hint0 = [g.new_value(ValueKind.KSH, hint_id=key, name=f"{key}.h0[{j}]")
                     for j in range(ext)]
            hint1 = [g.new_value(ValueKind.KSH, hint_id=key, name=f"{key}.h1[{j}]")
                     for j in range(ext)]
            pair = (hint0, hint1)
            self._hints_v2[hint_id] = pair
            self.result.hint_rvecs[key] = 2 * ext
        return pair

    # ----------------------------------------------------------- key switch
    def key_switch(self, x: list[int], hint_id: str, he_op: int) -> tuple[list[int], list[int]]:
        """Lower KeySwitch(x) -> (u0, u1); picks the algorithm per op."""
        level = len(x)
        variant = self.ks_choice.pick(level, self._hint_reuse[hint_id])
        self.result.ks_variant_used[he_op] = variant
        if variant == 1:
            return self._key_switch_v1(x, hint_id, he_op)
        return self._key_switch_v2(x, hint_id, he_op)

    def _key_switch_v1(self, x: list[int], hint_id: str, he_op: int):
        """Listing 1: L INTTs, L(L-1) NTTs, 2L^2 mul, ~2L^2 accumulate adds."""
        g = self.graph
        level = len(x)
        hint0, hint1 = self.hint_v1_values(hint_id, level)
        y = [g.emit(InstrKind.INTT, (x[i],), he_op=he_op) for i in range(level)]
        u0: list[int | None] = [None] * level
        u1: list[int | None] = [None] * level
        for i in range(level):
            for j in range(level):
                xqj = x[i] if i == j else g.emit(InstrKind.NTT, (y[i],), he_op=he_op)
                p0 = g.emit(InstrKind.MUL, (xqj, hint0[i][j]), he_op=he_op)
                p1 = g.emit(InstrKind.MUL, (xqj, hint1[i][j]), he_op=he_op)
                u0[j] = p0 if u0[j] is None else g.emit(InstrKind.ADD, (u0[j], p0), he_op=he_op)
                u1[j] = p1 if u1[j] is None else g.emit(InstrKind.ADD, (u1[j], p1), he_op=he_op)
        return u0, u1

    def _key_switch_v2(self, x: list[int], hint_id: str, he_op: int):
        """Raised-modulus: base-extend to 2L limbs, 1 hint mult, scale down."""
        g = self.graph
        level = len(x)
        hint0, hint1 = self.hint_v2_values(hint_id, level)
        # Digits (coefficient domain).
        y = [g.emit(InstrKind.INTT, (x[i],), he_op=he_op) for i in range(level)]
        # Base extension: each of the L special limbs is a digit-weighted MAC.
        ext: list[int] = list(x)
        for _ in range(level):
            acc = None
            for i in range(level):
                p = g.emit(InstrKind.MUL, (y[i],), he_op=he_op)
                acc = p if acc is None else g.emit(InstrKind.ADD, (acc, p), he_op=he_op)
            ext.append(g.emit(InstrKind.NTT, (acc,), he_op=he_op))
        # Hint multiply over the extended basis.
        u0_ext = [g.emit(InstrKind.MUL, (ext[j], hint0[j]), he_op=he_op)
                  for j in range(2 * level)]
        u1_ext = [g.emit(InstrKind.MUL, (ext[j], hint1[j]), he_op=he_op)
                  for j in range(2 * level)]
        # Scale down by P: INTT special limbs, reconstruct delta, correct each
        # remaining limb (NTT(delta), SUB, MUL by P^{-1}).
        u0 = self._scale_down(u0_ext, level, he_op)
        u1 = self._scale_down(u1_ext, level, he_op)
        return u0, u1

    def _scale_down(self, ext: list[int], level: int, he_op: int) -> list[int]:
        g = self.graph
        special = ext[level:]
        digits = [g.emit(InstrKind.INTT, (s,), he_op=he_op) for s in special]
        # delta reconstruction: digit-weighted accumulation (elementwise).
        acc = digits[0]
        for d in digits[1:]:
            acc = g.emit(InstrKind.ADD, (acc, d), he_op=he_op)
        out = []
        for j in range(level):
            delta_j = g.emit(InstrKind.NTT, (acc,), he_op=he_op)
            diff = g.emit(InstrKind.SUB, (ext[j], delta_j), he_op=he_op)
            out.append(g.emit(InstrKind.MUL, (diff,), he_op=he_op))
        return out

    # ------------------------------------------------------------- HE ops
    def translate_op(self, op: HeOp) -> None:
        kind = op.kind
        g = self.graph
        if kind is OpKind.INPUT:
            self.ct[op.op_id] = CtValues(
                a=[g.new_value(ValueKind.INPUT, name=f"in{op.op_id}.a[{j}]")
                   for j in range(op.level)],
                b=[g.new_value(ValueKind.INPUT, name=f"in{op.op_id}.b[{j}]")
                   for j in range(op.level)],
                level=op.level,
            )
            return
        if kind is OpKind.INPUT_PLAIN:
            self.plain[op.op_id] = [
                g.new_value(ValueKind.PLAIN, name=f"pt{op.op_id}[{j}]")
                for j in range(op.level)
            ]
            return
        if kind in (OpKind.ADD, OpKind.SUB):
            x, y = (self.ct[a] for a in op.args)
            ik = InstrKind.ADD if kind is OpKind.ADD else InstrKind.SUB
            self.ct[op.op_id] = CtValues(
                a=[g.emit(ik, (x.a[j], y.a[j]), he_op=op.op_id) for j in range(op.level)],
                b=[g.emit(ik, (x.b[j], y.b[j]), he_op=op.op_id) for j in range(op.level)],
                level=op.level,
            )
            return
        if kind is OpKind.ADD_PLAIN:
            x = self.ct[op.args[0]]
            p = self.plain[op.args[1]]
            self.ct[op.op_id] = CtValues(
                a=list(x.a),
                b=[g.emit(InstrKind.ADD, (x.b[j], p[j]), he_op=op.op_id)
                   for j in range(op.level)],
                level=op.level,
            )
            return
        if kind is OpKind.MUL_PLAIN:
            x = self.ct[op.args[0]]
            p = self.plain[op.args[1]]
            self.ct[op.op_id] = CtValues(
                a=[g.emit(InstrKind.MUL, (x.a[j], p[j]), he_op=op.op_id)
                   for j in range(op.level)],
                b=[g.emit(InstrKind.MUL, (x.b[j], p[j]), he_op=op.op_id)
                   for j in range(op.level)],
                level=op.level,
            )
            return
        if kind is OpKind.MUL:
            self._translate_mul(op)
            return
        if kind is OpKind.ROTATE:
            self._translate_rotate(op)
            return
        if kind is OpKind.MOD_SWITCH:
            self._translate_mod_switch(op)
            return
        if kind is OpKind.OUTPUT:
            ct = self.ct[op.args[0]]
            self.ct[op.op_id] = ct
            self.result.outputs.update(ct.a)
            self.result.outputs.update(ct.b)
            return
        raise ValueError(f"unhandled op kind {kind}")

    def _translate_mul(self, op: HeOp) -> None:
        """Tensor (4L mul + L add) + key switch + recombination (Sec. 2.2.1)."""
        g = self.graph
        x, y = (self.ct[a] for a in op.args)
        level = op.level
        l2 = [g.emit(InstrKind.MUL, (x.a[j], y.a[j]), he_op=op.op_id) for j in range(level)]
        l1 = []
        for j in range(level):
            t0 = g.emit(InstrKind.MUL, (x.a[j], y.b[j]), he_op=op.op_id)
            t1 = g.emit(InstrKind.MUL, (y.a[j], x.b[j]), he_op=op.op_id)
            l1.append(g.emit(InstrKind.ADD, (t0, t1), he_op=op.op_id))
        l0 = [g.emit(InstrKind.MUL, (x.b[j], y.b[j]), he_op=op.op_id) for j in range(level)]
        u0, u1 = self.key_switch(l2, op.hint_id, op.op_id)
        self.ct[op.op_id] = CtValues(
            a=[g.emit(InstrKind.ADD, (l1[j], u1[j]), he_op=op.op_id) for j in range(level)],
            b=[g.emit(InstrKind.ADD, (l0[j], u0[j]), he_op=op.op_id) for j in range(level)],
            level=level,
        )

    def _translate_rotate(self, op: HeOp) -> None:
        """2L automorphisms + key switch + L adds (Sec. 2.2.1)."""
        g = self.graph
        x = self.ct[op.args[0]]
        level = op.level
        k = op.rotate_steps
        a_sig = [g.emit(InstrKind.AUT, (x.a[j],), he_op=op.op_id, rotate_exponent=k)
                 for j in range(level)]
        b_sig = [g.emit(InstrKind.AUT, (x.b[j],), he_op=op.op_id, rotate_exponent=k)
                 for j in range(level)]
        u0, u1 = self.key_switch(a_sig, op.hint_id, op.op_id)
        self.ct[op.op_id] = CtValues(
            a=list(u1),
            b=[g.emit(InstrKind.ADD, (b_sig[j], u0[j]), he_op=op.op_id)
               for j in range(level)],
            level=level,
        )

    def _translate_mod_switch(self, op: HeOp) -> None:
        """Per component: INTT last limb, rebuild delta at each remaining
        modulus (NTT), subtract and scale (Sec. 2.2.2, RNS form)."""
        g = self.graph
        x = self.ct[op.args[0]]
        new_level = op.level  # already level-1
        out_a, out_b = [], []
        for src, dst in ((x.a, out_a), (x.b, out_b)):
            last_coeff = g.emit(InstrKind.INTT, (src[new_level],), he_op=op.op_id)
            for j in range(new_level):
                delta = g.emit(InstrKind.NTT, (last_coeff,), he_op=op.op_id)
                diff = g.emit(InstrKind.SUB, (src[j], delta), he_op=op.op_id)
                dst.append(g.emit(InstrKind.MUL, (diff,), he_op=op.op_id))
        self.ct[op.op_id] = CtValues(a=out_a, b=out_b, level=new_level)


def compile_to_instructions(
    program: Program, *, ks_choice: KsChoice | None = None,
    capacity_rvecs: int = 1024,
) -> TranslationResult:
    """Phase 1: order homomorphic ops, lower to an instruction DFG."""
    ks_choice = ks_choice or KsChoice()
    translator = _Translator(program, ks_choice)
    order = order_he_ops(program, capacity_rvecs=capacity_rvecs)
    for op_id in order:
        translator.translate_op(program.ops[op_id])
    translator.result.he_order = order
    translator.graph.validate()
    return translator.result
