"""Compiler phase 3: cycle-level scheduling (Sec. 4.4).

Consumes the phase-2 event list and the full architecture description, and
assigns every load, store, and instruction a start cycle, a cluster, and a
functional unit, respecting:

- data dependences (operands ready, plus a bank->cluster transfer);
- functional-unit structural hazards (each unit is fully pipelined with a
  fixed occupancy per residue vector — new ops can issue every
  ``occupancy`` cycles, results appear after ``latency``);
- aggregate HBM bandwidth (loads/stores serialize on bytes/cycle) and load
  latency;
- scratchpad capacity (a load may not complete before the event that freed
  its slot has completed — phase 2 annotates this), while otherwise hoisting
  loads as early as bandwidth allows (decoupled data orchestration).

Because the schedule is fully static, the resulting makespan *is* the
performance number (Sec. 4.4: "our scheduler also doubles as a performance
measurement tool"); the independent checker in :mod:`repro.sim.simulator`
re-validates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.data_scheduler import DataMovementSchedule
from repro.core.config import F1Config
from repro.core.isa import InstructionGraph


@dataclass
class ScheduledInstr:
    instr_id: int
    start: int
    end: int          # result-available cycle
    cluster: int
    unit: int
    fu: str
    occupancy: int


@dataclass
class ScheduledTransfer:
    kind: str         # "load" | "store"
    value_id: int
    start: float
    end: float


@dataclass
class CycleSchedule:
    makespan: int
    instrs: list[ScheduledInstr]
    transfers: list[ScheduledTransfer]
    config: F1Config
    n: int
    fu_busy_cycles: dict = field(default_factory=dict)   # fu kind -> cycles
    hbm_busy_cycles: float = 0.0

    @property
    def time_ms(self) -> float:
        return self.makespan / (self.config.frequency_ghz * 1e9) * 1e3

    def fu_utilization(self) -> dict:
        out = {}
        for fu, busy in self.fu_busy_cycles.items():
            units = self.config.fu_count(fu)
            out[fu] = busy / max(1, self.makespan * units)
        return out

    def hbm_utilization(self) -> float:
        return self.hbm_busy_cycles / max(1, self.makespan)


class _FuPool:
    """Per-(cluster, kind) unit timelines with pipelined issue slots."""

    def __init__(self, config: F1Config):
        self.config = config
        self.next_free = {
            fu: [[0] * config._spec(fu).count for _ in range(config.clusters)]
            for fu in ("ntt", "aut", "mul", "add")
        }

    def schedule(self, fu: str, ready: int, occupancy: int) -> tuple[int, int, int]:
        """Greedy earliest-start assignment; returns (start, cluster, unit)."""
        best = None
        for cluster in range(self.config.clusters):
            for unit, free in enumerate(self.next_free[fu][cluster]):
                start = max(ready, free)
                if best is None or start < best[0]:
                    best = (start, cluster, unit)
                    if start == ready:
                        break
            if best and best[0] == ready:
                break
        start, cluster, unit = best
        self.next_free[fu][cluster][unit] = start + occupancy
        return start, cluster, unit


def schedule_cycles(
    graph: InstructionGraph,
    movement: DataMovementSchedule,
    config: F1Config,
) -> CycleSchedule:
    instructions = graph.instructions
    pool = _FuPool(config)
    value_ready: dict[int, float] = {}
    event_end: list[float] = [0.0] * len(movement.events)
    hbm_next_free = 0.0
    hbm_busy = 0.0
    load_cycles = config.load_cycles(graph.n)
    transfer = config.transfer_cycles(graph.n)
    latency_hbm = config.hbm_latency_cycles

    scheduled: list[ScheduledInstr] = []
    transfers: list[ScheduledTransfer] = []
    fu_busy: dict[str, int] = {"ntt": 0, "aut": 0, "mul": 0, "add": 0}
    makespan = 0.0

    last_use_end: dict[int, float] = {}

    for idx, event in enumerate(movement.events):
        if event.kind == "evict":
            # The slot is free once the victim's last scheduled use completes.
            event_end[idx] = last_use_end.get(event.target, 0.0)
        elif event.kind == "load":
            earliest = 0.0
            if event.frees_slot_of is not None and event.frees_slot_of >= 0:
                earliest = event_end[event.frees_slot_of]
            start = max(hbm_next_free, earliest)
            hbm_next_free = start + load_cycles
            hbm_busy += load_cycles
            end = start + load_cycles + latency_hbm
            value_ready[event.target] = end
            event_end[idx] = end
            transfers.append(ScheduledTransfer("load", event.target, start, end))
        elif event.kind == "store":
            ready = value_ready.get(event.target, 0.0)
            start = max(hbm_next_free, ready)
            hbm_next_free = start + load_cycles
            hbm_busy += load_cycles
            end = start + load_cycles
            event_end[idx] = end
            transfers.append(ScheduledTransfer("store", event.target, start, end))
            makespan = max(makespan, end)
        else:  # exec
            instr = instructions[event.target]
            fu = instr.kind.fu
            occupancy = config.fu_occupancy(fu, instr.n)
            latency = config.fu_latency(instr.kind.value if fu == "ntt" else fu, instr.n)
            ready = max(
                (value_ready.get(vid, 0.0) for vid in instr.inputs), default=0.0
            )
            # Operand delivery over the on-chip network.
            ready += transfer
            start, cluster, unit = pool.schedule(fu, int(round(ready)), occupancy)
            end = start + latency
            value_ready[instr.output] = end
            event_end[idx] = end
            for vid in instr.inputs:
                last_use_end[vid] = max(last_use_end.get(vid, 0.0), end)
            last_use_end[instr.output] = max(last_use_end.get(instr.output, 0.0), end)
            fu_busy[fu] += occupancy
            scheduled.append(
                ScheduledInstr(
                    instr_id=instr.instr_id, start=start, end=end,
                    cluster=cluster, unit=unit, fu=fu, occupancy=occupancy,
                )
            )
            makespan = max(makespan, end)

    return CycleSchedule(
        makespan=int(round(makespan)),
        instrs=scheduled,
        transfers=transfers,
        config=config,
        n=graph.n,
        fu_busy_cycles=fu_busy,
        hbm_busy_cycles=hbm_busy,
    )
