"""Compiler phase 2: off-chip data-movement scheduling (Sec. 4.3).

Works against a simplified machine — a scratchpad of C residue-vector slots
directly feeding functional units.  Instructions are visited in phase-1
priority order (they are already topologically sorted); for each one, absent
operands are loaded, space is made by evicting the resident value with the
furthest next use (the Belady-style policy of Sec. 4.3: next use estimated
from the priorities of unissued users), and dirty evictions append spill
stores.  The output is an ordered event list (LOAD / EXEC / STORE) that
phase 3 turns into cycles — with loads annotated with the event that freed
their slot, so cycle scheduling can hoist them as early as capacity allows
(decoupled data orchestration, Sec. 3).

Traffic is classified as in Fig. 9a: key-switch hints, inputs, and plaintext
operands split into compulsory (first touch) and non-compulsory (capacity)
loads; intermediate fills and spill stores are always non-compulsory.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.core.config import F1Config
from repro.core.isa import InstructionGraph, Value, ValueKind

INFINITY = float("inf")


@dataclass
class Event:
    kind: str                 # "load" | "exec" | "store" | "evict"
    target: int               # value id (load/store/evict) or instr id (exec)
    frees_slot_of: int | None = None   # event index whose completion freed space


@dataclass
class TrafficStats:
    """Per-category off-chip traffic in residue-vector units."""

    ksh_compulsory: int = 0
    ksh_capacity: int = 0
    input_compulsory: int = 0
    input_capacity: int = 0
    plain_compulsory: int = 0
    plain_capacity: int = 0
    intermediate_loads: int = 0
    intermediate_stores: int = 0
    output_stores: int = 0

    def total_rvecs(self) -> int:
        return (
            self.ksh_compulsory + self.ksh_capacity
            + self.input_compulsory + self.input_capacity
            + self.plain_compulsory + self.plain_capacity
            + self.intermediate_loads + self.intermediate_stores
            + self.output_stores
        )

    def breakdown(self, rvec_bytes: int) -> dict:
        """Fig. 9a categories, in bytes."""
        return {
            "ksh_compulsory": self.ksh_compulsory * rvec_bytes,
            "ksh_capacity": self.ksh_capacity * rvec_bytes,
            "input_compulsory": self.input_compulsory * rvec_bytes,
            "input_capacity": self.input_capacity * rvec_bytes,
            "plain_compulsory": self.plain_compulsory * rvec_bytes,
            "plain_capacity": self.plain_capacity * rvec_bytes,
            "intermediate_loads": self.intermediate_loads * rvec_bytes,
            "intermediate_stores": (self.intermediate_stores + self.output_stores)
            * rvec_bytes,
        }


@dataclass
class DataMovementSchedule:
    events: list[Event]
    traffic: TrafficStats
    capacity_rvecs: int
    order: list[int] = field(default_factory=list)  # instruction order used
    outputs: set[int] = field(default_factory=set)  # program output values


def schedule_data_movement(
    graph: InstructionGraph,
    outputs: set[int],
    config: F1Config,
    *,
    order: list[int] | None = None,
) -> DataMovementSchedule:
    """Greedy scheduling with furthest-next-use eviction.

    ``order`` overrides the instruction visit order (used by the CSR baseline);
    it must be a topological order of the graph.
    """
    instructions = graph.instructions
    values = graph.values
    if order is None:
        order = list(range(len(instructions)))
    position_of = {instr_id: pos for pos, instr_id in enumerate(order)}

    # Remaining-user queues in visit order, for next-use estimation and
    # dead-value detection.
    user_queues: list[deque[int]] = [
        deque(sorted(v.users, key=lambda u: position_of[u])) for v in values
    ]

    capacity = graph_capacity(graph, config)
    resident: dict[int, bool] = {}          # value id -> dirty
    touched: set[int] = set()               # values loaded at least once
    spilled: set[int] = set()               # intermediates with off-chip copy
    events: list[Event] = []
    traffic = TrafficStats()
    # Eviction heap of (-next_use_position, value id); entries may be stale.
    evict_heap: list[tuple[float, int]] = []

    def next_use(vid: int) -> float:
        q = user_queues[vid]
        return position_of[q[0]] if q else INFINITY

    def push_evictable(vid: int) -> None:
        heapq.heappush(evict_heap, (-next_use(vid), vid))

    def classify_load(v: Value) -> None:
        first = v.value_id not in touched
        touched.add(v.value_id)
        if v.kind is ValueKind.KSH:
            if first:
                traffic.ksh_compulsory += 1
            else:
                traffic.ksh_capacity += 1
        elif v.kind is ValueKind.INPUT:
            if first:
                traffic.input_compulsory += 1
            else:
                traffic.input_capacity += 1
        elif v.kind is ValueKind.PLAIN:
            if first:
                traffic.plain_compulsory += 1
            else:
                traffic.plain_capacity += 1
        else:
            traffic.intermediate_loads += 1

    def make_space(pinned: set[int]) -> int | None:
        """Evict until a slot is free; returns the freeing event index."""
        freeing_event: int | None = None
        while len(resident) >= capacity:
            while True:
                if not evict_heap:
                    raise RuntimeError(
                        "scratchpad thrashing: everything resident is pinned "
                        f"(capacity {capacity}, pinned {len(pinned)})"
                    )
                neg_use, vid = heapq.heappop(evict_heap)
                if vid not in resident or vid in pinned:
                    continue
                if -neg_use != next_use(vid):
                    push_evictable(vid)  # stale entry; refresh
                    continue
                break
            dirty = resident.pop(vid)
            if dirty and (user_queues[vid] or vid in outputs):
                # Live intermediate: spill it so it can be refilled later.
                events.append(Event("store", vid))
                if vid in outputs and not user_queues[vid]:
                    traffic.output_stores += 1
                else:
                    traffic.intermediate_stores += 1
                    spilled.add(vid)
            else:
                # Clean (or dead) copy: drop it; the explicit event lets the
                # cycle scheduler know when the slot actually becomes free.
                events.append(Event("evict", vid))
            freeing_event = len(events) - 1
        return freeing_event

    for instr_id in order:
        instr = instructions[instr_id]
        pinned = set(instr.inputs) | {instr.output}
        # Load missing operands.
        for vid in instr.inputs:
            if vid in resident:
                continue
            v = values[vid]
            if not v.off_chip_master and vid not in spilled:
                raise RuntimeError(
                    f"instr {instr_id} needs value {vid} which is neither "
                    "resident nor recoverable (order not topological?)"
                )
            free_evt = make_space(pinned)
            classify_load(v)
            events.append(Event("load", vid, frees_slot_of=free_evt))
            resident[vid] = False
            push_evictable(vid)
        # Space for the result.
        free_evt = make_space(pinned)
        events.append(Event("exec", instr_id, frees_slot_of=free_evt))
        resident[instr.output] = True  # produced on-chip: dirty
        push_evictable(instr.output)
        # Retire this use; free dead values (no store needed).
        for vid in set(instr.inputs):
            q = user_queues[vid]
            while q and q[0] == instr_id:
                q.popleft()
            if not q and vid in resident and vid not in outputs:
                del resident[vid]
            elif vid in resident:
                push_evictable(vid)

    # Store surviving outputs.
    for vid in sorted(outputs):
        if vid in resident and resident[vid]:
            events.append(Event("store", vid))
            traffic.output_stores += 1
    return DataMovementSchedule(
        events=events, traffic=traffic, capacity_rvecs=capacity, order=order,
        outputs=set(outputs),
    )


def graph_capacity(graph: InstructionGraph, config: F1Config) -> int:
    capacity = config.scratchpad_capacity_rvecs(graph.n)
    if capacity < 8:
        raise ValueError("scratchpad too small for even a few residue vectors")
    return capacity
