"""Seeded, deterministic fault injection for the network serving tier.

A :class:`ChaosPolicy` is a frozen bundle of fault rates; a
:class:`ChaosEngine` turns it into an actual schedule of faults, every
decision drawn from one seeded generator — so a chaos run replays from
its seed (given the same connection/frame order, which single-threaded
tests control exactly and concurrent soaks approximate).  The injection
point is :class:`ChaosSocket`, a transparent socket wrapper the worker
installs around every accepted connection when started with
``--chaos SPEC`` (or ``LocalCluster(chaos=...)``); tests can also wrap
coordinator-side sockets directly.

Faults injected at the byte level (all surface as the typed
:class:`~repro.net.framing.FrameError` / ``OSError`` family the
transport already speaks, so chaos exercises exactly the production
failure paths):

- **drop** — the connection dies mid-exchange (reset before a send);
- **corrupt** — one byte of an outgoing frame is flipped; the peer's
  header/payload CRC rejects it before anything reaches the unpickler;
- **truncate** — only a prefix of the frame is sent, then the
  connection closes (``Truncated`` at the peer);
- **delay** — a fixed delay plus an optional heavy-tailed (Pareto)
  component before a send, modeling congested links;
- **stall** — a read stalls for ``stall_ms`` before data flows,
  modeling a wedged-but-connected peer (what execute watchdogs catch).

Faults injected at the worker level (consulted in the EXECUTE handler):

- **crash** — the worker process exits hard (``os._exit``), the
  kill-a-worker scenario without a harness;
- **hang** — the handler sleeps ``hang_s`` mid-execute, the scenario
  only a deadline-derived watchdog can unstick.

:func:`chaos_soak` is the shared end-to-end harness (used by the
``@slow`` soak test, ``python -m repro.verify``'s chaos smoke, and
``bench/loadgen --chaos SEED``): loadgen-style traffic through a
chaos-wrapped cluster with a worker kill (and restart) mid-run,
asserting that **every** future resolves with a status in
``{ok, expired, failed, shed}`` — zero lost futures — and that every
``ok`` result is bit-identical (BGV) / tolerance-equal (CKKS) to a
solo run.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, fields, replace

import numpy as np

__all__ = [
    "ChaosPolicy",
    "ChaosEngine",
    "ChaosSocket",
    "chaos_soak",
    "chaos_smoke",
]


@dataclass(frozen=True)
class ChaosPolicy:
    """Fault rates for one chaos schedule; all probabilities per event.

    ``parse``/``spec`` round-trip the policy through the compact
    ``key=value,...`` form the worker ``--chaos`` flag takes (rate keys
    accept short aliases: ``drop``, ``corrupt``, ``truncate``,
    ``delay``, ``stall``, ``crash``, ``hang``).
    """

    seed: int = 0
    drop_rate: float = 0.0        # connection reset before a send
    corrupt_rate: float = 0.0     # one byte of an outgoing frame flipped
    truncate_rate: float = 0.0    # frame cut short, then connection closed
    delay_rate: float = 0.0       # probability a send is delayed
    delay_ms: float = 1.0         # fixed component of an injected delay
    heavy_tail_ms: float = 0.0    # Pareto-tail component scale (0 = off)
    stall_rate: float = 0.0       # probability a read stalls
    stall_ms: float = 100.0
    crash_rate: float = 0.0       # worker exits hard during EXECUTE
    hang_rate: float = 0.0        # worker sleeps hang_s during EXECUTE
    hang_s: float = 30.0

    _ALIASES = {
        "drop": "drop_rate", "corrupt": "corrupt_rate",
        "truncate": "truncate_rate", "delay": "delay_rate",
        "stall": "stall_rate", "crash": "crash_rate", "hang": "hang_rate",
    }

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse ``"seed=7,drop=0.05,delay=0.2,delay_ms=5"`` and friends."""
        if not spec:
            return cls()
        kw: dict = {}
        valid = {f.name for f in fields(cls)}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, _, value = item.partition("=")
            key = cls._ALIASES.get(key.strip(), key.strip())
            if key not in valid:
                raise ValueError(f"unknown chaos field {key!r} in {spec!r}")
            kw[key] = int(value) if key == "seed" else float(value)
        return cls(**kw)

    def spec(self) -> str:
        """The inverse of :meth:`parse` (for forwarding over a CLI)."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default or f.name == "seed":
                parts.append(f"{f.name}={value}")
        return ",".join(parts)

    def with_seed(self, seed: int) -> "ChaosPolicy":
        return replace(self, seed=seed)


class ChaosEngine:
    """Draws one policy's fault schedule; deterministic from the seed.

    All randomness comes from a single seeded generator guarded by a
    lock, so the decision sequence is a pure function of the seed and
    the order in which injection sites consult it.  ``fault_counts()``
    reports what actually fired, for soak diagnostics.
    """

    def __init__(self, policy: ChaosPolicy):
        self.policy = policy
        self._rng = np.random.default_rng(policy.seed)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def _count(self, name: str) -> None:
        self._counts[name] = self._counts.get(name, 0) + 1

    def fault_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def _hit(self, rate: float, name: str) -> bool:
        if rate <= 0.0:
            return False
        fired = float(self._rng.random()) < rate
        if fired:
            self._count(name)
        return fired

    # -- decision draws (each consumes generator state under the lock) --
    def send_fault(self) -> str | None:
        """Which byte-level fault (if any) hits the next send."""
        with self._lock:
            for rate, name in ((self.policy.drop_rate, "drop"),
                               (self.policy.truncate_rate, "truncate"),
                               (self.policy.corrupt_rate, "corrupt")):
                if self._hit(rate, name):
                    return name
            return None

    def corrupt_offset(self, length: int) -> int:
        with self._lock:
            return int(self._rng.integers(0, max(1, length)))

    def send_delay_s(self) -> float:
        with self._lock:
            if not self._hit(self.policy.delay_rate, "delay"):
                return 0.0
            delay_ms = self.policy.delay_ms
            if self.policy.heavy_tail_ms > 0.0:
                delay_ms += float(self._rng.pareto(1.5)) \
                    * self.policy.heavy_tail_ms
            return delay_ms / 1e3

    def recv_stall_s(self) -> float:
        with self._lock:
            if self._hit(self.policy.stall_rate, "stall"):
                return self.policy.stall_ms / 1e3
            return 0.0

    def execute_fault(self) -> str | None:
        """Worker-level fault for the next EXECUTE: crash, hang, or None."""
        with self._lock:
            if self._hit(self.policy.crash_rate, "crash"):
                return "crash"
            if self._hit(self.policy.hang_rate, "hang"):
                return "hang"
            return None

    def apply_execute_fault(self) -> None:
        """Inject the drawn worker-level fault (called in the worker's
        EXECUTE handler)."""
        fault = self.execute_fault()
        if fault == "crash":
            os._exit(137)
        elif fault == "hang":
            time.sleep(self.policy.hang_s)


class ChaosSocket:
    """A socket wrapper that injects the engine's byte-level faults.

    Exposes the subset of the socket API the framing layer uses
    (``recv``/``sendall``/``settimeout``/``close``/...); everything else
    delegates to the wrapped socket.  Faults on send are raised as
    ``ConnectionResetError`` after closing the underlying socket, so
    both peers observe the failure the way a real network fault would
    present it.
    """

    def __init__(self, sock: socket.socket, engine: ChaosEngine):
        self._sock = sock
        self._engine = engine

    # -- fault-injected I/O ------------------------------------------------
    def sendall(self, data) -> None:
        delay = self._engine.send_delay_s()
        if delay > 0.0:
            time.sleep(delay)
        fault = self._engine.send_fault()
        if fault is None:
            self._sock.sendall(data)
            return
        if fault == "corrupt":
            buf = bytearray(data)
            if buf:
                buf[self._engine.corrupt_offset(len(buf))] ^= 0x5A
            self._sock.sendall(bytes(buf))
            return
        if fault == "truncate" and len(data) > 1:
            self._sock.sendall(bytes(data)[: max(1, len(data) // 2)])
        # drop (and the tail of truncate): kill the connection so the
        # peer sees a reset/short stream, and fail this side's exchange too.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        raise ConnectionResetError(f"chaos: injected {fault}")

    def recv(self, bufsize: int) -> bytes:
        stall = self._engine.recv_stall_s()
        if stall > 0.0:
            time.sleep(stall)
        return self._sock.recv(bufsize)

    # -- passthrough -------------------------------------------------------
    def settimeout(self, timeout) -> None:
        self._sock.settimeout(timeout)

    def gettimeout(self):
        return self._sock.gettimeout()

    def setsockopt(self, *args) -> None:
        self._sock.setsockopt(*args)

    def getpeername(self):
        return self._sock.getpeername()

    def getsockname(self):
        return self._sock.getsockname()

    def shutdown(self, how) -> None:
        self._sock.shutdown(how)

    def close(self) -> None:
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()

    def __enter__(self) -> "ChaosSocket":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------- soak
#: statuses a resolved future may legally carry after a chaos run
ALLOWED_STATUSES = frozenset({"ok", "expired", "failed", "shed"})


def chaos_soak(seed: int = 0, *, hosts: int = 2, requests: int = 32,
               n: int = 256, width: int = 8, kill: bool = True,
               restart: bool = True, policy: ChaosPolicy | None = None,
               result_timeout_s: float = 180.0,
               verbose: bool = True) -> int:
    """Loadgen traffic through a chaos-wrapped cluster; returns 0 on pass.

    The invariant under test is the resilience tier's contract: under a
    seeded schedule of drops, corrupt frames, delays (and a worker
    kill + restart mid-run), **no future is ever lost** — every one
    resolves within the deadline + watchdog budget with a status in
    ``{ok, expired, failed, shed}`` — and every ``ok`` result matches a
    solo run of the same request (bit-identical BGV, tolerance CKKS).

    Requests are submitted back-to-back (no pacing), i.e. at well over
    twice the default loadgen arrival rate; a quarter of them carry
    deadlines so the expiry/shed paths stay exercised.
    """
    from repro.bench.loadgen import (
        _check_ckks_drift,
        _compare_one,
        linear_bgv_program,
        poly_ckks_program,
        synthetic_requests,
    )
    import repro
    from repro.backends import FunctionalBackend, default_plaintext_modulus
    from repro.net.cluster import LocalCluster
    from repro.serve import FheServer

    if policy is None:
        policy = ChaosPolicy(seed=seed, drop_rate=0.03, corrupt_rate=0.02,
                             delay_rate=0.2, delay_ms=1.0, heavy_tail_ms=5.0)
    else:
        policy = policy.with_seed(seed)
    programs = [linear_bgv_program(n), poly_ckks_program(n)]
    per_program = max(2, requests // len(programs))
    traffic = [(prog, synthetic_requests(prog, per_program, width=width,
                                         seed=seed + i))
               for i, prog in enumerate(programs)]
    plan = [(prog, req) for prog, reqs in traffic for req in reqs]
    total = len(plan)
    kill_at = total // 3
    restart_at = 2 * total // 3

    futures: list = []
    with LocalCluster(hosts, chaos=policy) as cluster:
        with cluster.executor(heartbeat_s=0.1, execute_timeout_s=60.0,
                              hedge_after_s=0.5) as pool:
            with FheServer(executor=pool, workers=2, max_batch=4,
                           max_wait_ms=5.0, seed=seed) as server:
                for i, (prog, req) in enumerate(plan):
                    if kill and i == kill_at:
                        cluster.kill(0)
                    if restart and i == restart_at:
                        cluster.restart(0)
                    # A quarter of the traffic carries a latency budget
                    # so the expired/shed paths stay reachable; the
                    # budget is generous enough that most still serve.
                    deadline_ms = 5_000.0 if i % 4 == 0 else None
                    futures.append(server.submit(
                        prog, inputs=req.inputs, plains=req.plains,
                        width=width, deadline_ms=deadline_ms,
                    ))
                server.flush()
                lost = 0
                violations: list[str] = []
                results = []
                for i, future in enumerate(futures):
                    try:
                        results.append(future.result(
                            timeout=result_timeout_s))
                    except Exception as exc:  # noqa: BLE001 — tallied
                        results.append(None)
                        if future.done():
                            violations.append(
                                f"request {i} raised "
                                f"{type(exc).__name__}: {exc}")
                        else:
                            lost += 1
                stats = server.stats()

    statuses: dict[str, int] = {}
    max_err = 0.0
    checked = 0
    for (prog, req), result in zip(plan, results):
        if result is None:
            continue
        statuses[result.status] = statuses.get(result.status, 0) + 1
        if result.status not in ALLOWED_STATUSES:
            violations.append(f"illegal status {result.status!r}")
            continue
        if result.status != "ok":
            continue
        # batched == solo under retries/degradation: every ok result
        # must match an isolated run of the same request.
        solo = repro.run(prog, backend=FunctionalBackend(validate=False),
                         inputs=req.inputs, plains=req.plains or None,
                         seed=seed)
        err = _compare_one(prog, result.values, solo.outputs,
                           default_plaintext_modulus(prog), checked)
        _check_ckks_drift(prog, err)
        max_err = max(max_err, err)
        checked += 1

    ok = lost == 0 and not violations
    if verbose:
        resilience = dict(stats.get("executor", {}).get("resilience", {}))
        resilience.update({k: stats[k] for k in
                           ("failed", "shed", "degradations")
                           if stats.get(k)})
        print(f"chaos soak {'OK' if ok else 'FAILED'}: seed={seed}, "
              f"{total} requests over {hosts} hosts "
              f"(kill={kill}, restart={restart})")
        print(f"  statuses: {dict(sorted(statuses.items()))}, "
              f"lost={lost}, ok cross-checked={checked}, "
              f"max ckks err={max_err:.2e}")
        print(f"  resilience: {resilience}")
        for line in violations[:8]:
            print(f"  VIOLATION: {line}")
    return 0 if ok else 1


def chaos_smoke(hosts: int = 2, *, verbose: bool = True) -> int:
    """CI-sized chaos gate: seeded drop+delay schedule, one worker kill
    (no restart), zero lost futures.  Returns 0 on success."""
    return chaos_soak(seed=7, hosts=hosts, requests=12, kill=True,
                      restart=False, result_timeout_s=120.0,
                      verbose=verbose)
