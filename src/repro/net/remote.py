"""RemoteExecutor: shard flushed batches across remote worker hosts.

This is the PR 5 :class:`~repro.serve.executor.Executor` seam stretched
over the network — the ROADMAP's intended insertion point.  Where
:class:`~repro.serve.executor.ProcessExecutor` replicates registry
entries into forked worker processes over pipes, this executor
replicates them into :mod:`repro.net.worker` hosts over the framed
socket transport, with the same invariants:

- **keygen once, converge everywhere** — every host restores its context
  from the coordinator entry's serialized secret (workers never keygen),
  and each host's RNG is reseeded with fresh entropy at replication time
  so no two nodes share an encryption-randomness stream;
- **pinned replication** — entries and backends are keyed by identity
  and pinned (a strong reference) until released, so a freed entry's
  ``id()`` can never be reused and silently resolve to the wrong
  host-side context;
- **requests carry their own seeds** — ``repro.run(..., seed=)``
  determinism holds regardless of which host serves a request.

Routing: same-signature traffic is sharded by **consistent hash** of
``(signature, params)`` over the host ring (so one signature's hint
caches warm on a stable primary host and adding/removing a host only
remaps ``1/hosts`` of the traffic), with **least-inflight
tie-breaking** along the ring walk — an overloaded primary spills onto
the next hosts instead of queueing behind itself.

Self-healing: a monitor thread heartbeats every host.  A host that
misses its heartbeat (or fails a send mid-batch) is marked dead: its
sockets are shut down so in-flight batches fail immediately with a
distinct error instead of hanging, new traffic routes around it, and
the monitor keeps dialing until the host returns — at which point its
replication sets start empty (and its inflight/latency stats reset, so
least-inflight routing is not skewed by the bounced process), and
everything it needs re-replicates on first use.

Resilience (PR 9): a failed batch no longer poisons its futures.
``execute`` retries transport-level failures on surviving hosts with
capped, deadline-aware exponential backoff + jitter — safe because
execution is pure and seeds ride the requests, so a re-executed batch
is bit-identical and *batched == solo* is preserved.  Each EXECUTE
exchange runs under a watchdog timeout derived from the batch's
earliest request deadline (a hung worker times out and the batch moves
on instead of stranding futures); per-host circuit breakers (closed →
open on consecutive failures → half-open probe via the heartbeat) feed
the ring walk so routing skips sick hosts before paying a timeout; and
optional tail-latency hedging re-dispatches a batch to a second host
when its deadline is about to lapse, first success winning.  When the
retry budget is spent the typed error chain surfaces as
:class:`~repro.serve.resilience.RetriesExhausted` (the server resolves
futures with ``status == "failed"``); when no host is routable at all,
:class:`~repro.serve.resilience.ExecutorUnavailable` (the server
degrades to its embedded local fallback).
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import random
import socket
import threading
import time

import numpy as np

from repro.backends import FunctionalBackend, RunResult
from repro.obs.metrics import Histogram, global_metrics
from repro.obs.trace import tracer
from repro.net.framing import (
    FRAME_VERSION,
    MAX_FRAME_BYTES,
    FrameError,
    MsgType,
    recv_msg,
    send_msg,
    socket_timeout,
)
from repro.serve.executor import (
    BatchJob,
    ThreadExecutor,
    pick_least_inflight,
)
from repro.serve.registry import ContextEntry
from repro.serve.resilience import (
    CircuitBreaker,
    ExecutorUnavailable,
    HostFailure,
    RetriesExhausted,
    RetryPolicy,
)

#: virtual nodes per host on the consistent-hash ring; enough that the
#: load split stays near-uniform for small pools.
VNODES = 64


def shard_key(signature: str, params) -> int:
    """The consistent-hash shard key for one ``(signature, params)`` pair.

    Hashes the structural identity only (signature, scheme-independent
    parameter fingerprint) — two coordinators serving the same traffic
    shard it identically.
    """
    material = (
        f"{signature}|{params.n}|{params.plaintext_modulus}|"
        f"{','.join(map(str, params.basis.moduli))}"
    )
    return int.from_bytes(
        hashlib.sha256(material.encode()).digest()[:8], "big"
    )


def _ring_point(token: str) -> int:
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


class _Channel:
    """One command connection to a host; ``lock`` serializes its
    request/response exchanges (the per-host parallelism unit)."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.lock = threading.Lock()


class _Host:
    """Coordinator-side handle for one worker host."""

    def __init__(self, addr: tuple[str, int], index: int):
        self.addr = addr
        self.index = index
        self.channels: list[_Channel] = []
        self.hb_sock: socket.socket | None = None
        self.hb_lock = threading.Lock()
        self.state_lock = threading.Lock()
        #: ("ctx"|"prog"|"be", key) -> Event set once replication completed;
        #: waiters on other channels block until the owner's RESULT lands.
        self.replicated: dict[tuple, threading.Event] = {}
        self.dead = True          # comes alive on first successful connect
        self.inflight = 0
        self.dispatched = 0
        self.failed = 0
        self.reconnects = -1      # first connect is not a *re*connect
        #: bumped on every (re)connect; slots picked against an older
        #: epoch do not decrement the fresh inflight counter on release
        self.epoch = 0
        #: per-host circuit breaker (assigned by the executor, which owns
        #: the transition telemetry)
        self.breaker: CircuitBreaker | None = None
        #: round-trip latency distribution (mergeable obs histogram —
        #: the same bucket layout every other layer reports through)
        self.latencies_ms = Histogram()
        self.remote: dict = {}    # last heartbeat reply (pid, load)
        #: latest metrics blob piggybacked on a HEARTBEAT or RESULT
        #: reply (cumulative per host process, so latest-wins folds)
        self.metrics: dict | None = None
        self._rr = itertools.count()

    def next_channel(self) -> _Channel:
        channels = self.channels
        if not channels:
            raise RuntimeError(f"host {self.addr} has no live connection")
        return channels[next(self._rr) % len(channels)]


def _dial(addr: tuple[str, int], *, timeout: float,
          max_frame: int) -> socket.socket:
    """Connect and complete the HELLO handshake; returns a blocking socket."""
    sock = socket.create_connection(addr, timeout=timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_msg(sock, MsgType.HELLO, {"version": FRAME_VERSION},
                 max_frame=max_frame)
        msg_type, reply = recv_msg(sock, max_frame=max_frame)
        if msg_type is not MsgType.HELLO:
            raise ConnectionError(
                f"worker {addr} rejected the handshake: "
                f"{reply.get('error') if isinstance(reply, dict) else reply}"
            )
        sock.settimeout(None)
        return sock
    except BaseException:
        sock.close()
        raise


def _parse_addr(host) -> tuple[str, int]:
    if isinstance(host, tuple):
        return (host[0], int(host[1]))
    name, _, port = str(host).rpartition(":")
    return (name or "127.0.0.1", int(port))


class RemoteExecutor:
    """Runs functional batches on a pool of remote worker hosts.

    ``hosts`` is a list of ``"host:port"`` strings or ``(host, port)``
    tuples; ``channels`` command connections are opened per host, so a
    host can execute that many batches concurrently (pair with worker
    ``--processes``).  Backends that do not execute encrypted values
    fall back to an inner :class:`ThreadExecutor`, exactly like the
    process pool.

    Failure policy knobs: ``retry`` is the
    :class:`~repro.serve.resilience.RetryPolicy` for transport-level
    batch failures (pass ``RetryPolicy(max_attempts=1)`` to restore the
    PR 7 fail-fast behavior); ``execute_timeout_s`` is the watchdog for
    deadline-free batches (deadline-carrying batches derive theirs from
    the deadline plus ``watchdog_grace_s``); ``hedge_after_s`` enables
    tail-latency hedging — a batch still in flight that close to its
    deadline is speculatively re-dispatched to a second host, first
    success winning (safe: re-execution is bit-identical).
    ``breaker_failures`` consecutive transport failures open a host's
    circuit breaker for ``breaker_reset_s``; a successful heartbeat
    then closes it (the half-open probe).
    """

    name = "remote"

    def __init__(self, hosts, *, channels: int = 2,
                 heartbeat_s: float = 0.25, heartbeat_timeout: float = 2.0,
                 connect_timeout: float = 10.0,
                 max_frame: int = MAX_FRAME_BYTES,
                 retry: RetryPolicy | None = None,
                 execute_timeout_s: float | None = 120.0,
                 watchdog_grace_s: float = 2.0,
                 hedge_after_s: float | None = None,
                 breaker_failures: int = 3, breaker_reset_s: float = 1.0):
        addrs = [_parse_addr(h) for h in hosts]
        if not addrs:
            raise ValueError("at least one worker host is required")
        self.channels = max(1, channels)
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self.max_frame = max_frame
        self.retry = retry if retry is not None else RetryPolicy()
        self.execute_timeout_s = execute_timeout_s
        self.watchdog_grace_s = watchdog_grace_s
        self.hedge_after_s = hedge_after_s
        self._jitter_rng = random.Random()
        #: resilience transition counters (also mirrored into the
        #: process-global metrics registry as net.* counters)
        self._events_lock = threading.Lock()
        self._events = {"retries": 0, "hedges": 0, "retry_exhausted": 0,
                        "breaker_opens": 0, "breaker_closes": 0}
        self._fallback = ThreadExecutor()
        self._guard = threading.Lock()
        self._ctx_keys: dict[int, tuple[int, ContextEntry]] = {}
        self._ctx_counter = itertools.count()
        self._backend_keys: dict[int, tuple[int, object]] = {}
        self._backend_counter = itertools.count()
        self._closed = False
        self._owned_cluster = None   # set by cluster.remote_executor
        self._hosts = [_Host(addr, i) for i, addr in enumerate(addrs)]
        for host in self._hosts:
            host.breaker = CircuitBreaker(
                failure_threshold=breaker_failures,
                reset_after_s=breaker_reset_s,
                on_transition=(lambda old, new, h=host:
                               self._breaker_transition(h, old, new)),
            )
        ring = []
        for host in self._hosts:
            for v in range(VNODES):
                ring.append((_ring_point(f"{host.addr[0]}:{host.addr[1]}#{v}"),
                             host.index))
        ring.sort()
        self._ring_points = [p for p, _ in ring]
        self._ring_hosts = [i for _, i in ring]
        errors = []
        for host in self._hosts:
            try:
                self._connect_host(host)
            except OSError as exc:
                errors.append(f"{host.addr}: {exc}")
        if all(h.dead for h in self._hosts):
            raise ConnectionError(
                "could not reach any worker host: " + "; ".join(errors)
            )
        self._monitor_stop = threading.Event()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="remote-executor-monitor",
            daemon=True,
        )
        self._monitor.start()

    # --------------------------------------------------------------- events
    def _note_event(self, name: str, n: int = 1) -> None:
        with self._events_lock:
            self._events[name] += n
        global_metrics().counter(f"net.{name}").inc(n)

    def _breaker_transition(self, host: _Host, old: str, new: str) -> None:
        """Breaker state changes feed telemetry: counters + trace events
        (called from inside the breaker; must not re-enter it)."""
        if new == CircuitBreaker.OPEN:
            self._note_event("breaker_opens")
        elif old == CircuitBreaker.OPEN or new == CircuitBreaker.CLOSED:
            self._note_event("breaker_closes")
        tracer().event("breaker", addr=f"{host.addr[0]}:{host.addr[1]}",
                       old=old, new=new)

    # ----------------------------------------------------------- connections
    def _connect_host(self, host: _Host) -> None:
        """(Re)establish every connection to one host; resets its
        replication sets, so state re-replicates on first use."""
        channels = [
            _Channel(_dial(host.addr, timeout=self.connect_timeout,
                           max_frame=self.max_frame))
            for _ in range(self.channels)
        ]
        hb = _dial(host.addr, timeout=self.connect_timeout,
                   max_frame=self.max_frame)
        hb.settimeout(self.heartbeat_timeout)
        with host.state_lock:
            host.channels = channels
            host.hb_sock = hb
            host.replicated = {}
            host.dead = False
            host.reconnects += 1
        with self._guard:
            # A bounced host is a fresh process: stale inflight counts
            # and the old process's latency distribution must not skew
            # least-inflight routing against (or toward) it.  The epoch
            # bump makes slots picked before the bounce release as
            # no-ops instead of driving the fresh counter negative.
            host.epoch += 1
            host.inflight = 0
            host.latencies_ms.reset()

    def _mark_dead(self, host: _Host) -> None:
        """Route around a host and fail whatever is in flight on it.

        Shutting the sockets down unblocks any thread mid-``recv`` with
        an immediate error — an unreachable host fails its batches with
        a distinct error instead of hanging them.
        """
        with host.state_lock:
            if host.dead:
                return
            host.dead = True
            socks = [c.sock for c in host.channels]
            if host.hb_sock is not None:
                socks.append(host.hb_sock)
            host.channels = []
            host.hb_sock = None
            host.replicated = {}
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.heartbeat_s):
            for host in self._hosts:
                if self._monitor_stop.is_set():
                    return
                if host.dead:
                    try:
                        self._connect_host(host)
                    except OSError:
                        continue
                try:
                    with host.hb_lock:
                        sock = host.hb_sock
                        if sock is None:
                            continue
                        send_msg(sock, MsgType.HEARTBEAT, {},
                                 max_frame=self.max_frame)
                        msg_type, reply = recv_msg(sock,
                                                   max_frame=self.max_frame)
                    if msg_type is MsgType.HEARTBEAT:
                        metrics = (reply.pop("metrics", None)
                                   if isinstance(reply, dict) else None)
                        if metrics is not None:
                            host.metrics = metrics
                        host.remote = reply
                        # The heartbeat doubles as the breaker's
                        # half-open probe: once an OPEN breaker ages
                        # into half-open, the next heartbeat success
                        # closes it and readmits the host to routing.
                        # (Execute successes reset the failure count in
                        # the closed state; heartbeats do not, so they
                        # cannot mask a host that fails every batch.)
                        if host.breaker.state == CircuitBreaker.HALF_OPEN:
                            host.breaker.record_success()
                except (OSError, FrameError, ConnectionError):
                    self._mark_dead(host)
                    host.breaker.record_failure()

    # -------------------------------------------------------------- routing
    def _candidates(self, key: int) -> list[tuple[int, _Host]]:
        """Routable hosts in ring-walk order from ``key``: (rank, host).

        A host is routable when it is alive *and* its circuit breaker
        admits traffic (closed or half-open) — an open breaker takes a
        sick-but-connected host out of rotation before anyone pays a
        timeout on it.
        """
        start = bisect.bisect_left(self._ring_points, key)
        seen: set[int] = set()
        ordered: list[tuple[int, _Host]] = []
        n = len(self._ring_hosts)
        for step in range(n):
            idx = self._ring_hosts[(start + step) % n]
            if idx in seen:
                continue
            seen.add(idx)
            host = self._hosts[idx]
            if not host.dead and host.breaker.would_allow():
                ordered.append((len(ordered), host))
            if len(seen) == len(self._hosts):
                break
        return ordered

    def _pick(self, signature: str, entry: ContextEntry,
              exclude: frozenset | set = frozenset(),
              ) -> tuple[_Host, int, int]:
        """Pick ``(host, ring rank, epoch)``; ``exclude`` holds indices of
        hosts that just failed this batch — honored when any other host
        is routable, ignored otherwise (a lone recovered host is better
        than none)."""
        with self._guard:
            if self._closed:
                raise RuntimeError("executor is closed")
            candidates = self._candidates(shard_key(signature, entry.params))
            if not candidates:
                raise ExecutorUnavailable(
                    "no routable worker hosts (dead or breaker-open); "
                    "batches fail over or degrade rather than hang"
                )
            preferred = [(r, h) for r, h in candidates
                         if h.index not in exclude]
            if preferred:
                candidates = preferred
            rank = {id(host): r for r, host in candidates}
            host = pick_least_inflight(
                [host for _, host in candidates],
                tiebreak=lambda h: rank[id(h)],
            )
            host.inflight += 1
            host.dispatched += 1
            return host, rank[id(host)], host.epoch

    def _release_slot(self, host: _Host, epoch: int) -> None:
        with self._guard:
            # Slots from before a reconnect are stale: the fresh process
            # started with inflight == 0 and owes them nothing.
            if host.epoch == epoch and host.inflight > 0:
                host.inflight -= 1

    # ---------------------------------------------------------- replication
    def _ctx_key(self, entry: ContextEntry) -> int:
        with self._guard:
            known = self._ctx_keys.get(id(entry))
            if known is None:
                known = (next(self._ctx_counter), entry)
                self._ctx_keys[id(entry)] = known
            return known[0]

    def _backend_key(self, backend) -> int:
        with self._guard:
            known = self._backend_keys.get(id(backend))
            if known is None:
                known = (next(self._backend_counter), backend)
                self._backend_keys[id(backend)] = known
            return known[0]

    def _call(self, host: _Host, channel: _Channel, msg_type: MsgType,
              message: dict) -> dict:
        """One request/response exchange (caller holds ``channel.lock``)."""
        try:
            send_msg(channel.sock, msg_type, message,
                     max_frame=self.max_frame)
            reply_type, reply = recv_msg(channel.sock,
                                         max_frame=self.max_frame)
        except (OSError, FrameError, ConnectionError) as exc:
            # Transport failure (death, watchdog timeout, stream
            # desync): typed as retryable — the batch fails over to a
            # survivor instead of failing its futures.
            self._mark_dead(host)
            host.breaker.record_failure()
            with self._guard:
                host.failed += 1
            failure = HostFailure(
                f"worker host {host.addr[0]}:{host.addr[1]} died mid-call "
                f"({type(exc).__name__}: {exc}); the batch fails over and "
                f"the host will be redialed"
            )
            failure.host_index = host.index
            raise failure from None
        if reply_type is MsgType.ERROR:
            if reply.get("fatal"):
                # Framing violations desynchronize the stream — the
                # host is healthy-ish but this connection set is not;
                # treat like a transport failure so the batch retries.
                self._mark_dead(host)
                host.breaker.record_failure()
                with self._guard:
                    host.failed += 1
                failure = HostFailure(
                    f"worker host {host.addr[0]}:{host.addr[1]} rejected "
                    f"the stream: {reply.get('error')}"
                )
                failure.host_index = host.index
                raise failure
            # Non-fatal ERROR = remote execution error: deterministic
            # (execution is pure), so retrying elsewhere would fail
            # identically — surface it without retry.
            raise RuntimeError(
                f"worker host {host.addr[0]}:{host.addr[1]} failed: "
                f"{reply.get('error')}\n{reply.get('traceback', '')}"
            )
        return reply

    def _ship_once(self, host: _Host, channel: _Channel, tag: str, key,
                   message: dict) -> None:
        """Replicate one piece of state to ``host`` exactly once.

        The first channel to need it ships it (holding its own channel
        lock); concurrent channels wait on the completion event rather
        than shipping duplicates — and, crucially, rather than sending an
        EXECUTE that references a key the worker has not seen yet.
        """
        with host.state_lock:
            if host.dead:
                failure = HostFailure(f"worker host {host.addr} is down")
                failure.host_index = host.index
                raise failure
            event = host.replicated.get((tag, key))
            owner = event is None
            if owner:
                event = threading.Event()
                host.replicated[(tag, key)] = event
        if owner:
            try:
                self._call(host, channel, MsgType.REPLICATE, message)
            except BaseException:
                with host.state_lock:
                    if host.replicated.get((tag, key)) is event:
                        del host.replicated[(tag, key)]
                event.set()   # wake waiters; they re-check and re-ship
                raise
            event.set()
        elif not event.wait(timeout=60.0):
            failure = HostFailure(
                f"timed out waiting for replication to {host.addr}"
            )
            failure.host_index = host.index
            raise failure
        elif (tag, key) not in host.replicated:
            # The owner failed after we started waiting; one retry ships
            # it ourselves (recursion depth is bounded by the retry).
            self._ship_once(host, channel, tag, key, message)

    def _ensure_replicated(self, host: _Host, channel: _Channel,
                           job: BatchJob, key: int, backend_key: int) -> int:
        entry = job.context_entry
        with self._guard:
            # Re-pin under the guard (a concurrent release may have
            # unpinned the entry between key capture and now), keeping
            # any newer key — same scheme as ProcessExecutor.
            known = self._ctx_keys.setdefault(id(entry), (key, entry))
        key = known[0]
        self._ship_once(host, channel, "ctx", key, {
            "kind": "context", "key": key,
            "state": entry.context.to_state(),
            "signature": job.signature,
            # Fresh entropy per (host, entry): no two replicas — here or
            # in any process pool — share an encryption-randomness stream.
            "reseed": np.random.SeedSequence().entropy,
        })
        batcher = job.batcher
        self._ship_once(host, channel, "prog", job.signature, {
            "kind": "program", "key": job.signature, "program": job.program,
            "width": batcher.width if batcher is not None else 1,
            "max_batch": batcher.capacity if batcher is not None else 1,
        })
        self._ship_once(host, channel, "be", backend_key, {
            "kind": "backend", "key": backend_key, "backend": job.backend,
        })
        return key

    # ---------------------------------------------------------------- public
    def _watchdog_s(self, deadline: float | None) -> float | None:
        """Per-exchange timeout: the batch's remaining deadline budget
        plus grace, or the flat ``execute_timeout_s`` with no deadline.
        A hung worker times out (an ``OSError``, so the normal mark-dead
        + retry path runs) instead of stranding the batch's futures."""
        if deadline is None:
            return self.execute_timeout_s
        return max(deadline - time.perf_counter(), 0.05) + self.watchdog_grace_s

    def _attempt(self, job: BatchJob, key: int, backend_key: int,
                 deadline: float | None,
                 exclude: frozenset | set = frozenset(),
                 chosen: list | None = None) -> tuple[list[dict], RunResult]:
        """One dispatch attempt on one host (raises HostFailure /
        ExecutorUnavailable for retryable conditions)."""
        host, _rank, epoch = self._pick(job.signature, job.context_entry,
                                        exclude=exclude)
        if chosen is not None:
            chosen.append(host.index)
        start = time.perf_counter()
        try:
            try:
                channel = host.next_channel()
            except RuntimeError as exc:
                failure = HostFailure(str(exc))
                failure.host_index = host.index
                raise failure from None
            with channel.lock:
                with socket_timeout(channel.sock, self._watchdog_s(deadline)):
                    key = self._ensure_replicated(host, channel, job, key,
                                                  backend_key)
                    reply = self._call(host, channel, MsgType.EXECUTE, {
                        "ctx": key, "program": job.signature,
                        "backend": backend_key,
                        "batched": job.batcher is not None,
                        "requests": [(r.inputs, r.plains, r.seed, r.level,
                                      getattr(r, "trace", None))
                                     for r in job.requests],
                    })
            host.breaker.record_success()
            host.latencies_ms.observe((time.perf_counter() - start) * 1e3)
            # Fold the host's observability payload into the coordinator:
            # spans it captured for traced requests, its cumulative
            # metrics blob, and which host actually served the batch.
            tracer().ingest(reply.get("spans"))
            if reply.get("metrics") is not None:
                host.metrics = reply["metrics"]
            result = reply["result"]
            if isinstance(result.stats, dict):
                inner = result.stats.get("executed_on") or {}
                result.stats["executed_on"] = {
                    "executor": self.name,
                    "addr": f"{host.addr[0]}:{host.addr[1]}",
                    "pid": reply.get("pid"),
                    "via": inner.get("executor"),
                }
            return reply["outputs"], result
        finally:
            self._release_slot(host, epoch)

    def _hedged_attempt(self, job: BatchJob, key: int, backend_key: int,
                        deadline: float,
                        exclude: frozenset | set = frozenset(),
                        ) -> tuple[list[dict], RunResult]:
        """Primary attempt plus a speculative second dispatch when the
        deadline is about to lapse; first success wins.

        Safe because execution is pure and seeds ride the requests: both
        attempts produce bit-identical outputs, so whichever lands first
        is *the* answer and the loser is discarded.
        """
        done = threading.Event()
        lock = threading.Lock()
        box: dict = {"result": None, "errors": [], "pending": 1}
        primary_hosts: list[int] = []

        def run(excl, chosen):
            try:
                out = self._attempt(job, key, backend_key, deadline,
                                    exclude=excl, chosen=chosen)
                with lock:
                    if box["result"] is None:
                        box["result"] = out
                done.set()
            except Exception as exc:  # noqa: BLE001 — tallied below
                with lock:
                    box["errors"].append(exc)
                    box["pending"] -= 1
                    if box["pending"] == 0:
                        done.set()

        threading.Thread(target=run, args=(exclude, primary_hosts),
                         name="remote-executor-primary",
                         daemon=True).start()
        # Fire the hedge ``hedge_after_s`` before the deadline (or at
        # once if the budget is already inside that window).
        fire_in = max(0.0, (deadline - self.hedge_after_s)
                      - time.perf_counter())
        if not done.wait(timeout=fire_in):
            with lock:
                still_running = box["pending"] > 0 and box["result"] is None
                if still_running:
                    box["pending"] += 1
            if still_running:
                self._note_event("hedges")
                tracer().event("hedge", signature=job.signature[:16],
                               k=len(job.requests))
                hedge_exclude = set(exclude) | set(primary_hosts)
                threading.Thread(target=run, args=(hedge_exclude, None),
                                 name="remote-executor-hedge",
                                 daemon=True).start()
        # Both attempts run under the deadline-derived watchdog, so this
        # wait is bounded by deadline + grace (plus scheduling noise).
        done.wait()
        with lock:
            if box["result"] is not None:
                return box["result"]
            errors = list(box["errors"])
        # Every started attempt failed; surface the most recent failure
        # to the outer retry loop (hedging never swallows the chain).
        raise errors[-1]

    def execute(self, job: BatchJob) -> tuple[list[dict], RunResult]:
        backend = job.backend
        if not isinstance(backend, FunctionalBackend) or job.context_entry is None:
            return self._fallback.execute(job)
        key = self._ctx_key(job.context_entry)
        backend_key = self._backend_key(backend)
        deadline = job.deadline
        failures = 0
        causes: list[BaseException] = []
        exclude: set[int] = set()
        while True:
            try:
                if (self.hedge_after_s is not None and deadline is not None
                        and sum(1 for h in self._hosts if not h.dead) > 1):
                    return self._hedged_attempt(job, key, backend_key,
                                                deadline, exclude=exclude)
                return self._attempt(job, key, backend_key, deadline,
                                     exclude=exclude)
            except (HostFailure, ExecutorUnavailable) as exc:
                causes.append(exc)
                failures += 1
                failed_host = getattr(exc, "host_index", None)
                if failed_host is not None:
                    # Prefer a different host on the next attempt (soft:
                    # _pick ignores the exclusion when it would leave no
                    # candidate, so a lone restarted host still serves).
                    exclude = {failed_host}
                remaining = (None if deadline is None
                             else deadline - time.perf_counter())
                delay = self.retry.backoff_s(failures, rng=self._jitter_rng,
                                             remaining_s=remaining)
                if delay is None:
                    self._note_event("retry_exhausted")
                    if isinstance(exc, ExecutorUnavailable):
                        # Nothing routable at all: let the server degrade
                        # to its embedded local fallback.
                        raise
                    raise RetriesExhausted(
                        f"batch for {job.signature[:16]} failed "
                        f"{failures} attempt(s); last: {exc}",
                        causes=causes,
                    ) from exc
                self._note_event("retries")
                tracer().event("retry", signature=job.signature[:16],
                               attempt=failures, delay_ms=delay * 1e3,
                               error=type(exc).__name__)
                time.sleep(delay)

    def release(self, entry: ContextEntry) -> None:
        """Unpin a replicated entry and evict it from every live host.

        Long-lived pools cycling through many ``(signature, params)``
        combinations should release retired entries, or host-side memory
        (contexts plus their growing hint caches) accumulates without
        bound.  Releasing an entry that was never replicated is a no-op;
        a later batch for it simply replicates again.
        """
        with self._guard:
            known = self._ctx_keys.pop(id(entry), None)
        if known is None:
            return
        self._drop("ctx", known[0], {"kind": "drop_context", "key": known[0]})

    def release_backend(self, backend) -> None:
        """Unpin a shipped backend and evict it from every live host."""
        with self._guard:
            known = self._backend_keys.pop(id(backend), None)
        if known is None:
            return
        self._drop("be", known[0], {"kind": "drop_backend", "key": known[0]})

    def _drop(self, tag: str, key, message: dict) -> None:
        for host in self._hosts:
            with host.state_lock:
                held = not host.dead and (tag, key) in host.replicated
                if held:
                    del host.replicated[(tag, key)]
            if not held:
                continue
            try:
                channel = host.next_channel()
                with channel.lock:
                    self._call(host, channel, MsgType.REPLICATE, message)
            except RuntimeError:
                pass   # a dead host forgot everything anyway

    def probe(self, entry: ContextEntry) -> list[dict]:
        """Replicate ``entry`` to every live host and report each host's
        view (same secret everywhere, distinct pids, RNGs seeded apart)."""
        key = self._ctx_key(entry)
        program = _probe_program(entry)
        job = BatchJob(program=program, signature=program.signature(),
                       requests=[], batcher=None,
                       backend=FunctionalBackend(validate=False),
                       context_entry=entry)
        out = []
        for host in self._hosts:
            if host.dead:
                continue
            channel = host.next_channel()
            with channel.lock:
                key = self._ensure_replicated(
                    host, channel, job, key, self._backend_key(job.backend)
                )
                out.append(self._call(host, channel, MsgType.REPLICATE,
                                      {"kind": "probe", "key": key}))
        return out

    def stats(self) -> dict:
        """Per-host observability: inflight/dispatched/latency/reconnects.

        Surfaces through ``FheServer.stats()["executor"]`` — the README's
        telemetry section documents the schema.
        """
        with self._guard:
            hosts = []
            for host in self._hosts:
                hosts.append({
                    "addr": f"{host.addr[0]}:{host.addr[1]}",
                    "alive": not host.dead,
                    "breaker": host.breaker.state,
                    "inflight": host.inflight,
                    "dispatched": host.dispatched,
                    "failed": host.failed,
                    "reconnects": max(host.reconnects, 0),
                    "latency_ms": host.latencies_ms.summary(),
                    "remote": dict(host.remote),
                })
            out = {
                "executor": self.name,
                "hosts": hosts,
                "dispatched": sum(h.dispatched for h in self._hosts),
                "reconnects": sum(max(h.reconnects, 0) for h in self._hosts),
                "fallback": self._fallback.stats(),
            }
        with self._events_lock:
            out["resilience"] = dict(self._events)
        return out

    def healthy(self) -> bool:
        """True when at least one host is routable (alive with a closed
        or half-open breaker).  The server consults this while degraded
        to decide when to hand traffic back to the remote pool."""
        return any(not h.dead and h.breaker.would_allow()
                   for h in self._hosts)

    def metrics_blobs(self) -> list[dict]:
        """Latest metrics snapshot from each worker host (piggybacked on
        HEARTBEAT and RESULT replies; cumulative per host process), for
        the server to merge into its registry."""
        with self._guard:
            return [h.metrics for h in self._hosts if h.metrics]

    def close(self) -> None:
        with self._guard:
            if self._closed:
                return
            self._closed = True
        self._monitor_stop.set()
        self._monitor.join(timeout=5)
        for host in self._hosts:
            host.dead = False   # force the socket teardown below
            self._mark_dead(host)
        with self._guard:
            self._ctx_keys.clear()
            self._backend_keys.clear()
        self._fallback.close()
        if self._owned_cluster is not None:
            self._owned_cluster.close()
            self._owned_cluster = None

    def __enter__(self) -> "RemoteExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _probe_program(entry: ContextEntry):
    """A minimal program matching the entry's scheme, for probe shipping."""
    from repro.dsl.program import Program

    program = Program(n=entry.params.n, scheme=entry.scheme,
                      name="net_probe")
    x = program.input(1, name="x")
    program.output(x)
    return program
