"""LocalCluster: spawn N worker-host subprocesses for tests and benchmarks.

The production topology is one :mod:`repro.net.worker` per machine; this
harness reproduces it on one box by spawning N worker subprocesses on
loopback ports, so the whole network tier — framing, replication,
sharding, failover — is exercisable out of the box::

    from repro.net import LocalCluster, RemoteExecutor

    with LocalCluster(2) as cluster:
        with RemoteExecutor(cluster.addresses) as pool:
            with FheServer(executor=pool) as server:
                ...

or, all of the above in one string::

    with FheServer(executor="remote") as server:   # spawns a local cluster
        ...

Each worker is a real OS process with its own interpreter (and GIL), so
an N-host local cluster gives genuine multi-core parallelism — the same
resource the process executor taps, but reached through the wire
protocol a real multi-machine deployment would use.
"""

from __future__ import annotations

import atexit
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.obs.log import get_logger

_SRC_ROOT = str(Path(__file__).resolve().parents[2])
_log = get_logger("repro.net.cluster")


def _worker_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (f"{_SRC_ROOT}{os.pathsep}{existing}"
                         if existing else _SRC_ROOT)
    return env


def _spawn_worker(port: int, *, processes: int = 0,
                  startup_timeout: float = 30.0, chaos: str | None = None):
    """Start one worker subprocess; returns ``(popen, (host, port))``.

    The worker announces its bound address on stdout (``--port 0`` makes
    the OS pick); we read lines until the announcement appears so callers
    always get a dialable address back.  ``chaos`` is a
    ``ChaosPolicy.parse`` spec string forwarded as ``--chaos``.
    """
    cmd = [sys.executable, "-m", "repro.net.worker", "--port", str(port)]
    if processes:
        cmd += ["--processes", str(processes)]
    if chaos:
        cmd += ["--chaos", chaos]
    proc = subprocess.Popen(
        cmd, env=_worker_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + startup_timeout
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if "listening on" in line:
            addr = line.rsplit(" ", 1)[-1].strip()
            host, _, bound_port = addr.rpartition(":")
            _log.info("worker_spawned", pid=proc.pid, host=host,
                      port=int(bound_port), processes=processes)
            return proc, (host, int(bound_port))
    proc.kill()
    _log.error("worker_spawn_failed", port=port,
               output="".join(lines).strip())
    raise RuntimeError(
        "worker subprocess failed to start:\n" + "".join(lines)
    )


class LocalCluster:
    """N local worker-host subprocesses, ready to front a RemoteExecutor.

    ``processes_per_host`` forwards ``--processes`` to each worker (an
    inner process pool per host); the default keeps each host
    single-process — cross-host parallelism then comes from the cluster
    itself, one interpreter per host.

    The harness is also the failover test rig: :meth:`kill` hard-kills
    one worker (its in-flight batches fail and traffic routes around
    it), and :meth:`restart` brings a worker back *on the same port*, so
    the executor's reconnect path can be exercised deterministically.
    """

    def __init__(self, hosts: int = 2, *, processes_per_host: int = 0,
                 startup_timeout: float = 30.0, chaos=None):
        if hosts < 1:
            raise ValueError("hosts must be >= 1")
        self.processes_per_host = processes_per_host
        self.startup_timeout = startup_timeout
        #: base fault-injection policy (repro.net.chaos.ChaosPolicy) or
        #: None.  Worker ``i`` runs with seed ``base.seed + i`` so hosts
        #: fault independently yet the whole cluster's schedule replays
        #: from the single base seed — including across restart(), which
        #: re-derives the same per-index seed.
        self.chaos = None
        if chaos is not None:
            from repro.net.chaos import ChaosPolicy

            self.chaos = (ChaosPolicy.parse(chaos) if isinstance(chaos, str)
                          else chaos)
        self._procs = []
        self._addrs: list[tuple[str, int]] = []
        try:
            for i in range(hosts):
                proc, addr = _spawn_worker(
                    0, processes=processes_per_host,
                    startup_timeout=startup_timeout,
                    chaos=self._chaos_spec(i),
                )
                self._procs.append(proc)
                self._addrs.append(addr)
        except BaseException:
            self.close()
            raise
        # Belt and braces: worker subprocesses must never outlive the
        # parent, even when close() is skipped (e.g. a timing harness).
        atexit.register(self.close)

    def _chaos_spec(self, index: int) -> str | None:
        if self.chaos is None:
            return None
        return self.chaos.with_seed(self.chaos.seed + index).spec()

    @property
    def addresses(self) -> list[str]:
        return [f"{host}:{port}" for host, port in self._addrs]

    def executor(self, **kw) -> "RemoteExecutor":
        """A :class:`~repro.net.remote.RemoteExecutor` over this cluster."""
        from repro.net.remote import RemoteExecutor

        return RemoteExecutor(self.addresses, **kw)

    def kill(self, index: int) -> None:
        """Hard-kill one worker (SIGKILL): the failover scenario."""
        host, port = self._addrs[index]
        _log.warning("worker_killed", index=index, host=host, port=port,
                     pid=self._procs[index].pid)
        self._procs[index].kill()
        self._procs[index].wait()

    def restart(self, index: int) -> None:
        """Respawn a (killed) worker on its original port, so an executor
        monitoring that address reconnects and re-replicates."""
        proc = self._procs[index]
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        port = self._addrs[index][1]
        deadline = time.monotonic() + self.startup_timeout
        while True:
            # The freed port can linger briefly after a SIGKILL; retry
            # until the bind succeeds or the startup budget runs out.
            try:
                new_proc, addr = _spawn_worker(
                    port, processes=self.processes_per_host,
                    startup_timeout=self.startup_timeout,
                    chaos=self._chaos_spec(index),
                )
                break
            except RuntimeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)
        self._procs[index] = new_proc
        self._addrs[index] = addr
        _log.info("worker_restarted", index=index, host=addr[0],
                  port=addr[1], pid=new_proc.pid)

    def close(self) -> None:
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
        atexit.unregister(self.close)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def remote_executor(hosts: int = 2, *, processes_per_host: int = 0,
                    **executor_kw) -> "RemoteExecutor":
    """A RemoteExecutor over a freshly spawned local cluster it owns.

    This is what ``FheServer(executor="remote")`` and
    ``resolve_executor("remote")`` construct: closing the executor tears
    the cluster down too, so nothing leaks worker subprocesses.
    """
    cluster = LocalCluster(hosts, processes_per_host=processes_per_host)
    try:
        executor = cluster.executor(**executor_kw)
    except BaseException:
        cluster.close()
        raise
    executor._owned_cluster = cluster
    return executor


def cluster_smoke(hosts: int = 2, *, verbose: bool = True) -> int:
    """Tiny end-to-end exercise of the network tier, for CI gating.

    Spawns ``hosts`` local workers, replicates one registry entry to all
    of them over the wire, checks the replication invariant (same secret
    on every host, distinct pids, RNGs reseeded apart), and verifies a
    remotely executed batch is bit-identical to in-process execution.
    Returns 0 on success (suitable as an exit code).
    """
    import numpy as np

    from repro.backends import FunctionalBackend
    from repro.dsl.program import Program
    from repro.serve.batcher import Request, SlotBatcher
    from repro.serve.executor import BatchJob, ThreadExecutor
    from repro.serve.registry import ProgramRegistry

    program = Program(n=128, scheme="bgv", name="cluster_smoke")
    x = program.input(2, name="x")
    w = program.input_plain(2, name="w")
    program.output(program.mul_plain(x, w))
    registry = ProgramRegistry()
    entry, _ = registry.context_for(program, seed=11)
    batcher = SlotBatcher(program, width=4)
    rng = np.random.default_rng(0)
    shared_w = rng.integers(0, 256, 4)
    requests = [Request(inputs={x.op_id: rng.integers(0, 256, 4)},
                        plains={w.op_id: shared_w}) for _ in range(4)]
    backend = FunctionalBackend(validate=False)
    job = BatchJob(program=program, signature=program.signature(),
                   requests=requests, batcher=batcher, backend=backend,
                   context_entry=entry)
    with LocalCluster(hosts) as cluster:
        with cluster.executor() as executor:
            probes = executor.probe(entry)
            shas = {p["secret_sha"] for p in probes}
            pids = {p["pid"] for p in probes}
            rngs = {tuple(p["rng_fingerprint"]) for p in probes}
            if len(shas) != 1 or len(pids) != hosts or len(rngs) != hosts:
                if verbose:
                    print(f"cluster smoke FAILED: replicas diverged "
                          f"(secrets={len(shas)}, pids={len(pids)}, "
                          f"rng streams={len(rngs)})")
                return 1
            remote_outputs, _ = executor.execute(job)
    local_outputs, _ = ThreadExecutor().execute(job)
    for got, want in zip(remote_outputs, local_outputs):
        for out_id in want:
            if not np.array_equal(got[out_id], want[out_id]):
                if verbose:
                    print("cluster smoke FAILED: outputs diverged")
                return 1
    if verbose:
        print(f"cluster smoke OK: {hosts} worker hosts over the socket "
              f"transport, shared secret, per-host RNG streams apart, "
              f"batched outputs bit-identical to in-process execution")
    return 0
