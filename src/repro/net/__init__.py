"""Network tier: multi-host sharded serving over a socket transport.

The F1 paper scales by replicating many independent compute clusters
behind one dispatch point; PR 5's process executor was that architecture
on one box.  This package lifts it across machine boundaries — the
ROADMAP's "multi-host sharded serving" item:

- :mod:`repro.net.framing` — the **wire layer**: length-prefixed binary
  frames over TCP with a versioned, checksummed header and a small
  message-type vocabulary (HELLO/REPLICATE/EXECUTE/RESULT/HEARTBEAT/
  ERROR).  Payloads ride the existing ``to_state()`` pickles; the frame
  layer rejects oversized/garbage/truncated input *before* any byte is
  unpickled.
- :mod:`repro.net.worker` — a **worker host** (``python -m
  repro.net.worker --port N``): accepts replicated registry entries
  (keygen happens once, on the coordinator — workers never keygen),
  executes :class:`~repro.serve.executor.BatchJob` traffic through the
  PR 5 executor seam, and answers heartbeats.
- :mod:`repro.net.remote` — :class:`RemoteExecutor`, an
  :class:`~repro.serve.executor.Executor` fronting a pool of worker
  hosts: same-signature traffic is sharded by consistent hash of
  ``(signature, params)`` with least-inflight tie-breaking, and the pool
  is self-healing (heartbeat-detected dead hosts fail their in-flight
  batches, are routed around, and re-replicate on reconnect).
- :mod:`repro.net.cluster` — :class:`LocalCluster`, a harness that
  spawns N local worker subprocesses so ``FheServer(executor="remote")``
  and the tests/benchmarks work out of the box.
- :mod:`repro.net.chaos` — the **fault-injection harness**: a seeded
  :class:`ChaosPolicy` (connection drops, frame corruption, truncation,
  fixed/heavy-tailed delays, stalled reads, worker crashes/hangs)
  applied via :class:`ChaosSocket` and the worker's ``--chaos`` flag /
  ``LocalCluster(chaos=...)``, plus the :func:`chaos_soak` invariant
  check (zero lost futures, batched == solo on every success).
"""

from repro.net.chaos import (
    ChaosEngine,
    ChaosPolicy,
    ChaosSocket,
    chaos_smoke,
    chaos_soak,
)
from repro.net.framing import (
    FRAME_VERSION,
    MAX_FRAME_BYTES,
    BadChecksum,
    BadMagic,
    FrameError,
    FrameTooLarge,
    MsgType,
    PeerClosed,
    Truncated,
    decode_frame,
    encode_frame,
    recv_msg,
    send_msg,
)
from repro.net.cluster import LocalCluster, cluster_smoke, remote_executor
from repro.net.remote import RemoteExecutor, shard_key

__all__ = [
    "BadChecksum",
    "BadMagic",
    "ChaosEngine",
    "ChaosPolicy",
    "ChaosSocket",
    "FRAME_VERSION",
    "FrameError",
    "FrameTooLarge",
    "LocalCluster",
    "MAX_FRAME_BYTES",
    "MsgType",
    "PeerClosed",
    "RemoteExecutor",
    "Truncated",
    "chaos_smoke",
    "chaos_soak",
    "cluster_smoke",
    "decode_frame",
    "encode_frame",
    "recv_msg",
    "remote_executor",
    "send_msg",
    "shard_key",
]
