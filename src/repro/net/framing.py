"""Length-prefixed binary framing for the network serving tier.

Every message on a coordinator<->worker connection is one *frame*:

.. code-block:: text

    offset  size  field
    0       2     magic        b"FH"
    2       1     version      FRAME_VERSION (1)
    3       1     msg_type     MsgType value
    4       4     payload_len  big-endian u32, <= max_frame
    8       4     payload_crc  crc32 of the payload bytes
    12      4     header_crc   crc32 of bytes [0, 12)

followed by ``payload_len`` payload bytes.  Payloads are pickles of
plain-data messages riding the FHE layer's ``to_state()`` serialization
(PR 5): parameters, secret coefficients, limb arrays — derived caches
are rebuilt on the receiving side, never shipped, exactly as on the
process-executor pipe.

The header exists so a receiver can reject junk *before* unpickling
anything: pickle is an arbitrary-code-execution format, so the transport
refuses to hand attacker-controlled bytes to it blindly.  A frame is
rejected (with a typed :class:`FrameError`, which servers answer with a
clean ``ERROR`` reply) when the magic or version is wrong, the declared
length exceeds the cap, either checksum fails, or the stream ends
mid-frame.  This is integrity/robustness, not authentication — the wire
protocol is for trusted cluster networks, like the pipes it replaces.

The codec is exposed both as pure byte functions (:func:`encode_frame` /
:func:`decode_frame` — what ``check_perf.py`` times as
``net_frame_roundtrip``) and as socket send/recv helpers.
"""

from __future__ import annotations

import enum
import pickle
import struct
import zlib
from contextlib import contextmanager

#: bump when the header layout or message vocabulary changes; HELLO
#: carries it so mismatched peers part cleanly instead of mis-parsing.
#: v2: EXECUTE request tuples gained a trace-id element and RESULT /
#: HEARTBEAT replies gained span and metrics payloads (repro.obs).
FRAME_VERSION = 2

MAGIC = b"FH"

#: default cap on one frame's payload.  Generous for this codebase —
#: context states are kilobytes, packed batches are megabytes at most —
#: while still bounding what a malicious or confused peer can make the
#: receiver buffer (and then unpickle).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">2sBBII")       # magic, version, type, len, payload_crc
_HEADER_CRC = struct.Struct(">I")
HEADER_BYTES = _HEADER.size + _HEADER_CRC.size


class MsgType(enum.IntEnum):
    """The wire vocabulary (mirrors the process-executor pipe ops)."""

    HELLO = 1        # version/identity handshake, first frame each way
    REPLICATE = 2    # ship/drop registry state: context, program, backend
    EXECUTE = 3      # run one BatchJob's worth of requests
    RESULT = 4       # successful REPLICATE/EXECUTE reply
    HEARTBEAT = 5    # liveness probe; reply carries load stats
    ERROR = 6        # failure reply (remote traceback or frame rejection)


class FrameError(ValueError):
    """A frame violated the wire format; reject before unpickling."""


class BadMagic(FrameError):
    """First bytes are not a frame header (garbage or wrong protocol)."""


class BadChecksum(FrameError):
    """Header or payload bytes corrupted in flight."""


class FrameTooLarge(FrameError):
    """Declared payload length exceeds the receiver's cap."""


class Truncated(FrameError):
    """The stream ended mid-frame."""


class PeerClosed(ConnectionError):
    """Clean EOF at a frame boundary (the peer hung up)."""


def encode_frame(msg_type: MsgType, payload: bytes, *,
                 max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame for ``payload``; refuses oversized payloads locally
    (better to fail the send than have every worker reject the frame)."""
    if len(payload) > max_frame:
        raise FrameTooLarge(
            f"payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame cap"
        )
    header = _HEADER.pack(MAGIC, FRAME_VERSION, int(msg_type), len(payload),
                          zlib.crc32(payload))
    return header + _HEADER_CRC.pack(zlib.crc32(header)) + payload


def decode_header(header: bytes, *,
                  max_frame: int = MAX_FRAME_BYTES) -> tuple[MsgType, int, int]:
    """Validate one header; returns ``(msg_type, payload_len, payload_crc)``."""
    if len(header) != HEADER_BYTES:
        raise Truncated(f"header is {len(header)} bytes, need {HEADER_BYTES}")
    magic, version, msg_type, length, payload_crc = _HEADER.unpack(
        header[: _HEADER.size]
    )
    if magic != MAGIC:
        raise BadMagic(f"bad frame magic {magic!r}")
    (header_crc,) = _HEADER_CRC.unpack(header[_HEADER.size:])
    if zlib.crc32(header[: _HEADER.size]) != header_crc:
        raise BadChecksum("frame header checksum mismatch")
    if version != FRAME_VERSION:
        raise FrameError(f"frame version {version} != {FRAME_VERSION}")
    try:
        msg_type = MsgType(msg_type)
    except ValueError:
        raise FrameError(f"unknown message type {msg_type}") from None
    if length > max_frame:
        raise FrameTooLarge(
            f"declared payload of {length} bytes exceeds the "
            f"{max_frame}-byte frame cap"
        )
    return msg_type, length, payload_crc


def decode_frame(buffer: bytes, *,
                 max_frame: int = MAX_FRAME_BYTES) -> tuple[MsgType, bytes]:
    """Decode one complete frame from ``buffer`` (pure-bytes counterpart
    of :func:`recv_frame`; raises the same :class:`FrameError` family)."""
    msg_type, length, payload_crc = decode_header(
        buffer[:HEADER_BYTES], max_frame=max_frame
    )
    payload = buffer[HEADER_BYTES: HEADER_BYTES + length]
    if len(payload) != length:
        raise Truncated(
            f"payload truncated: got {len(payload)} of {length} bytes"
        )
    if zlib.crc32(payload) != payload_crc:
        raise BadChecksum("frame payload checksum mismatch")
    return msg_type, payload


# ------------------------------------------------------------------- sockets
@contextmanager
def socket_timeout(sock, timeout: float | None):
    """Temporarily bound a socket's blocking operations.

    The execute-watchdog seam: :class:`~repro.net.remote.RemoteExecutor`
    wraps each EXECUTE exchange in a timeout derived from the batch's
    earliest request deadline, so a hung worker raises ``socket.timeout``
    (an ``OSError`` the transport already treats as host death) instead
    of stranding a future.  ``None`` leaves the socket untouched; the
    previous timeout is always restored.
    """
    if timeout is None:
        yield
        return
    prev = sock.gettimeout()
    sock.settimeout(timeout)
    try:
        yield
    finally:
        try:
            sock.settimeout(prev)
        except OSError:
            pass   # the socket died inside the block; nothing to restore


def _recv_exact(sock, count: int, *, at_boundary: bool) -> bytes:
    """Read exactly ``count`` bytes.  EOF at a frame boundary is a clean
    :class:`PeerClosed`; EOF mid-frame is a :class:`Truncated` frame."""
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(min(count - got, 1 << 20))
        if not chunk:
            if at_boundary and got == 0:
                raise PeerClosed("connection closed")
            raise Truncated(f"stream ended after {got} of {count} bytes")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_frame(sock, msg_type: MsgType, payload: bytes, *,
               max_frame: int = MAX_FRAME_BYTES) -> None:
    sock.sendall(encode_frame(msg_type, payload, max_frame=max_frame))


def recv_frame(sock, *, max_frame: int = MAX_FRAME_BYTES) -> tuple[MsgType, bytes]:
    """Read and validate one frame; payload bytes are returned unparsed."""
    header = _recv_exact(sock, HEADER_BYTES, at_boundary=True)
    msg_type, length, payload_crc = decode_header(header, max_frame=max_frame)
    payload = _recv_exact(sock, length, at_boundary=False)
    if zlib.crc32(payload) != payload_crc:
        raise BadChecksum("frame payload checksum mismatch")
    return msg_type, payload


def send_msg(sock, msg_type: MsgType, message, *,
             max_frame: int = MAX_FRAME_BYTES) -> None:
    """Pickle ``message`` and send it as one frame."""
    send_frame(sock, msg_type, pickle.dumps(message), max_frame=max_frame)


def recv_msg(sock, *, max_frame: int = MAX_FRAME_BYTES) -> tuple[MsgType, object]:
    """Receive one frame and unpickle its payload.

    The frame's magic/version/length/checksums are all validated *before*
    this touches pickle — garbage never reaches the unpickler.
    """
    msg_type, payload = recv_frame(sock, max_frame=max_frame)
    return msg_type, pickle.loads(payload)
