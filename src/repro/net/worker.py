"""Worker host: one remote execution node of the sharded serving tier.

Run one per machine (or several per machine — each is an independent
process, the F1 many-independent-clusters shape)::

    PYTHONPATH=src python -m repro.net.worker --port 7100
    PYTHONPATH=src python -m repro.net.worker --port 0        # pick a port

On startup the worker prints ``repro.net.worker listening on HOST:PORT``
(the :class:`~repro.net.cluster.LocalCluster` harness reads this line to
discover auto-assigned ports) and then serves frames forever.

Protocol (see :mod:`repro.net.framing` for the frame format):

- ``HELLO {version}`` — handshake; replies ``HELLO {version, pid}``.
  Version mismatches are answered with ``ERROR`` and the connection
  closes, so incompatible peers part cleanly.
- ``REPLICATE {kind, ...}`` — registry state arriving from the
  coordinator: ``context`` (a ``to_state()`` dict plus an RNG reseed —
  **workers never keygen**; every context is restored from the
  coordinator's serialized secret, and replicas are reseeded apart so no
  two nodes share an encryption-randomness stream), ``program`` (the
  :class:`~repro.dsl.program.Program` plus its batcher layout config),
  ``backend``, the matching ``drop_*`` evictions, and ``probe`` (the
  replication-invariant diagnostic).  Replies ``RESULT {ok: True}``.
- ``EXECUTE {ctx, program, backend, batched, requests}`` — one flushed
  batch, executed through the PR 5 executor seam (an in-process
  :class:`~repro.serve.executor.ThreadExecutor` by default, or a
  ``--processes N`` :class:`~repro.serve.executor.ProcessExecutor` for
  multi-core hosts); replies ``RESULT {outputs, result, pid, spans,
  metrics}`` — captured trace spans for traced requests, plus this
  host's cumulative :mod:`repro.obs.metrics` blob, which the
  coordinator merges into its own registry.
- ``HEARTBEAT`` — replies ``HEARTBEAT {pid, inflight, served,
  metrics}``; the coordinator's monitor uses it for liveness, load
  telemetry, and metrics merging between batches.

Execution failures are answered with ``ERROR {error, traceback}`` and
the connection stays usable; malformed *frames* are answered with a
best-effort ``ERROR`` and the connection closes (the stream may be
desynchronized past a framing violation).
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import traceback
from contextlib import nullcontext

import numpy as np

from repro.obs.log import get_logger
from repro.obs.metrics import global_metrics, merge_snapshots
from repro.obs.trace import tracer
from repro.net.framing import (
    FRAME_VERSION,
    MAX_FRAME_BYTES,
    FrameError,
    MsgType,
    PeerClosed,
    recv_msg,
    send_msg,
)
from repro.serve.batcher import BatchUnsupported, Request, SlotBatcher
from repro.serve.executor import BatchJob, ProcessExecutor, ThreadExecutor
from repro.serve.registry import ContextEntry


class WorkerHost:
    """Shared state and frame handlers for one worker process.

    Replicated state (contexts/programs/backends) is process-wide and
    shared across connections, exactly like the process-executor worker's
    dicts; the inner executor provides the execution-safety story
    (:class:`ThreadExecutor` holds the per-context lock, so concurrent
    connections hitting the same entry serialize instead of corrupting
    the shared RNG/hint caches).
    """

    def __init__(self, *, processes: int = 0,
                 max_frame: int = MAX_FRAME_BYTES,
                 log=None, chaos=None):
        self.max_frame = max_frame
        self.executor = (ProcessExecutor(processes) if processes
                         else ThreadExecutor())
        self.log = log if log is not None else get_logger("repro.net.worker")
        #: fault-injection engine (repro.net.chaos) or None; EXECUTE
        #: handlers consult it for crash/hang faults, serve() wraps
        #: accepted connections for the byte-level ones.
        self.chaos = chaos
        self._guard = threading.Lock()
        self._entries: dict[int, ContextEntry] = {}
        #: signature -> (program, batcher or None for unbatchable traffic)
        self._programs: dict[str, tuple] = {}
        self._backends: dict[int, object] = {}
        self._inflight = 0
        self._served = 0

    # ------------------------------------------------------------- handlers
    def _handle_replicate(self, msg: dict) -> tuple[MsgType, dict]:
        kind = msg["kind"]
        if kind == "context":
            from repro.fhe.context import context_from_state

            ctx = context_from_state(msg["state"])
            if msg.get("reseed") is not None:
                # Replicas must not share the coordinator's (or each
                # other's) randomness stream: identical (a, e) draws
                # across hosts would leak plaintext differences.  The
                # secret key — the part that must converge — is untouched.
                ctx.rng = np.random.default_rng(
                    np.random.SeedSequence(msg["reseed"])
                )
            entry = ContextEntry(
                signature=msg["signature"], scheme=ctx.scheme,
                params=ctx.params, context=ctx,
            )
            with self._guard:
                self._entries[msg["key"]] = entry
        elif kind == "program":
            program = msg["program"]
            try:
                batcher = SlotBatcher(program, width=msg["width"],
                                      max_batch=msg["max_batch"])
            except BatchUnsupported:
                batcher = None
            with self._guard:
                self._programs[msg["key"]] = (program, batcher)
        elif kind == "backend":
            with self._guard:
                self._backends[msg["key"]] = msg["backend"]
        elif kind == "drop_context":
            with self._guard:
                entry = self._entries.pop(msg["key"], None)
            if entry is not None and isinstance(self.executor, ProcessExecutor):
                self.executor.release(entry)
        elif kind == "drop_backend":
            with self._guard:
                backend = self._backends.pop(msg["key"], None)
            if backend is not None and isinstance(self.executor, ProcessExecutor):
                self.executor.release_backend(backend)
        elif kind == "probe":
            import hashlib

            with self._guard:
                entry = self._entries[msg["key"]]
            return MsgType.RESULT, {
                "ok": True,
                "pid": os.getpid(),
                "secret_sha": hashlib.sha256(
                    entry.context.secret.coeffs.tobytes()
                ).hexdigest(),
                "moduli": entry.params.basis.moduli,
                # Diagnostic draw (advances this host's stream): lets
                # tests verify hosts were reseeded apart.
                "rng_fingerprint": entry.context.rng.integers(
                    0, 2**63, 4
                ).tolist(),
                "replicated": self.state_counts(),
            }
        else:
            raise ValueError(f"unknown REPLICATE kind {kind!r}")
        return MsgType.RESULT, {"ok": True}

    def _handle_execute(self, msg: dict) -> tuple[MsgType, dict]:
        if self.chaos is not None:
            # Worker-level chaos: crash (hard exit — the kill-a-worker
            # scenario) or hang (sleep past the coordinator's watchdog).
            self.chaos.apply_execute_fault()
        with self._guard:
            entry = self._entries[msg["ctx"]]
            program, batcher = self._programs[msg["program"]]
            backend = self._backends[msg["backend"]]
            self._inflight += 1
        try:
            requests = [Request(inputs=i, plains=p, seed=s, level=lv, trace=t)
                        for i, p, s, lv, t in msg["requests"]]
            job = BatchJob(
                program=program, signature=msg["program"], requests=requests,
                batcher=batcher if msg["batched"] else None,
                backend=backend, context_entry=entry,
            )
            # Traced batches capture this host's spans (including any
            # forwarded by an inner process pool) and ship them on the
            # reply; every reply piggybacks the host's merged metrics
            # blob so coordinator percentiles cover worker-side time.
            tr = tracer()
            cap = (tr.capture() if any(r.trace for r in requests)
                   else nullcontext([]))
            with cap as spans:
                outputs, result = self.executor.execute(job)
            return MsgType.RESULT, {"ok": True, "outputs": outputs,
                                    "result": result, "pid": os.getpid(),
                                    "spans": spans,
                                    "metrics": self.metrics_blob()}
        finally:
            with self._guard:
                self._inflight -= 1
                self._served += 1

    def _handle_one(self, msg_type: MsgType, msg) -> tuple[MsgType, object]:
        if msg_type is MsgType.HELLO:
            version = msg.get("version")
            if version != FRAME_VERSION:
                return MsgType.ERROR, {
                    "error": f"protocol version {version} != {FRAME_VERSION}",
                    "fatal": True,
                }
            return MsgType.HELLO, {"version": FRAME_VERSION,
                                   "pid": os.getpid()}
        if msg_type is MsgType.HEARTBEAT:
            with self._guard:
                return MsgType.HEARTBEAT, {
                    "pid": os.getpid(),
                    "inflight": self._inflight,
                    "served": self._served,
                    "metrics": self.metrics_blob(),
                }
        if msg_type is MsgType.REPLICATE:
            return self._handle_replicate(msg)
        if msg_type is MsgType.EXECUTE:
            return self._handle_execute(msg)
        return MsgType.ERROR, {"error": f"unexpected message type {msg_type!r}"}

    # ----------------------------------------------------------- connection
    def serve_connection(self, conn: socket.socket) -> None:
        """One request/response loop; returns when the peer hangs up.

        Execution errors are reported as ``ERROR`` replies and the
        connection continues; framing violations get a best-effort
        ``ERROR`` reply and the connection closes, because the byte
        stream cannot be trusted to resynchronize.
        """
        try:
            peer = "%s:%s" % conn.getpeername()[:2]
        except OSError:
            peer = "unknown"
        with conn:
            while True:
                try:
                    msg_type, msg = recv_msg(conn, max_frame=self.max_frame)
                except PeerClosed:
                    return
                except FrameError as exc:
                    # Peer address + typed fault class make chaos runs
                    # diagnosable from stderr alone: which link misbehaved
                    # and how (BadChecksum vs Truncated vs ...).
                    self.log.error("framing_violation", peer=peer,
                                   fault=type(exc).__name__,
                                   error=f"{type(exc).__name__}: {exc}")
                    try:
                        send_msg(conn, MsgType.ERROR, {
                            "error": f"{type(exc).__name__}: {exc}",
                            "fatal": True,
                        }, max_frame=self.max_frame)
                    except OSError:
                        pass
                    return
                except OSError:
                    return
                try:
                    reply_type, reply = self._handle_one(msg_type, msg)
                except BaseException as exc:  # noqa: BLE001 — shipped back
                    entry = (msg.get("ctx") if isinstance(msg, dict)
                             else None)
                    self.log.error("handler_failed",
                                   msg_type=msg_type.name, entry=entry,
                                   error=f"{type(exc).__name__}: {exc}")
                    reply_type, reply = MsgType.ERROR, {
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    }
                try:
                    send_msg(conn, reply_type, reply,
                             max_frame=self.max_frame)
                except OSError:
                    return
                if reply_type is MsgType.ERROR and reply.get("fatal"):
                    return

    def state_counts(self) -> dict:
        with self._guard:
            return {"contexts": len(self._entries),
                    "programs": len(self._programs),
                    "backends": len(self._backends)}

    def metrics_blob(self) -> dict:
        """This host's cumulative metrics: the process-global registry
        merged with any inner pool replicas' snapshots."""
        blobs = getattr(self.executor, "metrics_blobs", lambda: [])()
        return merge_snapshots(global_metrics().snapshot(), *blobs)

    def close(self) -> None:
        self.executor.close()


def serve(host: str = "127.0.0.1", port: int = 0, *, processes: int = 0,
          max_frame: int = MAX_FRAME_BYTES, ready=None, chaos=None) -> None:
    """Bind, announce, and serve connections until interrupted.

    ``ready``, if given, is called with the bound ``(host, port)`` once
    the socket is listening (test hook).  ``chaos`` is an optional
    fault-injection spec — a :class:`~repro.net.chaos.ChaosPolicy`, a
    ``ChaosPolicy.parse`` string, or a prebuilt engine — applied to every
    accepted connection (byte-level faults) and to EXECUTE handling
    (crash/hang faults); the same seed replays the same fault schedule.
    """
    engine = None
    if chaos is not None:
        from repro.net.chaos import ChaosEngine, ChaosPolicy, ChaosSocket

        if isinstance(chaos, ChaosEngine):
            engine = chaos
        elif isinstance(chaos, str):
            engine = ChaosEngine(ChaosPolicy.parse(chaos))
        else:
            engine = ChaosEngine(chaos)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(32)
    bound = listener.getsockname()
    log = get_logger("repro.net.worker", host=bound[0], port=bound[1])
    worker = WorkerHost(processes=processes, max_frame=max_frame, log=log,
                        chaos=engine)
    tracer().set_label(f"worker {bound[0]}:{bound[1]}")
    # This stdout banner is machine-read by LocalCluster to discover
    # auto-assigned ports — it must stay on stdout, exactly this shape.
    print(f"repro.net.worker listening on {bound[0]}:{bound[1]}", flush=True)
    log.info("listening", pid=os.getpid(), processes=processes,
             chaos=engine.policy.spec() if engine is not None else None)
    if ready is not None:
        ready(bound)
    try:
        while True:
            conn, _ = listener.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if engine is not None:
                conn = ChaosSocket(conn, engine)
            threading.Thread(
                target=worker.serve_connection, args=(conn,),
                name="net-worker-conn", daemon=True,
            ).start()
    except KeyboardInterrupt:
        pass
    finally:
        listener.close()
        worker.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.worker",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one; the bound "
                             "address is printed on startup)")
    parser.add_argument("--processes", type=int, default=0,
                        help="run batches on an inner ProcessExecutor with "
                             "this many worker processes (0 = in-process)")
    parser.add_argument("--max-frame", type=int, default=MAX_FRAME_BYTES,
                        help="per-frame payload cap in bytes")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="fault-injection spec, e.g. "
                             "'seed=7,drop=0.05,delay=0.2' (see "
                             "repro.net.chaos.ChaosPolicy.parse)")
    args = parser.parse_args(argv)
    serve(args.host, args.port, processes=args.processes,
          max_frame=args.max_frame, chaos=args.chaos)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
