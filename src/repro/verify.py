"""One-command verification: tier-1 tests + perf gate + examples smoke.

Usage (any checkout, no PYTHONPATH fiddling needed)::

    python -m repro.verify               # everything
    python -m repro.verify --fast        # quick gate: unit tests minus @slow
    python -m repro.verify --skip-perf   # e.g. on machines without a baseline

Steps, in order:

1. **tier-1** — ``pytest -x -q tests benchmarks`` (unit + table/figure
   regeneration suites, including the backend-equivalence properties and
   the serving-runtime stress tests);
2. **perf gate** — ``benchmarks/check_perf.py`` times the batched-engine hot
   kernels against ``BENCH_engine.json`` (non-zero past 2.5x baseline);
3. **examples smoke** — the ``examples/*.py`` mains at reduced sizes
   (``tests/test_examples.py``), re-run standalone so an example regression
   is attributed even when tier-1 stopped early on an unrelated failure.

``--fast`` is the inner-loop / pre-merge gate: it runs only ``tests/`` with
``-m "not slow"`` (deselecting the bootstrapping/GSW functional suites, see
``pytest.ini``) and skips the perf gate and examples smoke, so fast checks
— including the multi-threaded serving stress tests — finish in seconds
instead of minutes.  Both modes additionally run a 2-process executor
smoke (fresh interpreter, forked worker pool, context replication from
serialized keys), a 2-host cluster smoke (worker-host subprocesses
behind the framed socket transport, replication over the wire), a
2-host observability smoke (traced requests: span stitching across the
wire, worker metrics blobs merged into coordinator percentiles, Chrome
trace-event export), a 2-host chaos smoke (seeded drop/corrupt/delay
injection with a worker kill mid-run: zero lost futures, every ok result
solo-identical), and a 2-thread limb-fan smoke (every
``REPRO_NUM_THREADS`` fan point run serial-vs-threaded, asserting
bit-identical outputs) so CI always exercises the process-pool, network,
observability, resilience, and threaded-kernel serving paths.

Exits non-zero if any step fails, so CI can gate on this single command.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _step(title: str, cmd: list[str]) -> tuple[str, bool, float]:
    print(f"\n=== {title}: {' '.join(cmd)}", flush=True)
    start = time.perf_counter()
    code = subprocess.call(cmd, cwd=REPO_ROOT, env=_env())
    elapsed = time.perf_counter() - start
    return title, code == 0, elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--fast", action="store_true",
                        help="quick gate: tests/ minus @slow; skip perf gate "
                             "and examples smoke")
    parser.add_argument("--skip-perf", action="store_true",
                        help="skip the hot-kernel perf regression gate")
    parser.add_argument("--skip-examples", action="store_true",
                        help="skip the examples smoke step")
    args = parser.parse_args(argv)

    py = sys.executable
    if args.fast:
        tier1 = _step("tier-1 (fast)", [py, "-m", "pytest", "-x", "-q",
                                        "-m", "not slow", "tests"])
    else:
        tier1 = _step("tier-1", [py, "-m", "pytest", "-x", "-q",
                                 "tests", "benchmarks"])
    results = [tier1]
    # A 2-process executor smoke in a fresh interpreter: exercises the fork
    # path, context replication from serialized keys, and thread-vs-process
    # output bit-identity — cheap enough to keep in the --fast gate.
    results.append(_step(
        "process smoke",
        [py, "-c", "import sys; from repro.serve.executor import "
                   "process_smoke; sys.exit(process_smoke(2))"],
    ))
    # A 2-host cluster smoke: spawns two repro.net.worker subprocesses,
    # replicates a registry entry over the framed socket transport, checks
    # the keygen-once invariant host-side, and verifies remote batched
    # outputs are bit-identical to in-process execution.
    results.append(_step(
        "cluster smoke",
        [py, "-c", "import sys; from repro.net.cluster import "
                   "cluster_smoke; sys.exit(cluster_smoke(2))"],
    ))
    # A 2-host observability smoke: traced requests over the socket
    # transport, asserting coordinator/worker span stitching, worker
    # metrics-blob merging into stats() percentiles, and a re-parsable
    # Chrome trace-event dump.
    results.append(_step(
        "obs smoke",
        [py, "-c", "import sys; from repro.obs import "
                   "obs_smoke; sys.exit(obs_smoke(2))"],
    ))
    # A 2-host chaos smoke: seeded drop/corrupt/delay injection plus one
    # worker kill mid-run; asserts the resilience contract — zero lost
    # futures, every status in {ok, expired, failed, shed}, and every ok
    # result matching an isolated solo run.
    results.append(_step(
        "chaos smoke",
        [py, "-c", "import sys; from repro.net.chaos import "
                   "chaos_smoke; sys.exit(chaos_smoke(2))"],
    ))
    # A 2-thread limb-fan smoke: every REPRO_NUM_THREADS fan point (stacked
    # and flat NTT, batched base extension, scale-down, serve slot
    # pack/unpack) run serial-vs-threaded, asserting bit-identical outputs.
    results.append(_step(
        "threads smoke",
        [py, "-c", "import sys; from repro.poly.parallel import "
                   "thread_smoke; sys.exit(thread_smoke(2))"],
    ))
    if not (args.fast or args.skip_perf):
        results.append(
            _step("perf gate", [py, str(REPO_ROOT / "benchmarks" / "check_perf.py")])
        )
    if not (args.fast or args.skip_examples):
        results.append(
            _step("examples smoke",
                  [py, "-m", "pytest", "-q", "tests/test_examples.py"])
        )

    print("\n=== verification summary ===")
    failed_gates = []
    for title, ok, elapsed in results:
        print(f"  {'PASS' if ok else 'FAIL'}  {title:16s} ({elapsed:.1f}s)")
        if not ok:
            failed_gates.append(title)
    if failed_gates:
        print(f"\nFAILED gates: {', '.join(failed_gates)}")
        return 1
    print("\nall gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
