"""Cross-layer observability: tracing, mergeable metrics, kernel timers.

Three parts, one join key:

- :mod:`repro.obs.trace` — per-request spans (``admit -> queue -> pack
  -> dispatch -> execute -> unpack -> demux``) in a bounded ring,
  exportable as Chrome trace-event JSON (Perfetto-viewable).  The trace
  id rides ``Request`` through pipes and the wire so coordinator and
  worker spans stitch into one timeline.
- :mod:`repro.obs.metrics` — counters/gauges/fixed-log-bucket
  histograms whose snapshots merge across processes; worker hosts and
  pool replicas piggyback blobs on their replies so fleet-wide
  p50/p99 are computed from the combined distribution.
- :mod:`repro.obs.profile` — opt-in named-kernel timers
  (``REPRO_OBS_KERNELS=1`` or ``obs.profiled()``) attributing
  NTT/key-switch/CRT/mod-switch time to serving signatures.

:mod:`repro.obs.log` is the structured logger (``REPRO_LOG=json|text``)
used by the network tier.
"""

from .log import get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_metrics,
    merge_snapshots,
    summarize_state,
)
from .profile import attributed, instrument, kernel_breakdown, profiled
from .trace import Tracer, new_trace_id, span_overhead_probe, tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "attributed",
    "get_logger",
    "global_metrics",
    "instrument",
    "kernel_breakdown",
    "merge_snapshots",
    "new_trace_id",
    "obs_smoke",
    "profiled",
    "span_overhead_probe",
    "summarize_state",
    "tracer",
]


def obs_smoke(hosts: int = 2) -> int:
    """End-to-end observability smoke (used by ``python -m repro.verify``).

    Serves traced requests through a ``hosts``-worker local cluster,
    then checks the three tentpole properties: coordinator and worker
    spans stitch on shared trace ids, worker metrics blobs merge into
    the coordinator's percentiles, and the dumped trace JSON re-parses
    as a valid Chrome trace-event file.
    """
    from .smoke import run_obs_smoke

    return run_obs_smoke(hosts)
