"""End-to-end observability smoke: trace stitching + metrics merging.

Runs traced traffic through a real multi-host serving stack (local
worker-host subprocesses over the socket transport) and asserts the
three tentpole properties of :mod:`repro.obs`:

1. the coordinator's ring holds spans from *both* sides — its own
   ``admit``/``dispatch`` spans and the workers' ``execute`` spans
   shipped back on the wire — joined by shared trace ids;
2. the merged metrics blob contains worker-recorded histograms
   (``serve.execute_ms`` is only ever observed where execution happens,
   which under a remote executor is never the coordinator process), so
   ``stats()`` percentiles provably come from merged distributions;
3. the dumped trace file re-parses as Chrome trace-event JSON with
   events from at least two distinct pids.

Wired into ``python -m repro.verify`` (both modes) via
:func:`repro.obs.obs_smoke`.
"""

from __future__ import annotations

import json
import os
import tempfile


def run_obs_smoke(hosts: int = 2, *, verbose: bool = True) -> int:
    """Serve traced requests over ``hosts`` local workers; 0 on success."""
    import numpy as np

    from repro.dsl.program import Program
    from repro.net.cluster import LocalCluster
    from repro.obs.trace import tracer
    from repro.serve.server import FheServer

    def fail(msg: str) -> int:
        if verbose:
            print(f"obs smoke FAILED: {msg}")
        return 1

    program = Program(n=128, scheme="bgv", name="obs_smoke")
    x = program.input(2, name="x")
    w = program.input_plain(2, name="w")
    program.output(program.mul_plain(x, w))
    rng = np.random.default_rng(0)
    shared_w = rng.integers(0, 256, 4)
    n_requests = 4

    tr = tracer()
    tr.clear()
    coord_pid = os.getpid()
    try:
        with LocalCluster(hosts) as cluster:
            with cluster.executor() as executor:
                with FheServer(executor=executor, workers=2,
                               max_wait_ms=5.0, trace=True) as server:
                    futures = [
                        server.submit(
                            program,
                            inputs={x.op_id: rng.integers(0, 256, 4)},
                            plains={w.op_id: shared_w},
                            width=4,
                        )
                        for _ in range(n_requests)
                    ]
                    server.flush()
                    results = [f.result(timeout=60) for f in futures]

                    bad = [r.status for r in results if r.status != "ok"]
                    if bad:
                        return fail(f"request statuses {bad}")

                    # Execution attribution: every result names the
                    # remote host that ran it.
                    for r in results:
                        where = (r.stats or {}).get("executed_on") or {}
                        if where.get("executor") != "remote" or \
                                not where.get("addr"):
                            return fail(f"missing remote attribution: {where}")

                    # Metrics merging: serve.execute_ms is recorded only
                    # where batches execute — worker side, here — so its
                    # presence in the merged blob proves worker blobs
                    # folded in; serve.latency_ms is coordinator-side.
                    merged = server.metrics_snapshot()
                    lat = merged.get("serve.latency_ms")
                    exe = merged.get("serve.execute_ms")
                    if not lat or lat.get("count", 0) < n_requests:
                        return fail(f"coordinator latency histogram: {lat}")
                    if not exe or exe.get("count", 0) < 1:
                        return fail("worker metrics blob did not merge "
                                    "(no serve.execute_ms)")
                    stats = server.stats()
                    if not stats["latency_ms"]["p50"] > 0:
                        return fail("stats() p50 not positive")
                    if not stats["execute_ms"]["count"] >= 1:
                        return fail("stats() execute_ms missing")
    finally:
        spans = tr.spans()
        tr.disable()

    # Trace stitching: coordinator admit spans mint the ids; a worker-pid
    # execute span must carry one of them.
    def span_traces(s):
        args = s.get("args", {})
        ids = set(args.get("traces") or [])
        if args.get("trace"):
            ids.add(args["trace"])
        return ids

    minted = set()
    for s in spans:
        if s["name"] == "admit" and s["pid"] == coord_pid:
            minted |= span_traces(s)
    if not minted:
        return fail("no coordinator admit spans")
    worker_spans = [s for s in spans
                    if s["pid"] != coord_pid and s["name"] == "execute"]
    stitched = [s for s in worker_spans if span_traces(s) & minted]
    if not stitched:
        return fail(f"no worker execute span shares a trace id "
                    f"({len(worker_spans)} worker spans)")

    # Export: the dump must re-parse as Chrome trace-event JSON with
    # events from both sides of the wire.
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        path = f.name
    try:
        n_events = tr.dump(path)
        with open(path) as f:
            doc = json.load(f)
    finally:
        os.unlink(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not n_events:
        return fail("trace dump is not a traceEvents document")
    x_pids = {e["pid"] for e in events if e.get("ph") == "X"}
    if len(x_pids) < 2:
        return fail(f"trace has events from {len(x_pids)} pid(s), want >= 2")
    if not any(e.get("ph") == "M" for e in events):
        return fail("trace lacks process_name metadata")

    if verbose:
        print(f"obs smoke OK: {len(spans)} spans across {len(x_pids)} "
              f"processes, {len(minted)} traced requests stitched, worker "
              f"metrics merged into coordinator percentiles")
    return 0
