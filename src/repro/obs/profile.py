"""Opt-in named-kernel timers attributing hot-kernel time to requests.

The hot kernels (NTT, key switch, CRT, mod switch) are instrumented
with :func:`instrument`, a decorator whose disabled path is one module
attribute read — no timer, no dict lookup.  Enable with the
``REPRO_OBS_KERNELS=1`` environment variable (inherited by forked pool
replicas and exported worker hosts) or the :func:`profiled` context
manager (current process only).

When enabled, each call records its duration into the process-global
metrics registry as a ``kernel.<name>.ms`` histogram — and, when an
executor has declared the serving signature it is running via
:func:`attributed`, also as ``kernel.<name>.ms|sig=<signature>``.
Because these are ordinary mergeable histograms, worker-side kernel
time folds into the coordinator's view through the same piggybacked
metrics blobs as everything else, and ``FheServer.stats()["kernels"]``
can break kernel time out per signature across the whole fleet.

Nested kernels both record (``key_switch`` spans include the
``modmul_mac`` calls inside them) — the breakdown is attributable time
per kernel *name*, not a partition of wall clock.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager

from .metrics import global_metrics

# One-branch fast path: instrumented kernels check this module global.
ENABLED = os.environ.get("REPRO_OBS_KERNELS", "").strip() in ("1", "true", "yes")

_local = threading.local()
_depth_lock = threading.Lock()
_profiled_depth = 0


def kernels_enabled() -> bool:
    return ENABLED


@contextmanager
def profiled():
    """Enable kernel timers for the duration of the block (re-entrant)."""
    global ENABLED, _profiled_depth
    with _depth_lock:
        _profiled_depth += 1
        ENABLED = True
    try:
        yield
    finally:
        with _depth_lock:
            _profiled_depth -= 1
            if _profiled_depth == 0 and os.environ.get(
                "REPRO_OBS_KERNELS", ""
            ).strip() not in ("1", "true", "yes"):
                ENABLED = False


@contextmanager
def attributed(signature: str | None):
    """Attribute kernel time on this thread to a serving signature.

    Executors wrap backend runs in this so kernel histograms gain a
    per-signature variant joinable with the serving-layer metrics.
    """
    prev = getattr(_local, "signature", None)
    _local.signature = signature
    try:
        yield
    finally:
        _local.signature = prev


def current_signature() -> str | None:
    return getattr(_local, "signature", None)


def record_kernel(name: str, duration_s: float) -> None:
    ms = duration_s * 1e3
    reg = global_metrics()
    reg.histogram(f"kernel.{name}.ms").observe(ms)
    sig = getattr(_local, "signature", None)
    if sig is not None:
        reg.histogram(f"kernel.{name}.ms|sig={sig}").observe(ms)


def instrument(name: str):
    """Decorator: time calls into ``kernel.<name>.ms`` when enabled."""
    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                record_kernel(name, time.perf_counter() - t0)
        return wrapper
    return deco


def kernel_breakdown(blob) -> dict:
    """Per-signature kernel table from a merged metrics blob.

    Returns ``{signature: {kernel: summary}}``.  The ``"all"`` row is
    the total across every call, attributed or not (the base
    ``kernel.<name>.ms`` histogram records unconditionally; the
    ``|sig=`` variants only under :func:`attributed`).
    """
    from .metrics import summarize_state

    out: dict = {}
    for name, state in blob.items():
        if not name.startswith("kernel.") or state.get("type") != "hist":
            continue
        base, _, sigpart = name.partition("|sig=")
        kern = base[len("kernel."):-len(".ms")]
        sig = sigpart if sigpart else "all"
        out.setdefault(sig, {})[kern] = summarize_state(state)
    return out
