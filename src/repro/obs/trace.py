"""Per-request span tracing with Chrome trace-event export.

A span is a plain picklable dict::

    {"name": "execute", "ts": <wall-clock us>, "dur": <us>,
     "pid": <os pid>, "tid": <thread id>, "proc": "worker 127.0.0.1:7100",
     "args": {"trace": "1f3a.7", ...}}

Spans are recorded into a bounded ring buffer (oldest spans drop first)
on the process-wide :func:`tracer`.  The ``trace`` arg is the join key:
the coordinator mints one id per request at ``submit`` time, the id
rides ``Request.trace`` through the batcher, the ``ProcessExecutor``
pipe, and the ``EXECUTE`` wire payload, and workers ship the spans they
captured back on the reply — so one request yields one stitched
timeline spanning every process that touched it.

Timestamps are wall-clock microseconds (``time.time`` epoch), derived
from ``time.perf_counter`` plus a per-process epoch offset captured at
import: monotonic *within* a process, aligned *across* processes on the
same machine to wall-clock accuracy — good enough to nest a worker's
``execute`` span inside the coordinator's ``dispatch`` span in the
Perfetto UI.

The disabled fast path is a single attribute read (``tracer().enabled``
is a plain bool unless a thread-local capture is active); the perf gate
(``obs_span_overhead`` in ``benchmarks/check_perf.py``) holds it there.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

from collections import deque

RING_CAPACITY = 65536

# Wall-clock epoch offset: span timestamps are perf_counter readings
# shifted into the time.time() epoch, so spans from different processes
# on one machine share a timeline.
_EPOCH_OFFSET = time.time() - time.perf_counter()


def _now_us() -> float:
    return (time.perf_counter() + _EPOCH_OFFSET) * 1e6


def perf_to_us(perf_t: float) -> float:
    """A ``time.perf_counter()`` reading as a span timestamp (wall us)."""
    return (perf_t + _EPOCH_OFFSET) * 1e6


class Tracer:
    """Bounded ring buffer of spans with an explicit on/off switch."""

    def __init__(self, capacity: int = RING_CAPACITY) -> None:
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.enabled = False
        self.proc_label = f"pid {os.getpid()}"

    # -- switches ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def set_label(self, label: str) -> None:
        """Human-readable process label shown as the Perfetto track name."""
        self.proc_label = label

    @property
    def active(self) -> bool:
        """True when recording: globally enabled or a capture is open."""
        return self.enabled or getattr(self._local, "capture", None) is not None

    # -- recording --------------------------------------------------------

    def record(self, name: str, start_us: float, dur_us: float,
               **args: Any) -> None:
        span = {
            "name": name,
            "ts": start_us,
            "dur": dur_us,
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "proc": self.proc_label,
            "args": args,
        }
        capture = getattr(self._local, "capture", None)
        if capture is not None:
            capture.append(span)
        if self.enabled:
            with self._lock:
                self._ring.append(span)

    def event(self, name: str, **args: Any) -> None:
        """Record an instantaneous (zero-duration) span at "now".

        The resilience tier marks its state transitions this way —
        ``retry``, ``hedge``, ``breaker_open``/``breaker_close``,
        ``shed``, ``degrade`` — so a chaos run's timeline shows *when*
        each recovery action fired between the request spans.  No-op
        unless recording.
        """
        if self.active:
            self.record(name, _now_us(), 0.0, **args)

    @contextmanager
    def span(self, name: str, **args: Any):
        """Record ``name`` around the block; no-op when not recording."""
        if not self.active:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            self.record(name, (t0 + _EPOCH_OFFSET) * 1e6, (t1 - t0) * 1e6,
                        **args)

    @contextmanager
    def capture(self):
        """Collect spans recorded on this thread into a returned list.

        Used worker-side: the worker opens a capture around executing a
        traced batch and ships the captured spans back on the reply,
        whether or not the worker's own ring is enabled.
        """
        spans: List[Dict[str, Any]] = []
        prev = getattr(self._local, "capture", None)
        self._local.capture = spans
        try:
            yield spans
        finally:
            self._local.capture = prev

    def ingest(self, spans: Optional[Iterable[Dict[str, Any]]]) -> None:
        """Fold spans shipped from another process into this tracer.

        Ingested spans join an open capture on this thread (so a worker
        host forwards its inner pool replicas' spans upstream) and land
        in the ring only when this process's tracing is enabled.
        """
        if not spans:
            return
        spans = list(spans)
        capture = getattr(self._local, "capture", None)
        if capture is not None:
            capture.extend(spans)
        if self.enabled:
            with self._lock:
                self._ring.extend(spans)

    # -- reading ----------------------------------------------------------

    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def trace_events(self) -> List[Dict[str, Any]]:
        """Chrome trace-event list: "X" complete events + process names."""
        spans = self.spans()
        events: List[Dict[str, Any]] = []
        seen_procs: Dict[int, str] = {}
        for s in spans:
            pid = s.get("pid", 0)
            if pid not in seen_procs:
                seen_procs[pid] = s.get("proc", f"pid {pid}")
        for pid, label in sorted(seen_procs.items()):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
        for s in spans:
            events.append({
                "name": s["name"], "ph": "X", "cat": "repro",
                "ts": s["ts"], "dur": s["dur"],
                "pid": s.get("pid", 0), "tid": s.get("tid", 0),
                "args": s.get("args", {}),
            })
        return events

    def dump(self, path: str) -> int:
        """Write Perfetto-loadable trace JSON; returns the span count."""
        events = self.trace_events()
        with open(path, "w") as f:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)
        return sum(1 for e in events if e["ph"] == "X")


_TRACER = Tracer()
_TRACE_SEQ = itertools.count(1)


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def new_trace_id() -> str:
    """Mint a process-unique trace id (coordinator-side, at submit)."""
    return f"{os.getpid():x}.{next(_TRACE_SEQ)}"


def span_overhead_probe(n: int = 4096) -> int:
    """Perf-gate probe: the disabled-path cost of the tracing guard.

    Models the per-request hot-path check the serving layer pays when
    tracing is off: one ``active`` read per would-be span site.
    """
    t = _TRACER
    hits = 0
    for _ in range(n):
        if t.active:
            hits += 1
        if t.active:
            hits += 1
        if t.active:
            hits += 1
    return hits
