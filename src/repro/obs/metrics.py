"""Mergeable metrics: counters, gauges, and fixed-log-bucket histograms.

The design constraint is *mergeability across processes and hosts*: a
worker host must be able to snapshot its metrics into a compact blob,
piggyback it on a ``HEARTBEAT``/``RESULT`` reply, and have the
coordinator fold it into its own registry so that ``p50``/``p99`` over
the whole fleet are computed from one combined distribution — not from
whichever samples happened to land coordinator-side.

Raw sample windows (deques of floats) cannot do this: two windows
concatenated re-weight recent traffic by which process it hit.  A
fixed-bucket histogram can — merging is element-wise addition of bucket
counts, and the bucket edges are a *protocol constant* shared by every
process, so blobs from any mix of hosts always align.

Buckets are logarithmic: bucket ``i`` covers
``[LO * GROWTH**i, LO * GROWTH**(i+1))`` with ``GROWTH = 2**(1/8)``
(an eighth of an octave, ~9% relative width), spanning 1 microsecond to
~18 minutes when values are milliseconds.  Quantiles are read from the
cumulative counts at geometric bucket midpoints, clamped to the exact
observed ``min``/``max`` — so ``p50``/``p99`` carry at most half a
bucket (~4.5%) of relative error, which is far below run-to-run timing
noise.

Snapshots are plain picklable dicts (sparse bucket maps), merged with
:func:`merge_snapshots`.  Counters add, histograms add bucket-wise,
gauges take the maximum (the only order-independent choice).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, Mapping, Optional

import numpy as np

# Protocol constants: every process must agree on these for histogram
# blobs to merge bucket-for-bucket.  Changing them is a wire-format
# change (bump ``SCHEMA`` so stale blobs are rejected, not mis-merged).
SCHEMA = 1
LO = 1e-3
GROWTH = 2.0 ** (1.0 / 8.0)
NBUCKETS = 248  # LO * GROWTH**248 = 1e-3 * 2**31 ~= 2.1e6 (ms) ~= 36 min
_LOG_GROWTH = math.log(GROWTH)


def _bucket_index(value: float) -> int:
    """Bucket index for ``value`` (clamped to the edge buckets)."""
    if value <= LO:
        return 0
    idx = int(math.log(value / LO) / _LOG_GROWTH)
    return idx if idx < NBUCKETS else NBUCKETS - 1


def _bucket_midpoint(index: int) -> float:
    """Geometric midpoint of bucket ``index``."""
    return LO * GROWTH ** (index + 0.5)


class Counter:
    """A monotonically increasing integer.  Merge = addition."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_state(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value.  Merge = max (order-independent)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_state(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-log-bucket histogram with exact count/sum/min/max sidecars.

    ``observe`` is the hot path: one log, one integer add.  Quantiles
    and summaries are computed on read from the cumulative counts.
    """

    __slots__ = ("counts", "count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self.counts = np.zeros(NBUCKETS, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[_bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def reset(self) -> None:
        """Forget every observation (e.g. a host's latency history after
        a reconnect: a bounced host's new process shares nothing with the
        distribution its predecessor produced)."""
        self.counts[:] = 0
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 100], from bucket midpoints."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, rank))
        mid = _bucket_midpoint(idx)
        return min(max(mid, self.vmin), self.vmax)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The legacy percentile-window schema: p50/p99/mean/max (+count)."""
        if self.count == 0:
            return {"p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0, "count": 0}
        return {
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "mean": self.mean,
            "max": self.vmax,
            "count": self.count,
        }

    def to_state(self) -> Dict[str, Any]:
        """Sparse, picklable snapshot (only non-empty buckets travel)."""
        nz = np.nonzero(self.counts)[0]
        return {
            "type": "hist",
            "schema": SCHEMA,
            "buckets": {int(i): int(self.counts[i]) for i in nz},
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold a snapshot produced by :meth:`to_state` into this histogram."""
        if state.get("schema", SCHEMA) != SCHEMA:
            raise ValueError(
                f"histogram schema mismatch: {state.get('schema')} != {SCHEMA}"
            )
        for idx, n in state.get("buckets", {}).items():
            self.counts[int(idx)] += int(n)
        self.count += int(state.get("count", 0))
        self.total += float(state.get("sum", 0.0))
        if state.get("min") is not None:
            self.vmin = min(self.vmin, float(state["min"]))
        if state.get("max") is not None:
            self.vmax = max(self.vmax, float(state["max"]))


def summarize_state(state: Mapping[str, Any]) -> Dict[str, float]:
    """Summary (p50/p99/mean/max/count) straight from a histogram state."""
    h = Histogram()
    h.merge_state(state)
    return h.summary()


class MetricsRegistry:
    """Thread-safe, name-keyed registry of metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create; ``snapshot``
    produces the compact picklable blob that travels between processes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.get(name)
                if m is None:
                    m = cls()
                    self._metrics[name] = m
        if not isinstance(m, cls):
            raise TypeError(f"metric {name!r} is {type(m).__name__}, not {cls.__name__}")
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> Iterable[str]:
        with self._lock:
            return list(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Picklable blob of every metric: ``{name: state}``."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: m.to_state() for name, m in items}


def merge_snapshots(*blobs: Optional[Mapping[str, Mapping[str, Any]]]) -> Dict[str, Dict[str, Any]]:
    """Merge metric blobs from many processes into one combined blob.

    Counters add, histograms add bucket-wise, gauges take the max.
    ``None`` entries are skipped so callers can pass optional worker
    blobs without filtering.
    """
    merged: Dict[str, Any] = {}
    for blob in blobs:
        if not blob:
            continue
        for name, state in blob.items():
            kind = state.get("type")
            cur = merged.get(name)
            if cur is None:
                if kind == "hist":
                    h = Histogram()
                    h.merge_state(state)
                    merged[name] = h
                else:
                    merged[name] = dict(state)
                continue
            if kind == "hist":
                cur.merge_state(state)
            elif kind == "counter":
                cur["value"] += state["value"]
            elif kind == "gauge":
                cur["value"] = max(cur["value"], state["value"])
    return {
        name: (m.to_state() if isinstance(m, Histogram) else m)
        for name, m in merged.items()
    }


_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-global registry.

    Kernel timers and executor-side timings record here so that *any*
    process — coordinator, pool replica, or worker host — accumulates
    into one local registry whose snapshot can be shipped upstream and
    merged.
    """
    return _GLOBAL
