"""Structured logging for the network tier (and anything else).

``REPRO_LOG=json`` emits one JSON object per line; ``REPRO_LOG=text``
(the default) emits a human-readable ``ts level logger event k=v ...``
line.  Both go to stderr so they never interleave with protocol output
on stdout (``LocalCluster`` parses a worker's stdout banner to discover
its bound port — that line must stay machine-readable).

Loggers are cheap named objects with bound context::

    log = get_logger("repro.net.worker").bind(host="0.0.0.0", port=7100)
    log.info("listening")
    log.error("execute_failed", entry=key, error=str(exc))
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict


def _mode() -> str:
    return os.environ.get("REPRO_LOG", "text").strip().lower()


class StructLogger:
    """A named logger carrying bound key=value context."""

    __slots__ = ("name", "context")

    def __init__(self, name: str, context: Dict[str, Any] | None = None) -> None:
        self.name = name
        self.context = dict(context or {})

    def bind(self, **fields: Any) -> "StructLogger":
        """Child logger with extra bound context fields."""
        merged = dict(self.context)
        merged.update(fields)
        return StructLogger(self.name, merged)

    def _emit(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        record = dict(self.context)
        record.update(fields)
        now = time.time()
        if _mode() == "json":
            line = json.dumps({
                "ts": round(now, 6), "level": level, "logger": self.name,
                "event": event, **record,
            }, default=str)
        else:
            stamp = time.strftime("%H:%M:%S", time.localtime(now))
            extras = " ".join(f"{k}={v}" for k, v in record.items())
            line = f"{stamp} {level:<5s} {self.name} {event}"
            if extras:
                line += f" {extras}"
        print(line, file=sys.stderr, flush=True)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("INFO", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("WARN", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("ERROR", event, fields)


def get_logger(name: str, **bound: Any) -> StructLogger:
    return StructLogger(name, bound)
