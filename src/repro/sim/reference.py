"""Plaintext reference evaluator: runs a DSL program on unencrypted values.

Every execution backend must agree with this evaluator — it defines the
*semantics* of a :class:`~repro.dsl.program.Program` independently of any
encryption, which is what makes cross-backend validation possible
(functional decryption is compared bit-for-bit against it for BGV, and
within float tolerance for CKKS).

Scheme semantics mirror what the homomorphic path implements:

- **BGV**: coefficient vectors mod t; MUL is negacyclic polynomial
  multiplication; ROTATE is the automorphism ``sigma_{3^steps}``;
  MOD_SWITCH preserves the plaintext.
- **CKKS**: N/2 complex slot values; MUL is slot-wise; ROTATE cyclically
  rotates slots (``sigma_{5^steps}`` under the canonical embedding);
  MOD_SWITCH (rescaling) preserves the value.
"""

from __future__ import annotations

import numpy as np

from repro.dsl.program import OpKind, Program
from repro.poly.automorphism import automorphism_coeff
from repro.poly.ntt import naive_negacyclic_multiply


def evaluate_reference(
    program: Program,
    inputs: dict[int, np.ndarray],
    plains: dict[int, np.ndarray] | None = None,
    *,
    plaintext_modulus: int = 256,
    batch_layout=None,
) -> dict[int, np.ndarray]:
    """Interpret the op graph on plaintext vectors; outputs keyed by OUTPUT op id.

    ``inputs`` maps INPUT op ids to value vectors, ``plains`` maps
    INPUT_PLAIN op ids to unencrypted vectors (defaulting to ``[1]``, as the
    functional interpreter does).  ``plaintext_modulus`` is the BGV ``t``;
    it is ignored for CKKS programs.

    ``batch_layout`` (a :class:`repro.serve.batcher.BatchLayout`, duck
    typed) activates slot-batching semantics: when ``masked_rotations`` is
    set every CKKS ROTATE is the *masked* rotation (roll, then zero the
    lanes whose source crossed a stride-block edge) the batched
    homomorphic path executes.  This keeps functional-vs-reference
    validation meaningful on batched runs.  Level information is ignored
    here — modulus switching never changes plaintext semantics.
    """
    plains = plains or {}
    if program.scheme == "ckks":
        return _evaluate_ckks(program, inputs, plains, batch_layout)
    return _evaluate_bgv(program, inputs, plains, plaintext_modulus)


def _pad(values, width: int, dtype) -> np.ndarray:
    values = np.asarray(values, dtype=dtype).reshape(-1)
    if values.shape[0] > width:
        raise ValueError(f"vector of {values.shape[0]} values exceeds width {width}")
    out = np.zeros(width, dtype=dtype)
    out[: values.shape[0]] = values
    return out


def _evaluate_bgv(program, inputs, plains, t: int) -> dict[int, np.ndarray]:
    n = program.n
    env: dict[int, np.ndarray] = {}
    out: dict[int, np.ndarray] = {}
    for op in program.ops:
        k = op.kind
        if k is OpKind.INPUT:
            env[op.op_id] = _pad(inputs[op.op_id], n, np.int64) % t
        elif k is OpKind.INPUT_PLAIN:
            env[op.op_id] = _pad(plains.get(op.op_id, [1]), n, np.int64) % t
        elif k is OpKind.ADD:
            env[op.op_id] = (env[op.args[0]] + env[op.args[1]]) % t
        elif k is OpKind.SUB:
            env[op.op_id] = (env[op.args[0]] - env[op.args[1]]) % t
        elif k in (OpKind.MUL, OpKind.MUL_PLAIN):
            env[op.op_id] = np.asarray(
                naive_negacyclic_multiply(env[op.args[0]], env[op.args[1]], t),
                dtype=np.int64,
            )
        elif k is OpKind.ADD_PLAIN:
            env[op.op_id] = (env[op.args[0]] + env[op.args[1]]) % t
        elif k is OpKind.ROTATE:
            exponent = pow(3, op.rotate_steps, 2 * n)
            env[op.op_id] = np.asarray(
                automorphism_coeff(env[op.args[0]], exponent, t), dtype=np.int64
            )
        elif k is OpKind.MOD_SWITCH:
            env[op.op_id] = env[op.args[0]]
        elif k is OpKind.OUTPUT:
            env[op.op_id] = env[op.args[0]]
            out[op.op_id] = env[op.args[0]]
        else:
            raise ValueError(f"unhandled op kind {k}")
    return out


def _rotation_mask(steps: int, stride: int, slots: int) -> np.ndarray:
    """Lanes that keep their value after a batched (masked) rotation:
    source lane stayed inside the same stride block and inside the ring."""
    lane = np.arange(slots)
    src = lane + steps
    return (((lane % stride) + steps < stride) & (src >= 0) & (src < slots))


def _evaluate_ckks(program, inputs, plains, layout=None) -> dict[int, np.ndarray]:
    slots = program.n // 2
    masked = layout is not None and layout.masked_rotations
    env: dict[int, np.ndarray] = {}
    out: dict[int, np.ndarray] = {}
    for op in program.ops:
        k = op.kind
        if k is OpKind.INPUT:
            env[op.op_id] = _pad(inputs[op.op_id], slots, np.complex128)
        elif k is OpKind.INPUT_PLAIN:
            env[op.op_id] = _pad(plains.get(op.op_id, [1]), slots, np.complex128)
        elif k is OpKind.ADD:
            env[op.op_id] = env[op.args[0]] + env[op.args[1]]
        elif k is OpKind.SUB:
            env[op.op_id] = env[op.args[0]] - env[op.args[1]]
        elif k in (OpKind.MUL, OpKind.MUL_PLAIN):
            env[op.op_id] = env[op.args[0]] * env[op.args[1]]
        elif k is OpKind.ADD_PLAIN:
            env[op.op_id] = env[op.args[0]] + env[op.args[1]]
        elif k is OpKind.ROTATE:
            rolled = np.roll(env[op.args[0]], -op.rotate_steps)
            if masked:
                rolled = np.where(
                    _rotation_mask(op.rotate_steps, layout.stride, slots),
                    rolled, 0,
                )
            env[op.op_id] = rolled
        elif k is OpKind.MOD_SWITCH:
            env[op.op_id] = env[op.args[0]]
        elif k is OpKind.OUTPUT:
            env[op.op_id] = env[op.args[0]]
            out[op.op_id] = env[op.args[0]]
        else:
            raise ValueError(f"unhandled op kind {k}")
    return out
