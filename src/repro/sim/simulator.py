"""Schedule checker: forward-simulates a static schedule and validates it.

Matching Sec. 4.4 ("after the final schedule is generated, we validate it by
simulating it forward to ensure that no clobbers or resource usage violations
occur") and Sec. 7 (the cycle-accurate simulator "acts more as a checker: it
runs the instruction stream at each component and verifies that latencies are
as expected and there are no missed dependences or structural hazards").

Checks performed, independently of the scheduler's own bookkeeping:

1. **Dependences**: every instruction starts no earlier than (a) each
   operand's producing instruction's completion plus the network transfer, or
   (b) the operand's load completion if it came from off-chip.
2. **Structural hazards**: per (cluster, FU, unit), issue slots are spaced by
   at least the occupancy.
3. **HBM bandwidth**: in no window does scheduled traffic exceed capacity
   (verified by serialization: transfer intervals on the aggregate channel
   must not overlap).
4. **Scratchpad capacity**: replaying the phase-2 event list never exceeds
   the slot count, and no value is used while not resident (clobber check).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.compiler.cycle_scheduler import CycleSchedule
from repro.compiler.data_scheduler import DataMovementSchedule
from repro.core.config import F1Config
from repro.core.isa import InstructionGraph


@dataclass
class CheckReport:
    ok: bool
    violations: list[str] = field(default_factory=list)
    instructions_checked: int = 0
    transfers_checked: int = 0
    peak_resident_rvecs: int = 0

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(
                "schedule validation failed:\n" + "\n".join(self.violations[:20])
            )


def check_schedule(
    graph: InstructionGraph,
    movement: DataMovementSchedule,
    schedule: CycleSchedule,
    config: F1Config | None = None,
) -> CheckReport:
    config = config or schedule.config
    violations: list[str] = []
    instrs_by_id = {s.instr_id: s for s in schedule.instrs}
    transfer = config.transfer_cycles(graph.n)

    # --- 1. dependences -----------------------------------------------------
    ready_at: dict[int, float] = {}
    for tr in schedule.transfers:
        if tr.kind == "load":
            # A value may be loaded several times (spill/refill); its first
            # availability is the earliest load completion.
            prev = ready_at.get(tr.value_id)
            ready_at[tr.value_id] = tr.end if prev is None else min(prev, tr.end)
    # Producer completions (later loads may refresh spilled values, but a
    # value is ready at min(load end, producer end) whichever applies first;
    # we take producer end as authoritative for first use).
    for s in schedule.instrs:
        instr = graph.instructions[s.instr_id]
        ready_at.setdefault(instr.output, s.end)
        ready_at[instr.output] = min(ready_at.get(instr.output, s.end), s.end)

    for s in schedule.instrs:
        instr = graph.instructions[s.instr_id]
        for vid in instr.inputs:
            producer = graph.values[vid].producer
            if producer is not None and producer in instrs_by_id:
                avail = instrs_by_id[producer].end
            else:
                avail = ready_at.get(vid)
                if avail is None:
                    violations.append(
                        f"instr {s.instr_id}: operand {vid} never made available"
                    )
                    continue
            if s.start + 1e-9 < avail:
                violations.append(
                    f"instr {s.instr_id} starts at {s.start} before operand "
                    f"{vid} is ready at {avail}"
                )

    # --- 2. structural hazards ----------------------------------------------
    by_unit: dict[tuple[str, int, int], list] = defaultdict(list)
    for s in schedule.instrs:
        by_unit[(s.fu, s.cluster, s.unit)].append(s)
    for key, items in by_unit.items():
        items.sort(key=lambda s: s.start)
        for prev, cur in zip(items, items[1:]):
            if cur.start < prev.start + prev.occupancy:
                violations.append(
                    f"unit {key}: instr {cur.instr_id} issues at {cur.start} "
                    f"inside occupancy of {prev.instr_id} "
                    f"({prev.start}+{prev.occupancy})"
                )

    # --- 3. HBM bandwidth ----------------------------------------------------
    # Bandwidth occupancy is taken from each transfer's *recorded* window, not
    # re-derived from load_cycles (which mis-sized store transfers).  A load's
    # recorded end additionally includes the fixed HBM access latency, which
    # does not occupy the channel; subtract it to recover the occupancy end.
    intervals = sorted(
        (
            tr.start,
            tr.end - (config.hbm_latency_cycles if tr.kind == "load" else 0),
        )
        for tr in schedule.transfers
    )
    for (s0, e0), (s1, _e1) in zip(intervals, intervals[1:]):
        if s1 + 1e-6 < e0:
            violations.append(
                f"HBM oversubscribed: transfer at {s1} overlaps one ending {e0}"
            )

    # --- 4. scratchpad capacity & clobbers -----------------------------------
    peak = 0
    resident: set[int] = set()
    users_left = {v.value_id: len(v.users) for v in graph.values}
    for event in movement.events:
        if event.kind == "load":
            resident.add(event.target)
        elif event.kind in ("evict", "store"):
            resident.discard(event.target)
        elif event.kind == "exec":
            instr = graph.instructions[event.target]
            for vid in instr.inputs:
                if vid not in resident:
                    violations.append(
                        f"clobber: instr {event.target} reads non-resident {vid}"
                    )
            resident.add(instr.output)
            for vid in set(instr.inputs):
                users_left[vid] -= instr.inputs.count(vid)
                if users_left[vid] <= 0 and vid not in movement.outputs:
                    resident.discard(vid)
        peak = max(peak, len(resident))
        if len(resident) > movement.capacity_rvecs:
            violations.append(
                f"scratchpad capacity exceeded: {len(resident)} resident "
                f"> {movement.capacity_rvecs}"
            )
            break

    return CheckReport(
        ok=not violations,
        violations=violations,
        instructions_checked=len(schedule.instrs),
        transfers_checked=len(schedule.transfers),
        peak_resident_rvecs=peak,
    )
