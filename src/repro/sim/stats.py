"""Statistics extraction: Fig. 9 breakdowns and Fig. 10 timelines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.cycle_scheduler import CycleSchedule
from repro.compiler.data_scheduler import DataMovementSchedule
from repro.core.config import F1Config
from repro.core.energy import EnergyModel


@dataclass
class Timeline:
    """Per-window FU activity and HBM utilization (Fig. 10)."""

    window_cycles: int
    time_us: np.ndarray            # window start times in microseconds
    active_fus: dict               # fu kind -> windowed mean busy unit count
    hbm_utilization: np.ndarray    # fraction of window bandwidth used


def utilization_timeline(schedule: CycleSchedule, *, windows: int = 64) -> Timeline:
    """Bucket FU busy intervals and HBM transfers into time windows."""
    makespan = max(1, schedule.makespan)
    window = max(1, makespan // windows)
    n_bins = (makespan + window - 1) // window
    fus = {"ntt": np.zeros(n_bins), "aut": np.zeros(n_bins),
           "mul": np.zeros(n_bins), "add": np.zeros(n_bins)}
    for s in schedule.instrs:
        _spread(fus[s.fu], s.start, s.start + s.occupancy, window)
    hbm = np.zeros(n_bins)
    load_cycles = schedule.config.load_cycles(schedule.n)
    for tr in schedule.transfers:
        _spread(hbm, tr.start, tr.start + load_cycles, window)
    freq_ghz = schedule.config.frequency_ghz
    return Timeline(
        window_cycles=window,
        time_us=np.arange(n_bins) * window / (freq_ghz * 1e3),
        active_fus={k: v / window for k, v in fus.items()},
        hbm_utilization=hbm / window,
    )


def _spread(bins: np.ndarray, start: float, end: float, window: int) -> None:
    """Add an interval's cycle count to the windows it overlaps."""
    lo = int(start // window)
    hi = int((end - 1e-9) // window)
    if lo == hi:
        if 0 <= lo < len(bins):
            bins[lo] += end - start
        return
    for b in range(max(lo, 0), min(hi, len(bins) - 1) + 1):
        left = max(start, b * window)
        right = min(end, (b + 1) * window)
        bins[b] += max(0.0, right - left)


def power_breakdown(
    schedule: CycleSchedule,
    movement: DataMovementSchedule,
    config: F1Config | None = None,
) -> dict:
    """Average power by component over the benchmark's runtime (Fig. 9b)."""
    config = config or schedule.config
    energy = EnergyModel.from_config(config)
    rvec_bytes = config.rvec_bytes(schedule.n)
    time_s = schedule.makespan / (config.frequency_ghz * 1e9)
    if time_s <= 0:
        raise ValueError("empty schedule")

    fu_nj = sum(
        busy * energy.fu_busy_nj_per_cycle[fu]
        for fu, busy in schedule.fu_busy_cycles.items()
    )
    # Each instruction reads its operands from and writes its result to the
    # register file; each operand also crosses the NoC from a scratchpad bank.
    n_ops = len(schedule.instrs)
    operand_count = 2 * n_ops  # ~2 RF accesses (read operands, write result)
    rf_nj = operand_count * schedule.config.chunks(schedule.n) \
        * energy.rf_access_nj_per_rvec_chunk
    # Register files capture most operand reuse within a homomorphic op;
    # roughly one operand per instruction crosses the NoC from a bank.
    noc_bytes = n_ops * rvec_bytes
    noc_nj = noc_bytes * energy.noc_nj_per_byte
    scratch_bytes = noc_bytes + movement.traffic.total_rvecs() * rvec_bytes
    scratch_nj = scratch_bytes * energy.scratchpad_nj_per_byte
    hbm_bytes = movement.traffic.total_rvecs() * rvec_bytes
    hbm_nj = hbm_bytes * energy.hbm_nj_per_byte

    to_watts = 1e-9 / time_s
    return {
        "HBM": hbm_nj * to_watts,
        "Scratchpad": scratch_nj * to_watts,
        "NoC": noc_nj * to_watts,
        "RegFiles": rf_nj * to_watts,
        "FUs": fu_nj * to_watts,
        "total": (hbm_nj + scratch_nj + noc_nj + rf_nj + fu_nj) * to_watts,
    }


def traffic_fractions(movement: DataMovementSchedule, rvec_bytes: int) -> dict:
    """Fig. 9a: per-category fractions of total off-chip traffic."""
    breakdown = movement.traffic.breakdown(rvec_bytes)
    total = sum(breakdown.values())
    if total == 0:
        return {k: 0.0 for k in breakdown}
    return {k: v / total for k, v in breakdown.items()}
