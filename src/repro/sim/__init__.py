"""Cycle-accurate simulation and statistics (Sec. 7, Sec. 8.2, Sec. 8.5).

- :mod:`repro.sim.simulator`: the checker — replays the static schedule and
  verifies latencies, dependences, structural hazards, bandwidth, and
  scratchpad capacity, exactly in the spirit of the paper's simulator
  ("acts more as a checker").
- :mod:`repro.sim.stats`: utilization timelines (Fig. 10), power breakdowns
  (Fig. 9b) from the energy model, and traffic summaries (Fig. 9a).
- :mod:`repro.sim.functional`: executes a DSL program with the *real* FHE
  math from :mod:`repro.fhe` (the Sec. 8.5 functional simulator), verifying
  input-output correctness of compiled programs.
"""

from repro.sim.simulator import CheckReport, check_schedule
from repro.sim.stats import power_breakdown, utilization_timeline
from repro.sim.functional import FunctionalSimulator
from repro.sim.reference import evaluate_reference

__all__ = [
    "CheckReport",
    "check_schedule",
    "power_breakdown",
    "utilization_timeline",
    "FunctionalSimulator",
    "evaluate_reference",
]
