"""Functional simulator (Sec. 8.5): executes DSL programs with real FHE math.

Runs a :class:`~repro.dsl.program.Program` on actual ciphertexts using the
BGV or CKKS contexts from :mod:`repro.fhe`, verifying input-output
correctness of the homomorphic-operation graph the compiler schedules.  This
mirrors the paper's C++/NTL functional simulator: "this allows one to verify
correctness of FHE algorithms and to create a dataflow graph".

Programs compiled for the performance model typically use N = 16K; the
functional simulator accepts any power-of-two N, so tests run the *same
program shape* at small N (the paper's simulator likewise supports
N = 1024...16384).
"""

from __future__ import annotations

import numpy as np

from repro.dsl.program import OpKind, Program
from repro.fhe.bgv import BgvContext
from repro.fhe.ckks import CkksContext
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.params import FheParams


class FunctionalSimulator:
    """Executes a program's homomorphic ops on real ciphertexts."""

    def __init__(self, program: Program, params: FheParams, *, seed: int = 0):
        if program.n != params.n:
            raise ValueError(
                f"program N={program.n} does not match params N={params.n}"
            )
        max_level = max((op.level for op in program.ops), default=1)
        if max_level > params.level:
            raise ValueError(
                f"program needs {max_level} limbs; params provide {params.level}"
            )
        self.program = program
        self.params = params
        if program.scheme == "ckks":
            self.ctx: BgvContext = CkksContext(params, seed=seed)
        else:
            self.ctx = BgvContext(params, seed=seed)

    def run(self, inputs: dict[int, np.ndarray], plains: dict[int, np.ndarray] | None = None) -> dict[int, np.ndarray]:
        """Execute; returns decrypted outputs keyed by OUTPUT op id.

        ``inputs`` maps INPUT op ids to plaintext vectors; ``plains`` maps
        INPUT_PLAIN op ids to unencrypted vectors.
        """
        plains = plains or {}
        ctx = self.ctx
        is_ckks = self.program.scheme == "ckks"
        env: dict[int, Ciphertext] = {}
        plain_env: dict[int, np.ndarray] = {}
        outputs: dict[int, np.ndarray] = {}
        for op in self.program.ops:
            kind = op.kind
            if kind is OpKind.INPUT:
                if op.op_id not in inputs:
                    raise KeyError(f"missing value for input op {op.op_id}")
                data = inputs[op.op_id]
                if is_ckks:
                    env[op.op_id] = ctx.encrypt_values(data, level=op.level)
                else:
                    env[op.op_id] = ctx.encrypt(data, level=op.level)
            elif kind is OpKind.INPUT_PLAIN:
                plain_env[op.op_id] = np.asarray(
                    plains.get(op.op_id, np.ones(1))
                )
            elif kind is OpKind.ADD:
                env[op.op_id] = ctx.add(env[op.args[0]], env[op.args[1]])
            elif kind is OpKind.SUB:
                env[op.op_id] = ctx.sub(env[op.args[0]], env[op.args[1]])
            elif kind is OpKind.MUL:
                env[op.op_id] = ctx.mul(env[op.args[0]], env[op.args[1]])
            elif kind is OpKind.MUL_PLAIN:
                env[op.op_id] = ctx.mul_plain(
                    env[op.args[0]], plain_env[op.args[1]]
                )
            elif kind is OpKind.ADD_PLAIN:
                env[op.op_id] = ctx.add_plain(
                    env[op.args[0]], plain_env[op.args[1]]
                )
            elif kind is OpKind.ROTATE:
                env[op.op_id] = ctx.rotate(env[op.args[0]], op.rotate_steps)
            elif kind is OpKind.MOD_SWITCH:
                if is_ckks:
                    env[op.op_id] = ctx.rescale(env[op.args[0]])
                else:
                    env[op.op_id] = ctx.mod_switch(env[op.args[0]])
            elif kind is OpKind.OUTPUT:
                ct = env[op.args[0]]
                env[op.op_id] = ct
                if is_ckks:
                    outputs[op.op_id] = ctx.decrypt_values(ct)
                else:
                    outputs[op.op_id] = ctx.decrypt(ct)
            else:
                raise ValueError(f"unhandled op kind {kind}")
        return outputs
