"""Functional simulator (Sec. 8.5): executes DSL programs with real FHE math.

Runs a :class:`~repro.dsl.program.Program` on actual ciphertexts, verifying
input-output correctness of the homomorphic-operation graph the compiler
schedules.  This mirrors the paper's C++/NTL functional simulator: "this
allows one to verify correctness of FHE algorithms and to create a dataflow
graph".

The interpreter is scheme-agnostic: it drives the unified
:class:`~repro.fhe.context.FheContext` surface (``encrypt_values`` /
``decrypt_values`` / ``rescale`` / the shared HE ops), so the same loop
executes BGV and CKKS programs.  The only scheme-aware pieces are the scale
managers: CKKS additions require operands at one scale Delta, and BGV
additions require one accumulated plaintext-scale factor, so mismatched
operands are aligned with a plaintext-constant multiplication before the op
(standard CKKS practice; a no-op for power-of-two ``t ≤ 2N`` BGV, where the
factor is always 1).

Programs compiled for the performance model typically use N = 16K; the
functional simulator accepts any power-of-two N, so tests run the *same
program shape* at small N (the paper's simulator likewise supports
N = 1024...16384).
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.dsl.program import KS_OPS, OpKind, Program
from repro.fhe.bgv import BgvContext
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.ckks import CkksContext
from repro.fhe.context import FheContext
from repro.fhe.params import FheParams


class FunctionalSimulator:
    """Executes a program's homomorphic ops on real ciphertexts.

    After :meth:`run`, :attr:`executed_counts` holds the per-kind count of
    program ops consumed and :attr:`hints_used` the distinct key-switch
    hints, so callers can cross-check that other backends (e.g. the F1
    compiler) consumed the exact same graph.
    """

    def __init__(self, program: Program, params: FheParams, *, seed: int = 0,
                 ks_variant: int | None = None, context: FheContext | None = None):
        if program.n != params.n:
            raise ValueError(
                f"program N={program.n} does not match params N={params.n}"
            )
        max_level = max((op.level for op in program.ops), default=1)
        if max_level > params.level:
            raise ValueError(
                f"program needs {max_level} limbs; params provide {params.level}"
            )
        self.program = program
        self.params = params
        if context is not None:
            ctx_params = getattr(context, "params", None)
            if ctx_params is not None and ctx_params.n != program.n:
                raise ValueError(
                    f"injected context has N={ctx_params.n}; "
                    f"program has N={program.n}"
                )
            if context.scheme and context.scheme != program.scheme and not (
                context.scheme == "bgv" and program.scheme == "gsw"
            ):
                raise ValueError(
                    f"injected {context.scheme} context cannot run a "
                    f"{program.scheme} program"
                )
            self.ctx: FheContext = context
        elif program.scheme == "ckks":
            kw = {"ks_variant": ks_variant} if ks_variant else {}
            self.ctx = CkksContext(params, seed=seed, **kw)
        else:
            self.ctx = BgvContext(params, seed=seed, ks_variant=ks_variant or 1)
        self.executed_counts: dict[str, int] = {}
        self.hints_used: set[str] = set()
        self._mask_cache: dict[tuple[int, int], np.ndarray] = {}

    def run(self, inputs: dict[int, np.ndarray], plains: dict[int, np.ndarray] | None = None,
            *, batch_layout=None) -> dict[int, np.ndarray]:
        """Execute; returns decrypted outputs keyed by OUTPUT op id.

        ``inputs`` maps INPUT op ids to value vectors; ``plains`` maps
        INPUT_PLAIN op ids to unencrypted vectors.

        ``batch_layout`` (a :class:`repro.serve.batcher.BatchLayout`, duck
        typed here to avoid a layering cycle) activates the slot-batching
        extensions: INPUT encryption honors per-request arrival levels
        (cohorts encrypted at their own level, mod-switched to the batch
        waterline, then summed — blocks are disjoint so addition merges
        them exactly), and when ``masked_rotations`` is set every ROTATE
        is followed by the 0/1 block-edge mask that makes the global slot
        rotation equal k per-request rotations.
        """
        plains = plains or {}
        ctx = self.ctx
        self.executed_counts = {}
        self.hints_used = set()
        env: dict[int, Ciphertext] = {}
        plain_env: dict[int, np.ndarray] = {}
        outputs: dict[int, np.ndarray] = {}
        # Rotation hoisting: ROTATE ops sharing a source handle (the
        # dot-product / convolution pattern: many windows of one packed
        # vector) are executed together through ctx.rotate_many, which pays
        # the key-switch digit decomposition once (Halevi–Shoup).  Handles
        # are SSA, so env[src] is identical whenever each group member runs.
        rot_groups: dict[int, list] = {}
        for op in self.program.ops:
            if op.kind is OpKind.ROTATE:
                rot_groups.setdefault(op.args[0], []).append(op)
        pending_rotations: dict[int, Ciphertext] = {}
        for op in self.program.ops:
            kind = op.kind
            self.executed_counts[kind.value] = self.executed_counts.get(kind.value, 0) + 1
            if kind in KS_OPS:
                self.hints_used.add(op.hint_id)
            if kind is OpKind.INPUT:
                if op.op_id not in inputs:
                    raise KeyError(f"missing value for input op {op.op_id}")
                env[op.op_id] = self._encrypt_input(
                    op, inputs[op.op_id], batch_layout
                )
            elif kind is OpKind.INPUT_PLAIN:
                plain_env[op.op_id] = np.asarray(
                    plains.get(op.op_id, np.ones(1))
                )
            elif kind in (OpKind.ADD, OpKind.SUB):
                x, y = self._matched_scales(env[op.args[0]], env[op.args[1]])
                env[op.op_id] = (ctx.add if kind is OpKind.ADD else ctx.sub)(x, y)
            elif kind is OpKind.MUL:
                env[op.op_id] = ctx.mul(env[op.args[0]], env[op.args[1]])
            elif kind is OpKind.MUL_PLAIN:
                env[op.op_id] = ctx.mul_plain(
                    env[op.args[0]], plain_env[op.args[1]]
                )
            elif kind is OpKind.ADD_PLAIN:
                env[op.op_id] = ctx.add_plain(
                    env[op.args[0]], plain_env[op.args[1]]
                )
            elif kind is OpKind.ROTATE:
                group = rot_groups[op.args[0]]
                if len(group) > 1:
                    if op.op_id not in pending_rotations:
                        results = ctx.rotate_many(
                            env[op.args[0]], [g.rotate_steps for g in group]
                        )
                        pending_rotations.update(
                            (g.op_id, r) for g, r in zip(group, results)
                        )
                    env[op.op_id] = pending_rotations.pop(op.op_id)
                else:
                    env[op.op_id] = ctx.rotate(env[op.args[0]], op.rotate_steps)
                if batch_layout is not None and batch_layout.masked_rotations:
                    env[op.op_id] = ctx.mul_mask(
                        env[op.op_id],
                        self._rotation_mask(op.rotate_steps, batch_layout),
                    )
            elif kind is OpKind.MOD_SWITCH:
                env[op.op_id] = self._level_drop(env[op.args[0]])
            elif kind is OpKind.OUTPUT:
                ct = env[op.args[0]]
                env[op.op_id] = ct
                outputs[op.op_id] = ctx.decrypt_values(ct)
            else:
                raise ValueError(f"unhandled op kind {kind}")
        return outputs

    # --------------------------------------------- slot-batching extensions
    def _encrypt_input(self, op, values, layout) -> Ciphertext:
        """Encrypt one INPUT, honoring per-request arrival levels.

        A request arriving ``delta`` limbs deep shifts its whole execution
        down by ``delta``: its inputs are encrypted at ``op.level - delta``
        (modulus switching preserves the plaintext in both schemes, so the
        shifted graph computes the same function).  Mixed deltas split the
        packed vector into per-delta cohorts (zeroing the other requests'
        stride blocks), encrypt each cohort at its own level, mod-switch
        everything to the deepest cohort's waterline, and merge with
        homomorphic addition — the blocks are disjoint, so the sum is the
        packed ciphertext a uniform batch would have produced.
        """
        if layout is None:
            return self.ctx.encrypt_values(values, level=op.level)
        deltas = [layout.base_level - lvl for lvl in layout.levels]
        if not any(deltas):
            return self.ctx.encrypt_values(values, level=op.level)
        d_max = max(deltas)
        target = op.level - d_max
        if target < 1:
            raise ValueError(
                f"cross-level batch would drop input op {op.op_id} to "
                f"{target} limbs; request levels exceed this program's range"
            )
        if len(set(deltas)) == 1:
            return self.ctx.encrypt_values(values, level=target)
        values = np.asarray(values)
        cohorts: dict[int, list[int]] = {}
        for j, delta in enumerate(deltas):
            cohorts.setdefault(delta, []).append(j)
        combined = None
        for delta, members in sorted(cohorts.items()):
            vec = np.zeros_like(values)
            for j in members:
                lo = j * layout.stride
                vec[lo:lo + layout.stride] = values[lo:lo + layout.stride]
            ct = self.ctx.encrypt_values(vec, level=op.level - delta)
            ct = self.ctx.mod_switch_to(ct, target)
            combined = (ct if combined is None
                        else self.ctx.add(*self._matched_scales(combined, ct)))
        return combined

    def _rotation_mask(self, steps: int, layout) -> np.ndarray:
        """The 0/1 mask that confines a global slot rotation to its blocks.

        After rotating the packed vector left by ``steps``, lane ``g``
        holds what was at ``g + steps``; it belongs to the same request iff
        the source stayed inside g's stride block and inside the ring.
        Those are exactly the lanes a solo run would populate (the rest
        were its zero padding), so masking reproduces solo semantics.
        """
        key = (steps, layout.stride)
        mask = self._mask_cache.get(key)
        if mask is None:
            lanes = self.params.n // 2
            lane = np.arange(lanes)
            src = lane + steps
            keep = (((lane % layout.stride) + steps < layout.stride)
                    & (src >= 0) & (src < lanes))
            mask = keep.astype(np.float64)
            self._mask_cache[key] = mask
        return mask

    # --------------------------------------------------- scale alignment
    def _level_drop(self, ct: Ciphertext) -> Ciphertext:
        """Lower a DSL MOD_SWITCH: per-scheme limb drop.

        BGV modulus switching always preserves the plaintext.  CKKS has two
        limb-dropping ops and the right one depends on where the scale sits:
        *rescaling* divides the scale by q_last (correct after a multiply,
        where the scale is ~Delta^2), but applied to a fresh ciphertext at
        scale ~Delta it would sink the message below the noise.  There the
        value-preserving "mod down" is the correct lowering.  The waterline
        is sqrt(Delta): rescale only while the result keeps that much scale.
        """
        ctx = self.ctx
        if isinstance(ctx, CkksContext):
            q_last = ct.basis.moduli[-1]
            if ct.scale / q_last < math.sqrt(ctx.default_scale):
                return ctx.mod_switch(ct)
        return ctx.rescale(ct)

    def _matched_scales(self, ct0: Ciphertext, ct1: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Bring two addends to a common scale before add/sub.

        Program-level alignment guarantees matching *levels*; scales can
        still diverge (a rescaled product sits at Delta^2/q while a rescaled
        input sits at Delta/q).  CKKS fixes this by multiplying the
        smaller-scale operand by the all-ones plaintext encoded at the scale
        ratio; BGV by a scalar constant that retargets the accumulated
        plaintext-scale factor.
        """
        if isinstance(self.ctx, CkksContext):
            return self._matched_ckks(ct0, ct1)
        return self._matched_bgv(ct0, ct1)

    def _matched_ckks(self, ct0: Ciphertext, ct1: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        if np.isclose(ct0.scale, ct1.scale, rtol=1e-9):
            return ct0, ct1
        swapped = ct0.scale > ct1.scale
        small, big = (ct1, ct0) if swapped else (ct0, ct1)
        ones = np.ones(self.params.n // 2)
        ratio = big.scale / small.scale
        log_ratio = math.log2(ratio)
        if log_ratio == round(log_ratio) >= 1:
            # Exact power-of-two ratio (the common case once rotation
            # masks are in play — mul_mask uses an exact 2^k scale):
            # all-ones encoded at an integer power of two is an exact
            # constant polynomial, so the small side's fixup is
            # error-free with no amplification.  Taking this path keeps
            # the result scale as low as possible, which matters at
            # shallow levels where the amplified path below would push
            # the phase past q/2.
            small = self.ctx.mul_plain(small, ones, scale=ratio)
            return (big, small) if swapped else (small, big)
        # Encoding all-ones at scale `ratio` rounds the constant coefficient
        # to round(ratio): accurate only when ratio is large.  For small
        # ratios, amplify *both* sides by an exact power of two so the
        # rounded coefficient carries >= ~20 bits; the big side's multiply
        # is by exactly 2^k and therefore error-free.
        amp = 1.0
        while ratio * amp < 2 ** 20:
            amp *= 2 ** 10
        small = self.ctx.mul_plain(small, ones, scale=ratio * amp)
        if amp > 1.0:
            big = self.ctx.mul_plain(big, ones, scale=amp)
        return (big, small) if swapped else (small, big)

    def _matched_bgv(self, ct0: Ciphertext, ct1: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        if ct0.plaintext_scale == ct1.plaintext_scale:
            return ct0, ct1
        # Retarget ct1's factor: multiplying the payload by
        # k = s_target * s^{-1} (mod t) makes it decrypt identically under
        # the claimed factor s_target.
        t = self.ctx.t
        target = ct0.plaintext_scale
        k = target * pow(ct1.plaintext_scale, -1, t) % t
        fixed = replace(self.ctx.mul_plain(ct1, np.array([k])),
                        plaintext_scale=target)
        return ct0, fixed
