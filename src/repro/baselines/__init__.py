"""Baseline performance models: multicore CPU software and HEAX-sigma.

The paper's baselines are measured systems (a Xeon E3-1240v5 running HELib /
SEAL / HEAAN / Lola, and the HEAX FPGA accelerator).  We cannot run those, so
these modules provide *calibrated analytical models*: per-primitive costs
fitted to the baselines' published performance (Table 4's CPU columns and
HEAX's reported throughput), composed over the same homomorphic-operation
graphs F1 executes.  DESIGN.md records the substitution; EXPERIMENTS.md
records paper-vs-model numbers for every row.
"""

from repro.baselines.cpu import CpuModel
from repro.baselines.heax import HeaxModel

__all__ = ["CpuModel", "HeaxModel"]
