"""CPU software baseline model (the paper's Xeon E3-1240v5, 4C/8T, 3.5 GHz).

Per-primitive costs are fitted to the paper's own CPU measurements: Table 4
reports, e.g., a full-ciphertext NTT at (N=2^14, logQ=438) taking
179.2 ns x 8838 ≈ 1.58 ms, i.e. ~56.6 us per residue-vector NTT, giving
``NTT_NS_PER_ELEMENT_STAGE ≈ 0.25 ns`` per butterfly-element.  The model then
*composes* these primitive costs over a program's homomorphic-operation graph
exactly as optimized single-host software would execute it: sequentially, in
RNS form, with all data in cache-resident working sets (hence no memory-
bandwidth term — CPUs at these sizes are compute-bound on modular arithmetic,
which is the generous assumption for the baseline).

``threads`` models embarrassingly-parallel sections (the paper parallelizes
the CPU DB-lookup baseline across all cores).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dsl.program import OpKind, Program

# Fitted per-element primitive costs (nanoseconds); see module docstring.
NTT_NS_PER_ELEMENT_STAGE = 0.247   # per element per log2(N) stage
AUT_NS_PER_ELEMENT = 6.6           # gather + scatter + sign fixup
MUL_NS_PER_ELEMENT = 2.0           # 32-bit modular multiply
ADD_NS_PER_ELEMENT = 1.0           # 32-bit modular add
HE_OP_OVERHEAD_NS = 2_000.0        # allocation/dispatch per homomorphic op


@dataclass
class CpuModel:
    threads: int = 1

    # ------------------------------------------------------ primitive costs
    def limb_ntt_ns(self, n: int) -> float:
        return NTT_NS_PER_ELEMENT_STAGE * n * math.log2(n)

    def limb_aut_ns(self, n: int) -> float:
        return AUT_NS_PER_ELEMENT * n

    def limb_mul_ns(self, n: int) -> float:
        return MUL_NS_PER_ELEMENT * n

    def limb_add_ns(self, n: int) -> float:
        return ADD_NS_PER_ELEMENT * n

    # ------------------------------------------------- homomorphic op costs
    def keyswitch_ns(self, n: int, level: int) -> float:
        """Listing 1: L INTT + L(L-1) NTT + 2L^2 mul + ~2L^2 add."""
        ntts = level + level * (level - 1)
        return (
            ntts * self.limb_ntt_ns(n)
            + 2 * level * level * (self.limb_mul_ns(n) + self.limb_add_ns(n))
        )

    def he_op_ns(self, kind: OpKind, n: int, level: int) -> float:
        if kind is OpKind.MUL:
            tensor = 4 * level * self.limb_mul_ns(n) + level * self.limb_add_ns(n)
            recombine = 2 * level * self.limb_add_ns(n)
            return tensor + self.keyswitch_ns(n, level) + recombine + HE_OP_OVERHEAD_NS
        if kind is OpKind.ROTATE:
            auts = 2 * level * self.limb_aut_ns(n)
            recombine = level * self.limb_add_ns(n)
            return auts + self.keyswitch_ns(n, level) + recombine + HE_OP_OVERHEAD_NS
        if kind in (OpKind.ADD, OpKind.SUB):
            return 2 * level * self.limb_add_ns(n) + HE_OP_OVERHEAD_NS
        if kind is OpKind.ADD_PLAIN:
            return level * self.limb_add_ns(n) + HE_OP_OVERHEAD_NS
        if kind is OpKind.MUL_PLAIN:
            return 2 * level * self.limb_mul_ns(n) + HE_OP_OVERHEAD_NS
        if kind is OpKind.MOD_SWITCH:
            ntts = 2 * (1 + level)  # per component: 1 INTT + L NTTs
            elementwise = 2 * level * (
                self.limb_mul_ns(n) + self.limb_add_ns(n)
            )
            return ntts * self.limb_ntt_ns(n) + elementwise + HE_OP_OVERHEAD_NS
        return 0.0

    def run_program_ms(self, program: Program) -> float:
        """Total sequential time over the op graph, with thread scaling."""
        total_ns = sum(
            self.he_op_ns(op.kind, program.n, op.level) for op in program.ops
        )
        return total_ns / max(1, self.threads) / 1e6

    # ------------------------------------------------------- microbenchmarks
    def ciphertext_ntt_ms(self, n: int, level: int) -> float:
        return 2 * level * self.limb_ntt_ns(n) / 1e6

    def ciphertext_aut_ms(self, n: int, level: int) -> float:
        return 2 * level * self.limb_aut_ns(n) / 1e6

    def homomorphic_mul_ms(self, n: int, level: int) -> float:
        return self.he_op_ns(OpKind.MUL, n, level) / 1e6

    def homomorphic_perm_ms(self, n: int, level: int) -> float:
        return self.he_op_ns(OpKind.ROTATE, n, level) / 1e6
