"""HEAX-sigma baseline model (Sec. 7, Table 4).

HEAX [65] is the fastest prior FHE accelerator: an FPGA design with a
fixed-function CKKS key-switching pipeline built from relatively
low-throughput functional units.  It does not implement automorphisms, so the
paper evaluates HEAX-sigma — HEAX with each key-switch pipeline extended by an
SRAM-based *scalar* automorphism unit.

The model is structural-with-calibration: an FPGA clock of 300 MHz, a number
of parallel pipelines, and per-pipeline element throughputs fitted so the
model reproduces HEAX's published throughput (within the F1 paper's own
Table 4 ratios).  Butterfly and modular-multiply throughputs reflect HEAX's
DSP budget; the scalar automorphism unit processes one element per SRAM port
per cycle per pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dsl.program import OpKind, Program


@dataclass
class HeaxModel:
    clock_mhz: float = 300.0
    pipelines: int = 16               # parallel key-switch pipelines
    butterflies_per_cycle: float = 1.75  # per pipeline (28 chip-wide)
    modmuls_per_cycle: float = 1.75      # per pipeline
    aut_elements_per_cycle: float = 1.0  # per pipeline: scalar SRAM unit

    def _cycles_to_ms(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e6) * 1e3

    # ------------------------------------------------------- primitive costs
    def limb_ntt_cycles(self, n: int) -> float:
        butterflies = n / 2 * math.log2(n)
        return butterflies / (self.butterflies_per_cycle * self.pipelines)

    def limb_aut_cycles(self, n: int) -> float:
        return n / (self.aut_elements_per_cycle * self.pipelines)

    def limb_elementwise_cycles(self, n: int) -> float:
        return n / (self.modmuls_per_cycle * self.pipelines)

    # --------------------------------------------------- ciphertext-level ops
    def ciphertext_ntt_ms(self, n: int, level: int) -> float:
        return self._cycles_to_ms(2 * level * self.limb_ntt_cycles(n))

    def ciphertext_aut_ms(self, n: int, level: int) -> float:
        return self._cycles_to_ms(2 * level * self.limb_aut_cycles(n))

    def keyswitch_cycles(self, n: int, level: int) -> float:
        ntts = level * level
        elementwise = 4 * level * level
        return ntts * self.limb_ntt_cycles(n) + elementwise * self.limb_elementwise_cycles(n)

    def homomorphic_mul_ms(self, n: int, level: int) -> float:
        tensor = 5 * level * self.limb_elementwise_cycles(n)
        return self._cycles_to_ms(tensor + self.keyswitch_cycles(n, level))

    def homomorphic_perm_ms(self, n: int, level: int) -> float:
        auts = 2 * level * self.limb_aut_cycles(n)
        return self._cycles_to_ms(auts + self.keyswitch_cycles(n, level))

    # -------------------------------------------------------- program model
    def he_op_ms(self, kind: OpKind, n: int, level: int) -> float:
        """Cost of one homomorphic op, composed from the pipeline primitives
        the same way :meth:`repro.baselines.cpu.CpuModel.he_op_ns` composes
        its CPU primitives (HEAX has no per-op software overhead term)."""
        if kind is OpKind.MUL:
            return self.homomorphic_mul_ms(n, level)
        if kind is OpKind.ROTATE:
            return self.homomorphic_perm_ms(n, level)
        if kind in (OpKind.ADD, OpKind.SUB):
            return self._cycles_to_ms(2 * level * self.limb_elementwise_cycles(n))
        if kind is OpKind.ADD_PLAIN:
            return self._cycles_to_ms(level * self.limb_elementwise_cycles(n))
        if kind is OpKind.MUL_PLAIN:
            return self._cycles_to_ms(2 * level * self.limb_elementwise_cycles(n))
        if kind is OpKind.MOD_SWITCH:
            ntts = 2 * (1 + level)
            elementwise = 2 * level
            return self._cycles_to_ms(
                ntts * self.limb_ntt_cycles(n)
                + elementwise * self.limb_elementwise_cycles(n)
            )
        return 0.0

    def run_program_ms(self, program: Program) -> float:
        """Total time over a DSL program's op graph (sequential pipelines)."""
        return sum(
            self.he_op_ms(op.kind, program.n, op.level) for op in program.ops
        )
