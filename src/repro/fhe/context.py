"""Scheme-agnostic FHE context interface.

BGV and CKKS differ in how plaintexts ride inside the ring (integers mod t
vs. fixed-point at scale Delta) but expose the same homomorphic-operation
surface — which is why a single DSL :class:`~repro.dsl.program.Program` can
be interpreted against either scheme, and why F1 runs both on one substrate.
:class:`FheContext` names that shared surface:

- ``encrypt_values`` / ``decrypt_values`` — scheme-appropriate encode +
  (de)encrypt of a slot/coefficient vector;
- ``add`` / ``sub`` / ``mul`` / ``mul_plain`` / ``add_plain`` / ``rotate`` —
  the homomorphic ops of the DSL;
- ``rescale`` — the per-scheme noise/level management step a DSL
  ``MOD_SWITCH`` lowers to (BGV modulus switching, CKKS rescaling).

The historical per-scheme names (BGV ``encrypt``/``decrypt``/``mod_switch``,
CKKS ``encrypt_values``/``decrypt_values``/``rescale``) remain available on
the concrete contexts; the unified names are thin aliases where the scheme
already had its own spelling.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.fhe.ciphertext import Ciphertext


class FheContext(abc.ABC):
    """The homomorphic-operation surface shared by all schemes.

    Concrete contexts (:class:`~repro.fhe.bgv.BgvContext`,
    :class:`~repro.fhe.ckks.CkksContext`) implement these; backends that
    interpret DSL programs (:class:`repro.backends.FunctionalBackend`)
    program against exactly this interface and nothing scheme-specific.
    """

    #: scheme tag matching :attr:`repro.dsl.program.Program.scheme`
    scheme: str = ""

    # ----------------------------------------------------------- encryption
    @abc.abstractmethod
    def encrypt_values(self, values, *, level: int | None = None,
                       scale: float | None = None) -> Ciphertext:
        """Encode and encrypt a vector of scheme-native values.

        BGV encodes integers mod t into coefficients (``scale`` is ignored);
        CKKS encodes complex/real slot values at scale Delta.
        """

    @abc.abstractmethod
    def decrypt_values(self, ct: Ciphertext, count: int | None = None) -> np.ndarray:
        """Decrypt and decode back to values (first ``count`` if given)."""

    # --------------------------------------------------------------- HE ops
    @abc.abstractmethod
    def add(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext: ...

    @abc.abstractmethod
    def sub(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext: ...

    @abc.abstractmethod
    def mul(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext: ...

    @abc.abstractmethod
    def mul_plain(self, ct: Ciphertext, values) -> Ciphertext: ...

    @abc.abstractmethod
    def add_plain(self, ct: Ciphertext, values) -> Ciphertext: ...

    @abc.abstractmethod
    def rotate(self, ct: Ciphertext, steps: int) -> Ciphertext: ...

    def mul_mask(self, ct: Ciphertext, mask) -> Ciphertext:
        """Multiply by a 0/1 lane mask (zero the lanes where ``mask`` is 0).

        Semantically this is just ``mul_plain``, but masks deserve their
        own entry point because schemes can encode them more carefully
        than a generic plaintext: CKKS overrides this to encode the mask
        at an exact power-of-two scale near sqrt(Delta), so masking (the
        slot-batching rotate-then-mask lowering) costs far less precision
        and scale growth than a full-Delta multiply.  For BGV a 0/1 vector
        is exact at any scale, so the default is fine.
        """
        return self.mul_plain(ct, np.asarray(mask))

    def rotate_many(self, ct: Ciphertext, steps: list[int]) -> list[Ciphertext]:
        """Rotate one ciphertext by several amounts.

        Default is the sequential loop; contexts with a cheaper shared-input
        path (Halevi–Shoup hoisting in :class:`~repro.fhe.bgv.BgvContext`)
        override it.  Outputs must decrypt identically to
        ``[self.rotate(ct, s) for s in steps]``.
        """
        return [self.rotate(ct, s) for s in steps]

    @abc.abstractmethod
    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Drop one RNS limb with the scheme's noise/scale management."""

    # ------------------------------------------------------------ utilities
    def rescale_to(self, ct: Ciphertext, level: int) -> Ciphertext:
        """Rescale down until the ciphertext sits at ``level`` limbs."""
        while ct.level > level:
            ct = self.rescale(ct)
        return ct


def context_from_state(state: dict) -> FheContext:
    """Rebuild a concrete context from a ``to_state()`` dict.

    Dispatches on the state's ``scheme`` tag, so callers that shipped a
    serialized context across a process boundary (the serving layer's
    process executor) need not know which scheme produced it.  Only compact
    state travels — parameters, secret-key coefficients, RNG state; every
    derived cache (NTT twiddles, Shoup quotients, key-switch hints) is
    rebuilt lazily on the receiving side.
    """
    from repro.fhe.bgv import BgvContext
    from repro.fhe.ckks import CkksContext

    scheme = state.get("scheme")
    if scheme == "ckks":
        return CkksContext.from_state(state)
    if scheme == "bgv":
        return BgvContext.from_state(state)
    raise ValueError(f"cannot restore a context for scheme {scheme!r}")
