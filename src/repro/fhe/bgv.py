"""BGV scheme (Sec. 2.2) over RNS polynomials.

Ciphertexts are pairs ``(a, b = a*s + t*e + m)``; decryption recovers
``m = [b - a*s mod Q]_t`` via centered reduction.  All homomorphic operations
are built from exactly the primitives F1 accelerates: element-wise modular
add/multiply, NTTs, and automorphisms, plus key switching (Listing 1 or the
raised-modulus variant) and RNS modulus switching.
"""

from __future__ import annotations

import numpy as np

from repro.fhe import noise as noise_model
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import FheContext
from repro.fhe.keys import (
    KeySwitchHint,
    RaisedKeySwitchHint,
    SecretKey,
    generate_ks_hint,
    generate_raised_ks_hint,
)
from repro.fhe.keyswitch import (
    HoistedDecomposition,
    hoist_raise,
    key_switch_v1,
    key_switch_v2,
    key_switch_v2_hoisted,
)
from repro.fhe.params import FheParams
from repro.fhe.sampling import sample_error, small_poly, uniform_poly
from repro.obs.profile import instrument
from repro.poly import kernels
from repro.poly.automorphism import automorphism_ntt_permutation
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes


def rotation_exponent(steps: int, n: int) -> int:
    """Galois exponent for a rotation by ``steps``: k = 3^steps mod 2N."""
    return pow(3, steps, 2 * n)


class BgvContext(FheContext):
    """Keys plus homomorphic operations for one BGV parameter set."""

    scheme = "bgv"

    def __init__(self, params: FheParams, *, seed: int = 0, ks_variant: int = 1,
                 secret: SecretKey | None = None):
        if ks_variant not in (1, 2):
            raise ValueError("ks_variant must be 1 (Listing 1) or 2 (raised modulus)")
        self.params = params
        self.rng = np.random.default_rng(seed)
        # An injected secret lets several contexts share one key — needed by
        # bootstrapping, whose working context encrypts the input context's
        # key (circular security, as standard).
        self.secret = secret if secret is not None else SecretKey.generate(
            params.n, self.rng
        )
        self.ks_variant = ks_variant
        self._hints_v1: dict[tuple[str, RnsBasis], KeySwitchHint] = {}
        self._hints_v2: dict[tuple[str, RnsBasis], RaisedKeySwitchHint] = {}
        self._special_primes: dict[RnsBasis, RnsBasis] = {}

    # ----------------------------------------------------------------- serde
    def to_state(self) -> dict:
        """Compact serializable form of the whole context.

        Ships only what cannot be derived: parameters, the secret key's
        ternary coefficients, the RNG state, and the variant flag.  Every
        derived artifact — per-basis NTT key forms, NTT twiddles, Shoup
        quotients, key-switch hint caches, special-prime bases — is rebuilt
        lazily after a restore.  Regenerated hints draw fresh randomness,
        which is semantically irrelevant: they re-encrypt the *same* secret,
        so decrypted values are bit-identical (BGV) / tolerance-equal (CKKS)
        across replicas.
        """
        return {
            "scheme": self.scheme,
            "params": self.params.to_state(),
            "secret": self.secret.to_state(),
            "rng_state": self.rng.bit_generator.state,
            "ks_variant": self.ks_variant,
        }

    @classmethod
    def from_state(cls, state: dict) -> "BgvContext":
        ctx = cls.__new__(cls)
        ctx._restore_state(state)
        return ctx

    def _restore_state(self, state: dict) -> None:
        self.__init__(
            FheParams.from_state(state["params"]),
            ks_variant=state["ks_variant"],
            secret=SecretKey.from_state(state["secret"]),
        )
        self.rng.bit_generator.state = state["rng_state"]

    def __getstate__(self):
        return self.to_state()

    def __setstate__(self, state):
        self._restore_state(state)

    # ------------------------------------------------------------ encryption
    @property
    def t(self) -> int:
        return self.params.plaintext_modulus

    def encode(self, values) -> np.ndarray:
        """Coefficient-encode integers mod t into a plaintext polynomial."""
        n = self.params.n
        values = np.asarray(values, dtype=np.int64) % self.t
        if values.shape[0] > n:
            raise ValueError(f"too many values ({values.shape[0]}) for N={n}")
        out = np.zeros(n, dtype=np.int64)
        out[: values.shape[0]] = values
        return out

    def encrypt(self, plaintext, *, level: int | None = None) -> Ciphertext:
        """Secret-key encrypt a length-<=N vector of integers mod t."""
        m = self.encode(plaintext)
        basis = self.params.basis_at(level) if level else self.params.basis
        n = self.params.n
        a = uniform_poly(basis, n, self.rng, Domain.NTT)
        e = small_poly(basis, sample_error(n, self.params.error_width, self.rng), Domain.NTT)
        m_poly = small_poly(basis, m, Domain.NTT)
        b = a * self.secret.poly(basis) + e.scalar_mul(self.t) + m_poly
        return Ciphertext(
            a=a,
            b=b,
            noise_bits=noise_model.fresh_noise_bits(n, self.t, self.params.error_width),
        )

    def decrypt(self, ct: Ciphertext) -> np.ndarray:
        """Decrypt to integers mod t (undoing any modulus-switch scale)."""
        phase = ct.b - ct.a * self.secret.poly(ct.basis)
        wide = phase.to_int_coeffs(centered=True)  # m + t*e, centered mod Q
        t = self.t
        correction = pow(ct.plaintext_scale, -1, t) if t > 1 else 0
        wide_arr = np.array(wide, dtype=object)
        return ((wide_arr * correction) % t).astype(np.int64)

    # Unified FheContext surface (see repro.fhe.context): BGV's historical
    # names are the implementations; these are the scheme-agnostic aliases.
    def encrypt_values(self, values, *, level: int | None = None,
                       scale: float | None = None) -> Ciphertext:
        return self.encrypt(values, level=level)

    def decrypt_values(self, ct: Ciphertext, count: int | None = None) -> np.ndarray:
        out = self.decrypt(ct)
        return out[:count] if count is not None else out

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        return self.mod_switch(ct)

    def noise_budget_bits(self, ct: Ciphertext) -> float:
        """Measured log2(Q / (2*|noise|)); decryption fails when <= 0."""
        phase = ct.b - ct.a * self.secret.poly(ct.basis)
        wide = phase.to_int_coeffs(centered=True)
        max_noise = max((abs(c) for c in wide), default=1)
        return float(ct.basis.modulus.bit_length() - 1 - max(max_noise, 1).bit_length())

    # ------------------------------------------------------ hint management
    def _old_key_for_target(self, target: str, basis: RnsBasis) -> RnsPolynomial:
        if target == "relin":
            return self.secret.square_poly(basis)
        if target.startswith("galois_"):
            k = int(target.split("_", 1)[1])
            coeffs = self.secret.automorphism_coeffs(k)
            return small_poly(basis, coeffs, Domain.NTT)
        raise ValueError(f"unknown key-switch target {target!r}")

    def _old_key_int_coeffs(self, target: str) -> list[int]:
        if target == "relin":
            # s^2 over the integers (negacyclic); compute exactly at top basis.
            basis = self.params.basis
            sq = self.secret.square_poly(basis).to_int_coeffs(centered=True)
            return sq
        if target.startswith("galois_"):
            k = int(target.split("_", 1)[1])
            return [int(c) for c in self.secret.automorphism_coeffs(k)]
        raise ValueError(f"unknown key-switch target {target!r}")

    def hint_v1(self, target: str, basis: RnsBasis) -> KeySwitchHint:
        key = (target, basis)
        hint = self._hints_v1.get(key)
        if hint is None:
            old_key = self._old_key_for_target(target, basis)
            hint = generate_ks_hint(
                self.secret, target, old_key, self.t, self.params.error_width, self.rng
            )
            self._hints_v1[key] = hint
        return hint

    def hint_v2(self, target: str, basis: RnsBasis) -> RaisedKeySwitchHint:
        key = (target, basis)
        hint = self._hints_v2.get(key)
        if hint is None:
            special = self._special_basis_for(basis)
            hint = generate_raised_ks_hint(
                self.secret,
                target,
                self._old_key_int_coeffs(target),
                basis,
                special,
                self.t,
                self.params.error_width,
                self.rng,
            )
            self._hints_v2[key] = hint
        return hint

    def _special_basis_for(self, basis: RnsBasis) -> RnsBasis:
        special = self._special_primes.get(basis)
        if special is None:
            bits = max(q.bit_length() for q in basis.moduli)
            # P must be ~>= Q for the raised-modulus noise bound: one special
            # prime per ciphertext limb at the same width (wider would push
            # products past 64 bits when the base primes are 32-bit).
            candidates = ntt_friendly_primes(
                self.params.n, bits, 2 * basis.level + 8
            )
            fresh = [p for p in candidates if p not in basis.moduli][: basis.level]
            special = RnsBasis(fresh)
            self._special_primes[basis] = special
        return special

    def _key_switch(self, x: RnsPolynomial, target: str) -> tuple[RnsPolynomial, RnsPolynomial, float]:
        basis = x.basis
        if self.ks_variant == 1:
            u0, u1 = key_switch_v1(x, self.hint_v1(target, basis))
        else:
            u0, u1 = key_switch_v2(x, self.hint_v2(target, basis), self.t)
            u0, u1 = u0.to_ntt(), u1.to_ntt()
        return u0, u1, self._ks_noise_bits(basis, x.n)

    def _ks_noise_bits(self, basis: RnsBasis, n: int) -> float:
        """Analytic noise added by one key switch at the given basis."""
        if self.ks_variant == 1:
            return noise_model.keyswitch_v1_noise_bits(
                n, self.t, basis.level, max(basis.moduli), self.params.error_width
            )
        return noise_model.keyswitch_v2_noise_bits(n, self.t, self.params.error_width)

    # --------------------------------------------------------------- HE ops
    def add(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        self._check_pair(ct0, ct1, "add")
        return ct0.with_polys(
            ct0.a + ct1.a,
            ct0.b + ct1.b,
            noise_bits=noise_model.add_noise_bits(ct0.noise_bits, ct1.noise_bits),
        )

    def sub(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        self._check_pair(ct0, ct1, "sub")
        return ct0.with_polys(
            ct0.a - ct1.a,
            ct0.b - ct1.b,
            noise_bits=noise_model.add_noise_bits(ct0.noise_bits, ct1.noise_bits),
        )

    def add_plain(self, ct: Ciphertext, plaintext) -> Ciphertext:
        m = small_poly(ct.basis, self._scaled_plain(ct, plaintext), Domain.NTT)
        return ct.with_polys(ct.a, ct.b + m, noise_bits=ct.noise_bits + 0.1)

    def mul_plain(self, ct: Ciphertext, plaintext) -> Ciphertext:
        """Multiply by an unencrypted vector (cheaper: 2L limb multiplies)."""
        m = small_poly(ct.basis, np.asarray(self.encode(plaintext)), Domain.NTT)
        bits = noise_model.log2(self.t) + noise_model.log2(ct.n) / 2.0
        return ct.with_polys(
            ct.a * m, ct.b * m, noise_bits=ct.noise_bits + bits
        )

    def _scaled_plain(self, ct: Ciphertext, plaintext) -> np.ndarray:
        """Encode a plaintext, pre-multiplied by the ciphertext's scale factor."""
        m = self.encode(plaintext).astype(np.int64)
        return (m * ct.plaintext_scale) % self.t

    def _tensor(self, ct0: Ciphertext, ct1: Ciphertext) -> tuple[RnsPolynomial, RnsPolynomial, RnsPolynomial]:
        """The tensor-product triple ``(l2, l1, l0)`` with the middle term
        fused (``a0*b1 + a1*b0`` in one reduction, see
        :func:`~repro.poly.kernels.fused_mul_add`)."""
        basis = ct0.basis
        q = basis.moduli_column()
        a0, b0, a1, b1 = ct0.a.limbs, ct0.b.limbs, ct1.a.limbs, ct1.b.limbs
        l2 = RnsPolynomial(basis, kernels.mul_mod(a0, a1, q), Domain.NTT)
        l1 = RnsPolynomial(basis, kernels.fused_mul_add(a0, b1, a1, b0, q), Domain.NTT)
        l0 = RnsPolynomial(basis, kernels.mul_mod(b0, b1, q), Domain.NTT)
        return l2, l1, l0

    def mul(self, ct0: Ciphertext, ct1: Ciphertext, *, relinearize: bool = True) -> Ciphertext:
        """Homomorphic multiplication: tensor, then key-switch l2 (Sec. 2.2.1)."""
        self._check_pair(ct0, ct1, "mul")
        l2, l1, l0 = self._tensor(ct0, ct1)
        raw_noise = noise_model.mul_noise_bits(
            ct0.noise_bits, ct1.noise_bits, ct0.n, self.t
        )
        if not relinearize:
            # Callers that batch relinearization can handle the 3-term form.
            return Ciphertext(
                a=l1, b=l0, plaintext_scale=ct0.plaintext_scale * ct1.plaintext_scale % self.t,
                noise_bits=raw_noise,
            )
        u0, u1, ks_noise = self._key_switch(l2, "relin")
        # u0 - u1*s = l2*s^2, so (l1+u1, l0+u0) decrypts to l0 - l1 s + l2 s^2.
        return Ciphertext(
            a=l1 + u1,
            b=l0 + u0,
            plaintext_scale=ct0.plaintext_scale * ct1.plaintext_scale % self.t,
            noise_bits=max(raw_noise, ks_noise) + 1.0,
        )

    def automorphism(self, ct: Ciphertext, k: int) -> Ciphertext:
        """Homomorphic sigma_k: permute both polys, key-switch the a-part."""
        a_sigma = ct.a.automorphism(k)
        b_sigma = ct.b.automorphism(k)
        u0, u1, ks_noise = self._key_switch(a_sigma, f"galois_{k}")
        return ct.with_polys(
            -u1,
            b_sigma - u0,
            noise_bits=max(ct.noise_bits, ks_noise) + 1.0,
        )

    def _rotation_exponent(self, steps: int, n: int) -> int:
        """Galois exponent realizing a rotation by ``steps`` (scheme-specific)."""
        return rotation_exponent(steps, n)

    def rotate(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """Homomorphic slot rotation (automorphism with k = 3^steps)."""
        return self.automorphism(ct, self._rotation_exponent(steps, ct.n))

    def rotate_many(self, ct: Ciphertext, steps: list[int]) -> list[Ciphertext]:
        """Rotate one ciphertext by many amounts with Halevi–Shoup hoisting.

        The expensive part of a rotation is key-switching ``sigma_k(a)``;
        because the automorphism commutes with the RNS digit decomposition
        (variant 1) and with the base extension (variant 2), the per-input
        heavy lifting — digit INTT + L^2 forward NTTs, or raise-to-QP — is
        computed once and replayed per rotation as an NTT-domain permutation
        plus the cheap multiply(-accumulate) tail.  Results decrypt exactly
        like the corresponding sequence of :meth:`rotate` calls (BGV
        plaintexts are bit-identical; ciphertext bits differ by the
        hoisting's q-multiple digit slack).
        """
        if len(steps) <= 1:
            return [self.rotate(ct, s) for s in steps]
        n = ct.n
        basis = ct.basis
        ks_noise = self._ks_noise_bits(basis, n)
        dec = raised = None
        if self.ks_variant == 1:
            dec = HoistedDecomposition(ct.a)
        out: list[Ciphertext] = []
        for s in steps:
            k = self._rotation_exponent(s, n)
            perm = automorphism_ntt_permutation(n, k)
            if dec is not None:
                u0, u1 = dec.key_switch(self.hint_v1(f"galois_{k}", basis), perm)
            else:
                hint = self.hint_v2(f"galois_{k}", basis)
                if raised is None:
                    # All galois hints at one basis share the extended basis,
                    # so the raised form is computed once.
                    raised = hoist_raise(ct.a, hint)
                u0, u1 = key_switch_v2_hoisted(raised, hint, self.t, perm)
                u0, u1 = u0.to_ntt(), u1.to_ntt()
            b_sigma = ct.b.automorphism(k)
            out.append(ct.with_polys(
                -u1,
                b_sigma - u0,
                noise_bits=max(ct.noise_bits, ks_noise) + 1.0,
            ))
        return out

    def mod_switch(self, ct: Ciphertext) -> Ciphertext:
        """Switch Q -> Q/q_L, scaling noise down by ~q_L (Sec. 2.2.2)."""
        if ct.level <= 1:
            raise ValueError("cannot modulus-switch the last limb away")
        q_last = ct.basis.moduli[-1]
        a_new = _rescale_bgv(ct.a, self.t)
        b_new = _rescale_bgv(ct.b, self.t)
        return ct.with_polys(
            a_new,
            b_new,
            plaintext_scale=ct.plaintext_scale * pow(q_last, -1, self.t) % self.t
            if self.t > 1
            else 1,
            noise_bits=noise_model.mod_switch_noise_bits(
                ct.noise_bits, q_last, ct.n, self.t
            ),
        )

    @instrument("mod_switch")
    def mod_switch_to(self, ct: Ciphertext, level: int) -> Ciphertext:
        """Switch down to ``level`` limbs in one coefficient-domain chain.

        Bit-identical to repeated :meth:`mod_switch`, but the intermediate
        NTT round-trips between consecutive drops are elided: the rescales
        happen back-to-back in coefficient domain and a single ``to_ntt``
        finishes (NTT∘INTT is exact, so the chain reproduces the sequential
        limbs exactly).
        """
        count = ct.level - level
        if count <= 0:
            return ct
        if level < 1:
            raise ValueError("cannot modulus-switch the last limb away")
        dropped = ct.basis.moduli[level:]
        a_new = _rescale_bgv_chain(ct.a, self.t, count)
        b_new = _rescale_bgv_chain(ct.b, self.t, count)
        scale = ct.plaintext_scale
        noise = ct.noise_bits
        for q_last in reversed(dropped):  # same drop order as mod_switch
            if self.t > 1:
                scale = scale * pow(q_last, -1, self.t) % self.t
            noise = noise_model.mod_switch_noise_bits(noise, q_last, ct.n, self.t)
        return ct.with_polys(
            a_new, b_new,
            plaintext_scale=scale if self.t > 1 else 1,
            noise_bits=noise,
        )

    def rescale_to(self, ct: Ciphertext, level: int) -> Ciphertext:
        """BGV rescaling *is* modulus switching; ride the chained path."""
        return self.mod_switch_to(ct, level)

    def _check_pair(self, ct0: Ciphertext, ct1: Ciphertext, op: str) -> None:
        if ct0.basis != ct1.basis:
            raise ValueError(
                f"{op}: ciphertexts at different levels "
                f"({ct0.level} vs {ct1.level}); mod_switch first"
            )
        if op in ("add", "sub") and ct0.plaintext_scale != ct1.plaintext_scale:
            raise ValueError(
                f"{op}: plaintext scales differ "
                f"({ct0.plaintext_scale} vs {ct1.plaintext_scale})"
            )


def _rescale_bgv(poly: RnsPolynomial, t: int) -> RnsPolynomial:
    """Exact-division rescale by the last limb with delta ≡ 0 (mod t)."""
    return _rescale_bgv_coeff(poly.to_coeff(), t).to_ntt()


def _rescale_bgv_chain(poly: RnsPolynomial, t: int, count: int) -> RnsPolynomial:
    """Rescale away the last ``count`` limbs with one NTT round-trip.

    Each step's correction depends only on coefficient-domain limbs, so the
    chain stays in coefficient domain throughout and converts back once —
    saving ``count - 1`` inverse/forward NTT pairs versus chaining
    :func:`_rescale_bgv`, with bit-identical limbs (NTT∘INTT is exact).
    """
    coeff = poly.to_coeff()
    for _ in range(count):
        coeff = _rescale_bgv_coeff(coeff, t)
    return coeff.to_ntt()


def _rescale_bgv_coeff(coeff: RnsPolynomial, t: int) -> RnsPolynomial:
    """Coefficient-domain core of the BGV rescale (input and output COEFF)."""
    basis = coeff.basis
    q_last = basis.moduli[-1]
    new_basis = basis.drop()
    # Centered last-limb residues u, then delta = u + q_last * w with
    # w = [-u * q_last^{-1}]_t centered, so delta ≡ u (mod q_last), ≡ 0 (mod t).
    u = coeff.limbs[-1].astype(np.int64)
    u = np.where(u > q_last // 2, u - q_last, u)
    if t > 1:
        q_inv_t = pow(q_last % t, -1, t)
        w = np.mod(-u * q_inv_t, t)
        w = np.where(w > t // 2, w - t, w)
    else:
        w = np.zeros_like(u)
    # |delta| <= q_last*(t+1)/2 < 2^63 for 32-bit q and t <= 2N: int64 is safe.
    delta = u + q_last * w

    # Reduce delta at every remaining modulus in one broadcast op, then do the
    # subtract-and-exact-divide across the whole (L-1, N) residue matrix.
    q_col = new_basis.moduli_column()
    delta_mod = np.remainder(delta[None, :], q_col.astype(np.int64)).astype(np.uint64)
    inv_col = np.array(
        [pow(q_last % q, -1, q) for q in new_basis.moduli], dtype=np.uint64
    ).reshape(-1, 1)
    out = ((coeff.limbs[:-1] + q_col - delta_mod) % q_col * inv_col) % q_col
    return RnsPolynomial(new_basis, out, Domain.COEFF)
