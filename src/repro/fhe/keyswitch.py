"""Key switching — the dominant FHE kernel (Sec. 2.4).

Two algorithmic variants, matching the paper's "algorithmic diversity"
discussion (the F1 compiler chooses between them based on L and reuse):

- :func:`key_switch_v1`: the Listing-1 RNS-decomposition method.  Per call:
  L inverse NTTs, ~L^2 forward NTTs, 2L^2 multiplies and 2L^2 adds of
  N-element vectors; hint storage grows as L^2.
- :func:`key_switch_v2`: raised-modulus (GHS-style).  The input is base-
  extended to Q*P (P ≈ Q), multiplied by a single hint pair, and scaled back
  down.  More compute per call (NTTs over ~2L limbs plus two base
  conversions) but hint storage grows only as L.

All inner loops run on the batched (L, N) residue-matrix engine:

- the L^2 forward NTTs of variant 1 are issued as **one** batched transform
  of the (L, L, N) digit stack (the :class:`~repro.poly.ntt.RnsNttContext`
  broadcasts its tables over leading axes);
- the multiply-accumulate against the hint rows is the fused
  :func:`~repro.poly.kernels.mul_accumulate` — raw products are summed
  un-reduced (28-bit primes leave 8+ bits of uint64 headroom for the L-term
  sum) and reduced once, instead of two reductions per term.

**Hoisting** (Halevi–Shoup): an automorphism commutes with the RNS digit
decomposition — ``sigma_k(D_i(x)) ≡ D_i(sigma_k(x)) (mod q_i)`` with the
same smallness bound — so a ciphertext rotated k ways needs its digit-NTT
stack computed only *once*.  :class:`HoistedDecomposition` captures that
stack; :func:`key_switch_v1_hoisted` replays it against any Galois hint with
just an NTT-domain permutation and the fused multiply-accumulate, skipping
the inverse NTT + L^2 forward NTTs per extra rotation.  (The hoisted digits
are ``sigma`` of the canonical digits, which differ from the canonical
digits of ``sigma(x)`` by multiples of ``q_i`` — ciphertext bits differ, but
the decrypted result and the noise bound are the same; tests pin down exact
BGV plaintext equality.)  The variant-2 analogue hoists the base extension:
:func:`hoist_raise` pays coefficient-domain round-trip + extension + wide
NTT once, and :func:`key_switch_v2_hoisted` permutes the extended NTT per
rotation.

Both variants return ``(u0, u1)`` such that ``u0 - u1 * s ≈ x * s_old
(mod Q)`` up to ``t``-multiple noise.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.fhe.keys import KeySwitchHint, RaisedKeySwitchHint
from repro.obs.profile import instrument
from repro.poly import kernels
from repro.poly.ntt import get_rns_context
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns import convert
from repro.rns.crt import RnsBasis


class HoistedDecomposition:
    """The reusable digit-NTT stack of one NTT-domain polynomial.

    ``digit_ntt[i]`` is the (L, N) all-limb NTT of digit i lifted to every
    modulus — exactly what :func:`key_switch_v1` consumes, computed once and
    shared across any number of Galois hints (Halevi–Shoup hoisting).
    """

    def __init__(self, x: RnsPolynomial):
        if x.domain is not Domain.NTT:
            raise ValueError("hoisted decomposition expects an NTT-domain input")
        self.basis = x.basis
        self.n = x.n
        self.digit_ntt = _digit_ntt_stack(x)

    def key_switch(self, hint: KeySwitchHint, galois_perm: np.ndarray | None = None,
                   ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """Key-switch the (optionally automorphed) decomposed polynomial."""
        return key_switch_v1_hoisted(self, hint, galois_perm)


def _digit_ntt_stack(x: RnsPolynomial) -> np.ndarray:
    """(L, L, N) stack: digit i of x, lifted to all L moduli, NTT'd.

    Digit i is INTT(x[i]) with coefficients in [0, q_i); its lift to modulus
    q_j is one conditional subtract when the basis is *balanced*
    (max q < 2 * min q — true for the engine's equal-width prime sets) and a
    general ``%`` otherwise.  The L lifted digit matrices are transformed in
    a single batched NTT call.
    """
    basis = x.basis
    ctx = get_rns_context(x.n, basis.moduli)
    q_col = basis.moduli_column()
    y = ctx.inverse(x.limbs)  # row i = digit polynomial INTT(x[i], q_i)
    broad = np.broadcast_to(y[:, None, :], (basis.level,) + y.shape)
    if max(basis.moduli) < 2 * min(basis.moduli):
        digits = kernels.reduce_once(broad, q_col)
    else:
        digits = np.remainder(broad, q_col)
    return ctx.forward(digits)


@instrument("key_switch")
def key_switch_v1(x: RnsPolynomial, hint: KeySwitchHint) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Listing 1: RNS-digit decomposition key switch, batched across limbs.

    ``x`` must be NTT-domain at the hint's basis.  (For j == i the lifted
    digit's NTT reproduces x.limbs[i] exactly: INTT then NTT round-trips
    bit-identically.)
    """
    if x.domain is not Domain.NTT:
        raise ValueError("key_switch_v1 expects an NTT-domain input")
    if x.basis != hint.basis:
        raise ValueError("input basis does not match hint basis")
    return key_switch_v1_hoisted(HoistedDecomposition(x), hint)


@instrument("key_switch_hoisted")
def key_switch_v1_hoisted(
    dec: HoistedDecomposition,
    hint: KeySwitchHint,
    galois_perm: np.ndarray | None = None,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Consume a hoisted digit stack: optional NTT permutation + fused MAC.

    ``galois_perm`` is the NTT-domain index permutation of the automorphism
    (see :func:`~repro.poly.automorphism.automorphism_ntt_permutation`);
    applying it to the digit stack equals decomposing the automorphed
    polynomial up to multiples of q_i, which the key-switch identity absorbs.
    """
    if dec.basis != hint.basis:
        raise ValueError("decomposition basis does not match hint basis")
    basis = dec.basis
    q_col = basis.moduli_column()
    digit_ntt = dec.digit_ntt
    if galois_perm is not None:
        digit_ntt = digit_ntt[:, :, galois_perm]
    u0 = kernels.mul_accumulate(digit_ntt, hint.stack0, q_col)
    u1 = kernels.mul_accumulate(digit_ntt, hint.stack1, q_col)
    return (
        RnsPolynomial(basis, u0, Domain.NTT),
        RnsPolynomial(basis, u1, Domain.NTT),
    )


@instrument("key_switch")
def key_switch_v2(
    x: RnsPolynomial,
    hint: RaisedKeySwitchHint,
    plaintext_modulus: int,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Raised-modulus key switch: base-extend, one hint multiply, scale down."""
    if x.domain is not Domain.NTT:
        raise ValueError("key_switch_v2 expects an NTT-domain input")
    if x.basis != hint.basis:
        raise ValueError("input basis does not match hint basis")
    x_ext = hoist_raise(x, hint)
    return key_switch_v2_hoisted(x_ext, hint, plaintext_modulus)


def hoist_raise(x: RnsPolynomial, hint: RaisedKeySwitchHint) -> RnsPolynomial:
    """The reusable raised form of ``x``: base-extended to Q*P, NTT domain.

    Computing it costs an inverse NTT, the base extension, and a wide
    forward NTT; rotations sharing one input reuse it (the variant-2
    hoisting analogue — the per-rotation work drops to a permutation, two
    multiplies, and the scale-downs).
    """
    return base_extend(x.to_coeff(), hint.extended).to_ntt()


@instrument("key_switch_hoisted")
def key_switch_v2_hoisted(
    x_ext: RnsPolynomial,
    hint: RaisedKeySwitchHint,
    plaintext_modulus: int,
    galois_perm: np.ndarray | None = None,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Variant-2 core on a raised input, with optional NTT-domain automorphism.

    Permuting the extended NTT equals raising the automorphed input (the
    extension's ``u*Q`` slack maps to ``sigma(u)*Q``, equally small and
    equally annihilated mod Q by the scale-down).
    """
    if galois_perm is not None:
        x_ext = RnsPolynomial(
            x_ext.basis, x_ext.limbs[:, galois_perm], Domain.NTT
        )
    u0_ext = x_ext * hint.hint0
    u1_ext = x_ext * hint.hint1
    u0 = scale_down(u0_ext, hint.special, plaintext_modulus)
    u1 = scale_down(u1_ext, hint.special, plaintext_modulus)
    return u0, u1


@instrument("base_extend")
def base_extend(x: RnsPolynomial, extended: RnsBasis) -> RnsPolynomial:
    """Fast RNS base extension (coefficient domain -> coefficient domain).

    Computes ``x + u*Q`` over the extended basis for some small integer
    polynomial ``u`` with ``0 <= u < L`` (the standard approximate CRT lift;
    the ``u*Q`` term is annihilated by the subsequent scale-down mod Q).

    The whole lift runs on cached per-basis-pair conversion tables
    (:class:`repro.rns.convert.BaseConversion`): Shoup digit extraction plus
    one raw uint64 matmul against the ``(Q/q_i) mod p_j`` matrix, replacing
    the former per-target-modulus Python loop (kept as
    :func:`base_extend_reference`; ``REPRO_KERNEL_DEBUG=1`` asserts
    bit-identity on every call).
    """
    if x.domain is not Domain.COEFF:
        raise ValueError("base_extend expects a coefficient-domain input")
    conv = convert.get_base_conversion(x.basis.moduli, extended.moduli)
    out = conv.convert(x.limbs)
    if kernels.DEBUG_VALIDATE:
        ref = base_extend_reference(x, extended)
        assert np.array_equal(out, ref.limbs), \
            "batched base_extend diverged from the reference path"
    return RnsPolynomial(extended, out, Domain.COEFF)


def base_extend_reference(x: RnsPolynomial, extended: RnsBasis) -> RnsPolynomial:
    """The retained per-target-modulus reference lift (exact oracle).

    Bit-identical to :func:`base_extend` by construction — both evaluate
    ``sum_i d_i * (Q/q_i) mod p_j`` exactly; this one walks target moduli in
    Python with per-row reduced sums.  Kept for the debug oracle, the fuzz
    suite, and the perf gate's before/after ratio.
    """
    if x.domain is not Domain.COEFF:
        raise ValueError("base_extend expects a coefficient-domain input")
    basis = x.basis
    old_index = {q: i for i, q in enumerate(basis.moduli)}
    n = x.n
    weights = basis.crt_weights()
    # Digits: d_i = [x_i * (Q/q_i)^{-1}]_{q_i}, coefficients in [0, q_i) —
    # all limbs in one broadcast op.
    inv_col = np.array([w[1] for w in weights], dtype=np.uint64).reshape(-1, 1)
    digits = (x.limbs * inv_col) % basis.moduli_column()
    out = np.empty((extended.level, n), dtype=np.uint64)
    for j, p in enumerate(extended.moduli):
        if p in old_index:
            out[j] = x.limbs[old_index[p]]
            continue
        pp = np.uint64(p)
        q_over_col = np.array(
            [w[0] % p for w in weights], dtype=np.uint64
        ).reshape(-1, 1)
        # Each term < p < 2^32, so the L-term sum fits in uint64.
        terms = (digits % pp) * q_over_col % pp
        out[j] = terms.sum(axis=0) % pp
    return RnsPolynomial(extended, out, Domain.COEFF)


@instrument("scale_down")
def scale_down(
    x: RnsPolynomial,
    special: RnsBasis,
    plaintext_modulus: int,
) -> RnsPolynomial:
    """Divide-and-round by P = prod(special), keeping the result ≡ 0 shift mod t.

    ``x`` is over Q*P (special limbs last); returns round-to-multiple result
    over Q, where the subtracted correction ``delta ≡ x (mod P)`` and
    ``delta ≡ 0 (mod t)`` so BGV plaintexts survive unscathed apart from the
    tracked ``P^{-1} mod t`` factor.

    Hot path: the exact value ``v = [x]_P`` is carried in Garner mixed-radix
    form (:class:`repro.rns.convert.MixedRadix`) — raw uint64 vector ops
    only — and ``delta mod q_j`` is assembled directly from ``v mod q_j``,
    ``v > P/2``, and the centered correction, never materializing big-int
    object arrays.  Every step computes the same integers as the retained
    object-array oracle (:func:`scale_down_reference`), so outputs are
    bit-identical; ``REPRO_KERNEL_DEBUG=1`` asserts exactly that per call.
    Falls back to the oracle for moduli or ``t`` at or above 2^32.
    """
    x = x.to_coeff()
    ext = x.basis
    n_special = special.level
    if ext.moduli[-n_special:] != special.moduli:
        raise ValueError("special basis must be the trailing limbs of x's basis")
    t = plaintext_modulus
    if max(ext.moduli) >= 1 << 32 or not 1 <= t < 1 << 32:
        return scale_down_reference(x, special, t)
    basis_q = RnsBasis(ext.moduli[:-n_special])
    out = _scale_down_fast(x.limbs, basis_q, special, t)
    if kernels.DEBUG_VALIDATE:
        ref = scale_down_reference(x, special, t)
        assert np.array_equal(out, ref.limbs), \
            "lazy scale_down diverged from the exact object-array oracle"
    return RnsPolynomial(basis_q, out, Domain.COEFF)


def _scale_down_fast(
    limbs: np.ndarray, basis_q: RnsBasis, special: RnsBasis, t: int
) -> np.ndarray:
    """Object-free scale-down core; see :func:`scale_down` for the contract.

    With ``v = [x]_P in [0, P)`` and ``big = (v > P//2)`` marking the
    coefficients whose centered value is ``v - P``, every quantity the
    oracle derives from the big-int ``v`` is reproduced modulus-wise:
    ``v_c mod m`` is one conditional subtract of ``P mod m``, the correction
    ``w = [-v_c * P^{-1}]_t`` needs only ``v_c mod t``, and
    ``delta mod q = (v_c + P*w_c) mod q`` fits uint64 because
    ``q^2 + q < 2^64`` for ``q < 2^32``.
    """
    n_special = special.level
    q_moduli = basis_q.moduli
    q_col = basis_q.moduli_column()
    p_product = special.modulus
    (pq_col, p_inv_col, t_mod_q_col, p_inv_t, half) = _scale_down_tables(
        q_moduli, special.moduli, t
    )

    mr = convert.get_mixed_radix(special.moduli)
    a = mr.digits(limbs[-n_special:])
    vq = mr.residues(a, q_moduli)
    big = mr.greater_than(a, half)[None, :]
    # Centered v mod q: subtract P mod q where v was centered downwards.
    vq_c = np.where(big, kernels.cond_sub(vq + (q_col - pq_col), q_col), vq)
    if t > 1:
        tt = np.uint64(t)
        vt = mr.residues(a, (t,))[0]
        c_t = np.uint64(t - p_product % t)  # == t when P ≡ 0 (mod t)
        vt_c = np.where(big[0], kernels.cond_sub(vt + c_t, tt), vt)
        w = kernels.cond_sub(tt - vt_c, tt) * p_inv_t % tt
        big_w = (w > np.uint64(t // 2))[None, :]  # centered w is w - t there
        if t <= min(q_moduli):
            w_mod_q = np.broadcast_to(w, vq.shape)
        else:
            w_mod_q = w[None, :] % q_col
        wq_c = np.where(
            big_w,
            kernels.cond_sub(w_mod_q + (q_col - t_mod_q_col), q_col),
            w_mod_q,
        )
        # delta = v_c + P*w_c; products stay < q^2 + q < 2^64.
        delta_q = (vq_c + pq_col * wq_c) % q_col
    else:
        delta_q = vq_c
    return ((limbs[: basis_q.level] + q_col - delta_q) % q_col
            * p_inv_col) % q_col


@lru_cache(maxsize=None)
def _scale_down_tables(
    q_moduli: tuple[int, ...], special_moduli: tuple[int, ...], t: int
):
    """Per-(basis, special, t) constants for the object-free scale-down."""
    p_product = 1
    for p in special_moduli:
        p_product *= p
    pq_col = np.array(
        [p_product % q for q in q_moduli], dtype=np.uint64
    ).reshape(-1, 1)
    p_inv_col = np.array(
        [pow(p_product % q, -1, q) for q in q_moduli], dtype=np.uint64
    ).reshape(-1, 1)
    t_mod_q_col = np.array(
        [t % q for q in q_moduli], dtype=np.uint64
    ).reshape(-1, 1)
    p_inv_t = np.uint64(pow(p_product % t, -1, t)) if t > 1 else np.uint64(0)
    return pq_col, p_inv_col, t_mod_q_col, p_inv_t, p_product // 2


def scale_down_reference(
    x: RnsPolynomial,
    special: RnsBasis,
    plaintext_modulus: int,
) -> RnsPolynomial:
    """The retained exact object-array scale-down (debug oracle).

    Reconstructs the centered big-int ``v = [x]_P`` through
    ``RnsBasis.from_rns`` and reduces ``delta`` per target modulus — the
    pre-batching formulation, kept as the ``REPRO_KERNEL_DEBUG=1`` oracle
    and the perf gate's before/after reference.
    """
    x = x.to_coeff()
    ext = x.basis
    n_special = special.level
    q_moduli = ext.moduli[:-n_special]
    if ext.moduli[-n_special:] != special.moduli:
        raise ValueError("special basis must be the trailing limbs of x's basis")
    basis_q = RnsBasis(q_moduli)
    n = x.n
    t = plaintext_modulus
    p_product = special.modulus

    # Centered value of x mod P, reconstructed exactly (P has few limbs and
    # this is the functional layer — exactness keeps noise analysis clean).
    special_limbs = x.limbs[-n_special:]
    v_arr = np.array(special.from_rns(special_limbs, centered=True), dtype=object)
    # Correction w so that delta = v + P*w ≡ 0 (mod t); all object-array
    # ufuncs, no per-coefficient Python loop.
    if t > 1:
        p_inv_t = pow(p_product % t, -1, t)
        w = (-v_arr * p_inv_t) % t
        w = np.where(w > t // 2, w - t, w)  # centered
    else:
        w = np.zeros(n, dtype=object)
    delta = v_arr + p_product * w

    qcol = basis_q.moduli_column()
    delta_mod = np.empty((basis_q.level, n), dtype=np.uint64)
    for j, q in enumerate(q_moduli):
        delta_mod[j] = (delta % q).astype(np.uint64)
    p_inv_col = np.array(
        [pow(p_product % q, -1, q) for q in q_moduli], dtype=np.uint64
    ).reshape(-1, 1)
    out = ((x.limbs[: basis_q.level] + qcol - delta_mod) % qcol * p_inv_col) % qcol
    return RnsPolynomial(basis_q, out, Domain.COEFF)
