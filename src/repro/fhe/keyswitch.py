"""Key switching — the dominant FHE kernel (Sec. 2.4).

Two algorithmic variants, matching the paper's "algorithmic diversity"
discussion (the F1 compiler chooses between them based on L and reuse):

- :func:`key_switch_v1`: the Listing-1 RNS-decomposition method.  Per call:
  L inverse NTTs, ~L^2 forward NTTs, 2L^2 multiplies and 2L^2 adds of
  N-element vectors; hint storage grows as L^2.
- :func:`key_switch_v2`: raised-modulus (GHS-style).  The input is base-
  extended to Q*P (P ≈ Q), multiplied by a single hint pair, and scaled back
  down.  More compute per call (NTTs over ~2L limbs plus two base
  conversions) but hint storage grows only as L.

All inner loops run on the batched (L, N) residue-matrix engine:

- the L^2 forward NTTs of variant 1 are issued as **one** batched transform
  of the (L, L, N) digit stack (the :class:`~repro.poly.ntt.RnsNttContext`
  broadcasts its tables over leading axes);
- the multiply-accumulate against the hint rows is the fused
  :func:`~repro.poly.kernels.mul_accumulate` — raw products are summed
  un-reduced (28-bit primes leave 8+ bits of uint64 headroom for the L-term
  sum) and reduced once, instead of two reductions per term.

**Hoisting** (Halevi–Shoup): an automorphism commutes with the RNS digit
decomposition — ``sigma_k(D_i(x)) ≡ D_i(sigma_k(x)) (mod q_i)`` with the
same smallness bound — so a ciphertext rotated k ways needs its digit-NTT
stack computed only *once*.  :class:`HoistedDecomposition` captures that
stack; :func:`key_switch_v1_hoisted` replays it against any Galois hint with
just an NTT-domain permutation and the fused multiply-accumulate, skipping
the inverse NTT + L^2 forward NTTs per extra rotation.  (The hoisted digits
are ``sigma`` of the canonical digits, which differ from the canonical
digits of ``sigma(x)`` by multiples of ``q_i`` — ciphertext bits differ, but
the decrypted result and the noise bound are the same; tests pin down exact
BGV plaintext equality.)  The variant-2 analogue hoists the base extension:
:func:`hoist_raise` pays coefficient-domain round-trip + extension + wide
NTT once, and :func:`key_switch_v2_hoisted` permutes the extended NTT per
rotation.

Both variants return ``(u0, u1)`` such that ``u0 - u1 * s ≈ x * s_old
(mod Q)`` up to ``t``-multiple noise.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.keys import KeySwitchHint, RaisedKeySwitchHint
from repro.obs.profile import instrument
from repro.poly import kernels
from repro.poly.ntt import get_rns_context
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis


class HoistedDecomposition:
    """The reusable digit-NTT stack of one NTT-domain polynomial.

    ``digit_ntt[i]`` is the (L, N) all-limb NTT of digit i lifted to every
    modulus — exactly what :func:`key_switch_v1` consumes, computed once and
    shared across any number of Galois hints (Halevi–Shoup hoisting).
    """

    def __init__(self, x: RnsPolynomial):
        if x.domain is not Domain.NTT:
            raise ValueError("hoisted decomposition expects an NTT-domain input")
        self.basis = x.basis
        self.n = x.n
        self.digit_ntt = _digit_ntt_stack(x)

    def key_switch(self, hint: KeySwitchHint, galois_perm: np.ndarray | None = None,
                   ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """Key-switch the (optionally automorphed) decomposed polynomial."""
        return key_switch_v1_hoisted(self, hint, galois_perm)


def _digit_ntt_stack(x: RnsPolynomial) -> np.ndarray:
    """(L, L, N) stack: digit i of x, lifted to all L moduli, NTT'd.

    Digit i is INTT(x[i]) with coefficients in [0, q_i); its lift to modulus
    q_j is one conditional subtract when the basis is *balanced*
    (max q < 2 * min q — true for the engine's equal-width prime sets) and a
    general ``%`` otherwise.  The L lifted digit matrices are transformed in
    a single batched NTT call.
    """
    basis = x.basis
    ctx = get_rns_context(x.n, basis.moduli)
    q_col = basis.moduli_column()
    y = ctx.inverse(x.limbs)  # row i = digit polynomial INTT(x[i], q_i)
    broad = np.broadcast_to(y[:, None, :], (basis.level,) + y.shape)
    if max(basis.moduli) < 2 * min(basis.moduli):
        digits = kernels.reduce_once(broad, q_col)
    else:
        digits = np.remainder(broad, q_col)
    return ctx.forward(digits)


@instrument("key_switch")
def key_switch_v1(x: RnsPolynomial, hint: KeySwitchHint) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Listing 1: RNS-digit decomposition key switch, batched across limbs.

    ``x`` must be NTT-domain at the hint's basis.  (For j == i the lifted
    digit's NTT reproduces x.limbs[i] exactly: INTT then NTT round-trips
    bit-identically.)
    """
    if x.domain is not Domain.NTT:
        raise ValueError("key_switch_v1 expects an NTT-domain input")
    if x.basis != hint.basis:
        raise ValueError("input basis does not match hint basis")
    return key_switch_v1_hoisted(HoistedDecomposition(x), hint)


@instrument("key_switch_hoisted")
def key_switch_v1_hoisted(
    dec: HoistedDecomposition,
    hint: KeySwitchHint,
    galois_perm: np.ndarray | None = None,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Consume a hoisted digit stack: optional NTT permutation + fused MAC.

    ``galois_perm`` is the NTT-domain index permutation of the automorphism
    (see :func:`~repro.poly.automorphism.automorphism_ntt_permutation`);
    applying it to the digit stack equals decomposing the automorphed
    polynomial up to multiples of q_i, which the key-switch identity absorbs.
    """
    if dec.basis != hint.basis:
        raise ValueError("decomposition basis does not match hint basis")
    basis = dec.basis
    q_col = basis.moduli_column()
    digit_ntt = dec.digit_ntt
    if galois_perm is not None:
        digit_ntt = digit_ntt[:, :, galois_perm]
    u0 = kernels.mul_accumulate(digit_ntt, hint.stack0, q_col)
    u1 = kernels.mul_accumulate(digit_ntt, hint.stack1, q_col)
    return (
        RnsPolynomial(basis, u0, Domain.NTT),
        RnsPolynomial(basis, u1, Domain.NTT),
    )


@instrument("key_switch")
def key_switch_v2(
    x: RnsPolynomial,
    hint: RaisedKeySwitchHint,
    plaintext_modulus: int,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Raised-modulus key switch: base-extend, one hint multiply, scale down."""
    if x.domain is not Domain.NTT:
        raise ValueError("key_switch_v2 expects an NTT-domain input")
    if x.basis != hint.basis:
        raise ValueError("input basis does not match hint basis")
    x_ext = hoist_raise(x, hint)
    return key_switch_v2_hoisted(x_ext, hint, plaintext_modulus)


def hoist_raise(x: RnsPolynomial, hint: RaisedKeySwitchHint) -> RnsPolynomial:
    """The reusable raised form of ``x``: base-extended to Q*P, NTT domain.

    Computing it costs an inverse NTT, the base extension, and a wide
    forward NTT; rotations sharing one input reuse it (the variant-2
    hoisting analogue — the per-rotation work drops to a permutation, two
    multiplies, and the scale-downs).
    """
    return base_extend(x.to_coeff(), hint.extended).to_ntt()


@instrument("key_switch_hoisted")
def key_switch_v2_hoisted(
    x_ext: RnsPolynomial,
    hint: RaisedKeySwitchHint,
    plaintext_modulus: int,
    galois_perm: np.ndarray | None = None,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Variant-2 core on a raised input, with optional NTT-domain automorphism.

    Permuting the extended NTT equals raising the automorphed input (the
    extension's ``u*Q`` slack maps to ``sigma(u)*Q``, equally small and
    equally annihilated mod Q by the scale-down).
    """
    if galois_perm is not None:
        x_ext = RnsPolynomial(
            x_ext.basis, x_ext.limbs[:, galois_perm], Domain.NTT
        )
    u0_ext = x_ext * hint.hint0
    u1_ext = x_ext * hint.hint1
    u0 = scale_down(u0_ext, hint.special, plaintext_modulus)
    u1 = scale_down(u1_ext, hint.special, plaintext_modulus)
    return u0, u1


@instrument("base_extend")
def base_extend(x: RnsPolynomial, extended: RnsBasis) -> RnsPolynomial:
    """Fast RNS base extension (coefficient domain -> coefficient domain).

    Computes ``x + u*Q`` over the extended basis for some small integer
    polynomial ``u`` with ``0 <= u < L`` (the standard approximate CRT lift;
    the ``u*Q`` term is annihilated by the subsequent scale-down mod Q).
    """
    if x.domain is not Domain.COEFF:
        raise ValueError("base_extend expects a coefficient-domain input")
    basis = x.basis
    old_index = {q: i for i, q in enumerate(basis.moduli)}
    n = x.n
    weights = basis.crt_weights()
    # Digits: d_i = [x_i * (Q/q_i)^{-1}]_{q_i}, coefficients in [0, q_i) —
    # all limbs in one broadcast op.
    inv_col = np.array([w[1] for w in weights], dtype=np.uint64).reshape(-1, 1)
    digits = (x.limbs * inv_col) % basis.moduli_column()
    out = np.empty((extended.level, n), dtype=np.uint64)
    for j, p in enumerate(extended.moduli):
        if p in old_index:
            out[j] = x.limbs[old_index[p]]
            continue
        pp = np.uint64(p)
        q_over_col = np.array(
            [w[0] % p for w in weights], dtype=np.uint64
        ).reshape(-1, 1)
        # Each term < p < 2^32, so the L-term sum fits in uint64.
        terms = (digits % pp) * q_over_col % pp
        out[j] = terms.sum(axis=0) % pp
    return RnsPolynomial(extended, out, Domain.COEFF)


@instrument("scale_down")
def scale_down(
    x: RnsPolynomial,
    special: RnsBasis,
    plaintext_modulus: int,
) -> RnsPolynomial:
    """Divide-and-round by P = prod(special), keeping the result ≡ 0 shift mod t.

    ``x`` is over Q*P (special limbs last); returns round-to-multiple result
    over Q, where the subtracted correction ``delta ≡ x (mod P)`` and
    ``delta ≡ 0 (mod t)`` so BGV plaintexts survive unscathed apart from the
    tracked ``P^{-1} mod t`` factor.
    """
    x = x.to_coeff()
    ext = x.basis
    n_special = special.level
    q_moduli = ext.moduli[:-n_special]
    if ext.moduli[-n_special:] != special.moduli:
        raise ValueError("special basis must be the trailing limbs of x's basis")
    basis_q = RnsBasis(q_moduli)
    n = x.n
    t = plaintext_modulus
    p_product = special.modulus

    # Centered value of x mod P, reconstructed exactly (P has few limbs and
    # this is the functional layer — exactness keeps noise analysis clean).
    special_limbs = x.limbs[-n_special:]
    v_arr = np.array(special.from_rns(special_limbs, centered=True), dtype=object)
    # Correction w so that delta = v + P*w ≡ 0 (mod t); all object-array
    # ufuncs, no per-coefficient Python loop.
    if t > 1:
        p_inv_t = pow(p_product % t, -1, t)
        w = (-v_arr * p_inv_t) % t
        w = np.where(w > t // 2, w - t, w)  # centered
    else:
        w = np.zeros(n, dtype=object)
    delta = v_arr + p_product * w

    qcol = basis_q.moduli_column()
    delta_mod = np.empty((basis_q.level, n), dtype=np.uint64)
    for j, q in enumerate(q_moduli):
        delta_mod[j] = (delta % q).astype(np.uint64)
    p_inv_col = np.array(
        [pow(p_product % q, -1, q) for q in q_moduli], dtype=np.uint64
    ).reshape(-1, 1)
    out = ((x.limbs[: basis_q.level] + qcol - delta_mod) % qcol * p_inv_col) % qcol
    return RnsPolynomial(basis_q, out, Domain.COEFF)
