"""Key switching — the dominant FHE kernel (Sec. 2.4).

Two algorithmic variants, matching the paper's "algorithmic diversity"
discussion (the F1 compiler chooses between them based on L and reuse):

- :func:`key_switch_v1`: the Listing-1 RNS-decomposition method.  Per call:
  L inverse NTTs, ~L^2 forward NTTs, 2L^2 multiplies and 2L^2 adds of
  N-element vectors; hint storage grows as L^2.
- :func:`key_switch_v2`: raised-modulus (GHS-style).  The input is base-
  extended to Q*P (P ≈ Q), multiplied by a single hint pair, and scaled back
  down.  More compute per call (NTTs over ~2L limbs plus two base
  conversions) but hint storage grows only as L.

Both return ``(u0, u1)`` such that ``u0 - u1 * s ≈ x * s_old  (mod Q)`` up to
``t``-multiple noise.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.keys import KeySwitchHint, RaisedKeySwitchHint
from repro.poly.ntt import get_context
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis


def key_switch_v1(x: RnsPolynomial, hint: KeySwitchHint) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Listing 1, verbatim: RNS-digit decomposition key switch.

    ``x`` must be NTT-domain at the hint's basis.
    """
    if x.domain is not Domain.NTT:
        raise ValueError("key_switch_v1 expects an NTT-domain input")
    if x.basis != hint.basis:
        raise ValueError("input basis does not match hint basis")
    basis = x.basis
    n = x.n
    level = basis.level
    moduli = basis.moduli

    # y[i] = INTT(x[i], q_i): the digit polynomials, in coefficient form.
    y = [get_context(n, moduli[i]).inverse(x.limbs[i]) for i in range(level)]

    u0 = RnsPolynomial.zeros(basis, n, Domain.NTT)
    u1 = RnsPolynomial.zeros(basis, n, Domain.NTT)
    for i in range(level):
        for j in range(level):
            if i == j:
                xqj = x.limbs[i]
            else:
                qj = moduli[j]
                # Lift digit (coefficients in [0, q_i)) and reduce mod q_j.
                xqj = get_context(n, qj).forward(y[i] % np.uint64(qj))
            qq = np.uint64(moduli[j])
            u0.limbs[j] = (u0.limbs[j] + xqj * hint.hint0[i].limbs[j] % qq) % qq
            u1.limbs[j] = (u1.limbs[j] + xqj * hint.hint1[i].limbs[j] % qq) % qq
    return u0, u1


def key_switch_v2(
    x: RnsPolynomial,
    hint: RaisedKeySwitchHint,
    plaintext_modulus: int,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Raised-modulus key switch: base-extend, one hint multiply, scale down."""
    if x.domain is not Domain.NTT:
        raise ValueError("key_switch_v2 expects an NTT-domain input")
    if x.basis != hint.basis:
        raise ValueError("input basis does not match hint basis")
    x_ext = base_extend(x.to_coeff(), hint.extended).to_ntt()
    u0_ext = x_ext * hint.hint0
    u1_ext = x_ext * hint.hint1
    u0 = scale_down(u0_ext, hint.special, plaintext_modulus)
    u1 = scale_down(u1_ext, hint.special, plaintext_modulus)
    return u0, u1


def base_extend(x: RnsPolynomial, extended: RnsBasis) -> RnsPolynomial:
    """Fast RNS base extension (coefficient domain -> coefficient domain).

    Computes ``x + u*Q`` over the extended basis for some small integer
    polynomial ``u`` with ``0 <= u < L`` (the standard approximate CRT lift;
    the ``u*Q`` term is annihilated by the subsequent scale-down mod Q).
    """
    if x.domain is not Domain.COEFF:
        raise ValueError("base_extend expects a coefficient-domain input")
    basis = x.basis
    old = set(basis.moduli)
    n = x.n
    weights = basis.crt_weights()
    # Digits: d_i = [x_i * (Q/q_i)^{-1}]_{q_i}, coefficients in [0, q_i).
    digits = []
    for i, q in enumerate(basis.moduli):
        inv = np.uint64(weights[i][1])
        digits.append((x.limbs[i] * inv) % np.uint64(q))
    out = np.empty((extended.level, n), dtype=np.uint64)
    for j, p in enumerate(extended.moduli):
        if p in old:
            out[j] = x.limbs[basis.moduli.index(p)]
            continue
        acc = np.zeros(n, dtype=np.uint64)
        pp = np.uint64(p)
        for i, q in enumerate(basis.moduli):
            q_over_p = np.uint64(weights[i][0] % p)
            term = (digits[i] % pp) * q_over_p % pp  # keep partials < 2^64
            acc = (acc + term) % pp
        out[j] = acc
    return RnsPolynomial(extended, out, Domain.COEFF)


def scale_down(
    x: RnsPolynomial,
    special: RnsBasis,
    plaintext_modulus: int,
) -> RnsPolynomial:
    """Divide-and-round by P = prod(special), keeping the result ≡ 0 shift mod t.

    ``x`` is over Q*P (special limbs last); returns round-to-multiple result
    over Q, where the subtracted correction ``delta ≡ x (mod P)`` and
    ``delta ≡ 0 (mod t)`` so BGV plaintexts survive unscathed apart from the
    tracked ``P^{-1} mod t`` factor.
    """
    x = x.to_coeff()
    ext = x.basis
    n_special = special.level
    q_moduli = ext.moduli[:-n_special]
    if ext.moduli[-n_special:] != special.moduli:
        raise ValueError("special basis must be the trailing limbs of x's basis")
    basis_q = RnsBasis(q_moduli)
    n = x.n
    t = plaintext_modulus
    p_product = special.modulus

    # Centered value of x mod P, reconstructed exactly (P has few limbs and
    # this is the functional layer — exactness keeps noise analysis clean).
    special_limbs = x.limbs[-n_special:]
    v_int = special.from_rns(special_limbs, centered=True)
    # Correction w so that delta = v + P*w ≡ 0 (mod t).
    p_inv_t = pow(p_product % t, -1, t) if t > 1 else 0
    v_arr = np.array(v_int, dtype=object)
    w = np.array([(-vi * p_inv_t) % t for vi in v_int], dtype=object)
    w = np.where(w > t // 2, w - t, w)  # centered
    delta = v_arr + p_product * w

    out = np.empty((basis_q.level, n), dtype=np.uint64)
    for j, q in enumerate(q_moduli):
        p_inv_q = pow(p_product % q, -1, q)
        delta_mod = np.array([int(d) % q for d in delta], dtype=np.uint64)
        qq = np.uint64(q)
        out[j] = ((x.limbs[j] + qq - delta_mod) % qq * np.uint64(p_inv_q)) % qq
    return RnsPolynomial(basis_q, out, Domain.COEFF)
