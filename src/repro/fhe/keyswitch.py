"""Key switching — the dominant FHE kernel (Sec. 2.4).

Two algorithmic variants, matching the paper's "algorithmic diversity"
discussion (the F1 compiler chooses between them based on L and reuse):

- :func:`key_switch_v1`: the Listing-1 RNS-decomposition method.  Per call:
  L inverse NTTs, ~L^2 forward NTTs, 2L^2 multiplies and 2L^2 adds of
  N-element vectors; hint storage grows as L^2.
- :func:`key_switch_v2`: raised-modulus (GHS-style).  The input is base-
  extended to Q*P (P ≈ Q), multiplied by a single hint pair, and scaled back
  down.  More compute per call (NTTs over ~2L limbs plus two base
  conversions) but hint storage grows only as L.

All inner loops run on the batched (L, N) residue-matrix engine: the L^2
forward NTTs of variant 1 are issued as L batched all-limb transforms (each
digit is lifted to every modulus and transformed in one
:class:`~repro.poly.ntt.RnsNttContext` call, reused across all j), and base
extension / scale-down broadcast across limbs instead of looping per
coefficient.

Both return ``(u0, u1)`` such that ``u0 - u1 * s ≈ x * s_old  (mod Q)`` up to
``t``-multiple noise.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.keys import KeySwitchHint, RaisedKeySwitchHint
from repro.poly.ntt import get_rns_context
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis


def key_switch_v1(x: RnsPolynomial, hint: KeySwitchHint) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Listing 1: RNS-digit decomposition key switch, batched across limbs.

    ``x`` must be NTT-domain at the hint's basis.
    """
    if x.domain is not Domain.NTT:
        raise ValueError("key_switch_v1 expects an NTT-domain input")
    if x.basis != hint.basis:
        raise ValueError("input basis does not match hint basis")
    basis = x.basis
    ctx = get_rns_context(x.n, basis.moduli)
    q_col = basis.moduli_column()

    # Row i of y is the digit polynomial INTT(x[i], q_i), in coefficient form
    # — all L inverse NTTs in one batched call.
    y = ctx.inverse(x.limbs)

    u0 = np.zeros_like(x.limbs)
    u1 = np.zeros_like(x.limbs)
    for i in range(basis.level):
        # Lift digit i (coefficients in [0, q_i)) to every limb modulus and
        # forward-transform at all L moduli in one batched NTT; the digit's
        # NTT matrix is then reused for both hint rows across all j.  (For
        # j == i this reproduces x.limbs[i] exactly: INTT then NTT round-trips
        # bit-identically.)
        digit_ntt = ctx.forward(np.remainder(y[i][None, :], q_col))
        u0 = (u0 + digit_ntt * hint.hint0[i].limbs % q_col) % q_col
        u1 = (u1 + digit_ntt * hint.hint1[i].limbs % q_col) % q_col
    return (
        RnsPolynomial(basis, u0, Domain.NTT),
        RnsPolynomial(basis, u1, Domain.NTT),
    )


def key_switch_v2(
    x: RnsPolynomial,
    hint: RaisedKeySwitchHint,
    plaintext_modulus: int,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Raised-modulus key switch: base-extend, one hint multiply, scale down."""
    if x.domain is not Domain.NTT:
        raise ValueError("key_switch_v2 expects an NTT-domain input")
    if x.basis != hint.basis:
        raise ValueError("input basis does not match hint basis")
    x_ext = base_extend(x.to_coeff(), hint.extended).to_ntt()
    u0_ext = x_ext * hint.hint0
    u1_ext = x_ext * hint.hint1
    u0 = scale_down(u0_ext, hint.special, plaintext_modulus)
    u1 = scale_down(u1_ext, hint.special, plaintext_modulus)
    return u0, u1


def base_extend(x: RnsPolynomial, extended: RnsBasis) -> RnsPolynomial:
    """Fast RNS base extension (coefficient domain -> coefficient domain).

    Computes ``x + u*Q`` over the extended basis for some small integer
    polynomial ``u`` with ``0 <= u < L`` (the standard approximate CRT lift;
    the ``u*Q`` term is annihilated by the subsequent scale-down mod Q).
    """
    if x.domain is not Domain.COEFF:
        raise ValueError("base_extend expects a coefficient-domain input")
    basis = x.basis
    old_index = {q: i for i, q in enumerate(basis.moduli)}
    n = x.n
    weights = basis.crt_weights()
    # Digits: d_i = [x_i * (Q/q_i)^{-1}]_{q_i}, coefficients in [0, q_i) —
    # all limbs in one broadcast op.
    inv_col = np.array([w[1] for w in weights], dtype=np.uint64).reshape(-1, 1)
    digits = (x.limbs * inv_col) % basis.moduli_column()
    out = np.empty((extended.level, n), dtype=np.uint64)
    for j, p in enumerate(extended.moduli):
        if p in old_index:
            out[j] = x.limbs[old_index[p]]
            continue
        pp = np.uint64(p)
        q_over_col = np.array(
            [w[0] % p for w in weights], dtype=np.uint64
        ).reshape(-1, 1)
        # Each term < p < 2^32, so the L-term sum fits in uint64.
        terms = (digits % pp) * q_over_col % pp
        out[j] = terms.sum(axis=0) % pp
    return RnsPolynomial(extended, out, Domain.COEFF)


def scale_down(
    x: RnsPolynomial,
    special: RnsBasis,
    plaintext_modulus: int,
) -> RnsPolynomial:
    """Divide-and-round by P = prod(special), keeping the result ≡ 0 shift mod t.

    ``x`` is over Q*P (special limbs last); returns round-to-multiple result
    over Q, where the subtracted correction ``delta ≡ x (mod P)`` and
    ``delta ≡ 0 (mod t)`` so BGV plaintexts survive unscathed apart from the
    tracked ``P^{-1} mod t`` factor.
    """
    x = x.to_coeff()
    ext = x.basis
    n_special = special.level
    q_moduli = ext.moduli[:-n_special]
    if ext.moduli[-n_special:] != special.moduli:
        raise ValueError("special basis must be the trailing limbs of x's basis")
    basis_q = RnsBasis(q_moduli)
    n = x.n
    t = plaintext_modulus
    p_product = special.modulus

    # Centered value of x mod P, reconstructed exactly (P has few limbs and
    # this is the functional layer — exactness keeps noise analysis clean).
    special_limbs = x.limbs[-n_special:]
    v_arr = np.array(special.from_rns(special_limbs, centered=True), dtype=object)
    # Correction w so that delta = v + P*w ≡ 0 (mod t); all object-array
    # ufuncs, no per-coefficient Python loop.
    if t > 1:
        p_inv_t = pow(p_product % t, -1, t)
        w = (-v_arr * p_inv_t) % t
        w = np.where(w > t // 2, w - t, w)  # centered
    else:
        w = np.zeros(n, dtype=object)
    delta = v_arr + p_product * w

    qcol = basis_q.moduli_column()
    delta_mod = np.empty((basis_q.level, n), dtype=np.uint64)
    for j, q in enumerate(q_moduli):
        delta_mod[j] = (delta % q).astype(np.uint64)
    p_inv_col = np.array(
        [pow(p_product % q, -1, q) for q in q_moduli], dtype=np.uint64
    ).reshape(-1, 1)
    out = ((x.limbs[: basis_q.level] + qcol - delta_mod) % qcol * p_inv_col) % qcol
    return RnsPolynomial(basis_q, out, Domain.COEFF)
