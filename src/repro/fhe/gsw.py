"""GSW scheme (Sec. 2.5): matrix ciphertexts with asymmetric noise growth.

An RGSW ciphertext of a small polynomial ``m`` is 2L RLWE pairs built around
the RNS-CRT gadget (the same D_i basis the key switch uses):

    C0[i] = (a_i,  a_i*s + t*e_i  + m * D_i)        -- "b-digit" rows
    C1[i] = (a'_i, a'_i*s + t*e'_i + m * D_i * s)   -- "a-digit" rows

The *external product* RGSW(m) ⊡ RLWE(mu) decomposes the RLWE pair into RNS
digits and takes inner products with the rows, yielding RLWE(m * mu) with
noise growing only with ``|m|`` and the digit magnitudes — GSW's hallmark
asymmetric growth.  F1 supports GSW with the same primitive mix (Sec. 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fhe.bgv import BgvContext
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.sampling import sample_error, small_poly, uniform_poly
from repro.poly.ntt import get_context
from repro.poly.polynomial import Domain, RnsPolynomial


@dataclass
class GswCiphertext:
    """2L RLWE rows: c0/c1 lists of (a, b) NTT-domain polynomial pairs."""

    c0: list[tuple[RnsPolynomial, RnsPolynomial]]
    c1: list[tuple[RnsPolynomial, RnsPolynomial]]

    @property
    def level(self) -> int:
        return len(self.c0)


class GswContext:
    """GSW encryption and external products on top of a BGV context's keys."""

    def __init__(self, bgv: BgvContext):
        self.bgv = bgv

    def encrypt(self, m_coeffs) -> GswCiphertext:
        """Encrypt a small integer polynomial (e.g. a bit or monomial)."""
        bgv = self.bgv
        params = bgv.params
        basis = params.basis
        n = params.n
        t = params.plaintext_modulus
        s = bgv.secret.poly(basis)
        m = small_poly(basis, np.asarray(m_coeffs, dtype=np.int64), Domain.NTT)
        m_s = m * s
        c0, c1 = [], []
        for i in range(basis.level):
            rows = []
            for target in (m, m_s):
                a = uniform_poly(basis, n, bgv.rng, Domain.NTT)
                e = small_poly(basis, sample_error(n, params.error_width, bgv.rng), Domain.NTT)
                masked = RnsPolynomial.zeros(basis, n, Domain.NTT)
                masked.limbs[i] = target.limbs[i]  # m * D_i via indicator
                b = a * s + e.scalar_mul(t) + masked
                rows.append((a, b))
            c0.append(rows[0])
            c1.append(rows[1])
        return GswCiphertext(c0=c0, c1=c1)

    def external_product(self, gsw: GswCiphertext, ct: Ciphertext) -> Ciphertext:
        """RGSW(m) ⊡ RLWE(mu) -> RLWE(m * mu)."""
        basis = ct.basis
        if gsw.level != basis.level:
            raise ValueError("GSW ciphertext level does not match RLWE input")
        n = ct.n
        moduli = basis.moduli
        a_digits = _rns_digits(ct.a)
        b_digits = _rns_digits(ct.b)
        out_a = RnsPolynomial.zeros(basis, n, Domain.NTT)
        out_b = RnsPolynomial.zeros(basis, n, Domain.NTT)
        for i in range(basis.level):
            a0_i, b0_i = gsw.c0[i]
            a1_i, b1_i = gsw.c1[i]
            for j, q in enumerate(moduli):
                qq = np.uint64(q)
                bd = b_digits[i][j]
                ad = a_digits[i][j]
                # result += b_digit * C0[i] - a_digit * C1[i]
                out_a.limbs[j] = (
                    out_a.limbs[j] + bd * a0_i.limbs[j] % qq + (qq - ad * a1_i.limbs[j] % qq)
                ) % qq
                out_b.limbs[j] = (
                    out_b.limbs[j] + bd * b0_i.limbs[j] % qq + (qq - ad * b1_i.limbs[j] % qq)
                ) % qq
        return ct.with_polys(out_a, out_b, noise_bits=ct.noise_bits + 12.0)

    def decrypt(self, ct: Ciphertext) -> np.ndarray:
        return self.bgv.decrypt(ct)


def _rns_digits(x: RnsPolynomial) -> list[list[np.ndarray]]:
    """digits[i][j] = NTT_{q_j}(lift of x mod q_i), as in Listing 1."""
    basis = x.basis
    n = x.n
    moduli = basis.moduli
    y = [get_context(n, moduli[i]).inverse(x.limbs[i]) for i in range(basis.level)]
    digits: list[list[np.ndarray]] = []
    for i in range(basis.level):
        row = []
        for j, qj in enumerate(moduli):
            if i == j:
                row.append(x.limbs[i])
            else:
                row.append(get_context(n, qj).forward(y[i] % np.uint64(qj)))
        digits.append(row)
    return digits
