"""Samplers for secrets, errors, and uniform ring elements."""

from __future__ import annotations

import numpy as np

from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis


def sample_ternary(n: int, rng: np.random.Generator) -> np.ndarray:
    """Ternary secret coefficients in {-1, 0, 1} (int64)."""
    return rng.integers(-1, 2, size=n, dtype=np.int64)


def sample_error(n: int, width: int, rng: np.random.Generator) -> np.ndarray:
    """Centered-binomial error with parameter ``width`` (sigma = sqrt(width/2))."""
    bits = rng.integers(0, 2, size=(n, 2 * width), dtype=np.int64)
    return bits[:, :width].sum(axis=1) - bits[:, width:].sum(axis=1)


def small_poly(basis: RnsBasis, coeffs: np.ndarray, domain: Domain = Domain.COEFF) -> RnsPolynomial:
    """Lift small signed integer coefficients into RNS form (all limbs at once)."""
    limbs = basis.to_rns(np.asarray(coeffs, dtype=np.int64))
    poly = RnsPolynomial(basis, limbs, Domain.COEFF)
    return poly.to_ntt() if domain is Domain.NTT else poly


def uniform_poly(basis: RnsBasis, n: int, rng: np.random.Generator, domain: Domain = Domain.NTT) -> RnsPolynomial:
    """Uniform element of R_Q.

    Sampling each limb independently and uniformly is exactly uniform over
    R_Q by CRT, and avoids wide-integer work.
    """
    poly = RnsPolynomial.random_uniform(basis, n, rng)
    if domain is Domain.COEFF:
        return poly
    # A fresh uniform sample is uniform in either domain; tag as requested.
    return RnsPolynomial(basis, poly.limbs, domain)
