"""CKKS scheme (Sec. 2.5): approximate arithmetic on complex/fixed-point slots.

Structurally identical to BGV at the polynomial level — same primitive mix of
NTTs, automorphisms, element-wise modular ops, and key switching — which is
exactly why F1 supports both schemes on one substrate.  Differences: the
plaintext rides in the high bits at scale Delta (no ``t`` factor on errors),
multiplication is followed by *rescaling* (the CKKS analogue of modulus
switching), and slots are N/2 complex values.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fhe import noise as noise_model
from repro.fhe.bgv import BgvContext, _rescale_bgv, _rescale_bgv_chain
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.encoding import CkksEncoder
from repro.fhe.params import FheParams
from repro.fhe.sampling import sample_error, small_poly, uniform_poly
from repro.obs.profile import instrument
from repro.poly.polynomial import Domain, RnsPolynomial


def ckks_rotation_exponent(steps: int, n: int) -> int:
    """Galois exponent rotating CKKS slots by ``steps``: k = 5^steps mod 2N."""
    return pow(5, steps, 2 * n)


CONJUGATION_EXPONENT = -1  # sigma_{-1} conjugates all slots


class CkksContext(BgvContext):
    """CKKS on top of the shared RLWE machinery (keys, hints, key switching).

    The plaintext modulus of the underlying machinery is forced to 1 so that
    hint errors and rescaling corrections enter without a ``t`` factor.

    ``encrypt_values`` / ``decrypt_values`` / ``rescale`` are CKKS's native
    spellings of the unified :class:`~repro.fhe.context.FheContext` surface
    (``mod_switch`` here is the value-preserving CKKS "mod down", *not* the
    level-management step a DSL MOD_SWITCH lowers to — that is ``rescale``).
    """

    scheme = "ckks"

    def __init__(self, params: FheParams, *, scale: float | None = None, seed: int = 0, ks_variant: int = 2,
                 secret=None):
        # Variant 2 (raised modulus) is the CKKS default: the Listing-1
        # variant adds ~q-magnitude noise, which swamps values held at scale
        # Delta ~ q.  BGV tolerates it because noise rides above t, not Delta.
        if params.plaintext_modulus != 1:
            params = FheParams(
                n=params.n,
                basis=params.basis,
                plaintext_modulus=1,
                error_width=params.error_width,
                allow_insecure=params.allow_insecure,
            )
        super().__init__(params, seed=seed, ks_variant=ks_variant, secret=secret)
        self.default_scale = float(scale) if scale else float(min(params.basis.moduli))
        self.encoder = CkksEncoder(params.n, self.default_scale)

    # ----------------------------------------------------------------- serde
    def to_state(self) -> dict:
        """The shared RLWE state plus the CKKS default scale; the encoder is
        derived from (N, scale) and rebuilt on restore."""
        state = super().to_state()
        state["scale"] = self.default_scale
        return state

    def _restore_state(self, state: dict) -> None:
        from repro.fhe.keys import SecretKey

        self.__init__(
            FheParams.from_state(state["params"]),
            scale=state["scale"],
            ks_variant=state["ks_variant"],
            secret=SecretKey.from_state(state["secret"]),
        )
        self.rng.bit_generator.state = state["rng_state"]

    # ------------------------------------------------------------ encryption
    def encrypt_values(self, values, *, level: int | None = None, scale: float | None = None) -> Ciphertext:
        """Encrypt complex/real slot values at the given scale."""
        scale = scale or self.default_scale
        coeffs = CkksEncoder(self.params.n, scale).encode(values)
        basis = self.params.basis_at(level) if level else self.params.basis
        n = self.params.n
        a = uniform_poly(basis, n, self.rng, Domain.NTT)
        e = small_poly(basis, sample_error(n, self.params.error_width, self.rng), Domain.NTT)
        m_poly = small_poly(basis, coeffs, Domain.NTT)
        b = a * self.secret.poly(basis) + e + m_poly
        return Ciphertext(a=a, b=b, scale=scale, noise_bits=3.0)

    def decrypt_values(self, ct: Ciphertext, count: int | None = None) -> np.ndarray:
        """Decrypt to complex slot values.

        The phase reconstruction rides the batched engine (one all-limb INTT
        plus a vectorized CRT); only the final float conversion is per-value.
        """
        phase = ct.b - ct.a * self.secret.poly(ct.basis)
        wide = phase.to_int_coeffs(centered=True)
        slots = CkksEncoder(self.params.n, ct.scale).decode(
            np.array(wide, dtype=np.float64)
        )
        return slots[:count] if count is not None else slots

    # --------------------------------------------------------------- HE ops
    def add(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        self._check_ckks_pair(ct0, ct1, "add")
        out = ct0.with_polys(ct0.a + ct1.a, ct0.b + ct1.b)
        out.noise_bits = noise_model.add_noise_bits(ct0.noise_bits, ct1.noise_bits)
        return out

    def sub(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        self._check_ckks_pair(ct0, ct1, "sub")
        out = ct0.with_polys(ct0.a - ct1.a, ct0.b - ct1.b)
        out.noise_bits = noise_model.add_noise_bits(ct0.noise_bits, ct1.noise_bits)
        return out

    def add_plain(self, ct: Ciphertext, values) -> Ciphertext:
        coeffs = CkksEncoder(self.params.n, ct.scale).encode(values)
        m = small_poly(ct.basis, coeffs, Domain.NTT)
        return ct.with_polys(ct.a, ct.b + m)

    def mul_plain(self, ct: Ciphertext, values, *, scale: float | None = None) -> Ciphertext:
        scale = scale or self.default_scale
        coeffs = CkksEncoder(self.params.n, scale).encode(values)
        m = small_poly(ct.basis, coeffs, Domain.NTT)
        return ct.with_polys(ct.a * m, ct.b * m, scale=ct.scale * scale)

    def mul_mask(self, ct: Ciphertext, mask) -> Ciphertext:
        """Multiply by a 0/1 lane mask at a cheap exact scale.

        A mask at the full default scale would double the ciphertext's
        scale budget for what is conceptually a selection, while a mask at
        scale ~1 encodes 0/1 slot values inaccurately (they are not
        constant polynomials).  The compromise is an exact power of two
        near sqrt(Delta): per-slot encode error ~ sqrt(N/2)/2 / 2^14 (a
        few 1e-4 at test sizes), and because the scale is exactly
        representable, downstream scale alignment (`_matched_scales`
        amplification by powers of two) stays error-free.  The existing
        rescale waterline (sqrt(Delta)) absorbs the extra factor without
        consuming a limb, so masked and unmasked paths keep level parity.
        """
        amp = 2.0 ** round(math.log2(self.default_scale) / 2.0)
        return self.mul_plain(ct, np.asarray(mask), scale=amp)

    def mul(self, ct0: Ciphertext, ct1: Ciphertext, *, relinearize: bool = True) -> Ciphertext:
        self._check_ckks_pair(ct0, ct1, "mul")
        l2, l1, l0 = self._tensor(ct0, ct1)
        u0, u1, ks_noise = self._key_switch(l2, "relin")
        return Ciphertext(
            a=l1 + u1,
            b=l0 + u0,
            scale=ct0.scale * ct1.scale,
            noise_bits=ct0.noise_bits + ct1.noise_bits + ks_noise / 4.0,
        )

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Divide by q_last: the CKKS noise/scale management step."""
        if ct.level <= 1:
            raise ValueError("cannot rescale the last limb away")
        q_last = ct.basis.moduli[-1]
        return ct.with_polys(
            _rescale_bgv(ct.a, 1),
            _rescale_bgv(ct.b, 1),
            scale=ct.scale / q_last,
            noise_bits=max(ct.noise_bits - np.log2(q_last), 3.0) + 1.0,
        )

    def rescale_to(self, ct: Ciphertext, level: int) -> Ciphertext:
        """Chained rescale with one NTT round-trip (bit-identical to looping
        :meth:`rescale`; the per-drop corrections happen back-to-back in
        coefficient domain)."""
        count = ct.level - level
        if count <= 0:
            return ct
        if level < 1:
            raise ValueError("cannot rescale the last limb away")
        dropped = ct.basis.moduli[level:]
        scale = ct.scale
        noise = ct.noise_bits
        for q_last in reversed(dropped):
            scale = scale / q_last
            noise = max(noise - np.log2(q_last), 3.0) + 1.0
        return ct.with_polys(
            _rescale_bgv_chain(ct.a, 1, count),
            _rescale_bgv_chain(ct.b, 1, count),
            scale=scale,
            noise_bits=noise,
        )

    def mod_switch(self, ct: Ciphertext) -> Ciphertext:
        """Drop a limb, preserving the encrypted value and scale.

        The CKKS phase Delta*m + e is tiny relative to Q, so truncating the
        RNS basis keeps it intact modulo the smaller Q' (this is the CKKS
        "mod down" used to align levels without rescaling)."""
        if ct.level <= 1:
            raise ValueError("cannot drop the last limb")
        return ct.with_polys(
            ct.a.to_coeff().drop_limb().to_ntt(),
            ct.b.to_coeff().drop_limb().to_ntt(),
        )

    @instrument("mod_switch")
    def mod_switch_to(self, ct: Ciphertext, level: int) -> Ciphertext:
        """Drop limbs down to ``level`` with a single NTT round-trip
        (bit-identical to looping :meth:`mod_switch`)."""
        count = ct.level - level
        if count <= 0:
            return ct
        if level < 1:
            raise ValueError("cannot drop the last limb")
        basis = ct.basis.drop(count)

        def chop(p):
            return RnsPolynomial(
                basis, p.to_coeff().limbs[:-count].copy(), Domain.COEFF
            ).to_ntt()

        return ct.with_polys(chop(ct.a), chop(ct.b))

    def rotate(self, ct: Ciphertext, steps: int) -> Ciphertext:
        return self.automorphism(ct, self._rotation_exponent(steps, ct.n))

    def _rotation_exponent(self, steps: int, n: int) -> int:
        return ckks_rotation_exponent(steps, n)

    def conjugate(self, ct: Ciphertext) -> Ciphertext:
        return self.automorphism(ct, CONJUGATION_EXPONENT)

    def _check_ckks_pair(self, ct0: Ciphertext, ct1: Ciphertext, op: str) -> None:
        if ct0.basis != ct1.basis:
            raise ValueError(f"{op}: levels differ; rescale/mod_switch first")
        # Addition needs matching scales; multiplication does not — the
        # result's scale is simply the product of the operand scales.
        if op in ("add", "sub") and not np.isclose(ct0.scale, ct1.scale, rtol=1e-9):
            raise ValueError(f"{op}: scales differ ({ct0.scale} vs {ct1.scale})")
