"""Secret keys and key-switch hints.

A :class:`SecretKey` stores small integer coefficients and lazily caches its
RNS/NTT form at every basis in the modulus chain (modulus switching shortens
the basis, and hints are per-basis data — which is why key-switch hints
dominate off-chip traffic in Fig. 9a).

Key-switch hints (Sec. 2.4, Listing 1) let a ciphertext component encrypted
under a key ``s_old`` (e.g. ``s^2`` after a multiplication, or ``sigma_k(s)``
after an automorphism) be re-encrypted under ``s``.  The RNS-decomposition
hint for limb i is the pair

    hint1[i] = a_i                      (uniform)
    hint0[i] = a_i * s + t * e_i + D_i * s_old

where ``D_i = (Q/q_i) * [(Q/q_i)^{-1}]_{q_i}`` is the CRT interpolation basis
element — whose RNS representation is simply the indicator of limb i, so the
``D_i * s_old`` term is ``s_old`` masked to limb i.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.fhe.sampling import sample_error, sample_ternary, small_poly, uniform_poly
from repro.poly.automorphism import automorphism_coeff
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis


class SecretKey:
    """Ternary secret with per-basis cached NTT forms."""

    def __init__(self, coeffs: np.ndarray):
        self.coeffs = np.asarray(coeffs, dtype=np.int64)
        self.n = self.coeffs.shape[0]
        self._cache: dict[RnsBasis, RnsPolynomial] = {}
        self._square_cache: dict[RnsBasis, RnsPolynomial] = {}

    @classmethod
    def generate(cls, n: int, rng: np.random.Generator) -> "SecretKey":
        return cls(sample_ternary(n, rng))

    def to_state(self) -> dict:
        """Just the ternary coefficients; per-basis NTT forms are derived
        caches and are recomputed on demand after a restore."""
        return {"coeffs": self.coeffs}

    @classmethod
    def from_state(cls, state: dict) -> "SecretKey":
        return cls(state["coeffs"])

    def __getstate__(self):
        return self.to_state()

    def __setstate__(self, state):
        self.__init__(state["coeffs"])

    def poly(self, basis: RnsBasis) -> RnsPolynomial:
        """NTT-domain RNS form of s at the given basis."""
        cached = self._cache.get(basis)
        if cached is None:
            cached = small_poly(basis, self.coeffs, Domain.NTT)
            self._cache[basis] = cached
        return cached

    def square_poly(self, basis: RnsBasis) -> RnsPolynomial:
        """NTT-domain form of s^2 (the relinearization target key)."""
        cached = self._square_cache.get(basis)
        if cached is None:
            s = self.poly(basis)
            cached = s * s
            self._square_cache[basis] = cached
        return cached

    def automorphism_coeffs(self, k: int) -> np.ndarray:
        """Integer coefficients of sigma_k(s) (signed)."""
        # Apply the permutation+sign on signed integers directly.
        n = self.n
        k = k % (2 * n)
        out = np.zeros(n, dtype=np.int64)
        for i in range(n):
            ik = i * k
            value = self.coeffs[i]
            if (ik % (2 * n)) >= n:
                value = -value
            out[ik % n] = value
        return out


@dataclass
class KeySwitchHint:
    """RNS-decomposition key-switch hint (variant 1, Listing 1).

    ``hint0[i]``/``hint1[i]`` are NTT-domain polynomials at ``basis``; the
    hint totals ``2 * L`` residue-polynomial *rows* but its scheduling
    footprint is the full ``2 * L^2`` RVecs the paper counts, because every
    row is consumed at all L limb moduli.
    """

    target: str
    basis: RnsBasis
    hint0: list[RnsPolynomial]
    hint1: list[RnsPolynomial]

    @property
    def level(self) -> int:
        return self.basis.level

    @cached_property
    def stack0(self) -> np.ndarray:
        """``(L, L, N)`` stack of the hint0 residue matrices — the layout the
        fused key-switch accumulator consumes (one multiply-accumulate over
        the leading digit axis instead of L separate polynomial products)."""
        return _stack_rebinding(self.hint0)

    @cached_property
    def stack1(self) -> np.ndarray:
        """``(L, L, N)`` stack of the hint1 residue matrices."""
        return _stack_rebinding(self.hint1)

    def __getstate__(self):
        # The stacked (L, L, N) views are derived caches over the same limb
        # memory; shipping them alongside hint0/hint1 would double the
        # payload, so they are dropped and rebuilt on first use.
        state = self.__dict__.copy()
        state.pop("stack0", None)
        state.pop("stack1", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


def _stack_rebinding(polys: list[RnsPolynomial]) -> np.ndarray:
    """Stack polynomial residue matrices, then alias each polynomial's limbs
    to its row view so hints cached for the process lifetime don't hold the
    data twice (polynomial ops are functional and never mutate limbs)."""
    stack = np.stack([p.limbs for p in polys])
    for row, p in zip(stack, polys):
        p.limbs = row
    return stack


@dataclass
class RaisedKeySwitchHint:
    """Raised-modulus hint (variant 2, GHS-style; hints grow as O(L)).

    The hint is a single pair of polynomials over the extended basis Q*P
    where P (the product of the special primes) is comparable to Q.
    """

    target: str
    basis: RnsBasis            # ciphertext basis Q
    extended: RnsBasis         # Q * P
    special: RnsBasis          # P
    hint0: RnsPolynomial       # over extended basis
    hint1: RnsPolynomial


def generate_ks_hint(
    secret: SecretKey,
    target: str,
    old_key: RnsPolynomial,
    plaintext_modulus: int,
    error_width: int,
    rng: np.random.Generator,
) -> KeySwitchHint:
    """Generate a variant-1 hint re-encrypting ``old_key``-terms under ``secret``."""
    basis = old_key.basis
    n = old_key.n
    s = secret.poly(basis)
    t = plaintext_modulus
    hint0: list[RnsPolynomial] = []
    hint1: list[RnsPolynomial] = []
    for i in range(basis.level):
        a_i = uniform_poly(basis, n, rng, Domain.NTT)
        e_i = small_poly(basis, sample_error(n, error_width, rng), Domain.NTT)
        # D_i * s_old: s_old masked to limb i (indicator property of D_i).
        masked = RnsPolynomial.zeros(basis, n, Domain.NTT)
        masked.limbs[i] = old_key.limbs[i]
        h0 = a_i * s + e_i.scalar_mul(t) + masked
        hint0.append(h0)
        hint1.append(a_i)
    return KeySwitchHint(target=target, basis=basis, hint0=hint0, hint1=hint1)


def generate_raised_ks_hint(
    secret: SecretKey,
    target: str,
    old_key_coeff_ints: list[int],
    basis: RnsBasis,
    special: RnsBasis,
    plaintext_modulus: int,
    error_width: int,
    rng: np.random.Generator,
) -> RaisedKeySwitchHint:
    """Generate a variant-2 hint over the extended basis Q*P.

    ``old_key_coeff_ints`` are the wide integer coefficients of the old key
    (needed because the hint embeds ``P * s_old`` over Q*P).
    """
    extended = RnsBasis(basis.moduli + special.moduli)
    n = secret.n
    t = plaintext_modulus
    p_product = special.modulus
    s_ext = secret.poly(extended)
    a = uniform_poly(extended, n, rng, Domain.NTT)
    e = small_poly(extended, sample_error(n, error_width, rng), Domain.NTT)
    p_s_old = RnsPolynomial.from_int_coeffs(
        extended, [c * p_product for c in old_key_coeff_ints]
    ).to_ntt()
    hint0 = a * s_ext + e.scalar_mul(t) + p_s_old
    return RaisedKeySwitchHint(
        target=target,
        basis=basis,
        extended=extended,
        special=special,
        hint0=hint0,
        hint1=a,
    )
