"""FHE parameter sets.

A parameter set fixes the ring degree N, the RNS modulus chain, the plaintext
modulus t (BGV/GSW) or scale Delta (CKKS), and the error distribution width.
Matching Sec. 2.2.3, ``N / log Q`` must clear a security floor; the library
checks a simple version of that constraint (the 2018 HE security standard's
128-bit table, linearly interpolated) and lets tests opt out with
``allow_insecure=True`` since functional tests run at toy sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes

# (N, max log Q) pairs from the homomorphic encryption security standard [2]
# for 128-bit classical security with ternary secrets.
_SECURITY_TABLE = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}


def max_secure_log_q(n: int) -> int:
    """Largest log Q considered 128-bit secure at ring degree N."""
    if n in _SECURITY_TABLE:
        return _SECURITY_TABLE[n]
    if n > max(_SECURITY_TABLE):
        return _SECURITY_TABLE[max(_SECURITY_TABLE)] * (n // max(_SECURITY_TABLE))
    return 0


@dataclass(frozen=True)
class FheParams:
    """Immutable FHE parameter set shared by the scheme contexts."""

    n: int
    basis: RnsBasis
    plaintext_modulus: int = 256
    error_width: int = 8  # centered binomial parameter; sigma = sqrt(width/2)
    allow_insecure: bool = True

    def __post_init__(self):
        if self.n & (self.n - 1):
            raise ValueError("N must be a power of two")
        for q in self.basis.moduli:
            if (q - 1) % (2 * self.n):
                raise ValueError(f"modulus {q} is not NTT-friendly for N={self.n}")
        log_q = self.basis.modulus.bit_length()
        if not self.allow_insecure and log_q > max_secure_log_q(self.n):
            raise ValueError(
                f"insecure parameters: logQ={log_q} exceeds "
                f"{max_secure_log_q(self.n)} at N={self.n}"
            )

    @property
    def level(self) -> int:
        """Number of RNS limbs L at the top of the modulus chain."""
        return self.basis.level

    @property
    def log_q(self) -> int:
        return self.basis.modulus.bit_length()

    def to_state(self) -> dict:
        """Compact serializable form: plain ints only (no derived arrays)."""
        return {
            "n": self.n,
            "moduli": list(self.basis.moduli),
            "plaintext_modulus": self.plaintext_modulus,
            "error_width": self.error_width,
            "allow_insecure": self.allow_insecure,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FheParams":
        return cls(
            n=state["n"],
            basis=RnsBasis(state["moduli"]),
            plaintext_modulus=state["plaintext_modulus"],
            error_width=state["error_width"],
            allow_insecure=state["allow_insecure"],
        )

    def basis_at(self, level: int) -> RnsBasis:
        """The RNS basis after modulus-switching down to ``level`` limbs."""
        if not (1 <= level <= self.level):
            raise ValueError(f"level must be in [1, {self.level}], got {level}")
        return RnsBasis(self.basis.moduli[:level])

    @classmethod
    def build(
        cls,
        n: int,
        levels: int,
        *,
        prime_bits: int = 28,
        plaintext_modulus: int = 256,
        error_width: int = 8,
        seed: int | None = None,
    ) -> "FheParams":
        """Construct a parameter set with freshly sampled NTT-friendly primes.

        The plaintext modulus must be a power of two not exceeding 2N (so that
        ``q ≡ 1 (mod 2N)`` implies ``q ≡ 1 (mod t)`` and BGV modulus switching
        needs no plaintext-scale correction), or any integer coprime to the
        primes (correction is then tracked at decryption).
        """
        primes = ntt_friendly_primes(n, prime_bits, levels, seed=seed)
        return cls(
            n=n,
            basis=RnsBasis(primes),
            plaintext_modulus=plaintext_modulus,
            error_width=error_width,
        )
