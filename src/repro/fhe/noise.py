"""Analytic noise growth model (Sec. 2.2.2).

The schemes track a per-ciphertext log2 noise estimate so tests and the
compiler's level budgeting can reason about depth without decrypting.  The
formulas are standard worst-case-ish bounds specialized to ternary secrets;
they are intentionally conservative (a few bits of slack) — tests assert both
that decryption succeeds *and* that the tracked estimate upper-bounds the
observed noise.
"""

from __future__ import annotations

import math


def log2(x: float) -> float:
    return math.log2(max(x, 1.0))


def fresh_noise_bits(n: int, t: int, error_width: int) -> float:
    """Noise of a fresh encryption: |t*e + small terms| ~ t * sigma * sqrt-ish."""
    sigma = math.sqrt(error_width / 2.0)
    return log2(t * sigma * 8.0)


def add_noise_bits(noise_a: float, noise_b: float) -> float:
    """Addition: noise adds; in log space, max + 1 bound."""
    return max(noise_a, noise_b) + 1.0


def mul_noise_bits(noise_a: float, noise_b: float, n: int, t: int) -> float:
    """Multiplication (pre key-switch): products of noise terms convolve."""
    return noise_a + noise_b + log2(n) / 2.0 + log2(t)


def keyswitch_v1_noise_bits(n: int, t: int, level: int, max_prime: int, error_width: int) -> float:
    """Added noise of the Listing-1 key switch: t * sum_i d_i * e_i."""
    sigma = math.sqrt(error_width / 2.0)
    return log2(t) + log2(level) + log2(max_prime) + log2(sigma) + log2(n) / 2.0


def keyswitch_v2_noise_bits(n: int, t: int, error_width: int) -> float:
    """Added noise of the raised-modulus key switch: ~ t*e*N*Q/P ≈ t*e*N."""
    sigma = math.sqrt(error_width / 2.0)
    return log2(t) + log2(sigma) + log2(n) + 2.0

def mod_switch_noise_bits(noise: float, dropped_prime: int, n: int, t: int) -> float:
    """Modulus switching scales noise by 1/q_L and adds a rounding term."""
    scaled = noise - log2(dropped_prime)
    rounding = log2(t) + log2(n) / 2.0 + 2.0
    return max(scaled, rounding) + 1.0
