"""Plaintext encoders: BGV SIMD batching and CKKS canonical embedding.

**BatchEncoder** (BGV): when the plaintext modulus ``t`` is a prime with
``t ≡ 1 (mod 2N)``, the plaintext ring R_t splits into N slots via a
negacyclic NTT mod t.  Slots are ordered along the orbit of the Galois
generator g=3 (two hypercolumns of N/2, as in HElib), so the rotation
automorphism ``sigma_{3^r}`` acts as a cyclic rotation by r within each
hypercolumn.

**CkksEncoder**: the canonical embedding of R = Z[x]/(x^N+1) into C^{N/2}.
Slot i holds ``m(zeta^{5^i})`` (zeta a primitive complex 2N-th root), so
``sigma_{5^r}`` rotates slots cyclically and ``sigma_{-1}`` conjugates them.
Encoding scales by Delta and rounds to integer coefficients.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.poly.ntt import get_context


class BatchEncoder:
    """SIMD slot encoder for BGV with prime t ≡ 1 (mod 2N)."""

    def __init__(self, n: int, t: int):
        if (t - 1) % (2 * n):
            raise ValueError(f"t={t} must be ≡ 1 mod 2N for batching (N={n})")
        self.n = n
        self.t = t
        self._ctx = get_context(n, t)
        # Slot ordering: exponent orbit of g=3.  Hypercolumn 0 holds the NTT
        # slots whose exponent is 3^i mod 2N; hypercolumn 1 holds -3^i.
        order = []
        exp_to_slot = {2 * j + 1: j for j in range(n)}
        g, m = 3, 2 * n
        e = 1
        half = n // 2
        for _ in range(half):
            order.append(exp_to_slot[e])
            e = e * g % m
        e = m - 1  # -1
        for _ in range(half):
            order.append(exp_to_slot[e])
            e = e * g % m
        self._slot_of_position = np.array(order)

    def encode(self, values) -> np.ndarray:
        """values: length-N vector (two N/2 hypercolumns) -> plaintext poly."""
        values = np.asarray(values, dtype=np.int64) % self.t
        if values.shape[0] != self.n:
            padded = np.zeros(self.n, dtype=np.int64)
            padded[: values.shape[0]] = values
            values = padded
        slots = np.zeros(self.n, dtype=np.uint64)
        slots[self._slot_of_position] = values.astype(np.uint64)
        return self._ctx.inverse(slots).astype(np.int64)

    def decode(self, poly_coeffs) -> np.ndarray:
        coeffs = np.asarray(poly_coeffs, dtype=np.int64) % self.t
        slots = self._ctx.forward(coeffs.astype(np.uint64))
        return slots[self._slot_of_position].astype(np.int64)

    def rotated(self, values, steps: int) -> np.ndarray:
        """Reference slot semantics of sigma_{3^steps}: rotate each hypercolumn."""
        values = np.asarray(values)
        half = self.n // 2
        lo, hi = values[:half], values[half:]
        return np.concatenate([np.roll(lo, -steps), np.roll(hi, -steps)])


class CkksEncoder:
    """Canonical-embedding encoder: C^{N/2} slots <-> integer polynomials."""

    def __init__(self, n: int, scale: float):
        self.n = n
        self.slots = n // 2
        self.scale = float(scale)
        self._roots, self._inv_matrix_rows = _embedding_tables(n)

    def encode(self, values) -> np.ndarray:
        """Complex (or real) slot values -> scaled integer coefficients."""
        z = np.zeros(self.slots, dtype=np.complex128)
        values = np.asarray(values, dtype=np.complex128).reshape(-1)
        if values.shape[0] > self.slots:
            raise ValueError(f"too many slot values for N={self.n}")
        z[: values.shape[0]] = values
        # Full conjugate-symmetric evaluation vector over exponents 5^i, -5^i.
        full = np.concatenate([z, np.conj(z)])
        coeffs = self._inv_matrix_rows @ full  # (1/N) V* z, exactly real
        scaled = np.round(coeffs.real * self.scale).astype(np.int64)
        return scaled

    def decode(self, coeffs, scale: float | None = None) -> np.ndarray:
        """Integer (centered) coefficients -> complex slot values."""
        scale = self.scale if scale is None else float(scale)
        coeffs = np.asarray(coeffs, dtype=np.float64)
        # Evaluate m at zeta^(5^i): Vandermonde-vector product per slot.
        powers = self._roots  # shape (slots, n)
        return (powers @ coeffs) / scale


@lru_cache(maxsize=None)
def _embedding_tables(n: int):
    """(evaluation matrix rows for slots, inverse-embedding rows)."""
    m = 2 * n
    slots = n // 2
    zeta = np.exp(2j * np.pi / m)
    exps = []
    e = 1
    for _ in range(slots):
        exps.append(e)
        e = e * 5 % m
    exps_conj = [m - e for e in exps]
    k = np.arange(n)
    rows = np.stack([zeta ** ((e * k) % m) for e in exps])  # (slots, n)
    rows_full = np.vstack([rows, np.stack([zeta ** ((e * k) % m) for e in exps_conj])])
    inv_rows = rows_full.conj().T / n  # (n, n): coeffs = inv_rows @ values
    return rows, inv_rows
