"""FHE schemes substrate (the "functional simulator" of Sec. 8.5).

Implements, on top of :mod:`repro.poly`:

- **BGV** (:mod:`repro.fhe.bgv`): integer plaintexts, modulus switching,
  rotations via automorphisms + key switching;
- **CKKS** (:mod:`repro.fhe.ckks`): approximate fixed-point arithmetic with
  rescaling, slot rotations, conjugation;
- **GSW** (:mod:`repro.fhe.gsw`): matrix ciphertexts with external products;
- key switching in two variants (:mod:`repro.fhe.keyswitch`) — the Listing-1
  RNS-decomposition method whose hints grow as L^2, and the raised-modulus
  method whose hints grow as L (the "algorithmic choice" of Sec. 2.4/4.2);
- analytic noise tracking (:mod:`repro.fhe.noise`);
- simplified non-packed bootstrapping for BGV and CKKS
  (:mod:`repro.fhe.bootstrap`).

All homomorphic operations decompose into exactly the primitives F1
accelerates: element-wise modular add/mult, NTTs, and automorphisms.
"""

from repro.fhe.params import FheParams
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import FheContext
from repro.fhe.bgv import BgvContext
from repro.fhe.ckks import CkksContext
from repro.fhe.gsw import GswContext
from repro.fhe.encoding import BatchEncoder, CkksEncoder
from repro.fhe.bootstrap import BitBootstrapper

__all__ = [
    "FheParams",
    "Ciphertext",
    "FheContext",
    "BgvContext",
    "CkksContext",
    "GswContext",
    "BatchEncoder",
    "CkksEncoder",
    "BitBootstrapper",
]
