"""Ciphertext value type shared by BGV and CKKS.

A ciphertext is a pair ``(a, b)`` of NTT-domain RNS polynomials with
``b - a*s = m + t*e (mod Q)`` (BGV; for CKKS read ``Delta*m + e``).  Besides
the polynomials it carries bookkeeping the schemes need:

- ``plaintext_scale``: BGV modulus switching multiplies the plaintext by
  ``q_L^{-1} (mod t)``; we track the accumulated factor and undo it at
  decryption (equivalently one may restrict to ``q ≡ 1 mod t``, which holds
  for power-of-two ``t ≤ 2N``);
- ``scale``: the CKKS scale Delta;
- ``noise_bits``: the analytic noise estimate (Sec. 2.2.2) maintained by
  :mod:`repro.fhe.noise`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.poly.polynomial import RnsPolynomial
from repro.rns.crt import RnsBasis


@dataclass
class Ciphertext:
    a: RnsPolynomial
    b: RnsPolynomial
    plaintext_scale: int = 1      # BGV: accumulated [prod q_dropped^{-1}]_t
    scale: float = 1.0            # CKKS: Delta
    noise_bits: float = 0.0       # analytic noise estimate (log2)

    @property
    def basis(self) -> RnsBasis:
        return self.a.basis

    @property
    def level(self) -> int:
        return self.a.basis.level

    @property
    def n(self) -> int:
        return self.a.n

    def with_polys(self, a: RnsPolynomial, b: RnsPolynomial, **changes) -> "Ciphertext":
        return replace(self, a=a, b=b, **changes)

    def to_state(self) -> dict:
        """Compact serializable form: two residue matrices plus bookkeeping."""
        return {
            "a": self.a.to_state(),
            "b": self.b.to_state(),
            "plaintext_scale": self.plaintext_scale,
            "scale": self.scale,
            "noise_bits": self.noise_bits,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Ciphertext":
        return cls(
            a=RnsPolynomial.from_state(state["a"]),
            b=RnsPolynomial.from_state(state["b"]),
            plaintext_scale=state["plaintext_scale"],
            scale=state["scale"],
            noise_bits=state["noise_bits"],
        )

    def __repr__(self) -> str:
        return (
            f"Ciphertext(N={self.n}, L={self.level}, "
            f"noise≈2^{self.noise_bits:.1f}, scale={self.scale:g})"
        )
