"""Non-packed BGV bit bootstrapping (Sec. 7's bootstrapping benchmarks,
realized functionally in the Alperin-Sheriff–Peikert [3] / Halevi-Shoup
style).

Takes a noise-exhausted single-limb BGV ciphertext encrypting one bit in
coefficient 0 and homomorphically refreshes it:

1. **MSB conversion + modulus switch** (client-free, on public values):
   multiply the phase by (q+1)/2 so the bit rides the top, then round to a
   power-of-two modulus ``2^d``: phase becomes ``2^(d-1) m + e'  (mod 2^d)``.
2. **Homomorphic inner product**: with the bootstrapping key
   ``bk = Enc_{2^e}(s)`` (e = d + log2 N), compute ``u = b - a * bk`` using
   only plaintext multiplies/adds.  Coefficient 0 of u's plaintext is the
   (lifted) LWE phase; other coefficients are junk.
3. **Trace**: the ladder ``u <- u + sigma_k(u)`` over a generator tower of
   the Galois group zeroes all non-constant coefficients and multiplies
   coefficient 0 by N = 2^nu — shifting the payload to the top bits of the
   mod-2^e plaintext space.  A plaintext offset of 2^(e-2) then centers the
   noise so the message is exactly the top bit.
4. **Digit extraction** (GHS, p=2): for each low digit j, *lift* it to full
   remaining precision by repeated squaring (``z^(2^k) ≡ z_0 mod 2^(k+1)``),
   subtract the lifted digit, and divide by 2 (exact on even phases, and the
   division halves the plaintext modulus).  After e-1 digit removals only
   the message bit remains, at plaintext modulus 2.  This costs ~e^2/2
   homomorphic squarings — the quadratic blow-up that makes bootstrapping
   "tens to hundreds of homomorphic operations" (Sec. 2.2.2).

Two parameter conditions make step 4 sound with word-sized RNS:

- all moduli are *FHE-friendly* (q ≡ 1 mod 2^16, Sec. 5.3!), so BGV modulus
  switching leaves the mod-2^e plaintext bits untouched (q^{-1} ≡ 1);
- the secret is *sparse* (standard for bootstrapping), so the step-1
  rounding error fits under 2^(d-2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.fhe.bgv import BgvContext
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.keys import SecretKey
from repro.fhe.params import FheParams
from repro.rns.crt import RnsBasis
from repro.rns.primes import fhe_friendly_primes


class BitBootstrapper:
    """Bootstraps t=2 BGV ciphertexts encrypting a bit in coefficient 0."""

    def __init__(self, n: int = 64, *, d: int = 5, levels: int = 116,
                 secret_weight: int = 12, seed: int = 0):
        nu = int(math.log2(n))
        self.n = n
        self.d = d
        self.e = d + nu
        if self.e > 16:
            raise ValueError(
                f"need d + log2(N) <= 16 for FHE-friendly moduli (got {self.e})"
            )
        primes = fhe_friendly_primes(n, 32, levels)
        rng = np.random.default_rng(seed)
        self.secret = _sparse_secret(n, secret_weight, rng)
        # Input context: one limb, plaintext modulus 2 (exhausted regime).
        self.params_in = FheParams(
            n=n, basis=RnsBasis(primes[:1]), plaintext_modulus=2
        )
        self.ctx_in = BgvContext(self.params_in, seed=seed + 1, secret=self.secret)
        # Working context: plaintext modulus 2^e, deep chain, low-noise KS.
        self.params_big = FheParams(
            n=n, basis=RnsBasis(primes), plaintext_modulus=1 << self.e,
            error_width=4,
        )
        self.ctx = BgvContext(
            self.params_big, seed=seed + 2, ks_variant=2, secret=self.secret
        )
        # Bootstrapping key: the shared secret, encrypted under itself at 2^e.
        self.bootstrap_key = self.ctx.encrypt(self.secret.coeffs % (1 << self.e))

    # ----------------------------------------------------------- public API
    def encrypt_bit(self, bit: int) -> Ciphertext:
        """Encrypt a bit at the bottom of the chain (about to be exhausted)."""
        message = np.zeros(self.n, dtype=np.int64)
        message[0] = bit & 1
        return self.ctx_in.encrypt(message)

    def decrypt_bit(self, ct: Ciphertext) -> int:
        """Decrypt coefficient 0 mod 2 from any of the two contexts' bases."""
        phase = ct.b - ct.a * _secret_at(self.secret, ct.basis)
        return int(phase.to_int_coeffs(centered=True)[0]) & 1

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh a level-1 input ciphertext up the modulus chain."""
        a_v, b_v = self._switch_to_power_of_two(ct)
        u = self._homomorphic_phase(a_v, b_v)
        w = self._trace(u)
        # Center so the top bit is exactly the message despite signed noise.
        w = self.ctx.add_plain(w, _constant(self.n, 1 << (self.e - 2)))
        return self._extract_top_bit(w)

    # ------------------------------------------------------------ internals
    def _switch_to_power_of_two(self, ct: Ciphertext) -> tuple[np.ndarray, np.ndarray]:
        """MSB-encode and round the public ciphertext to modulus 2^d."""
        q1 = ct.basis.moduli[0]
        half = (q1 + 1) // 2  # 2^{-1} mod q1: moves the bit to the top
        scale = (1 << self.d) / q1
        # Both polynomials in one batched op; uint64 keeps coeff * half exact
        # for q1 up to 2^32 (int64 would wrap above ~2^31.5-wide primes).
        coeffs = np.stack(
            [ct.a.to_coeff().limbs[0], ct.b.to_coeff().limbs[0]]
        ).astype(np.uint64)
        msb = (coeffs * np.uint64(half)) % np.uint64(q1)
        rounded = np.round(msb.astype(np.float64) * scale).astype(np.int64) % (1 << self.d)
        return rounded[0], rounded[1]

    def _homomorphic_phase(self, a_v: np.ndarray, b_v: np.ndarray) -> Ciphertext:
        """u = b - a*s over plaintext modulus 2^e, via the bootstrapping key."""
        minus_a = (-a_v) % (1 << self.e)
        u = self.ctx.mul_plain(self.bootstrap_key, minus_a)
        return self.ctx.add_plain(u, b_v % (1 << self.e))

    def _trace(self, u: Ciphertext) -> Ciphertext:
        """Sum over the Galois group: generator tower of <3> and -1."""
        n = self.n
        k = 3
        for _ in range(int(math.log2(n)) - 1):  # <3> has order N/2
            u = self.ctx.add(u, self.ctx.automorphism(u, k))
            k = k * k % (2 * n)
        u = self.ctx.add(u, self.ctx.automorphism(u, 2 * n - 1))  # sigma_{-1}
        return u

    def _square(self, ct: Ciphertext) -> Ciphertext:
        """Homomorphic square with two limb drops (the noise fixed point for
        32-bit primes; production BGV drops one ~55-bit prime instead)."""
        ctx = self.ctx
        return ctx.mod_switch(ctx.mod_switch(ctx.mul(ct, ct)))

    def _extract_top_bit(self, z: Ciphertext) -> Ciphertext:
        """GHS p=2 digit extraction with full digit lifting.

        Round j: lift digit j to the full remaining precision with
        ``e-1-j`` squarings, subtract, halve.  The one-step shortcut
        ``Z <- (Z - Z^2)/2`` is *not* sound beyond the first digit (its
        carry corrections corrupt higher bits); the full lift is what GHS's
        lemma licenses.
        """
        ctx = self.ctx
        for j in range(self.e - 1):
            lift = z
            for _ in range(self.e - 1 - j):
                lift = self._square(lift)
            z_aligned = ctx.mod_switch_to(z, lift.level)
            diff = ctx.sub(z_aligned, lift)      # ≡ 0 (mod 2): exact halving
            inv2 = pow(2, -1, diff.basis.modulus)
            z = diff.with_polys(
                diff.a.scalar_mul(inv2), diff.b.scalar_mul(inv2)
            )
        return z


def _sparse_secret(n: int, weight: int, rng: np.random.Generator) -> SecretKey:
    """Hamming-weight-limited ternary secret (standard for bootstrapping:
    it bounds the rounding error of the modulus switch to q' = 2^d)."""
    coeffs = np.zeros(n, dtype=np.int64)
    positions = rng.choice(n, size=weight, replace=False)
    coeffs[positions] = rng.choice([-1, 1], size=weight)
    return SecretKey(coeffs)


def _secret_at(secret: SecretKey, basis: RnsBasis):
    return secret.poly(basis)


def _constant(n: int, value: int) -> np.ndarray:
    out = np.zeros(n, dtype=np.int64)
    out[0] = value
    return out
