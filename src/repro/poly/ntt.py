"""Negacyclic Number-Theoretic Transform (Sec. 2.3, Sec. 5.2).

Multiplication in R_q = Z_q[x]/(x^N + 1) is a *negacyclic* convolution.  With
``psi`` a primitive 2N-th root of unity mod q (and ``omega = psi^2`` the N-th
root), the negacyclic NTT

    NTT(a)[j] = sum_i a_i * psi^(i*(2j+1))  mod q

linearizes it: ``NTT(a*b) = NTT(a) ⊙ NTT(b)`` with no zero padding.  We
implement it the standard way — premultiply coefficient i by ``psi^i``, then a
cyclic radix-2 NTT.

Two execution paths share the same tables:

- :class:`NttContext`: one limb at a time, every butterfly stage vectorized
  across the N coefficients.
- :class:`RnsNttContext`: the *batched residue-matrix engine*.  Polynomials in
  R_Q live as limb-major (L, N) uint64 matrices (one row per RNS limb — the
  paper's RVecs); the context stacks the per-limb twiddle tables into
  per-stage (L, half) arrays and the moduli into an (L, 1) broadcast column,
  so every butterfly stage runs across *all* limbs in a single numpy op.
  Results are bit-identical to the per-limb path.

Invariant: all arithmetic uses uint64 intermediates, so every modulus must
satisfy ``q < 2**32`` (products of residues then fit in 64 bits).  Both
context constructors and :func:`cyclic_ntt_rows` reject wider moduli rather
than silently wrapping.

Outputs are in natural order, so NTT-domain automorphisms are plain index
permutations (see :mod:`repro.poly.automorphism`).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.rns.primes import primitive_root_of_unity

#: Moduli must stay below this so uint64 butterflies (hi * tw) cannot wrap.
MAX_MODULUS = 1 << 32


def _check_modulus_width(q: int) -> None:
    if q >= MAX_MODULUS:
        raise ValueError(
            f"q = {q} needs {q.bit_length()} bits; moduli must be < 2^32 so "
            "uint64 butterfly products cannot overflow"
        )


class NttContext:
    """Precomputed tables for length-N negacyclic NTTs modulo prime q."""

    def __init__(self, n: int, q: int):
        if n & (n - 1) or n < 2:
            raise ValueError(f"N must be a power of two >= 2, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"q = {q} is not NTT-friendly for N = {n}")
        _check_modulus_width(q)
        self.n = n
        self.q = q
        self.psi = primitive_root_of_unity(2 * n, q)
        self.omega = self.psi * self.psi % q
        self.n_inv = pow(n, -1, q)
        qq = np.uint64(q)
        # psi^i and psi^-i for the negacyclic pre/post twist.
        psi_powers = np.empty(n, dtype=np.uint64)
        psi_inv_powers = np.empty(n, dtype=np.uint64)
        psi_inv = pow(self.psi, -1, q)
        acc_f, acc_i = 1, 1
        for i in range(n):
            psi_powers[i] = acc_f
            psi_inv_powers[i] = acc_i
            acc_f = acc_f * self.psi % q
            acc_i = acc_i * psi_inv % q
        self._psi_powers = psi_powers
        self._psi_inv_powers = psi_inv_powers
        self._q_u64 = qq
        self._stage_twiddles = list(_stage_twiddle_tables(n, self.omega, q))
        self._stage_twiddles_inv = list(
            _stage_twiddle_tables(n, pow(self.omega, -1, q), q)
        )
        self._bitrev = _bit_reverse_indices(n)

    def _cyclic_ntt(self, values: np.ndarray, tables: list[np.ndarray]) -> np.ndarray:
        """In-place-style iterative DIT NTT; input natural, output natural order."""
        q = self._q_u64
        a = values[self._bitrev]  # advanced indexing: a fresh uint64 array
        n = self.n
        length = 2
        for tw in tables:
            half = length // 2
            blocks = a.reshape(n // length, length)
            lo = blocks[:, :half]
            hi = blocks[:, half:]
            t = (hi * tw) % q
            new_hi = (lo + q - t) % q
            new_lo = (lo + t) % q
            blocks[:, :half] = new_lo
            blocks[:, half:] = new_hi
            length *= 2
        return a

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT: coefficient domain -> evaluation (NTT) domain."""
        coeffs = np.asarray(coeffs, dtype=np.uint64)
        if coeffs.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {coeffs.shape}")
        twisted = (coeffs * self._psi_powers) % self._q_u64
        return self._cyclic_ntt(twisted, self._stage_twiddles)

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT: evaluation domain -> coefficient domain."""
        evals = np.asarray(evals, dtype=np.uint64)
        if evals.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {evals.shape}")
        a = self._cyclic_ntt(evals, self._stage_twiddles_inv)
        a = (a * np.uint64(self.n_inv)) % self._q_u64
        return (a * self._psi_inv_powers) % self._q_u64

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Polynomial product in R_q via NTT ⊙ NTT."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse((fa * fb) % self._q_u64)


class RnsNttContext:
    """Batched negacyclic NTT over an RNS basis: (L, N) matrices in one shot.

    Stacks the tables of L per-limb :class:`NttContext` instances:

    - psi twists as (L, N) matrices,
    - each butterfly stage's twiddles as an (L, 1, half) array, broadcast
      against the (L, blocks, half) view of the residue matrix,
    - the moduli as an (L, 1) (or (L, 1, 1)) uint64 column.

    ``forward``/``inverse`` then run every butterfly stage across all limbs in
    a single numpy op, eliminating the per-limb Python loop.  Outputs are
    bit-identical to running the per-limb contexts row by row.
    """

    def __init__(self, n: int, moduli: tuple[int, ...]):
        self.n = n
        self.moduli = tuple(moduli)
        ctxs = [get_context(n, q) for q in self.moduli]
        self._contexts = ctxs
        self._q_col = np.array(self.moduli, dtype=np.uint64).reshape(-1, 1)
        self._q_block = self._q_col[:, :, None]
        self._psi = np.stack([c._psi_powers for c in ctxs])
        self._psi_inv = np.stack([c._psi_inv_powers for c in ctxs])
        self._n_inv = np.array(
            [c.n_inv for c in ctxs], dtype=np.uint64
        ).reshape(-1, 1)
        stages = len(ctxs[0]._stage_twiddles)
        self._stages_fwd = [
            np.stack([c._stage_twiddles[s] for c in ctxs])[:, None, :]
            for s in range(stages)
        ]
        self._stages_inv = [
            np.stack([c._stage_twiddles_inv[s] for c in ctxs])[:, None, :]
            for s in range(stages)
        ]
        self._bitrev = ctxs[0]._bitrev

    @property
    def level(self) -> int:
        return len(self.moduli)

    def _check_shape(self, limbs: np.ndarray) -> np.ndarray:
        limbs = np.asarray(limbs, dtype=np.uint64)
        if limbs.shape != (len(self.moduli), self.n):
            raise ValueError(
                f"expected shape ({len(self.moduli)}, {self.n}), got {limbs.shape}"
            )
        return limbs

    def _cyclic(self, limbs: np.ndarray, tables: list[np.ndarray]) -> np.ndarray:
        level, n = limbs.shape
        q = self._q_block
        a = limbs[:, self._bitrev]  # advanced indexing: a fresh uint64 array
        length = 2
        for tw in tables:
            half = length // 2
            blocks = a.reshape(level, n // length, length)
            lo = blocks[:, :, :half]
            hi = blocks[:, :, half:]
            t = (hi * tw) % q
            blocks[:, :, half:] = (lo + q - t) % q
            blocks[:, :, :half] = (lo + t) % q
            length *= 2
        return a

    def forward(self, limbs: np.ndarray) -> np.ndarray:
        """All-limb negacyclic NTT: (L, N) coefficient -> (L, N) evaluation."""
        limbs = self._check_shape(limbs)
        twisted = (limbs * self._psi) % self._q_col
        return self._cyclic(twisted, self._stages_fwd)

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """All-limb inverse negacyclic NTT: (L, N) evaluation -> coefficient."""
        evals = self._check_shape(evals)
        a = self._cyclic(evals, self._stages_inv)
        a = (a * self._n_inv) % self._q_col
        return (a * self._psi_inv) % self._q_col


@lru_cache(maxsize=None)
def get_context(n: int, q: int) -> NttContext:
    """Shared, cached NTT context (tables are expensive to rebuild)."""
    return NttContext(n, q)


@lru_cache(maxsize=None)
def get_rns_context(n: int, moduli: tuple[int, ...]) -> RnsNttContext:
    """Shared, cached batched context for an RNS basis' moduli tuple."""
    return RnsNttContext(n, moduli)


@lru_cache(maxsize=None)
def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


@lru_cache(maxsize=None)
def _stage_twiddle_tables(n: int, omega: int, q: int) -> tuple[np.ndarray, ...]:
    """Per-stage twiddle arrays for the iterative DIT cyclic NTT.

    Shared by :class:`NttContext` and :func:`cyclic_ntt_rows` (which used to
    rebuild these on every call).
    """
    tables = []
    length = 2
    while length <= n:
        half = length // 2
        w = pow(omega, n // length, q)
        tw = np.empty(half, dtype=np.uint64)
        acc = 1
        for i in range(half):
            tw[i] = acc
            acc = acc * w % q
        tables.append(tw)
        length *= 2
    return tuple(tables)


def cyclic_ntt_rows(matrix: np.ndarray, omega: int, q: int) -> np.ndarray:
    """Cyclic NTT of each row of ``matrix`` with the given primitive root.

    Used by the four-step decomposition, which needs sub-NTTs with *specific*
    roots (powers of the full transform's root).  Iterative radix-2 DIT,
    natural-order in and out, vectorized across rows.  Twiddle tables are
    cached per (N, omega, q).
    """
    _check_modulus_width(q)
    matrix = np.asarray(matrix, dtype=np.uint64)
    rows, n = matrix.shape
    if n == 1:
        return matrix.copy()
    if pow(omega, n, q) != 1 or pow(omega, n // 2, q) != q - 1:
        raise ValueError(f"omega is not a primitive {n}-th root mod {q}")
    qq = np.uint64(q)
    a = matrix[:, _bit_reverse_indices(n)]  # fancy indexing already copies
    length = 2
    for tw in _stage_twiddle_tables(n, omega, q):
        half = length // 2
        blocks = a.reshape(rows, n // length, length)
        lo = blocks[:, :, :half]
        hi = blocks[:, :, half:]
        t = (hi * tw) % qq
        blocks[:, :, half:] = (lo + qq - t) % qq
        blocks[:, :, :half] = (lo + t) % qq
        length *= 2
    return a


def naive_negacyclic_multiply(a, b, q: int) -> np.ndarray:
    """O(N^2) schoolbook negacyclic convolution; the test oracle for the NTT."""
    a = [int(x) % q for x in a]
    b = [int(x) % q for x in b]
    n = len(a)
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            k = i + j
            term = ai * bj
            if k < n:
                out[k] = (out[k] + term) % q
            else:
                out[k - n] = (out[k - n] - term) % q
    return np.array(out, dtype=np.uint64)
