"""Negacyclic Number-Theoretic Transform (Sec. 2.3, Sec. 5.2).

Multiplication in R_q = Z_q[x]/(x^N + 1) is a *negacyclic* convolution.  With
``psi`` a primitive 2N-th root of unity mod q (and ``omega = psi^2`` the N-th
root), the negacyclic NTT

    NTT(a)[j] = sum_i a_i * psi^(i*(2j+1))  mod q

linearizes it: ``NTT(a*b) = NTT(a) ⊙ NTT(b)`` with no zero padding.

Two execution paths share the same tables:

- :class:`NttContext`: one limb at a time, every butterfly stage vectorized
  across the N coefficients.
- :class:`RnsNttContext`: the *batched residue-matrix engine*.  Polynomials in
  R_Q live as limb-major (L, N) uint64 matrices (one row per RNS limb — the
  paper's RVecs); the context stacks the per-limb twiddle tables and runs
  every butterfly stage across *all* limbs in a single numpy op.
  ``forward``/``inverse`` additionally accept stacks of residue matrices
  (``(..., L, N)``) so e.g. the key switch transforms all L digit matrices in
  one call.  Results are bit-identical to the per-limb path.

Hot-path design (see :mod:`repro.poly.kernels` for the primitive proofs):

- **Strict path** (any ``q < 2^32``): the textbook pre-twist +
  bit-reverse + DIT stage loop, three ``%`` reductions per butterfly.
- **Lazy path** (all ``q < 2^31``, auto-selected): a merged-twist
  Harvey-style transform with **zero divisions**.  The psi twist is folded
  into per-stage twiddles (``psi^brv(j)`` tables, Longa–Naehrig style), each
  Cooley–Tukey butterfly uses Shoup multiplication with precomputed scaled
  twiddles and keeps values in the extended range ``[0, 4q)`` with a single
  conditional subtract per butterfly, and one exact reduction happens at the
  end of the transform.  To keep every numpy pass striding over contiguous
  runs, the stage pipeline is split in two phases around a ``G x C`` matrix
  transpose (the four-step layout trick, Sec. 5.2): phase 1 runs the
  large-span stages in natural layout, phase 2 runs the small-span stages on
  the transposed matrix where the short spans become the leading axis, and a
  single fused gather produces natural-order output.  The inverse mirrors
  the pipeline with Gentleman–Sande butterflies and folds ``n^{-1}`` into a
  final Shoup multiply.

  Lazy-range proof sketch (per butterfly, ``w`` a twiddle, ``s`` the
  per-modulus Shoup shift ``63 - bitlen(2q)``): inputs are ``< 4q``;
  ``hi * w < 4q*q < 2^64`` and ``hi * w' < 4q * 2^s < 2^64`` (strict because
  ``4q`` is never a power of two for odd prime q), so products never wrap.
  The Shoup quotient estimate is off by at most 1 for ``q < 2^30`` (giving
  ``t in [0, 2q)``) and at most 5 for ``q in [2^30, 2^31)`` (``t in
  [0, 6q)``, restored to ``[0, 2q)`` by two extra conditional subtracts —
  the ``_n_extra`` flag).  Then ``lo' = cond_sub(lo, 2q) in [0, 2q)``,
  ``new_lo = lo' + t in [0, 4q)`` and ``new_hi = lo' + (2q - t) in (0, 4q)``
  re-establish the invariant.  Every intermediate is congruent mod q to the
  strict path's value and the final reduction is exact, so the two paths are
  bit-identical.

Invariant: all arithmetic uses uint64 intermediates, so every modulus must
satisfy ``q < 2**32`` (products of residues then fit in 64 bits).  Both
context constructors and :func:`cyclic_ntt_rows` reject wider moduli rather
than silently wrapping.  Transform inputs must be reduced (``[0, q)`` per
limb) — the engine-wide invariant.

Outputs are in natural order, so NTT-domain automorphisms are plain index
permutations (see :mod:`repro.poly.automorphism`).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.obs.profile import instrument
from repro.poly import kernels, parallel
from repro.poly.kernels import MAX_LAZY_MODULUS, cond_sub
from repro.rns.primes import primitive_root_of_unity

#: Moduli must stay below this so uint64 butterflies (hi * tw) cannot wrap.
MAX_MODULUS = 1 << 32

#: Below this transform size the two-phase transpose layout buys nothing.
_SINGLE_PHASE_MAX_N = 32


def _check_modulus_width(q: int) -> None:
    if q >= MAX_MODULUS:
        raise ValueError(
            f"q = {q} needs {q.bit_length()} bits; moduli must be < 2^32 so "
            "uint64 butterfly products cannot overflow"
        )


def _resolve_lazy(lazy: bool | None, moduli) -> bool:
    """Auto-select the lazy path; reject an explicit request it can't honor."""
    supported = kernels.lazy_supported(moduli)
    if lazy is None:
        return supported
    if lazy and not supported:
        raise ValueError(
            f"lazy reduction requires all moduli < 2^{MAX_LAZY_MODULUS.bit_length() - 1}; "
            f"got {max(int(q) for q in moduli)}"
        )
    return lazy


class _LazyPlan:
    """Precomputed stage schedule for the merged-twist lazy transform.

    Owns, per direction, the stacked ``(L, N)`` twiddle tables
    ``W[l, j] = psi_l^{bitrev(j)}`` (forward; ``psi^{-1}`` for inverse) with
    their Shoup partners, sliced into per-stage broadcast views, plus the
    fused input/output permutations.  Plans are immutable after construction
    and therefore safe to share across threads.
    """

    def __init__(self, n: int, moduli, w_fwd: np.ndarray, w_inv: np.ndarray,
                 n_inv_col: np.ndarray, c_size: int | None = None):
        level = len(moduli)
        self.n = n
        q_col = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
        self.q_col = q_col
        self.two_q_col = q_col * np.uint64(2)
        self.four_q_col = q_col * np.uint64(4)
        shifts = [kernels.shoup_shift(int(q)) for q in moduli]
        self.shift_col = np.array(shifts, dtype=np.uint64).reshape(-1, 1)
        # Quotient-estimate slack: 0 extra conditional subtracts per Shoup
        # product for q < 2^30, 2 for q in [2^30, 2^31) (see module docstring).
        self.n_extra = 2 if any(int(q) >= 1 << 30 for q in moduli) else 0
        ws_fwd = np.stack([
            kernels.shoup_precompute(w_fwd[i], int(q))
            for i, q in enumerate(moduli)
        ])
        ws_inv = np.stack([
            kernels.shoup_precompute(w_inv[i], int(q))
            for i, q in enumerate(moduli)
        ])
        self.n_inv_col = n_inv_col
        self.n_inv_shoup = np.stack([
            kernels.shoup_precompute(n_inv_col[i], int(q))
            for i, q in enumerate(moduli)
        ])

        # Phase split: stages with butterfly span t >= C run in natural
        # layout; spans t < C run on the transposed G x C matrix where the
        # span lives on the (now leading) C axis and the contiguous inner
        # axis has length G.
        brv = _bit_reverse_indices(n)
        if c_size is None:
            if n <= _SINGLE_PHASE_MAX_N:
                c_size = 1
            else:
                c_size = 1 << ((n.bit_length() - 1) // 2)
        g_size = n // c_size
        self.c_size = c_size
        self.g_size = g_size

        def phase1_views(w, ws):
            out = []
            m = 1
            while m <= max(1, n // (2 * c_size)):
                t = n // (2 * m)
                out.append((m, t, np.ascontiguousarray(w[:, m:2 * m, None]),
                            np.ascontiguousarray(ws[:, m:2 * m, None])))
                m *= 2
            return out

        def phase2_views(w, ws):
            # Stage m's conceptual block index for transposed position
            # (cb, j, g) is g*cm + cb (cm = C*m/n blocks along the C axis),
            # so the twiddle view is W[:, m:2m] reshaped (G, cm) and
            # transposed to (cm, 1, G) — broadcast over the span axis j.
            out = []
            m = n // c_size
            while m <= n // 2 and c_size > 1:
                t = n // (2 * m)
                cm = c_size // (2 * t)
                view = w[:, m:2 * m].reshape(level, g_size, cm)
                views = ws[:, m:2 * m].reshape(level, g_size, cm)
                out.append((cm, t,
                            np.ascontiguousarray(view.transpose(0, 2, 1)[:, :, None, :]),
                            np.ascontiguousarray(views.transpose(0, 2, 1)[:, :, None, :])))
                m *= 2
            return out

        self.fwd_p1 = phase1_views(w_fwd, ws_fwd)
        self.fwd_p2 = phase2_views(w_fwd, ws_fwd)
        self.inv_p1 = phase1_views(w_inv, ws_inv)
        self.inv_p2 = phase2_views(w_inv, ws_inv)

        # Fused output gather: natural slot j reads buffer position
        # (brv(j) mod C) * G + brv(j) // C of the transposed layout.
        if c_size > 1:
            self.out_perm = (brv % c_size) * g_size + brv // c_size
        else:
            self.out_perm = brv
        in_perm = np.empty(n, dtype=np.int64)
        in_perm[self.out_perm] = np.arange(n)
        self.in_perm = in_perm

        # Broadcast constants for the 3-D (phase 1) and 4-D (phase 2) views.
        self._c3 = (q_col[:, :, None], self.two_q_col[:, :, None],
                    self.four_q_col[:, :, None], self.shift_col[:, :, None])
        self._c4 = tuple(c[:, :, None] for c in self._c3)

    # ------------------------------------------------------------- butterflies
    def _ct_stage(self, lo, hi, w, ws, consts, first: bool) -> None:
        """Cooley–Tukey lazy butterfly: ``(lo, hi) -> (lo + w*hi, lo - w*hi)``
        with values kept in ``[0, 4q)`` (see module docstring proof).

        The first stage's inputs are fully reduced (``< q < 2q``), so its
        ``lo`` conditional subtract is skipped.  Final sums are written with
        ``out=`` directly into the (strided) destination views, avoiding a
        temp-then-copy pass per output.
        """
        q, two_q, four_q, shift = consts
        t = kernels.shoup_mul(hi, w, ws, shift, q)
        if self.n_extra:
            t = cond_sub(cond_sub(t, four_q), two_q)
        lo2 = lo if first else cond_sub(lo, two_q)
        u = two_q - t
        np.add(lo2, u, out=hi)
        np.add(lo2, t, out=lo)

    def _gs_stage(self, lo, hi, w, ws, consts) -> None:
        """Gentleman–Sande lazy butterfly: ``(lo, hi) -> (lo + hi,
        w*(lo - hi))`` with the halving deferred into the final ``n^{-1}``.

        ``x = lo + (2q - hi)`` is formed before ``lo`` is overwritten; both
        outputs are then written with ``out=`` into the destination views.
        """
        q, two_q, four_q, shift = consts
        x = lo + (two_q - hi)
        s = lo + hi
        np.minimum(s, s - two_q, out=lo)  # cond_sub(lo + hi, 2q)
        v = kernels.shoup_mul(x, w, ws, shift, q)
        if self.n_extra:
            v = cond_sub(cond_sub(v, four_q), two_q)
        hi[...] = v

    def _transpose(self, a: np.ndarray, rows: int, cols: int) -> np.ndarray:
        lead = a.shape[:-1]
        swapped = a.reshape(lead + (rows, cols)).swapaxes(-2, -1)
        return np.ascontiguousarray(swapped).reshape(lead + (self.n,))

    # -------------------------------------------------------------- transforms
    def forward(self, limbs: np.ndarray) -> np.ndarray:
        """Merged-twist negacyclic NTT; input reduced, output reduced/natural."""
        a = limbs.copy()
        lead = a.shape[:-1]
        first = True
        for m, t, w, ws in self.fwd_p1:
            blocks = a.reshape(lead + (m, 2 * t))
            self._ct_stage(blocks[..., :t], blocks[..., t:], w, ws, self._c3,
                           first)
            first = False
        if self.c_size > 1:
            a = self._transpose(a, self.g_size, self.c_size)
            for cm, t, w, ws in self.fwd_p2:
                blocks = a.reshape(lead + (cm, 2 * t, self.g_size))
                self._ct_stage(blocks[..., :t, :], blocks[..., t:, :],
                               w, ws, self._c4, False)
        a = cond_sub(cond_sub(a, self.two_q_col), self.q_col)
        return a[..., self.out_perm]

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`, ``n^{-1}`` fused into the final pass."""
        a = evals[..., self.in_perm]  # fancy indexing copies
        lead = a.shape[:-1]
        if self.c_size > 1:
            for cm, t, w, ws in reversed(self.inv_p2):
                blocks = a.reshape(lead + (cm, 2 * t, self.g_size))
                self._gs_stage(blocks[..., :t, :], blocks[..., t:, :],
                               w, ws, self._c4)
            a = self._transpose(a, self.c_size, self.g_size)
        for m, t, w, ws in reversed(self.inv_p1):
            blocks = a.reshape(lead + (m, 2 * t))
            self._gs_stage(blocks[..., :t], blocks[..., t:], w, ws, self._c3)
        out = kernels.shoup_mul(a, self.n_inv_col, self.n_inv_shoup,
                                self.shift_col, self.q_col)
        if self.n_extra:
            out = cond_sub(cond_sub(out, self.four_q_col), self.two_q_col)
        return cond_sub(out, self.q_col)


class NttContext:
    """Precomputed tables for length-N negacyclic NTTs modulo prime q.

    ``lazy=None`` (default) auto-selects the division-free lazy path when
    ``q < 2^31``; ``lazy=False`` forces the strict path (bit-identical, used
    as the oracle in tests).
    """

    def __init__(self, n: int, q: int, *, lazy: bool | None = None):
        if n & (n - 1) or n < 2:
            raise ValueError(f"N must be a power of two >= 2, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"q = {q} is not NTT-friendly for N = {n}")
        _check_modulus_width(q)
        self.n = n
        self.q = q
        self.psi = primitive_root_of_unity(2 * n, q)
        self.omega = self.psi * self.psi % q
        self.n_inv = pow(n, -1, q)
        qq = np.uint64(q)
        # psi^i and psi^-i for the negacyclic pre/post twist.
        psi_powers = np.empty(n, dtype=np.uint64)
        psi_inv_powers = np.empty(n, dtype=np.uint64)
        psi_inv = pow(self.psi, -1, q)
        acc_f, acc_i = 1, 1
        for i in range(n):
            psi_powers[i] = acc_f
            psi_inv_powers[i] = acc_i
            acc_f = acc_f * self.psi % q
            acc_i = acc_i * psi_inv % q
        self._psi_powers = psi_powers
        self._psi_inv_powers = psi_inv_powers
        # Fused inverse post-scale for the strict path: n^{-1} * psi^{-i} in
        # one table (one reduction instead of two).
        self._psi_inv_scaled = (psi_inv_powers * np.uint64(self.n_inv)) % qq
        self._q_u64 = qq
        self._stage_twiddles = list(_stage_twiddle_tables(n, self.omega, q))
        self._stage_twiddles_inv = list(
            _stage_twiddle_tables(n, pow(self.omega, -1, q), q)
        )
        self._bitrev = _bit_reverse_indices(n)
        self.lazy = _resolve_lazy(lazy, (q,))
        self._plan: _LazyPlan | None = None
        if self.lazy:
            brv = self._bitrev
            self._plan = _LazyPlan(
                n, (q,),
                psi_powers[brv][None, :],
                psi_inv_powers[brv][None, :],
                np.array([[self.n_inv]], dtype=np.uint64),
            )

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT: coefficient domain -> evaluation (NTT) domain."""
        coeffs = np.asarray(coeffs, dtype=np.uint64)
        if coeffs.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {coeffs.shape}")
        if self._plan is not None:
            return self._plan.forward(coeffs[None, :])[0]
        twisted = (coeffs * self._psi_powers) % self._q_u64
        return _stage_loop_strict(
            twisted[self._bitrev], self._stage_twiddles, self._q_u64
        )

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT: evaluation domain -> coefficient domain."""
        evals = np.asarray(evals, dtype=np.uint64)
        if evals.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {evals.shape}")
        if self._plan is not None:
            return self._plan.inverse(evals[None, :])[0]
        a = _stage_loop_strict(
            evals[self._bitrev], self._stage_twiddles_inv, self._q_u64
        )
        return (a * self._psi_inv_scaled) % self._q_u64

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Polynomial product in R_q via NTT ⊙ NTT."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse((fa * fb) % self._q_u64)


class RnsNttContext:
    """Batched negacyclic NTT over an RNS basis: (L, N) matrices in one shot.

    Stacks the tables of L per-limb :class:`NttContext` instances so every
    butterfly stage runs across all limbs (and any leading batch axes) in a
    single numpy op — ``forward``/``inverse`` accept ``(..., L, N)`` stacks.
    Outputs are bit-identical to running the per-limb contexts row by row,
    on both the lazy and strict reduction paths (see module docstring).
    """

    def __init__(self, n: int, moduli: tuple[int, ...], *,
                 lazy: bool | None = None):
        self.n = n
        self.moduli = tuple(moduli)
        ctxs = [get_context(n, q) for q in self.moduli]
        self._contexts = ctxs
        self._q_col = np.array(self.moduli, dtype=np.uint64).reshape(-1, 1)
        self._q_block = self._q_col[:, :, None]
        self._n_inv = np.array(
            [c.n_inv for c in ctxs], dtype=np.uint64
        ).reshape(-1, 1)
        self._bitrev = ctxs[0]._bitrev
        self.lazy = _resolve_lazy(lazy, self.moduli)
        self._plan: _LazyPlan | None = None
        if self.lazy:
            brv = self._bitrev
            self._plan = _LazyPlan(
                n, self.moduli,
                np.stack([c._psi_powers[brv] for c in ctxs]),
                np.stack([c._psi_inv_powers[brv] for c in ctxs]),
                self._n_inv,
            )
        else:
            # The stacked strict-path tables are only reachable when the
            # plan is absent; building them unconditionally would waste
            # O(L*N) precompute and residency per cached context.
            self._psi = np.stack([c._psi_powers for c in ctxs])
            self._psi_inv_scaled = np.stack([c._psi_inv_scaled for c in ctxs])
            stages = len(ctxs[0]._stage_twiddles)
            self._stages_fwd = [
                np.stack([c._stage_twiddles[s] for c in ctxs])[:, None, :]
                for s in range(stages)
            ]
            self._stages_inv = [
                np.stack([c._stage_twiddles_inv[s] for c in ctxs])[:, None, :]
                for s in range(stages)
            ]

    @property
    def level(self) -> int:
        return len(self.moduli)

    def _check_shape(self, limbs: np.ndarray) -> np.ndarray:
        limbs = np.asarray(limbs, dtype=np.uint64)
        if limbs.ndim < 2 or limbs.shape[-2:] != (len(self.moduli), self.n):
            raise ValueError(
                f"expected trailing shape ({len(self.moduli)}, {self.n}), "
                f"got {limbs.shape}"
            )
        return limbs

    @instrument("ntt_forward")
    def forward(self, limbs: np.ndarray) -> np.ndarray:
        """All-limb negacyclic NTT: ``(..., L, N)`` coefficient -> evaluation.

        With ``REPRO_NUM_THREADS`` > 1 large inputs fan across the
        :mod:`repro.poly.parallel` pool — whole stacks of a batched input,
        else contiguous limb ranges through cached sub-basis contexts.
        Per-limb transforms depend only on ``(n, q_i)``, so any split is
        bit-identical to the serial path.
        """
        limbs = self._check_shape(limbs)
        fanned = _fan_transform(self, limbs, inverse=False)
        if fanned is not None:
            return fanned
        return self._serial_forward(limbs)

    def _serial_forward(self, limbs: np.ndarray) -> np.ndarray:
        if self._plan is not None:
            return self._plan.forward(limbs)
        twisted = (limbs * self._psi) % self._q_col
        return _stage_loop_strict(
            twisted[..., self._bitrev], self._stages_fwd, self._q_block
        )

    @instrument("ntt_inverse")
    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """All-limb inverse negacyclic NTT: ``(..., L, N)`` evaluation -> coeff."""
        evals = self._check_shape(evals)
        fanned = _fan_transform(self, evals, inverse=True)
        if fanned is not None:
            return fanned
        return self._serial_inverse(evals)

    def _serial_inverse(self, evals: np.ndarray) -> np.ndarray:
        if self._plan is not None:
            return self._plan.inverse(evals)
        a = _stage_loop_strict(
            evals[..., self._bitrev], self._stages_inv, self._q_block
        )
        return (a * self._psi_inv_scaled) % self._q_col


def _fan_transform(ctx: RnsNttContext, arr: np.ndarray,
                   inverse: bool) -> np.ndarray | None:
    """Thread-fan one batched transform, or None for the serial path.

    Splits the leading batch axis into whole ``(L, N)`` stacks when the
    batch is deep enough, otherwise contiguous limb ranges served by cached
    sub-basis contexts (``get_rns_context(n, moduli[lo:hi])`` — per-limb
    tables are identical slices, so chunked outputs match the full-stack
    transform bit for bit; a mixed-width basis may flip a narrow chunk onto
    the lazy plan, which is bit-identical by the module's equivalence
    contract).  Workers run the ``_serial_*`` bodies, so fans never nest.
    """
    nt = parallel.active_threads()
    if nt <= 1 or arr.size < parallel.MIN_PARALLEL_ELEMS:
        return None

    def run(c: RnsNttContext, x: np.ndarray) -> np.ndarray:
        return c._serial_inverse(x) if inverse else c._serial_forward(x)

    L, n = len(ctx.moduli), ctx.n
    if arr.ndim >= 3:
        lead = 1
        for d in arr.shape[:-2]:
            lead *= d
        if lead >= nt:
            out = np.empty(arr.shape, dtype=np.uint64)
            flat_in = arr.reshape(lead, L, n)
            flat_out = out.reshape(lead, L, n)

            def stack_task(lo: int, hi: int) -> None:
                flat_out[lo:hi] = run(ctx, flat_in[lo:hi])

            parallel.run_tasks([
                (lambda lo=lo, hi=hi: stack_task(lo, hi))
                for lo, hi in parallel.split_ranges(lead, nt)
            ])
            return out
    if L < 2:
        return None
    out = np.empty(arr.shape, dtype=np.uint64)

    def limb_task(lo: int, hi: int) -> None:
        sub = get_rns_context(n, ctx.moduli[lo:hi])
        out[..., lo:hi, :] = run(sub, arr[..., lo:hi, :])

    parallel.run_tasks([
        (lambda lo=lo, hi=hi: limb_task(lo, hi))
        for lo, hi in parallel.split_ranges(L, nt)
    ])
    return out


def _stage_loop_strict(a: np.ndarray, tables, q_block) -> np.ndarray:
    """Iterative DIT stage loop with full ``%`` reduction per butterfly."""
    n = a.shape[-1]
    length = 2
    for tw in tables:
        half = length // 2
        blocks = a.reshape(a.shape[:-1] + (n // length, length))
        lo = blocks[..., :half]
        hi = blocks[..., half:]
        t = (hi * tw) % q_block
        blocks[..., half:] = (lo + q_block - t) % q_block
        blocks[..., :half] = (lo + t) % q_block
        length *= 2
    return a


def _stage_loop_lazy(a: np.ndarray, tables, shoup_tables, q, two_q,
                     shift, extra: bool) -> np.ndarray:
    """Division-free DIT stage loop with values held in ``[0, 2q)``.

    Input must be reduced; output needs one final
    :func:`~repro.poly.kernels.cond_sub`.  Used by :func:`cyclic_ntt_rows`
    (whose sub-transforms need externally supplied roots, so the merged-twist
    plan does not apply).  See :func:`~repro.poly.kernels.lazy_butterfly`.
    """
    n = a.shape[-1]
    length = 2
    for tw, tws in zip(tables, shoup_tables):
        half = length // 2
        blocks = a.reshape(a.shape[:-1] + (n // length, length))
        lo = blocks[..., :half]
        hi = blocks[..., half:]
        new_lo, new_hi = kernels.lazy_butterfly(lo, hi, tw, tws, shift, q,
                                                two_q, extra)
        blocks[..., half:] = new_hi
        blocks[..., :half] = new_lo
        length *= 2
    return a


@lru_cache(maxsize=None)
def get_context(n: int, q: int) -> NttContext:
    """Shared, cached NTT context (tables are expensive to rebuild)."""
    return NttContext(n, q)


@lru_cache(maxsize=None)
def get_rns_context(n: int, moduli: tuple[int, ...]) -> RnsNttContext:
    """Shared, cached batched context for an RNS basis' moduli tuple."""
    return RnsNttContext(n, moduli)


@lru_cache(maxsize=None)
def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


@lru_cache(maxsize=None)
def _stage_twiddle_tables(n: int, omega: int, q: int) -> tuple[np.ndarray, ...]:
    """Per-stage twiddle arrays for the iterative DIT cyclic NTT.

    Shared by :class:`NttContext` and :func:`cyclic_ntt_rows` (which used to
    rebuild these on every call).
    """
    tables = []
    length = 2
    while length <= n:
        half = length // 2
        w = pow(omega, n // length, q)
        tw = np.empty(half, dtype=np.uint64)
        acc = 1
        for i in range(half):
            tw[i] = acc
            acc = acc * w % q
        tables.append(tw)
        length *= 2
    return tuple(tables)


@lru_cache(maxsize=None)
def _stage_twiddle_shoup_tables(n: int, omega: int, q: int) -> tuple[np.ndarray, ...]:
    """Shoup partners ``floor(w << s / q)`` of :func:`_stage_twiddle_tables`."""
    return tuple(
        kernels.shoup_precompute(tw, q)
        for tw in _stage_twiddle_tables(n, omega, q)
    )


def cyclic_ntt_rows(matrix: np.ndarray, omega: int, q: int) -> np.ndarray:
    """Cyclic NTT of each row of ``matrix`` with the given primitive root.

    Used by the four-step decomposition, which needs sub-NTTs with *specific*
    roots (powers of the full transform's root).  Iterative radix-2 DIT,
    natural-order in and out, vectorized across rows; rows must be reduced
    mod q.  Twiddle tables are cached per (N, omega, q), and moduli below
    2^31 ride the division-free lazy stage loop.
    """
    _check_modulus_width(q)
    matrix = np.asarray(matrix, dtype=np.uint64)
    rows, n = matrix.shape
    if n == 1:
        return matrix.copy()
    if pow(omega, n, q) != 1 or pow(omega, n // 2, q) != q - 1:
        raise ValueError(f"omega is not a primitive {n}-th root mod {q}")
    qq = np.uint64(q)
    a = matrix[:, _bit_reverse_indices(n)]  # fancy indexing already copies
    tables = _stage_twiddle_tables(n, omega, q)
    if q < MAX_LAZY_MODULUS:
        a = _stage_loop_lazy(
            a, tables, _stage_twiddle_shoup_tables(n, omega, q),
            qq, np.uint64(2 * q), np.uint64(kernels.shoup_shift(q)),
            kernels.shoup_needs_extra_sub(q),
        )
        return cond_sub(a, qq)
    return _stage_loop_strict(a, tables, qq)


def naive_negacyclic_multiply(a, b, q: int) -> np.ndarray:
    """O(N^2) schoolbook negacyclic convolution; the test oracle for the NTT."""
    a = [int(x) % q for x in a]
    b = [int(x) % q for x in b]
    n = len(a)
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            k = i + j
            term = ai * bj
            if k < n:
                out[k] = (out[k] + term) % q
            else:
                out[k - n] = (out[k - n] - term) % q
    return np.array(out, dtype=np.uint64)
