"""Four-step NTT decomposition (Sec. 5.2, Fig. 8) — functional model.

The hardware implements N-point NTTs (N up to 16K) as a composition of
E=128-point NTTs using Bailey's four-step FFT.  Writing the input index as
``i = i1 + n1*i2`` and the output index as ``k = k1*n2 + k2``:

    X[k1*n2 + k2] = sum_{i1} omega^(i1*k2) * omega_{n1}^(i1*k1)
                    * sum_{i2} a[i1 + n1*i2] * omega_{n2}^(i2*k2)

    1. an n2-point NTT over i2 for each i1 (rows of the n1 x n2 matrix view),
    2. an element-wise multiply by the twiddle omega^(i1*k2),
    3. an n1-point NTT over i1 for each k2 (columns),
    4. a transpose to stream the result out in natural order.

The sub-NTTs must use omega_{n1} = omega^n2 and omega_{n2} = omega^n1 — powers
of the *same* primitive N-th root — for the composition to be bit-exact with
the direct transform.  The paper folds the negacyclic pre-/post-twist into the
twiddle SRAM so forward and inverse negacyclic NTTs share one pipeline; we
realize the same by folding the psi twist into the input/output (tests assert
bit-exact agreement with :class:`repro.poly.ntt.NttContext`).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.poly.ntt import cyclic_ntt_rows, get_context


def _split(n: int) -> tuple[int, int]:
    """Pick (n1, n2) with n1*n2 = N, both powers of two, near-square."""
    log_n = n.bit_length() - 1
    log_n1 = log_n // 2
    return 1 << log_n1, 1 << (log_n - log_n1)


@lru_cache(maxsize=None)
def _twiddle_matrix(omega: int, n: int, n1: int, n2: int, q: int) -> np.ndarray:
    i1 = np.arange(n1).reshape(n1, 1)
    k2 = np.arange(n2).reshape(1, n2)
    exps = (i1 * k2) % n
    return _power_table(omega, n, q)[exps]


def four_step_ntt(coeffs: np.ndarray, n: int, q: int) -> np.ndarray:
    """Negacyclic forward NTT via the four-step decomposition.

    Bit-exact with ``NttContext.forward`` (natural-order output).
    """
    ctx = get_context(n, q)
    coeffs = np.asarray(coeffs, dtype=np.uint64)
    qq = np.uint64(q)
    # Negacyclic twist, folded into the first stage's twiddles in hardware.
    twisted = (coeffs * ctx._psi_powers) % qq

    n1, n2 = _split(n)
    omega = ctx.omega
    matrix = twisted.reshape(n2, n1).T.copy()  # [i1, i2]
    # Step 1: n2-point NTT along rows with root omega^n1.
    matrix = cyclic_ntt_rows(matrix, pow(omega, n1, q), q)
    # Step 2: twiddle multiply omega^(i1*k2).
    matrix = (matrix * _twiddle_matrix(omega, n, n1, n2, q)) % qq
    # Step 3: n1-point NTT along columns with root omega^n2.
    if n1 > 1:
        matrix = cyclic_ntt_rows(matrix.T.copy(), pow(omega, n2, q), q).T
    # Step 4: stream out; [k1, k2] row-major is exactly k = k1*n2 + k2.
    return matrix.reshape(-1).copy()


def four_step_intt(evals: np.ndarray, n: int, q: int) -> np.ndarray:
    """Inverse negacyclic NTT via the four-step structure.

    Bit-exact with ``NttContext.inverse``.
    """
    ctx = get_context(n, q)
    evals = np.asarray(evals, dtype=np.uint64)
    qq = np.uint64(q)
    n1, n2 = _split(n)
    omega_inv = pow(ctx.omega, -1, q)

    matrix = evals.reshape(n1, n2).copy()  # [k1, k2]
    # Invert step 3: inverse n1-point NTT along columns (root omega^-n2).
    if n1 > 1:
        matrix = cyclic_ntt_rows(matrix.T.copy(), pow(omega_inv, n2, q), q).T
        matrix = (matrix * np.uint64(pow(n1, -1, q))) % qq
    # Invert step 2: conjugate twiddles.
    matrix = (matrix * _twiddle_matrix(omega_inv, n, n1, n2, q)) % qq
    # Invert step 1: inverse n2-point NTT along rows (root omega^-n1).
    matrix = cyclic_ntt_rows(matrix, pow(omega_inv, n1, q), q)
    matrix = (matrix * np.uint64(pow(n2, -1, q))) % qq
    # Back to flat coefficient order: [i2, i1] row-major is i = i1 + n1*i2.
    twisted = matrix.T.reshape(-1)
    return (twisted * ctx._psi_inv_powers) % qq


_POWER_TABLES: dict[tuple[int, int, int], np.ndarray] = {}


def _power_table(base: int, n: int, q: int) -> np.ndarray:
    key = (base, n, q)
    table = _POWER_TABLES.get(key)
    if table is None:
        table = np.empty(n, dtype=np.uint64)
        acc = 1
        for i in range(n):
            table[i] = acc
            acc = acc * base % q
        _POWER_TABLES[key] = table
    return table
