"""Automorphisms of R_Q = Z_Q[x]/(x^N + 1) (Sec. 2.2.1, Sec. 5.1).

For odd k, the ring automorphism sigma_k maps x -> x^k:

    sigma_k(a): a_i  ->  (-1)^s * a_i at position (i*k mod N),
    s = 0 if i*k mod 2N < N else 1.

There are N automorphisms (sigma_k and sigma_{-k} for each positive odd
k < N; -k is represented as 2N - k).

Three views are provided:

- ``automorphism_coeff``: the exact coefficient-domain permutation+sign;
- ``automorphism_ntt_permutation``: in the (natural-order) NTT domain the
  automorphism is a pure index permutation j -> j' with
  ``2j'+1 = k*(2j+1) mod 2N`` — this is what the hardware applies;
- ``decompose_automorphism``: the Sec. 5.1 insight that, viewing the vector as
  a G×E matrix, sigma_k factors into a column permutation, a transpose, a row
  permutation, and a transpose back — all local to E-element chunks, which is
  what makes the functional unit vectorizable.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def valid_automorphism_exponents(n: int) -> list[int]:
    """All odd exponents k in [1, 2N) — the N members of the Galois group."""
    return [k for k in range(1, 2 * n) if k % 2 == 1]


def _check_exponent(n: int, k: int) -> int:
    k %= 2 * n
    if k % 2 == 0:
        raise ValueError(f"automorphism exponent must be odd, got {k}")
    return k


@lru_cache(maxsize=None)
def _coeff_permutation(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """(destination index, sign) arrays for sigma_k in coefficient form."""
    dest = np.empty(n, dtype=np.int64)
    negate = np.empty(n, dtype=bool)
    for i in range(n):
        ik = i * k
        dest[i] = ik % n
        negate[i] = (ik % (2 * n)) >= n
    return dest, negate


def automorphism_coeff(coeffs: np.ndarray, k: int, q: int) -> np.ndarray:
    """Apply sigma_k to a coefficient-domain residue polynomial mod q."""
    coeffs = np.asarray(coeffs, dtype=np.uint64)
    n = coeffs.shape[0]
    k = _check_exponent(n, k)
    dest, negate = _coeff_permutation(n, k)
    out = np.empty_like(coeffs)
    values = coeffs.copy()
    values[negate] = (np.uint64(q) - values[negate]) % np.uint64(q)
    out[dest] = values
    return out


def automorphism_coeff_rows(matrix: np.ndarray, k: int, q_col: np.ndarray) -> np.ndarray:
    """Batched :func:`automorphism_coeff`: sigma_k on every row of an (L, N)
    residue matrix at once, with ``q_col`` the (L, 1) per-row modulus column."""
    matrix = np.asarray(matrix, dtype=np.uint64)
    n = matrix.shape[1]
    k = _check_exponent(n, k)
    dest, negate = _coeff_permutation(n, k)
    values = matrix.copy()
    values[:, negate] = (q_col - values[:, negate]) % q_col
    out = np.empty_like(values)
    out[:, dest] = values
    return out


@lru_cache(maxsize=None)
def automorphism_ntt_permutation(n: int, k: int) -> np.ndarray:
    """Index permutation ``perm`` s.t. ``NTT(sigma_k(a)) = NTT(a)[perm]``.

    Slot j of a natural-order negacyclic NTT holds the evaluation at
    psi^(2j+1).  sigma_k(a)(psi^(2j+1)) = a(psi^(k*(2j+1))), so slot j reads
    from slot j' with 2j'+1 = k*(2j+1) mod 2N.
    """
    k = _check_exponent(n, k)
    perm = np.empty(n, dtype=np.int64)
    for j in range(n):
        perm[j] = ((k * (2 * j + 1)) % (2 * n) - 1) // 2
    return perm


def automorphism_ntt(evals: np.ndarray, k: int) -> np.ndarray:
    """Apply sigma_k to an NTT-domain residue polynomial (a pure gather)."""
    evals = np.asarray(evals)
    perm = automorphism_ntt_permutation(evals.shape[0], k)
    return evals[perm]


def decompose_automorphism(n: int, e: int, k: int):
    """Factor the NTT-domain sigma_k permutation per Sec. 5.1.

    Interpreting the length-N slot vector as a G×E matrix (G = N/E rows
    streamed one per cycle), the automorphism permutation factors as

        sigma_k = transpose^-1 ∘ row_perm ∘ transpose ∘ col_perm

    where ``col_perm`` permutes within each row (an E-element chunk) and
    ``row_perm`` permutes within each length-G chunk of the transposed
    matrix.  Returns ``(col_perm, row_perm)`` as index arrays of shape (G, E)
    and (E, G), or raises ValueError if the permutation does not factor (it
    always does for automorphisms; the check is a safety net).
    """
    k = _check_exponent(n, k)
    if n % e:
        raise ValueError(f"N={n} not divisible by E={e}")
    g = n // e
    perm = automorphism_ntt_permutation(n, k)  # out[j] = in[perm[j]]
    # Source index of output slot (r, c) in matrix view: perm[r*e + c].
    src = perm.reshape(g, e)
    src_row = src // e
    src_col = src % e
    # After col_perm (within rows of the input) and transpose, output element
    # (r, c) must be fetched from input (src_row, src_col).  The transpose
    # aligns rows<->columns, so we need: for output row r, all sources lie in
    # distinct input rows spread so that a per-chunk permutation suffices.
    # Column permutation: position (i, j) of the input matrix moves within row
    # i to column sigma(i, j); then transpose makes row j' = sigma(i, j).
    # Solving: we need col_perm[i][c] = the input column of the element that
    # must end up, post-transpose, where row/col perms can route it.
    # The factorization holds because perm(j) = (k*j + (k-1)/2) mod-ish is an
    # affine map: src index = (k*(2j+1)-1)/2 mod N, i.e. j -> k*j + (k-1)/2
    # (mod N).  An affine map with odd multiplier factors over the G×E grid.
    col_perm = np.empty((g, e), dtype=np.int64)
    row_perm = np.empty((e, g), dtype=np.int64)
    # Output (r, c) <- input (src_row[r,c], src_col[r,c]).
    # Stage 1 (col perm on input rows): input (i, j) -> (i, f(i, j)).
    # Stage 2 (transpose): (i, c') -> (c', i).
    # Stage 3 (row perm on length-G chunks): (c', i) -> (c', h(c', i)).
    # Stage 4 (transpose back): (c', r) -> (r, c').
    # Net: output (r, c') = input (i, j) with c' = f(i, j) and r = h(c', i).
    # For each output (r, c): need f(src_row, src_col) = c and
    # h(c, src_row) = r.
    for r in range(g):
        for c in range(e):
            i, j = src_row[r, c], src_col[r, c]
            col_perm[i, j] = c
            row_perm[c, i] = r
    # Validate both stages are genuine permutations.
    for i in range(g):
        if len(set(col_perm[i])) != e:
            raise ValueError("column permutation stage is not a permutation")
    for c in range(e):
        if len(set(row_perm[c])) != g:
            raise ValueError("row permutation stage is not a permutation")
    return col_perm, row_perm


def apply_decomposed_automorphism(evals: np.ndarray, e: int, k: int) -> np.ndarray:
    """Apply sigma_k using only chunk-local permutations and transposes.

    This mirrors the hardware datapath of Fig. 6 and is tested to agree with
    :func:`automorphism_ntt`.
    """
    evals = np.asarray(evals)
    n = evals.shape[0]
    g = n // e
    col_perm, row_perm = decompose_automorphism(n, e, k)
    matrix = evals.reshape(g, e)
    stage1 = np.empty_like(matrix)
    for i in range(g):
        stage1[i, col_perm[i]] = matrix[i]
    stage2 = stage1.T.copy()  # hardware: quadrant-swap transpose
    stage3 = np.empty_like(stage2)
    for c in range(e):
        stage3[c, row_perm[c]] = stage2[c]
    return stage3.T.reshape(-1).copy()
