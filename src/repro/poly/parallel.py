"""GIL-released limb-stack thread fan, sized by ``REPRO_NUM_THREADS``.

The batched engine's hot kernels are numpy ufuncs and integer matmuls over
``(L, N)`` uint64 limb stacks; numpy releases the GIL inside those C loops,
so independent limb ranges (or independent stacks in a ``(B, L, N)`` batch)
can run on real cores from plain threads — reaching the parallelism a
single large request can't get from :class:`~repro.serve.executor`'s
process pool (which parallelizes only *across* requests).

Contract:

- ``REPRO_NUM_THREADS`` unset or ``1`` (the default) keeps every caller on
  the exact serial code path — bit-identical to a build without this module.
- Threaded runs split work along axes whose chunks are computed by the very
  same kernels on the very same values (per-limb NTTs, per-column base
  conversions), so outputs are bit-identical to the serial path at any
  thread count.
- Fans never nest: a worker task that reaches another fan point runs it
  serially (:func:`active_threads` reports 1 inside a worker), which also
  makes pool starvation impossible.

:func:`set_num_threads` overrides the environment for tests and tools;
pools are created lazily per size and reused for the process lifetime.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

#: Minimum number of array elements before a fan is worth the thread
#: hand-off (~10us per task dispatch vs ~1ns/element kernels).
MIN_PARALLEL_ELEMS = 1 << 13

_override: int | None = None
_pools: dict[int, ThreadPoolExecutor] = {}
_pool_lock = threading.Lock()
_in_worker = threading.local()


def num_threads() -> int:
    """Configured thread count: the :func:`set_num_threads` override if any,
    else ``REPRO_NUM_THREADS``, else 1."""
    if _override is not None:
        return _override
    raw = os.environ.get("REPRO_NUM_THREADS", "")
    try:
        n = int(raw) if raw else 1
    except ValueError:
        n = 1
    return max(1, n)


def set_num_threads(n: int | None) -> int | None:
    """Override the thread count (``None`` restores the environment setting).

    Returns the previous override so callers can restore it::

        prev = parallel.set_num_threads(2)
        try: ...
        finally: parallel.set_num_threads(prev)
    """
    global _override
    prev = _override
    _override = None if n is None else max(1, int(n))
    return prev


def active_threads() -> int:
    """Threads available to a new fan point: 1 inside a worker (no nesting)."""
    if getattr(_in_worker, "busy", False):
        return 1
    return num_threads()


def split_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous near-equal
    ``(lo, hi)`` spans (never an empty span)."""
    parts = max(1, min(int(parts), int(total)))
    base, extra = divmod(int(total), parts)
    spans, lo = [], 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


def _get_pool(n: int) -> ThreadPoolExecutor:
    with _pool_lock:
        pool = _pools.get(n)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=n, thread_name_prefix="repro-limb"
            )
            _pools[n] = pool
        return pool


def run_tasks(fns) -> None:
    """Run thunks, on the pool when threading is active, else in-line.

    All tasks are always completed (or observed to fail) before returning;
    the first exception *in submission order* is re-raised so threaded error
    behavior matches the serial loop deterministically.
    """
    fns = list(fns)
    nt = active_threads()
    if nt <= 1 or len(fns) <= 1:
        for fn in fns:
            fn()
        return
    pool = _get_pool(nt)

    def _worker(fn):
        _in_worker.busy = True
        try:
            return fn()
        finally:
            _in_worker.busy = False

    futures = [pool.submit(_worker, fn) for fn in fns]
    first_err = None
    for fut in futures:
        try:
            fut.result()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_err is None:
                first_err = exc
    if first_err is not None:
        raise first_err


def thread_smoke(nthreads: int = 2) -> int:
    """Serial-vs-threaded bit-identity smoke for ``python -m repro.verify``.

    Runs the threaded fan points — stacked/flat NTT, batched base extension,
    scale-down, and the serve slot pack/unpack — once at 1 thread and once at
    ``nthreads``, asserting bit-identical outputs.  Returns 0 on success.
    """
    import numpy as np

    from repro.dsl.program import OpKind, Program
    from repro.fhe.keyswitch import base_extend, scale_down
    from repro.poly.ntt import get_rns_context
    from repro.poly.polynomial import Domain, RnsPolynomial
    from repro.rns.crt import RnsBasis
    from repro.rns.primes import ntt_friendly_primes
    from repro.serve.batcher import Request, SlotBatcher

    n, level = 512, 6
    basis = RnsBasis(ntt_friendly_primes(n, 28, level))
    special = RnsBasis(
        [q for q in ntt_friendly_primes(n, 27, level + 4)
         if q not in basis.moduli][:level]
    )
    extended = RnsBasis(basis.moduli + special.moduli)
    rng = np.random.default_rng(7)
    limbs = rng.integers(0, basis.moduli_column(), (level, n), dtype=np.uint64)
    ext_limbs = rng.integers(
        0, extended.moduli_column(), (extended.level, n), dtype=np.uint64
    )
    stack = rng.integers(
        0, basis.moduli_column(), (4, level, n), dtype=np.uint64
    )
    ctx = get_rns_context(n, basis.moduli)
    x = RnsPolynomial(basis, limbs, Domain.COEFF)
    x_ext = RnsPolynomial(extended, ext_limbs, Domain.COEFF)

    prog = Program(n=n, scheme="bgv", name="thread_smoke")
    a = prog.input(2, name="a")
    prog.output(prog.add(a, prog.mul_plain(a)))
    batcher = SlotBatcher(prog, width=16)
    plain = rng.integers(0, 50, 16).tolist()
    mul_plain_ids = [op.op_id for op in prog.ops
                     if op.kind is OpKind.MUL_PLAIN]
    output_ids = [op.op_id for op in prog.ops if op.kind is OpKind.OUTPUT]
    requests = [
        Request(inputs={a.op_id: rng.integers(0, 50, 16).tolist()},
                plains={m: plain for m in mul_plain_ids})
        for _ in range(batcher.capacity)
    ]
    fake_out = {
        out_id: rng.integers(0, 97, batcher._lanes)
        for out_id in output_ids
    }

    # Serial references.
    prev = set_num_threads(1)
    try:
        ref_fwd = ctx.forward(limbs)
        ref_stack = ctx.forward(stack)
        ref_ext = base_extend(x, extended).limbs
        ref_sd = scale_down(x_ext, special, 256).limbs
        ref_pack = batcher.pack(requests)
        ref_unpack = batcher.unpack(fake_out, len(requests))
    finally:
        set_num_threads(prev)

    def pack_equal(got, ref):
        return all(
            set(g) == set(r) and all(np.array_equal(g[k], r[k]) for k in r)
            for g, r in zip(got, ref)
        )

    prev = set_num_threads(nthreads)
    try:
        thr_unpack = batcher.unpack(fake_out, len(requests))
        checks = [
            ("ntt_flat", np.array_equal(ctx.forward(limbs), ref_fwd)),
            ("ntt_stack", np.array_equal(ctx.forward(stack), ref_stack)),
            ("base_extend",
             np.array_equal(base_extend(x, extended).limbs, ref_ext)),
            ("scale_down",
             np.array_equal(scale_down(x_ext, special, 256).limbs, ref_sd)),
            ("pack", pack_equal(batcher.pack(requests), ref_pack)),
            ("unpack", all(
                np.array_equal(thr_unpack[j][o], ref_unpack[j][o])
                for j in range(len(requests))
                for o in ref_unpack[j]
            )),
        ]
    finally:
        set_num_threads(prev)

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  threads smoke [{nthreads} threads] {name}: "
              f"{'ok' if ok else 'MISMATCH'}")
    if failed:
        print(f"threads smoke FAILED: {', '.join(failed)}")
        return 1
    print(f"threads smoke passed ({len(checks)} fan points bit-identical "
          f"at {nthreads} threads)")
    return 0
