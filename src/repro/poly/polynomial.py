"""RnsPolynomial: the value type FHE schemes compute on.

A polynomial in R_Q, stored as an (L, N) uint64 array of residue polynomials
("RVecs" in the paper, one per RNS limb), tagged with its domain: COEFF or
NTT.  All homomorphic-operation math in :mod:`repro.fhe` is built from the
element-wise and NTT/automorphism operations here — precisely the primitive
set F1's functional units implement.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.poly.automorphism import automorphism_coeff, automorphism_ntt
from repro.poly.ntt import get_context
from repro.rns.crt import RnsBasis


class Domain(enum.Enum):
    COEFF = "coeff"
    NTT = "ntt"


class RnsPolynomial:
    """An element of R_Q in RNS form.

    Arithmetic requires matching bases and domains; use :meth:`to_ntt` /
    :meth:`to_coeff` to convert.  Instances are mutated only through the
    returned copies — operations are functional.
    """

    __slots__ = ("basis", "n", "limbs", "domain")

    def __init__(self, basis: RnsBasis, limbs: np.ndarray, domain: Domain):
        limbs = np.asarray(limbs, dtype=np.uint64)
        if limbs.ndim != 2 or limbs.shape[0] != basis.level:
            raise ValueError(
                f"limbs shape {limbs.shape} does not match basis level {basis.level}"
            )
        self.basis = basis
        self.n = limbs.shape[1]
        self.limbs = limbs
        self.domain = domain

    # ---------------------------------------------------------------- factory
    @classmethod
    def zeros(cls, basis: RnsBasis, n: int, domain: Domain = Domain.COEFF) -> "RnsPolynomial":
        return cls(basis, np.zeros((basis.level, n), dtype=np.uint64), domain)

    @classmethod
    def from_int_coeffs(cls, basis: RnsBasis, coeffs) -> "RnsPolynomial":
        """Build from (possibly signed, possibly wide) integer coefficients."""
        return cls(basis, basis.to_rns(coeffs), Domain.COEFF)

    @classmethod
    def random_uniform(cls, basis: RnsBasis, n: int, rng: np.random.Generator) -> "RnsPolynomial":
        """Uniform element of R_Q (sampled consistently across limbs via CRT)."""
        wide = [int.from_bytes(rng.bytes(16), "little") % basis.modulus for _ in range(n)]
        return cls.from_int_coeffs(basis, wide)

    # ------------------------------------------------------------ conversions
    def to_ntt(self) -> "RnsPolynomial":
        if self.domain is Domain.NTT:
            return self
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.moduli):
            out[i] = get_context(self.n, q).forward(self.limbs[i])
        return RnsPolynomial(self.basis, out, Domain.NTT)

    def to_coeff(self) -> "RnsPolynomial":
        if self.domain is Domain.COEFF:
            return self
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.moduli):
            out[i] = get_context(self.n, q).inverse(self.limbs[i])
        return RnsPolynomial(self.basis, out, Domain.COEFF)

    def to_int_coeffs(self, *, centered: bool = True) -> list[int]:
        """CRT-reconstruct the wide integer coefficients (coefficient domain)."""
        return self.basis.from_rns(self.to_coeff().limbs, centered=centered)

    # ------------------------------------------------------------- arithmetic
    def _check_compatible(self, other: "RnsPolynomial", op: str) -> None:
        if self.basis != other.basis:
            raise ValueError(f"{op}: RNS bases differ")
        if self.domain is not other.domain:
            raise ValueError(f"{op}: domains differ ({self.domain} vs {other.domain})")

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other, "add")
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.moduli):
            out[i] = (self.limbs[i] + other.limbs[i]) % np.uint64(q)
        return RnsPolynomial(self.basis, out, self.domain)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other, "sub")
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.moduli):
            qq = np.uint64(q)
            out[i] = (self.limbs[i] + qq - other.limbs[i] % qq) % qq
        return RnsPolynomial(self.basis, out, self.domain)

    def __neg__(self) -> "RnsPolynomial":
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.moduli):
            qq = np.uint64(q)
            out[i] = (qq - self.limbs[i]) % qq
        return RnsPolynomial(self.basis, out, self.domain)

    def __mul__(self, other) -> "RnsPolynomial":
        if isinstance(other, int):
            return self.scalar_mul(other)
        self._check_compatible(other, "mul")
        if self.domain is not Domain.NTT:
            raise ValueError("polynomial multiply requires NTT domain; call to_ntt()")
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.moduli):
            out[i] = (self.limbs[i] * other.limbs[i]) % np.uint64(q)
        return RnsPolynomial(self.basis, out, Domain.NTT)

    __rmul__ = __mul__

    def scalar_mul(self, scalar: int) -> "RnsPolynomial":
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.moduli):
            out[i] = (self.limbs[i] * np.uint64(scalar % q)) % np.uint64(q)
        return RnsPolynomial(self.basis, out, self.domain)

    def automorphism(self, k: int) -> "RnsPolynomial":
        """Apply sigma_k in the current domain (permutation either way)."""
        out = np.empty_like(self.limbs)
        if self.domain is Domain.COEFF:
            for i, q in enumerate(self.basis.moduli):
                out[i] = automorphism_coeff(self.limbs[i], k, q)
        else:
            for i in range(self.basis.level):
                out[i] = automorphism_ntt(self.limbs[i], k)
        return RnsPolynomial(self.basis, out, self.domain)

    # ---------------------------------------------------------- basis surgery
    def drop_limb(self) -> "RnsPolynomial":
        """Discard the last RNS limb (raw truncation, *not* modulus switching —
        the schemes implement proper rounding on top of this)."""
        return RnsPolynomial(self.basis.drop(), self.limbs[:-1].copy(), self.domain)

    def limb(self, i: int) -> np.ndarray:
        return self.limbs[i]

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.limbs.copy(), self.domain)

    def __repr__(self) -> str:
        return (
            f"RnsPolynomial(N={self.n}, L={self.basis.level}, domain={self.domain.value})"
        )
