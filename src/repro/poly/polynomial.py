"""RnsPolynomial: the value type FHE schemes compute on.

A polynomial in R_Q, stored as an (L, N) uint64 array of residue polynomials
("RVecs" in the paper, one per RNS limb), tagged with its domain: COEFF or
NTT.  All homomorphic-operation math in :mod:`repro.fhe` is built from the
element-wise and NTT/automorphism operations here — precisely the primitive
set F1's functional units implement.

Everything operates on the full (L, N) residue matrix at once: domain
conversions go through the batched :class:`~repro.poly.ntt.RnsNttContext`
and element-wise arithmetic broadcasts the basis' (L, 1) modulus column, so
no hot path iterates limb-by-limb in Python.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.poly import kernels
from repro.poly.automorphism import automorphism_coeff_rows, automorphism_ntt_permutation
from repro.poly.ntt import get_rns_context
from repro.rns.crt import RnsBasis


class Domain(enum.Enum):
    COEFF = "coeff"
    NTT = "ntt"


class RnsPolynomial:
    """An element of R_Q in RNS form.

    Arithmetic requires matching bases and domains; use :meth:`to_ntt` /
    :meth:`to_coeff` to convert.  Instances are mutated only through the
    returned copies — operations are functional.
    """

    __slots__ = ("basis", "n", "limbs", "domain")

    def __init__(self, basis: RnsBasis, limbs: np.ndarray, domain: Domain):
        limbs = np.asarray(limbs, dtype=np.uint64)
        if limbs.ndim != 2 or limbs.shape[0] != basis.level:
            raise ValueError(
                f"limbs shape {limbs.shape} does not match basis level {basis.level}"
            )
        self.basis = basis
        self.n = limbs.shape[1]
        self.limbs = limbs
        self.domain = domain

    # ---------------------------------------------------------------- factory
    @classmethod
    def zeros(cls, basis: RnsBasis, n: int, domain: Domain = Domain.COEFF) -> "RnsPolynomial":
        return cls(basis, np.zeros((basis.level, n), dtype=np.uint64), domain)

    @classmethod
    def from_int_coeffs(cls, basis: RnsBasis, coeffs) -> "RnsPolynomial":
        """Build from (possibly signed, possibly wide) integer coefficients."""
        return cls(basis, basis.to_rns(coeffs), Domain.COEFF)

    @classmethod
    def random_uniform(cls, basis: RnsBasis, n: int, rng: np.random.Generator) -> "RnsPolynomial":
        """Uniform element of R_Q.

        Each limb is drawn independently and uniformly from ``[0, q_i)``; by
        the CRT bijection the joint draw is *exactly* uniform over ``[0, Q)``
        — and fully vectorized.  (A previous implementation reduced a fixed
        128-bit draw mod Q, which confines samples to ``[0, 2^128)`` and is
        badly biased for any basis with log2(Q) > 128.)
        """
        limbs = np.stack(
            [rng.integers(0, q, size=n, dtype=np.uint64) for q in basis.moduli]
        )
        return cls(basis, limbs, Domain.COEFF)

    # -------------------------------------------------------------- serde
    def to_state(self) -> dict:
        """Compact serializable form: the residue matrix plus the moduli.

        NTT twiddles and Shoup quotients are process-global caches keyed by
        ``(n, moduli)`` (see :func:`repro.poly.ntt.get_rns_context`) and are
        rebuilt on demand after a restore — never shipped.
        """
        return {
            "moduli": self.basis.moduli,
            "limbs": self.limbs,
            "domain": self.domain.value,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RnsPolynomial":
        return cls(RnsBasis(state["moduli"]), state["limbs"],
                   Domain(state["domain"]))

    def __getstate__(self):
        return self.to_state()

    def __setstate__(self, state):
        # Delegate to from_state so pickle restores go through the same
        # constructor validation as every other deserialization path.
        restored = RnsPolynomial.from_state(state)
        self.basis = restored.basis
        self.n = restored.n
        self.limbs = restored.limbs
        self.domain = restored.domain

    # ------------------------------------------------------------ conversions
    def to_ntt(self) -> "RnsPolynomial":
        if self.domain is Domain.NTT:
            return self
        ctx = get_rns_context(self.n, self.basis.moduli)
        return RnsPolynomial(self.basis, ctx.forward(self.limbs), Domain.NTT)

    def to_coeff(self) -> "RnsPolynomial":
        if self.domain is Domain.COEFF:
            return self
        ctx = get_rns_context(self.n, self.basis.moduli)
        return RnsPolynomial(self.basis, ctx.inverse(self.limbs), Domain.COEFF)

    def to_int_coeffs(self, *, centered: bool = True) -> list[int]:
        """CRT-reconstruct the wide integer coefficients (coefficient domain)."""
        return self.basis.from_rns(self.to_coeff().limbs, centered=centered)

    # ------------------------------------------------------------- arithmetic
    def _check_compatible(self, other: "RnsPolynomial", op: str) -> None:
        if self.basis != other.basis:
            raise ValueError(f"{op}: RNS bases differ")
        if self.domain is not other.domain:
            raise ValueError(f"{op}: domains differ ({self.domain} vs {other.domain})")

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other, "add")
        q = self.basis.moduli_column()
        return RnsPolynomial(
            self.basis, kernels.add_mod(self.limbs, other.limbs, q), self.domain
        )

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        # Limbs are invariantly reduced (every constructor and kernel emits
        # [0, q)); sub_mod relies on that instead of re-reducing defensively,
        # and asserts it under REPRO_KERNEL_DEBUG=1.
        self._check_compatible(other, "sub")
        q = self.basis.moduli_column()
        return RnsPolynomial(
            self.basis, kernels.sub_mod(self.limbs, other.limbs, q), self.domain
        )

    def __neg__(self) -> "RnsPolynomial":
        q = self.basis.moduli_column()
        return RnsPolynomial(self.basis, kernels.neg_mod(self.limbs, q), self.domain)

    def __mul__(self, other) -> "RnsPolynomial":
        if isinstance(other, int):
            return self.scalar_mul(other)
        self._check_compatible(other, "mul")
        if self.domain is not Domain.NTT:
            raise ValueError("polynomial multiply requires NTT domain; call to_ntt()")
        q = self.basis.moduli_column()
        return RnsPolynomial(
            self.basis, kernels.mul_mod(self.limbs, other.limbs, q), Domain.NTT
        )

    __rmul__ = __mul__

    def scalar_mul(self, scalar: int) -> "RnsPolynomial":
        scalar_col = np.array(
            [scalar % q for q in self.basis.moduli], dtype=np.uint64
        ).reshape(-1, 1)
        q = self.basis.moduli_column()
        return RnsPolynomial(self.basis, (self.limbs * scalar_col) % q, self.domain)

    def automorphism(self, k: int) -> "RnsPolynomial":
        """Apply sigma_k in the current domain (permutation either way)."""
        if self.domain is Domain.COEFF:
            out = automorphism_coeff_rows(self.limbs, k, self.basis.moduli_column())
        else:
            perm = automorphism_ntt_permutation(self.n, k)
            out = self.limbs[:, perm]
        return RnsPolynomial(self.basis, out, self.domain)

    # ---------------------------------------------------------- basis surgery
    def drop_limb(self) -> "RnsPolynomial":
        """Discard the last RNS limb (raw truncation, *not* modulus switching —
        the schemes implement proper rounding on top of this)."""
        return RnsPolynomial(self.basis.drop(), self.limbs[:-1].copy(), self.domain)

    def limb(self, i: int) -> np.ndarray:
        return self.limbs[i]

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.limbs.copy(), self.domain)

    def __repr__(self) -> str:
        return (
            f"RnsPolynomial(N={self.n}, L={self.basis.level}, domain={self.domain.value})"
        )
