"""Centralized modular-arithmetic kernels for the batched residue engine.

Every hot path in the engine — NTT butterflies, element-wise ciphertext
arithmetic, the key-switch inner loop — bottoms out in a handful of modular
primitives.  numpy's ``uint64 %`` is an order of magnitude slower than a
vectorized multiply or add (hardware integer division), so this module
replaces division with two cheaper techniques, mirroring how the paper's
modular multipliers avoid generic division in hardware (Sec. 5.3):

1. **Conditional subtraction** (:func:`cond_sub`): a value known to lie in
   ``[0, 2q)`` is reduced to ``[0, q)`` with a single subtract-and-select.
   We use the unsigned-wraparound trick ``min(x, x - q)``: when ``x < q``
   the subtraction wraps far above ``2^63`` so the minimum keeps ``x``;
   when ``x >= q`` it yields the reduced value, which is smaller.  Sound
   whenever ``x < 2q`` and ``q < 2^63``.

2. **Harvey/Shoup lazy multiplication** (:func:`shoup_mul`): with a
   precomputed scaled twiddle ``w' = floor(w * 2^s / q)`` the product
   ``x*w mod q`` is obtained *division-free* as ``x*w - q*((x*w') >> s)``,
   landing in the *lazy* range ``[0, 2q)`` (see the proof in
   :func:`shoup_mul`).  Butterflies keep values in ``[0, 2q)`` throughout
   and reduce exactly once at the end of the transform.

The lazy range requires uint64 headroom: all preconditions are proven for
``q < 2^31`` (:data:`MAX_LAZY_MODULUS`).  The default parameter sets use
28-bit primes, leaving ample slack; callers with moduli in ``[2^31, 2^32)``
must use the strict (division-based) paths — :class:`repro.poly.ntt.NttContext`
and friends select automatically and are bit-identical either way, because
every lazy intermediate is congruent mod q to its strict counterpart and the
final reduction is exact.

Debug validation: set the environment variable ``REPRO_KERNEL_DEBUG=1`` (or
flip :data:`DEBUG_VALIDATE`) to assert the reduced-input invariants that the
fast paths rely on instead of re-reducing defensively.
"""

from __future__ import annotations

import os

import numpy as np

from repro.obs.profile import instrument

#: Exclusive upper bound on moduli eligible for the lazy ([0, 2q)) paths.
#: Proof obligations (see shoup_mul / lazy_butterfly): with x < 2q and
#: w < q, both x*w and x*w' stay below 2^63 < 2^64 only when q < 2^31.
MAX_LAZY_MODULUS = 1 << 31

#: When True, kernels assert their documented input invariants (values
#: reduced, moduli in range).  Enabled by REPRO_KERNEL_DEBUG=1; cheap enough
#: for tests, off by default for production hot paths.
DEBUG_VALIDATE = os.environ.get("REPRO_KERNEL_DEBUG", "") not in ("", "0")


def _validate_reduced(x: np.ndarray, q, what: str) -> None:
    if DEBUG_VALIDATE:
        assert np.all(x < q), f"{what}: operand not reduced below modulus"


def lazy_supported(moduli) -> bool:
    """True when every modulus qualifies for the lazy-reduction paths."""
    return max(int(q) for q in moduli) < MAX_LAZY_MODULUS


# --------------------------------------------------------------- reduction
def cond_sub(x: np.ndarray, q) -> np.ndarray:
    """Reduce ``x in [0, 2q)`` to ``[0, q)`` by one conditional subtract.

    Implemented as ``min(x, x - q)`` on uint64: for ``x < q`` the subtract
    wraps to ``x + (2^64 - q) > x`` (since ``x < 2q <= 2^63``), so the
    minimum is ``x``; for ``x >= q`` it is the in-range difference
    ``x - q < q <= x``.  One vector subtract + one vector min — no division,
    no boolean select.
    """
    return np.minimum(x, x - q)


def reduce_once(x: np.ndarray, q) -> np.ndarray:
    """Alias of :func:`cond_sub` for call sites where the ``[0, 2q)``
    precondition comes from *cross-modulus* data (e.g. lifting a digit in
    ``[0, q_i)`` to modulus ``q_j`` with ``q_i < 2*q_j``)."""
    return np.minimum(x, x - q)


# ------------------------------------------------------- element-wise ring ops
def add_mod(x: np.ndarray, y: np.ndarray, q) -> np.ndarray:
    """``(x + y) mod q`` for reduced inputs — division-free.

    ``x, y in [0, q)`` gives ``x + y in [0, 2q)``; with the engine-wide
    ``q < 2^32`` the sum is below ``2^33``, far from uint64 wrap, and one
    :func:`cond_sub` finishes the job.  Works for any ``q < 2^63``.
    """
    _validate_reduced(x, q, "add_mod lhs")
    _validate_reduced(y, q, "add_mod rhs")
    return cond_sub(x + y, q)


def sub_mod(x: np.ndarray, y: np.ndarray, q) -> np.ndarray:
    """``(x - y) mod q`` for reduced inputs — division-free.

    ``x + (q - y) in [0, 2q)`` when both operands are already reduced (the
    engine-wide invariant; no defensive re-reduction of ``y``), so one
    :func:`cond_sub` suffices.
    """
    _validate_reduced(x, q, "sub_mod lhs")
    _validate_reduced(y, q, "sub_mod rhs")
    return cond_sub(x + (q - y), q)


def neg_mod(x: np.ndarray, q) -> np.ndarray:
    """``(-x) mod q`` for reduced input: ``q - x in (0, q]``, fixed up to
    ``[0, q)`` (the ``x == 0`` slots) by one :func:`cond_sub`."""
    _validate_reduced(x, q, "neg_mod")
    return cond_sub(q - x, q)


def mul_mod(x: np.ndarray, y: np.ndarray, q) -> np.ndarray:
    """``(x * y) mod q`` for reduced inputs; products fit uint64 for q < 2^32.

    The one place a true division remains; Shoup multiplication needs a
    precomputed partner (see :func:`shoup_mul`) so generic value-times-value
    products pay the ``%``.
    """
    _validate_reduced(x, q, "mul_mod lhs")
    _validate_reduced(y, q, "mul_mod rhs")
    return (x * y) % q


def fused_mul_add(a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray,
                  q) -> np.ndarray:
    """``(a*b + c*d) mod q`` with a single reduction.

    Used by the tensor-product middle term ``l1 = a0*b1 + a1*b0`` of
    homomorphic multiplication.  Both products are below ``(q-1)^2``, so the
    sum stays below ``2*(q-1)^2 < 2^64`` whenever ``q <= 2^31``; above that
    we fall back to reducing each product first (still one fewer division
    than reduce-add-reduce).
    """
    qmax = int(np.max(q))
    if 2 * (qmax - 1) ** 2 < 1 << 64:
        return (a * b + c * d) % q
    return add_mod((a * b) % q, (c * d) % q, q)


@instrument("modmul_mac")
def mul_accumulate(stack_a: np.ndarray, stack_b: np.ndarray,
                   q_col: np.ndarray) -> np.ndarray:
    """``sum_k stack_a[k] * stack_b[k] mod q`` — the key-switch inner loop.

    ``stack_a``/``stack_b`` are ``(K, L, N)`` residue-matrix stacks with
    ``q_col`` the ``(L, 1)`` modulus column.  Each product is below
    ``(q-1)^2``; when ``K * (q-1)^2 < 2^64`` (e.g. 28-bit primes up to
    K = 256 terms) the raw products are summed *unreduced* and a single
    division per output limb finishes — 2K-2 fewer reductions than the
    reduce-accumulate-reduce loop it replaces.  Otherwise each product is
    reduced first and the sum of K reduced terms (< K * 2^32 < 2^64 for any
    realistic K) still needs only one final division.
    """
    k = stack_a.shape[0]
    qmax = int(q_col.max())
    if k * (qmax - 1) ** 2 < 1 << 64:
        return (stack_a * stack_b).sum(axis=0) % q_col
    return ((stack_a * stack_b) % q_col[None]).sum(axis=0) % q_col


# --------------------------------------------------- Shoup lazy multiplication
def shoup_shift(q: int) -> int:
    """The per-modulus scaling shift ``s`` for Shoup multiplication.

    Chosen as ``s = 63 - bitlen(2q)`` so that ``x * w' < 2q * 2^s <= 2^63``
    for every lazy operand ``x < 2q`` — the largest shift that can never
    overflow uint64.
    """
    return 63 - (2 * q).bit_length()


def shoup_needs_extra_sub(q: int) -> bool:
    """Whether :func:`shoup_mul` for this modulus lands in ``[0, 3q)``
    instead of ``[0, 2q)`` (quotient estimate off by up to 2, see
    :func:`shoup_mul`); true only for ``q in (2^30, 2^31)``."""
    return 2 * q > 1 << shoup_shift(q)


def shoup_precompute(table: np.ndarray, q: int) -> np.ndarray:
    """Scaled-twiddle partner ``w' = floor(w << s / q)`` for each table entry.

    Exact integer arithmetic (Python ints); done once per cached table.
    """
    s = shoup_shift(q)
    wide = np.asarray(table, dtype=np.uint64).astype(object) << s
    return (wide // q).astype(np.uint64)


def shoup_mul(x: np.ndarray, w: np.ndarray, w_shoup: np.ndarray,
              shift, q, out: np.ndarray | None = None) -> np.ndarray:
    """Division-free ``x * w mod q`` into the lazy range ``[0, 2q)``.

    Preconditions (with ``s = shoup_shift(q)`` and ``q < 2^31``):

    - ``x < 2q`` (lazy operand), ``w < q`` (precomputed constant),
      ``w_shoup = floor(w * 2^s / q) < 2^s``;
    - ``x * w < 2q * q < 2^63`` and ``x * w_shoup < 2q * 2^s <= 2^63``
      (by the choice of ``s``), so both products fit uint64 exactly.

    With ``est = (x * w_shoup) >> s``: writing ``w_shoup = (w*2^s - r)/q``
    for ``r in [0, q)``, we get ``x*w_shoup/2^s = x*w/q - x*r/(q*2^s)`` and
    ``x*r/(q*2^s) < x/2^s <= 2q/2^s``.  When ``2q <= 2^s`` (every
    ``q <= 2^30``) the error is below 1, so ``est`` is the true quotient or
    one less and the remainder ``x*w - q*est`` lies in ``[0, 2q)``.  For
    ``q in (2^30, 2^31)`` the error can reach 2 (``[0, 3q)`` result); those
    moduli carry :func:`shoup_needs_extra_sub` and the callers append one
    extra conditional subtract of ``2q``.  ``est <= x*w/q`` always, so the
    final subtraction never underflows.

    All intermediates are congruent to ``x*w`` mod q, so downstream exact
    reduction yields bit-identical results to the strict ``%`` path.

    With ``out`` given, the result is written into that array (saving the
    hot paths a temp-then-copy pass when the destination is a strided view).
    """
    est = (x * w_shoup) >> shift
    if out is None:
        return x * w - est * q
    np.multiply(x, w, out=out)
    np.multiply(est, q, out=est)
    np.subtract(out, est, out=out)
    return out


def lazy_butterfly(lo: np.ndarray, hi: np.ndarray, w: np.ndarray,
                   w_shoup: np.ndarray, shift, q, two_q,
                   extra_sub: bool) -> tuple[np.ndarray, np.ndarray]:
    """One lazy Cooley-Tukey butterfly layer: inputs and outputs in ``[0, 2q)``.

    ``t = x*w mod q`` lands in ``[0, 2q)`` via :func:`shoup_mul` (one extra
    :func:`cond_sub` of ``2q`` for the wide moduli flagged by
    ``extra_sub``).  Then

    - ``new_lo = lo + t in [0, 4q)`` — one cond-sub of ``2q`` -> ``[0, 2q)``;
    - ``new_hi = lo + (2q - t) in (0, 4q)`` — same reduction.

    ``4q < 2^33`` keeps every sum far from uint64 wrap.  Zero divisions.
    """
    t = shoup_mul(hi, w, w_shoup, shift, q)
    if extra_sub:
        t = cond_sub(t, two_q)
    return cond_sub(lo + t, two_q), cond_sub(lo + (two_q - t), two_q)
