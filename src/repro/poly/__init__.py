"""Polynomial-ring substrate: RNS polynomials over R_Q = Z_Q[x]/(x^N + 1).

Implements the math the F1 functional units compute (Sec. 5):

- negacyclic NTT / inverse NTT (:mod:`repro.poly.ntt`), including the
  *four-step* decomposition the hardware NTT unit uses (:mod:`repro.poly.fourstep`);
- automorphisms :math:`\\sigma_k` with the column/row/transpose vectorized
  decomposition of Sec. 5.1 (:mod:`repro.poly.automorphism`);
- the quadrant-swap transpose (:mod:`repro.poly.transpose`);
- the :class:`~repro.poly.polynomial.RnsPolynomial` value type used by the
  FHE schemes.
"""

from repro.poly.ntt import NttContext, RnsNttContext, get_rns_context
from repro.poly.fourstep import four_step_ntt, four_step_intt
from repro.poly.automorphism import (
    automorphism_coeff,
    automorphism_ntt_permutation,
    decompose_automorphism,
    valid_automorphism_exponents,
)
from repro.poly.transpose import quadrant_swap_transpose
from repro.poly.polynomial import RnsPolynomial

__all__ = [
    "NttContext",
    "RnsNttContext",
    "get_rns_context",
    "four_step_ntt",
    "four_step_intt",
    "automorphism_coeff",
    "automorphism_ntt_permutation",
    "decompose_automorphism",
    "valid_automorphism_exponents",
    "quadrant_swap_transpose",
    "RnsPolynomial",
]
