"""Quadrant-swap transpose unit (Sec. 5.1, Fig. 7) — functional model.

The hardware transposes an E×E matrix streamed E elements per cycle by
recursively swapping quadrants:

    [[A, B],      [[A^T, C^T],
     [C, D]]^T  =  [B^T, D^T]]

This module implements exactly that recursion (`quadrant_swap_transpose`) so
tests can check it against ``numpy.transpose``, plus the G×E (G ≤ E) variant
used for residue polynomials where ``N = G*E < E*E`` — the hardware handles
those by bypassing the outer quadrant swaps (Fig. 7 right).
"""

from __future__ import annotations

import numpy as np


def _swap_quadrants(m: np.ndarray) -> np.ndarray:
    """One quadrant-swap step: exchange the off-diagonal quadrants B and C."""
    k = m.shape[0] // 2
    out = m.copy()
    out[:k, k:], out[k:, :k] = m[k:, :k].copy(), m[:k, k:].copy()
    return out


def quadrant_swap_transpose(matrix: np.ndarray) -> np.ndarray:
    """Transpose a square power-of-two matrix via recursive quadrant swaps."""
    matrix = np.asarray(matrix)
    rows, cols = matrix.shape
    if rows != cols or rows & (rows - 1):
        raise ValueError(f"need a square power-of-two matrix, got {matrix.shape}")
    if rows == 1:
        return matrix.copy()
    swapped = _swap_quadrants(matrix)
    k = rows // 2
    out = np.empty_like(swapped)
    out[:k, :k] = quadrant_swap_transpose(swapped[:k, :k])
    out[:k, k:] = quadrant_swap_transpose(swapped[:k, k:])
    out[k:, :k] = quadrant_swap_transpose(swapped[k:, :k])
    out[k:, k:] = quadrant_swap_transpose(swapped[k:, k:])
    return out


def transpose_chunked(values: np.ndarray, e: int) -> np.ndarray:
    """Transpose a G×E-shaped residue polynomial as the hardware does.

    ``values`` is a flat length-N array interpreted as G rows of E elements
    (G = N / E, power of two, G ≤ E).  Returns the flat E×G transpose.  For
    G < E the hardware bypasses the initial quadrant swaps; functionally this
    is a plain reshape-transpose, which we verify against the square
    quadrant-swap path when G == E.
    """
    values = np.asarray(values)
    n = values.shape[0]
    if n % e:
        raise ValueError(f"N={n} not divisible by E={e}")
    g = n // e
    if g > e:
        raise ValueError(f"G={g} exceeds E={e}; hardware supports G <= E")
    matrix = values.reshape(g, e)
    if g == e:
        return quadrant_swap_transpose(matrix).reshape(-1)
    return matrix.T.reshape(-1)
