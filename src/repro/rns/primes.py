"""NTT-friendly prime generation.

A negacyclic NTT of length ``N`` over ``Z_q`` requires a primitive ``2N``-th
root of unity, i.e. ``q ≡ 1 (mod 2N)``.

Sec. 5.3 of the paper further restricts moduli so that one multiplier stage of
the Montgomery reduction disappears: with radix :math:`2^{16}`, the Montgomery
constant is :math:`q' = -q^{-1} \\bmod 2^{16}`; choosing ``q ≡ 1 (mod 2^16)``
makes ``q' = 2^16 - 1`` ("−1"), so the multiply by ``q'`` becomes a negation.
Such *FHE-friendly* primes are automatically NTT-friendly for every power-of-2
``N ≤ 2^15``, and the paper counts 6,186 of them among 32-bit primes (a count
``count_fhe_friendly_32bit`` reproduces).
"""

from __future__ import annotations

import random

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit integers."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are deterministic for n < 3.3 * 10^24.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def ntt_friendly_primes(n: int, bits: int, count: int, *, seed: int | None = None) -> list[int]:
    """Return ``count`` distinct primes ``q ≡ 1 (mod 2n)`` of roughly ``bits`` bits.

    Primes are scanned downward from ``2^bits`` so results are deterministic
    for a given (n, bits) unless ``seed`` is given, in which case the starting
    point is randomized (matching the paper's note that moduli are sampled
    randomly in the functional simulator).
    """
    if n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    modulus_step = 2 * n
    start = (1 << bits) - 1
    if seed is not None:
        rng = random.Random(seed)
        start -= rng.randrange(0, 1 << (bits - 4))
    candidate = start - (start % modulus_step) + 1
    if candidate > start:
        candidate -= modulus_step
    primes: list[int] = []
    while len(primes) < count:
        if candidate < (1 << (bits - 1)):
            raise ValueError(
                f"not enough {bits}-bit primes ≡ 1 mod {modulus_step} (found {len(primes)})"
            )
        if is_prime(candidate):
            primes.append(candidate)
        candidate -= modulus_step
    return primes


def fhe_friendly_primes(n: int, bits: int, count: int) -> list[int]:
    """Primes satisfying the Sec. 5.3 restriction ``q ≡ 1 (mod 2^16)``.

    These are usable with the simplified FHE-friendly modular multiplier and
    are NTT-friendly for all ``N ≤ 2^15``.  Requires ``bits > 16``.
    """
    if bits <= 16:
        raise ValueError("FHE-friendly primes need more than 16 bits")
    step = max(2 * n, 1 << 16)
    candidate = (1 << bits) - step + 1
    primes: list[int] = []
    while len(primes) < count:
        if candidate < (1 << (bits - 1)):
            raise ValueError(f"not enough FHE-friendly {bits}-bit primes")
        if is_prime(candidate):
            primes.append(candidate)
        candidate -= step
    return primes


def count_fhe_friendly_32bit() -> int:
    """Count 32-bit primes ``q ≡ 1 (mod 2^16)`` (paper: "6,186 prime moduli")."""
    return sum(
        1
        for k in range(1 << 16, 1 << 32, 1 << 16)
        if is_prime(k + 1)
    )


def primitive_root_of_unity(order: int, q: int) -> int:
    """Find a primitive ``order``-th root of unity modulo prime ``q``."""
    if (q - 1) % order != 0:
        raise ValueError(f"{order} does not divide q-1 = {q - 1}")
    cofactor = (q - 1) // order
    # The multiplicative group is cyclic of order q-1; g^cofactor generates the
    # order-`order` subgroup whenever g is a generator.  Scan small candidates.
    for g in range(2, q):
        root = pow(g, cofactor, q)
        if pow(root, order // 2, q) == q - 1:
            return root
    raise ValueError(f"no primitive root of order {order} mod {q}")
