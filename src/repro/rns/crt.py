"""Chinese-Remainder-Theorem utilities for RNS bases.

An :class:`RnsBasis` captures an ordered tuple of distinct primes
``(q_1, ..., q_L)`` whose product is the ciphertext modulus ``Q``.  Modulus
switching drops the last prime, so bases form a chain; :meth:`RnsBasis.drop`
returns the next basis in the chain.

Batched layout: RNS values are limb-major ``(L, N)`` uint64 matrices (row i
holds the residues mod ``q_i``), matching the batched NTT engine in
:mod:`repro.poly.ntt`.  Conversions are vectorized:

- :meth:`RnsBasis.to_rns` reduces machine-width integer arrays with one numpy
  remainder per limb (object-free for inputs and moduli below 63 bits), skips
  even that when every input value is already below every modulus (the
  residues *are* the values), and falls back to a Python-int path only for
  wide inputs;
- :meth:`RnsBasis.from_rns` computes all CRT digits ``[x_i * (Q/q_i)^{-1}]_{q_i}``
  division-free (Shoup partners, via :mod:`repro.rns.convert`) and evaluates
  the digit-weighted sum ``sum_i d_i * (Q/q_i)`` through raw uint64 word
  matmuls (:class:`repro.rns.convert.WordAccumulator`), dropping to the
  object-array formulation only past the overflow bound — both paths are
  exact, so results are bit-identical.
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from repro.obs.profile import instrument


def _convert():
    # Deferred: repro.rns.convert pulls in repro.poly, whose package init
    # imports this module — a cycle at import time, gone at call time.
    from repro.rns import convert
    return convert


class RnsBasis:
    """An ordered RNS basis ``(q_1, ..., q_L)`` with CRT helpers.

    The basis is immutable and hashable so ciphertexts and key material can key
    caches off it.
    """

    __slots__ = ("moduli", "_modulus", "_q_col", "_q_col_i64")

    def __init__(self, moduli: tuple[int, ...] | list[int]):
        moduli = tuple(int(q) for q in moduli)
        if not moduli:
            raise ValueError("RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        self.moduli = moduli
        self._modulus = reduce(lambda a, b: a * b, moduli, 1)
        if max(moduli) < 1 << 63:
            self._q_col = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
            self._q_col_i64 = self._q_col.astype(np.int64)
        else:  # pathological wide moduli: vectorized fast paths disabled
            self._q_col = None
            self._q_col_i64 = None

    @property
    def level(self) -> int:
        """Number of limbs L."""
        return len(self.moduli)

    @property
    def modulus(self) -> int:
        """The wide modulus ``Q`` as a Python integer."""
        return self._modulus

    def moduli_column(self) -> np.ndarray:
        """The moduli as an (L, 1) uint64 column for broadcast arithmetic."""
        if self._q_col is None:
            raise ValueError("moduli too wide for uint64 vectorized arithmetic")
        return self._q_col

    def drop(self, count: int = 1) -> "RnsBasis":
        """Basis after modulus-switching away the last ``count`` primes."""
        if count >= self.level:
            raise ValueError("cannot drop all RNS limbs")
        return RnsBasis(self.moduli[: self.level - count])

    def crt_weights(self) -> tuple[tuple[int, int], ...]:
        """CRT interpolation data: ``(Q/q_i, (Q/q_i)^{-1} mod q_i)`` per limb."""
        return _convert().crt_weights(self.moduli)

    @instrument("crt_to_rns")
    def to_rns(self, coeffs) -> np.ndarray:
        """Reduce integer coefficients (array or list of Python ints) limb-wise.

        Returns an ``(L, N)`` uint64 array.  Machine-integer inputs take a
        fully vectorized path (one numpy remainder per limb); wide Python
        ints fall back to an object-array reduction mod Q first.
        """
        arr = np.asarray(coeffs)
        if arr.dtype.kind in "iu" and self._q_col is not None:
            if arr.dtype.kind == "u":
                if arr.size and int(arr.max()) < min(self.moduli):
                    # Already reduced below every modulus: the residues are
                    # the values — one tile, zero divisions.
                    return np.tile(arr.astype(np.uint64), (self.level, 1))
                return np.remainder(
                    arr.astype(np.uint64)[None, :], self._q_col
                )
            if (arr.size and int(arr.min()) >= 0
                    and int(arr.max()) < min(self.moduli)):
                return np.tile(arr.astype(np.uint64), (self.level, 1))
            # np.remainder takes the divisor's sign: non-negative for q > 0.
            return np.remainder(
                arr.astype(np.int64)[None, :], self._q_col_i64
            ).astype(np.uint64)
        # Fallback: arbitrary-precision inputs (or >=63-bit moduli).
        values = np.array([int(c) % self._modulus for c in coeffs], dtype=object)
        out = np.empty((self.level, values.shape[0]), dtype=np.uint64)
        for i, q in enumerate(self.moduli):
            out[i] = (values % q).astype(np.uint64)
        return out

    @instrument("crt_from_rns")
    def from_rns(self, limbs: np.ndarray, *, centered: bool = False) -> list[int]:
        """CRT-reconstruct wide integer coefficients from an ``(L, N)`` array.

        With ``centered=True`` results lie in ``(-Q/2, Q/2]``, which is what
        decryption needs to recover signed noise terms.
        """
        limbs = np.asarray(limbs, dtype=np.uint64)
        if limbs.shape[0] != self.level:
            raise ValueError(
                f"expected {self.level} limbs, got {limbs.shape[0]}"
            )
        big_q = self._modulus
        if self._q_col is not None and max(self.moduli) < 1 << 32:
            convert = _convert()
            accumulator = convert.get_word_accumulator(self.moduli)
            if accumulator.ok:
                # Digits stay uint64; the weighted sum runs as raw word
                # matmuls and Python ints appear only in the final
                # per-coefficient recomposition.  Exact, hence
                # bit-identical to the object path below.
                digits = convert.get_digit_decomposer(self.moduli).digits(
                    limbs
                )
                vals = accumulator.reconstruct(digits)
                half = big_q // 2
                if centered:
                    out = []
                    for c in vals:
                        c %= big_q
                        out.append(c - big_q if c > half else c)
                    return out
                return [c % big_q for c in vals]
        return self._from_rns_exact(limbs, centered=centered)

    def _from_rns_exact(
        self, limbs: np.ndarray, *, centered: bool = False
    ) -> list[int]:
        """The retained object-array CRT reconstruction (exact oracle and
        automatic fallback past the word accumulator's overflow bound)."""
        weights = self.crt_weights()
        big_q = self._modulus
        if self._q_col is not None and max(self.moduli) < 1 << 32:
            # Digits d_i = [x_i * (Q/q_i)^{-1}]_{q_i} in one uint64 op
            # (products < 2^64 because q_i < 2^32).
            inv_col = np.array(
                [w[1] for w in weights], dtype=np.uint64
            ).reshape(-1, 1)
            digits = ((limbs * inv_col) % self._q_col).astype(object)
        else:
            digits = np.array(
                [
                    [(int(r) * w[1]) % q for r in row]
                    for row, w, q in zip(limbs, weights, self.moduli)
                ],
                dtype=object,
            ).reshape(self.level, limbs.shape[1])
        q_over_col = np.array(
            [w[0] for w in weights], dtype=object
        ).reshape(-1, 1)
        acc = (digits * q_over_col).sum(axis=0) % big_q
        if centered:
            acc = np.where(acc > big_q // 2, acc - big_q, acc)
        return [int(c) for c in acc]

    def __reduce__(self):
        # Serialize as the moduli tuple alone; the derived broadcast columns
        # (_q_col/_q_col_i64) are rebuilt by __init__ on load, so pickled
        # bases stay compact and never ship derived arrays.
        return (RnsBasis, (self.moduli,))

    def __eq__(self, other) -> bool:
        return isinstance(other, RnsBasis) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        return f"RnsBasis(L={self.level}, logQ≈{self._modulus.bit_length()})"


def _crt_weights(moduli: tuple[int, ...]) -> tuple[tuple[int, int], ...]:
    """Backward-compatible alias; the cache lives with the conversion tables."""
    return _convert().crt_weights(moduli)
