"""Chinese-Remainder-Theorem utilities for RNS bases.

An :class:`RnsBasis` captures an ordered tuple of distinct primes
``(q_1, ..., q_L)`` whose product is the ciphertext modulus ``Q``.  Modulus
switching drops the last prime, so bases form a chain; :meth:`RnsBasis.drop`
returns the next basis in the chain.
"""

from __future__ import annotations

from functools import lru_cache, reduce

import numpy as np


class RnsBasis:
    """An ordered RNS basis ``(q_1, ..., q_L)`` with CRT helpers.

    The basis is immutable and hashable so ciphertexts and key material can key
    caches off it.
    """

    __slots__ = ("moduli", "_modulus")

    def __init__(self, moduli: tuple[int, ...] | list[int]):
        moduli = tuple(int(q) for q in moduli)
        if not moduli:
            raise ValueError("RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        self.moduli = moduli
        self._modulus = reduce(lambda a, b: a * b, moduli, 1)

    @property
    def level(self) -> int:
        """Number of limbs L."""
        return len(self.moduli)

    @property
    def modulus(self) -> int:
        """The wide modulus ``Q`` as a Python integer."""
        return self._modulus

    def drop(self, count: int = 1) -> "RnsBasis":
        """Basis after modulus-switching away the last ``count`` primes."""
        if count >= self.level:
            raise ValueError("cannot drop all RNS limbs")
        return RnsBasis(self.moduli[: self.level - count])

    def crt_weights(self) -> list[tuple[int, int]]:
        """CRT interpolation data: ``(Q/q_i, (Q/q_i)^{-1} mod q_i)`` per limb."""
        return _crt_weights(self.moduli)

    def to_rns(self, coeffs) -> np.ndarray:
        """Reduce integer coefficients (array or list of Python ints) limb-wise.

        Returns an ``(L, N)`` uint64 array.
        """
        values = [int(c) % self._modulus for c in coeffs]
        return np.array(
            [[v % q for v in values] for q in self.moduli], dtype=np.uint64
        )

    def from_rns(self, limbs: np.ndarray, *, centered: bool = False) -> list[int]:
        """CRT-reconstruct wide integer coefficients from an ``(L, N)`` array.

        With ``centered=True`` results lie in ``(-Q/2, Q/2]``, which is what
        decryption needs to recover signed noise terms.
        """
        if limbs.shape[0] != self.level:
            raise ValueError(
                f"expected {self.level} limbs, got {limbs.shape[0]}"
            )
        weights = self.crt_weights()
        big_q = self._modulus
        out: list[int] = []
        for j in range(limbs.shape[1]):
            acc = 0
            for i, (q_over, q_over_inv) in enumerate(weights):
                residue = int(limbs[i, j])
                acc += q_over * ((residue * q_over_inv) % self.moduli[i])
            acc %= big_q
            if centered and acc > big_q // 2:
                acc -= big_q
            out.append(acc)
        return out

    def __eq__(self, other) -> bool:
        return isinstance(other, RnsBasis) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        return f"RnsBasis(L={self.level}, logQ≈{self._modulus.bit_length()})"


@lru_cache(maxsize=None)
def _crt_weights(moduli: tuple[int, ...]) -> list[tuple[int, int]]:
    big_q = reduce(lambda a, b: a * b, moduli, 1)
    weights = []
    for q in moduli:
        q_over = big_q // q
        weights.append((q_over, pow(q_over % q, -1, q)))
    return weights
