"""Residue Number System (RNS) substrate.

FHE needs very wide ciphertext moduli (hundreds of bits).  F1 sidesteps wide
arithmetic by representing the modulus :math:`Q = q_1 q_2 \\cdots q_L` as a
product of distinct word-sized NTT-friendly primes and operating limb-wise
(Sec. 2.3 of the paper).  This package provides:

- prime generation (:mod:`repro.rns.primes`): NTT-friendly and the stricter
  *FHE-friendly* primes of Sec. 5.3 that simplify the hardware multiplier;
- CRT reconstruction and RNS basis utilities (:mod:`repro.rns.crt`);
- functional models of the hardware modular-multiplier designs compared in
  Table 1 (:mod:`repro.rns.multipliers`), with an area/power/delay model.
"""

from repro.rns.primes import (
    fhe_friendly_primes,
    is_prime,
    ntt_friendly_primes,
    primitive_root_of_unity,
)
from repro.rns.crt import RnsBasis
from repro.rns.multipliers import (
    BarrettMultiplier,
    FheFriendlyMultiplier,
    MontgomeryMultiplier,
    MultiplierCost,
    NttFriendlyMultiplier,
    multiplier_comparison_table,
)

__all__ = [
    "fhe_friendly_primes",
    "is_prime",
    "ntt_friendly_primes",
    "primitive_root_of_unity",
    "RnsBasis",
    "BarrettMultiplier",
    "FheFriendlyMultiplier",
    "MontgomeryMultiplier",
    "MultiplierCost",
    "NttFriendlyMultiplier",
    "multiplier_comparison_table",
]
