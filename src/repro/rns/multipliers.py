"""Functional + cost models of the hardware modular multipliers of Table 1.

The paper compares four 32-bit modular-multiplier designs (Sec. 5.3):

- **Barrett**: general modulus; two wide multiplications for the reduction.
- **Montgomery**: general (odd) modulus; operates in the Montgomery domain.
- **NTT-friendly** (Mert et al. [51]): a word-level Montgomery reduction that
  exploits ``q ≡ 1 (mod 2N)``, dropping reduction stages.
- **FHE-friendly** (this paper): additionally requires ``q ≡ 1 (mod 2^16)``,
  which turns the per-stage multiply by ``q' = -q^{-1} mod 2^16 = -1`` into a
  negation, removing one multiplier stage (19% area, 30% power vs. [51]).

Each class implements the *functional* reduction algorithm (bit-exact, used by
tests to prove all four compute ``a*b mod q``) and exposes a
:class:`MultiplierCost` derived from a structural count of 16x16 multiplier
blocks and adder bits, normalized to the paper's published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BITS = 32
RADIX_BITS = 16

# Cost constants fitted so the structural counts land on Table 1's numbers.
# A 16x16-bit multiplier block in the 14/12nm process, and per-bit adder cost.
_MUL16_AREA_UM2 = 330.0
_MUL16_POWER_MW = 1.10
_ADDER_BIT_AREA_UM2 = 2.9
_ADDER_BIT_POWER_MW = 0.011


@dataclass(frozen=True)
class MultiplierCost:
    """Synthesis-style cost of one modular multiplier instance."""

    area_um2: float
    power_mw: float
    delay_ps: float

    def scaled(self, count: int) -> "MultiplierCost":
        return MultiplierCost(
            self.area_um2 * count, self.power_mw * count, self.delay_ps
        )


def _structural_cost(
    mul16_blocks: int, adder_bits: int, delay_ps: float, activity: float = 1.0
) -> MultiplierCost:
    """Compose block counts into area/power.

    ``activity`` captures switching-activity differences between designs:
    the reduction-specialized multipliers have shorter, better-balanced
    critical paths (1000 ps vs. Barrett's 1317 ps) and correspondingly fewer
    spurious transitions, so their power is below the area-proportional
    estimate.  Factors are fitted to the paper's synthesis results.
    """
    return MultiplierCost(
        area_um2=mul16_blocks * _MUL16_AREA_UM2 + adder_bits * _ADDER_BIT_AREA_UM2,
        power_mw=(mul16_blocks * _MUL16_POWER_MW + adder_bits * _ADDER_BIT_POWER_MW)
        * activity,
        delay_ps=delay_ps,
    )


class _ModularMultiplier:
    """Base class: verifies the modulus and provides the common interface."""

    #: human-readable row name in Table 1
    name: str = "abstract"

    def __init__(self, q: int):
        if not (1 < q < (1 << WORD_BITS)):
            raise ValueError(f"modulus must fit in {WORD_BITS} bits, got {q}")
        if q % 2 == 0:
            raise ValueError("modular multipliers require an odd modulus")
        self.q = q

    def multiply(self, a: int, b: int) -> int:
        """Return ``a * b mod q`` using this design's reduction algorithm."""
        raise NotImplementedError

    @classmethod
    def cost(cls) -> MultiplierCost:
        raise NotImplementedError


class BarrettMultiplier(_ModularMultiplier):
    """Barrett reduction: precompute ``mu = floor(2^(2W)/q)``; 3 wide mults."""

    name = "Barrett"

    def __init__(self, q: int):
        super().__init__(q)
        self._k = 2 * WORD_BITS
        self._mu = (1 << self._k) // q

    def multiply(self, a: int, b: int) -> int:
        a %= self.q
        b %= self.q
        product = a * b
        estimate = (product * self._mu) >> self._k
        remainder = product - estimate * self.q
        while remainder >= self.q:
            remainder -= self.q
        return remainder

    @classmethod
    def cost(cls) -> MultiplierCost:
        # 32x32 product (4 blocks) + 64x33 quotient estimate (8 blocks) +
        # 33x32 q-multiply (4 blocks) ≈ 15 blocks and wide correction adders.
        return _structural_cost(mul16_blocks=15, adder_bits=110, delay_ps=1317.0, activity=1.039)


class MontgomeryMultiplier(_ModularMultiplier):
    """Classic word-level Montgomery (REDC) with radix ``2^16``, two stages."""

    name = "Montgomery"

    def __init__(self, q: int):
        super().__init__(q)
        self._r_bits = WORD_BITS
        self._r = 1 << self._r_bits
        self._q_inv_neg = (-pow(q, -1, self._r)) % self._r
        self._r2 = (self._r * self._r) % q  # to convert into the domain

    def redc(self, t: int) -> int:
        """Montgomery reduction of ``t < q * 2^32``: returns ``t * R^-1 mod q``."""
        m = (t * self._q_inv_neg) % self._r
        u = (t + m * self.q) >> self._r_bits
        if u >= self.q:
            u -= self.q
        return u

    def to_montgomery(self, a: int) -> int:
        return self.redc((a % self.q) * self._r2)

    def from_montgomery(self, a: int) -> int:
        return self.redc(a)

    def multiply(self, a: int, b: int) -> int:
        am = self.to_montgomery(a)
        bm = self.to_montgomery(b)
        return self.from_montgomery(self.redc(am * bm))

    @classmethod
    def cost(cls) -> MultiplierCost:
        # 32x32 product + two 16-bit REDC stages (each a 16x16 m-multiply and a
        # 16x32 q-multiply): 4 + 2*(1+2) = 10 blocks.
        return _structural_cost(mul16_blocks=8, adder_bits=95, delay_ps=1040.0, activity=0.944)


class NttFriendlyMultiplier(MontgomeryMultiplier):
    """Mert et al. [51]: word-level Montgomery specialized to NTT primes.

    Requires ``q ≡ 1 (mod 2N)`` for some power-of-two ``2N ≥ 2^8``; the low
    bits of q being sparse lets the design merge one reduction stage's
    q-multiply into shifts/adds.
    """

    name = "NTT-friendly"

    def __init__(self, q: int, two_n: int = 1 << 8):
        super().__init__(q)
        if q % two_n != 1:
            raise ValueError(f"q must be ≡ 1 mod {two_n} for the NTT-friendly design")
        self.two_n = two_n

    @classmethod
    def cost(cls) -> MultiplierCost:
        return _structural_cost(mul16_blocks=6, adder_bits=64, delay_ps=1000.0, activity=0.734)


class FheFriendlyMultiplier(NttFriendlyMultiplier):
    """This paper's design (Sec. 5.3): ``q ≡ 1 (mod 2^16)``.

    The radix-2^16 Montgomery constant ``q' = -q^{-1} mod 2^16`` equals
    ``2^16 - 1`` ("−1"), so the multiply by ``q'`` in each REDC stage becomes a
    two's-complement negation — one fewer multiplier stage than [51].
    """

    name = "FHE-friendly (ours)"

    def __init__(self, q: int):
        super().__init__(q, two_n=1 << 16)
        # q ≡ 1 mod 2^16  =>  -q^{-1} ≡ -1 mod 2^16.
        assert self._q_inv_neg % (1 << RADIX_BITS) == (1 << RADIX_BITS) - 1

    def redc(self, t: int) -> int:
        """REDC where the m-multiply is a negation (m = -t mod 2^16 per stage)."""
        radix = 1 << RADIX_BITS
        u = t
        for _ in range(WORD_BITS // RADIX_BITS):
            m = (-u) % radix  # negation instead of a 16x16 multiply
            u = (u + m * self.q) >> RADIX_BITS
        if u >= self.q:
            u -= self.q
        return u

    def multiply(self, a: int, b: int) -> int:
        am = self.redc((a % self.q) * self._r2)
        bm = self.redc((b % self.q) * self._r2)
        return self.redc(self.redc(am * bm))

    @classmethod
    def cost(cls) -> MultiplierCost:
        return _structural_cost(mul16_blocks=5, adder_bits=58, delay_ps=1000.0, activity=0.668)


ALL_MULTIPLIERS = (
    BarrettMultiplier,
    MontgomeryMultiplier,
    NttFriendlyMultiplier,
    FheFriendlyMultiplier,
)


def multiplier_comparison_table() -> list[dict]:
    """Regenerate Table 1: area, power, delay per multiplier design."""
    rows = []
    for cls in ALL_MULTIPLIERS:
        cost = cls.cost()
        rows.append(
            {
                "design": cls.name,
                "area_um2": round(cost.area_um2, 1),
                "power_mw": round(cost.power_mw, 2),
                "delay_ps": round(cost.delay_ps, 1),
            }
        )
    return rows
