"""Cached batched RNS base-conversion tables (kernel speed, round 2).

The PR 4 profile puts ``base_extend`` / ``scale_down`` / ``from_rns`` among
the largest remaining ``%`` consumers: each walked its target moduli in a
Python loop, re-deriving per-pair constants and — worst of all — routing
``scale_down`` through exact big-int CRT values in object arrays.  This
module replaces those loops with whole ``(L_src, L_dst, N)`` stack
operations driven by conversion tables cached process-globally per moduli
tuple, exactly like the NTT twiddle caches in :mod:`repro.poly.ntt`:

- :class:`DigitDecomposer` — CRT digits ``d_i = [x_i * (Q/q_i)^{-1}]_{q_i}``
  for a whole limb stack via Shoup multiplication (division-free when every
  modulus is lazy-eligible, strict ``%`` otherwise; bit-identical results).
- :class:`BaseConversion` — the approximate CRT lift ``[x + u*Q]_dst``
  (``0 <= u < L_src``) as one uint64 matrix product against the cached
  ``(Q/q_i) mod p_j`` matrix, summed *raw* under the
  ``L * (q_max-1) * (p_max-1) < 2^64`` headroom bound (the
  :func:`~repro.poly.kernels.mul_accumulate` trick) with one division per
  output limb; per-row reduced fallback past the bound.
- :class:`WordAccumulator` — the exact digit-weighted sum
  ``sum_i d_i * (Q/q_i)`` of CRT reconstruction, computed as raw uint64
  matmuls against the base-``2^w`` word decomposition of the weights and
  recomposed into Python ints by a short Horner loop — the object-array
  work drops from L wide multiplies per coefficient to one add per word.
- :class:`MixedRadix` — exact Garner mixed-radix form over a small basis
  (the special basis of ``scale_down``), giving residues mod arbitrary
  targets and an exact ``v > P/2`` test without ever materializing big
  ints.

Everything here is *exact* integer arithmetic: each fast path computes the
same mathematical value as the retained reference formulas, so outputs are
bit-identical — callers assert exactly that under ``REPRO_KERNEL_DEBUG=1``.
Column spans fan across :mod:`repro.poly.parallel` when
``REPRO_NUM_THREADS`` > 1.
"""

from __future__ import annotations

from functools import lru_cache, reduce

import numpy as np

from repro.poly import kernels, parallel


@lru_cache(maxsize=None)
def crt_weights(moduli: tuple[int, ...]) -> tuple[tuple[int, int], ...]:
    """CRT interpolation data ``(Q/q_i, (Q/q_i)^{-1} mod q_i)`` per limb."""
    big_q = reduce(lambda a, b: a * b, moduli, 1)
    out = []
    for q in moduli:
        q_over = big_q // q
        out.append((q_over, pow(q_over % q, -1, q)))
    return tuple(out)


class DigitDecomposer:
    """CRT digits of a whole ``(..., L, N)`` limb stack, division-free.

    ``digits()`` returns ``d_i = [x_i * (Q/q_i)^{-1}]_{q_i}``, fully reduced.
    When every modulus is lazy-eligible (q < 2^31) the per-limb ``%`` is
    replaced by a Shoup multiply plus conditional subtracts — exact, hence
    bit-identical to the strict formula.
    """

    __slots__ = ("moduli", "q_col", "two_q_col", "inv_col", "inv_shoup",
                 "shift_col", "lazy", "extra")

    def __init__(self, moduli: tuple[int, ...]):
        self.moduli = moduli
        weights = crt_weights(moduli)
        self.q_col = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
        self.inv_col = np.array(
            [w[1] for w in weights], dtype=np.uint64
        ).reshape(-1, 1)
        self.lazy = kernels.lazy_supported(moduli)
        if self.lazy:
            self.two_q_col = self.q_col * np.uint64(2)
            self.shift_col = np.array(
                [kernels.shoup_shift(q) for q in moduli], dtype=np.uint64
            ).reshape(-1, 1)
            self.inv_shoup = np.array(
                [(w[1] << kernels.shoup_shift(q)) // q
                 for q, w in zip(moduli, weights)],
                dtype=np.uint64,
            ).reshape(-1, 1)
            self.extra = any(kernels.shoup_needs_extra_sub(q) for q in moduli)
        else:
            self.two_q_col = self.shift_col = self.inv_shoup = None
            self.extra = False

    def digits(self, limbs: np.ndarray) -> np.ndarray:
        if not self.lazy:
            return (limbs * self.inv_col) % self.q_col
        d = kernels.shoup_mul(
            limbs, self.inv_col, self.inv_shoup, self.shift_col, self.q_col
        )
        if self.extra:  # wide (2^30, 2^31) moduli land in [0, 3q)
            d = kernels.cond_sub(d, self.two_q_col)
        return kernels.cond_sub(d, self.q_col)


class BaseConversion:
    """Tables for the src -> dst approximate CRT lift ``[x + u*Q]_dst``.

    Shared moduli are row copies; every new modulus row is one row of the
    cached ``(Q/q_i) mod p_j`` matrix times the digit stack.  Under the raw
    headroom bound the whole lift is a single uint64 matmul plus one
    division per new limb.
    """

    __slots__ = ("src", "dst", "decomposer", "copy_pairs", "new_rows",
                 "new_moduli", "mat", "p_col", "raw_ok")

    def __init__(self, src: tuple[int, ...], dst: tuple[int, ...]):
        self.src, self.dst = src, dst
        self.decomposer = get_digit_decomposer(src)
        src_index = {q: i for i, q in enumerate(src)}
        self.copy_pairs = tuple(
            (j, src_index[p]) for j, p in enumerate(dst) if p in src_index
        )
        new = [(j, p) for j, p in enumerate(dst) if p not in src_index]
        self.new_rows = np.array([j for j, _ in new], dtype=np.intp)
        self.new_moduli = tuple(p for _, p in new)
        if self.new_moduli:
            weights = crt_weights(src)
            self.mat = np.array(
                [[w[0] % p for w in weights] for p in self.new_moduli],
                dtype=np.uint64,
            )
            self.p_col = np.array(
                self.new_moduli, dtype=np.uint64
            ).reshape(-1, 1)
            qmax, pmax = max(src), max(self.new_moduli)
            self.raw_ok = len(src) * (qmax - 1) * (pmax - 1) < 1 << 64
        else:
            self.mat = self.p_col = None
            self.raw_ok = False

    def convert(self, limbs: np.ndarray) -> np.ndarray:
        """Lift an ``(L_src, N)`` stack to ``(L_dst, N)`` over ``dst``."""
        n = limbs.shape[-1]
        out = np.empty((len(self.dst), n), dtype=np.uint64)
        for j, i in self.copy_pairs:
            out[j] = limbs[i]
        if self.new_moduli:
            out[self.new_rows] = self._lift(self.decomposer.digits(limbs))
        return out

    def _lift(self, digits: np.ndarray) -> np.ndarray:
        """``sum_i d_i * (Q/q_i) mod p_j`` for every new modulus row."""
        n = digits.shape[-1]
        if not self.raw_ok:
            # Past the headroom bound: reduce each term, sum of < p terms
            # still fits uint64 (L * p < 2^64 for any realistic L).
            rows = np.empty((len(self.new_moduli), n), dtype=np.uint64)
            for r, p in enumerate(self.new_moduli):
                pp = np.uint64(p)
                row_col = self.mat[r].reshape(-1, 1)
                rows[r] = ((digits % pp) * row_col % pp).sum(axis=0) % pp
            return rows
        nt = parallel.active_threads()
        if nt > 1 and digits.size >= parallel.MIN_PARALLEL_ELEMS:
            rows = np.empty((len(self.new_moduli), n), dtype=np.uint64)
            spans = parallel.split_ranges(n, nt)

            def task(lo: int, hi: int) -> None:
                np.remainder(
                    self.mat @ digits[:, lo:hi], self.p_col,
                    out=rows[:, lo:hi],
                )

            parallel.run_tasks(
                [(lambda lo=lo, hi=hi: task(lo, hi)) for lo, hi in spans]
            )
            return rows
        return (self.mat @ digits) % self.p_col


class WordAccumulator:
    """Raw-uint64 evaluation of the CRT sum ``sum_i d_i * (Q/q_i)``.

    Each weight is decomposed into base-``2^wbits`` words with ``wbits``
    chosen so every word-level raw sum *plus a propagated carry* obeys
    ``L * (q_max-1) * (2^wbits - 1) + 2^32 < 2^64``; the ``(W, L) @ (L, N)``
    uint64 matmul then yields exact word sums.  With the full ``wbits = 32``
    (every default prime set) the word sums are carry-propagated into
    non-overlapping 32-bit limbs in numpy and each coefficient becomes one
    ``int.from_bytes`` call — no big-int multiplies at all.  Narrower word
    sizes recompose by a Horner loop over W object rows (still fewer wide
    multiplies than the L-weight object path).  ``ok`` is False past the
    headroom bound; callers keep the object path then.
    """

    __slots__ = ("moduli", "wbits", "radix", "nwords", "words", "ok")

    def __init__(self, moduli: tuple[int, ...]):
        self.moduli = moduli
        L, qmax = len(moduli), max(moduli)
        budget = (1 << 64) - (1 << 32)  # leave room for the running carry
        cap = budget // (L * (qmax - 1)) if qmax > 1 else 1 << 63
        wbits = min(max(cap.bit_length() - 1, 0), 32)
        self.wbits = wbits
        self.ok = wbits >= 8 and qmax < 1 << 32
        if not self.ok:
            self.words = None
            self.radix = self.nwords = 0
            return
        weights = crt_weights(moduli)
        mask = (1 << wbits) - 1
        nwords = max(
            1, -(-max(w[0] for w in weights).bit_length() // wbits)
        )
        self.words = np.array(
            [[(w[0] >> (k * wbits)) & mask for w in weights]
             for k in range(nwords)],
            dtype=np.uint64,
        )
        self.radix = 1 << wbits
        self.nwords = nwords

    def reconstruct(self, digits: np.ndarray) -> list[int]:
        """Exact unreduced ``sum_i digits[i] * (Q/q_i)`` per column."""
        raw = self.words @ digits  # (W, N) exact word-level sums
        n = raw.shape[-1]
        if self.wbits == 32:
            # Carry-propagate into W+1 disjoint 32-bit limbs (each sum plus
            # carry < 2^64 by the headroom budget), then read every
            # coefficient with a single little-endian from_bytes.
            limbs32 = np.empty((self.nwords + 1, n), dtype=np.uint64)
            carry = np.zeros(n, dtype=np.uint64)
            mask, shift = np.uint64(0xFFFFFFFF), np.uint64(32)
            for k in range(self.nwords):
                tot = raw[k] + carry
                limbs32[k] = tot & mask
                carry = tot >> shift
            limbs32[self.nwords] = carry
            data = np.ascontiguousarray(
                limbs32.astype("<u4").T
            ).tobytes()
            stride = 4 * (self.nwords + 1)
            return [
                int.from_bytes(data[i * stride:(i + 1) * stride], "little")
                for i in range(n)
            ]
        obj = raw.astype(object)  # Horner over W rows of word sums
        acc = obj[-1]
        for k in range(self.nwords - 2, -1, -1):
            acc = acc * self.radix + obj[k]
        return list(acc)


class MixedRadix:
    """Exact Garner mixed-radix form over a small basis ``(p_1, ..., p_k)``.

    ``digits()`` gives the unique ``a`` with
    ``v = a_1 + a_2*p_1 + ... + a_k*(p_1*...*p_{k-1})`` and ``0 <= a_i < p_i``
    for the CRT value ``v in [0, P)`` — O(k^2/2) uint64 vector ops, no big
    ints.  ``residues()`` maps the form to ``v mod m`` for arbitrary target
    moduli via the cached prefix-product residue matrix; ``greater_than()``
    compares ``v`` against a constant lexicographically (most-significant
    digit first), exactly.

    All products are proven < 2^64 only for source and target moduli below
    2^32 (the engine-wide invariant); callers gate on it.
    """

    __slots__ = ("moduli", "k", "modulus", "prefixes", "q_u", "step_mods",
                 "invs", "_thresholds")

    def __init__(self, moduli: tuple[int, ...]):
        self.moduli = moduli
        k = len(moduli)
        self.k = k
        self.modulus = reduce(lambda a, b: a * b, moduli, 1)
        prefixes = [1]
        for q in moduli[:-1]:
            prefixes.append(prefixes[-1] * q)
        self.prefixes = tuple(prefixes)  # prefix_i = p_1 * ... * p_{i-1}
        self.q_u = tuple(np.uint64(q) for q in moduli)
        self.step_mods = tuple(
            np.array([moduli[j] % moduli[i] for j in range(i)],
                     dtype=np.uint64)
            for i in range(k)
        )
        self.invs = (None,) + tuple(
            np.uint64(pow(prefixes[i] % moduli[i], -1, moduli[i]))
            for i in range(1, k)
        )
        self._thresholds: dict[int, np.ndarray] = {}

    def digits(self, limbs: np.ndarray) -> np.ndarray:
        """Mixed-radix digits ``(k, N)`` of the CRT value of ``limbs``."""
        a = np.empty_like(limbs)
        a[0] = limbs[0]
        for i in range(1, self.k):
            qi = self.q_u[i]
            sm = self.step_mods[i]
            # Horner: the partial value a_1 + ... + a_i*prefix_i mod p_{i+1}.
            acc = a[i - 1] % qi
            for j in range(i - 2, -1, -1):
                # acc < q_i and sm[j] < q_i, so acc*sm[j] + a_j < 2^64.
                acc = (acc * sm[j] + a[j]) % qi
            diff = kernels.cond_sub(limbs[i] + (qi - acc), qi)
            a[i] = diff * self.invs[i] % qi
        return a

    def residues(self, a: np.ndarray, dst_moduli: tuple[int, ...]) -> np.ndarray:
        """``v mod m`` for each target m, from the mixed-radix form."""
        mat, raw_ok = _radix_residue_table(self.moduli, tuple(dst_moduli))
        if raw_ok:
            m_col = np.array(dst_moduli, dtype=np.uint64).reshape(-1, 1)
            return (mat @ a) % m_col
        out = np.empty((len(dst_moduli), a.shape[-1]), dtype=np.uint64)
        for r, m in enumerate(dst_moduli):
            mm = np.uint64(m)
            row_col = mat[r].reshape(-1, 1)
            out[r] = ((a % mm) * row_col % mm).sum(axis=0) % mm
        return out

    def threshold_digits(self, value: int) -> np.ndarray:
        """Mixed-radix digits of a constant in ``[0, P)``, cached."""
        cached = self._thresholds.get(value)
        if cached is None:
            cached = np.array(
                [(value // p) % q for p, q in zip(self.prefixes, self.moduli)],
                dtype=np.uint64,
            )
            self._thresholds[value] = cached
        return cached

    def greater_than(self, a: np.ndarray, value: int) -> np.ndarray:
        """Exact boolean ``v > value`` per column (lexicographic compare)."""
        h = self.threshold_digits(value)
        n = a.shape[-1]
        greater = np.zeros(n, dtype=bool)
        equal = np.ones(n, dtype=bool)
        for i in range(self.k - 1, -1, -1):
            np.logical_or(greater, equal & (a[i] > h[i]), out=greater)
            np.logical_and(equal, a[i] == h[i], out=equal)
        return greater


@lru_cache(maxsize=None)
def _radix_residue_table(
    src_moduli: tuple[int, ...], dst_moduli: tuple[int, ...]
) -> tuple[np.ndarray, bool]:
    """``prefix_i mod m_j`` matrix + raw-sum eligibility for ``residues``."""
    mr = get_mixed_radix(src_moduli)
    mat = np.array(
        [[p % m for p in mr.prefixes] for m in dst_moduli], dtype=np.uint64
    )
    amax = max(src_moduli) - 1  # digits a_i < p_i
    raw_ok = (
        max(dst_moduli) < 1 << 32
        and len(src_moduli) * amax * (max(dst_moduli) - 1) < 1 << 64
    )
    return mat, raw_ok


@lru_cache(maxsize=None)
def get_digit_decomposer(moduli: tuple[int, ...]) -> DigitDecomposer:
    return DigitDecomposer(moduli)


@lru_cache(maxsize=None)
def get_base_conversion(
    src: tuple[int, ...], dst: tuple[int, ...]
) -> BaseConversion:
    return BaseConversion(src, dst)


@lru_cache(maxsize=None)
def get_word_accumulator(moduli: tuple[int, ...]) -> WordAccumulator:
    return WordAccumulator(moduli)


@lru_cache(maxsize=None)
def get_mixed_radix(moduli: tuple[int, ...]) -> MixedRadix:
    return MixedRadix(moduli)
