"""repro-f1: full-system Python reproduction of F1, the first programmable
FHE accelerator (Feldmann, Samardzic, et al., MICRO 2021).

Layers, bottom-up:

- :mod:`repro.rns`, :mod:`repro.poly` — modular/RNS arithmetic and the
  polynomial-ring primitives F1's functional units implement;
- :mod:`repro.fhe` — BGV, CKKS, and GSW on that substrate (the functional
  simulator of Sec. 8.5);
- :mod:`repro.dsl` — the high-level program DSL (Sec. 4.1);
- :mod:`repro.core` — the architecture description, ISA, area/energy models;
- :mod:`repro.compiler` — the three-phase static-scheduling compiler;
- :mod:`repro.sim` — the cycle-accurate schedule checker and statistics;
- :mod:`repro.baselines`, :mod:`repro.bench` — CPU/HEAX baselines and the
  benchmark suite regenerating every table and figure of the evaluation.
"""

from repro.compiler.pipeline import CompiledProgram, compile_program
from repro.core.config import F1Config
from repro.dsl.program import Program
from repro.fhe.bgv import BgvContext
from repro.fhe.ckks import CkksContext
from repro.fhe.params import FheParams
from repro.sim.simulator import check_schedule

__version__ = "1.0.0"

__all__ = [
    "BgvContext",
    "CkksContext",
    "CompiledProgram",
    "F1Config",
    "FheParams",
    "Program",
    "check_schedule",
    "compile_program",
    "__version__",
]
