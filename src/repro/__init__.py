"""repro-f1: full-system Python reproduction of F1, the first programmable
FHE accelerator (Feldmann, Samardzic, et al., MICRO 2021).

Layers, bottom-up:

- :mod:`repro.rns`, :mod:`repro.poly` — modular/RNS arithmetic and the
  polynomial-ring primitives F1's functional units implement;
- :mod:`repro.fhe` — BGV, CKKS, and GSW on that substrate (the functional
  simulator of Sec. 8.5);
- :mod:`repro.dsl` — the high-level program DSL (Sec. 4.1);
- :mod:`repro.core` — the architecture description, ISA, area/energy models;
- :mod:`repro.compiler` — the three-phase static-scheduling compiler;
- :mod:`repro.sim` — the cycle-accurate schedule checker and statistics;
- :mod:`repro.baselines`, :mod:`repro.bench` — CPU/HEAX baselines and the
  benchmark suite regenerating every table and figure of the evaluation;
- :mod:`repro.backends` — the unified execution-backend API tying it all
  together: write a :class:`Program` once, then ``repro.run`` it on real
  encryption (:class:`FunctionalBackend`), the cycle-checked accelerator
  model (:class:`F1Backend`), or the analytic baselines
  (:class:`CpuBackend`, :class:`HeaxBackend`).

Quick tour::

    import repro

    p = repro.Program(n=512, name="quickstart")
    x, y = p.input(level=4), p.input(level=4)
    p.output(p.add(p.mul(x, y), x))

    repro.run(p, backend="functional")   # encrypt/execute/decrypt + validate
    repro.run(p, backend="f1")           # compile + check + predict time
    repro.run(p, backend="cpu")          # calibrated software baseline
"""

from repro.backends import (
    BACKENDS,
    Backend,
    CpuBackend,
    F1Backend,
    FunctionalBackend,
    HeaxBackend,
    ReferenceBackend,
    RunResult,
    resolve_backend,
    run,
)
from repro.compiler.pipeline import CompiledProgram, compile_program
from repro.core.config import F1Config
from repro.dsl.program import Program
from repro.fhe.bgv import BgvContext
from repro.fhe.ckks import CkksContext
from repro.fhe.context import FheContext
from repro.fhe.params import FheParams
from repro.serve import (
    FheServer,
    ProgramRegistry,
    RequestResult,
    SlotBatcher,
)
from repro.sim.functional import FunctionalSimulator
from repro.sim.reference import evaluate_reference
from repro.sim.simulator import check_schedule

__version__ = "2.1.0"

__all__ = [
    "BACKENDS",
    "Backend",
    "BgvContext",
    "CkksContext",
    "CompiledProgram",
    "CpuBackend",
    "F1Backend",
    "F1Config",
    "FheContext",
    "FheParams",
    "FheServer",
    "FunctionalBackend",
    "FunctionalSimulator",
    "HeaxBackend",
    "Program",
    "ProgramRegistry",
    "ReferenceBackend",
    "RequestResult",
    "RunResult",
    "SlotBatcher",
    "check_schedule",
    "compile_program",
    "evaluate_reference",
    "resolve_backend",
    "run",
    "__version__",
]
