"""The F1 DSL: dataflow graphs of homomorphic operations.

Mirrors Listing 2 of the paper:

    p = Program(n=16384)
    rows = [p.input(level=16) for _ in range(4)]
    v = p.input(level=16)
    out = [p.inner_sum(p.mul(r, v)) for r in rows]

Every method appends an :class:`HeOp` node; handles are lightweight
references.  Levels (RNS limb counts) are tracked per operation because data
sizes — and therefore scheduling — depend on them; ``mod_switch`` drops one
limb, and by default :meth:`Program.mul` inserts the customary BGV/CKKS
mod-switch *before* each multiplication (Sec. 2.2.2) when levels allow.
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass, field


class OpKind(enum.Enum):
    INPUT = "input"            # encrypted program input
    INPUT_PLAIN = "input_plain"  # unencrypted vector (e.g. model weights)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"                # ciphertext x ciphertext (includes key switch)
    MUL_PLAIN = "mul_plain"
    ADD_PLAIN = "add_plain"
    ROTATE = "rotate"          # automorphism + key switch
    MOD_SWITCH = "mod_switch"
    OUTPUT = "output"


#: op kinds that consume a key-switch hint
KS_OPS = (OpKind.MUL, OpKind.ROTATE)


@dataclass
class HeOp:
    """One homomorphic operation node in the program dataflow graph."""

    op_id: int
    kind: OpKind
    args: tuple[int, ...]
    level: int                      # RNS limbs of the operand/result basis
    rotate_steps: int = 0
    name: str = ""
    users: list[int] = field(default_factory=list)

    @property
    def hint_id(self) -> str | None:
        """Identity of the key-switch hint this op consumes, if any.

        Hints are per (target, level): every multiplication at level L shares
        one relinearization hint; each rotation amount has its own.
        """
        if self.kind is OpKind.MUL:
            return f"relin@L{self.level}"
        if self.kind is OpKind.ROTATE:
            return f"galois_{self.rotate_steps}@L{self.level}"
        return None


@dataclass(frozen=True)
class CtHandle:
    """Reference to the ciphertext value produced by an op."""

    program: "Program"
    op_id: int

    @property
    def op(self) -> HeOp:
        return self.program.ops[self.op_id]

    @property
    def level(self) -> int:
        return self.op.level


class Program:
    """A builder for homomorphic-operation dataflow graphs."""

    def __init__(self, n: int = 16384, scheme: str = "bgv", name: str = "program"):
        if n & (n - 1):
            raise ValueError("N must be a power of two")
        if scheme not in ("bgv", "ckks", "gsw"):
            raise ValueError(f"unsupported scheme {scheme!r}")
        self.n = n
        self.scheme = scheme
        self.name = name
        self.ops: list[HeOp] = []

    # ------------------------------------------------------------- builders
    def _check_handle(self, h: "CtHandle") -> "CtHandle":
        if h.program is not self:
            raise ValueError(
                f"handle for op {h.op_id} belongs to program "
                f"{h.program.name!r}, not {self.name!r}; ops cannot "
                f"reference values from another Program"
            )
        return h

    def _append(self, kind: OpKind, args: tuple["CtHandle", ...], level: int, **kw) -> CtHandle:
        arg_ids = tuple(self._check_handle(h).op_id for h in args)
        op = HeOp(op_id=len(self.ops), kind=kind, args=arg_ids, level=level, **kw)
        for a in arg_ids:
            self.ops[a].users.append(op.op_id)
        self.ops.append(op)
        return CtHandle(self, op.op_id)

    def input(self, level: int, name: str = "") -> CtHandle:
        """Declare an encrypted input at the given noise budget L."""
        if level < 1:
            raise ValueError("level must be >= 1")
        return self._append(OpKind.INPUT, (), level, name=name)

    def input_plain(self, level: int, name: str = "") -> CtHandle:
        """Declare an unencrypted input vector (one polynomial, L limbs)."""
        return self._append(OpKind.INPUT_PLAIN, (), level, name=name)

    def _level_of(self, h: CtHandle) -> int:
        return self.ops[self._check_handle(h).op_id].level

    def _align(self, x: CtHandle, y: CtHandle) -> tuple[CtHandle, CtHandle]:
        """Mod-switch the higher-level operand down to match the lower."""
        lx, ly = self._level_of(x), self._level_of(y)
        while lx > ly:
            x = self.mod_switch(x)
            lx -= 1
        while ly > lx:
            y = self.mod_switch(y)
            ly -= 1
        return x, y

    def add(self, x: CtHandle, y: CtHandle) -> CtHandle:
        x, y = self._align(x, y)
        return self._append(OpKind.ADD, (x, y), x.level)

    def sub(self, x: CtHandle, y: CtHandle) -> CtHandle:
        x, y = self._align(x, y)
        return self._append(OpKind.SUB, (x, y), x.level)

    def mul(self, x: CtHandle, y: CtHandle, *, rescale: bool = True) -> CtHandle:
        """Homomorphic multiply; by default mod-switches the result.

        Matches standard practice (Sec. 2.2.2): operate at the operands'
        shared level, then drop one limb to shed the noise blowup.
        """
        x, y = self._align(x, y)
        out = self._append(OpKind.MUL, (x, y), x.level)
        if rescale and out.level > 1:
            out = self.mod_switch(out)
        return out

    def square(self, x: CtHandle, *, rescale: bool = True) -> CtHandle:
        return self.mul(x, x, rescale=rescale)

    def mul_plain(self, x: CtHandle, weights: CtHandle | None = None) -> CtHandle:
        """Multiply by an unencrypted vector (declares one if not given)."""
        if weights is None:
            weights = self.input_plain(self._level_of(x))
        return self._append(OpKind.MUL_PLAIN, (x, weights), x.level)

    def add_plain(self, x: CtHandle, values: CtHandle | None = None) -> CtHandle:
        if values is None:
            values = self.input_plain(self._level_of(x))
        return self._append(OpKind.ADD_PLAIN, (x, values), x.level)

    def rotate(self, x: CtHandle, steps: int) -> CtHandle:
        """Homomorphic rotation (automorphism + key switch)."""
        if steps == 0:
            return self._check_handle(x)
        return self._append(
            OpKind.ROTATE, (x,), self._level_of(x), rotate_steps=steps
        )

    def mod_switch(self, x: CtHandle) -> CtHandle:
        level = self._level_of(x)
        if level <= 1:
            raise ValueError("cannot mod-switch below one limb")
        return self._append(OpKind.MOD_SWITCH, (x,), level - 1)

    def output(self, x: CtHandle, name: str = "") -> CtHandle:
        return self._append(OpKind.OUTPUT, (x,), self._level_of(x), name=name)

    # ------------------------------------------------------------ utilities
    def inner_sum(self, x: CtHandle) -> CtHandle:
        """Sum all slots via the rotate-and-add ladder (Listing 2's innerSum)."""
        for i in range(int(math.log2(self.n))):
            x = self.add(x, self.rotate(x, 1 << i))
        return x

    def signature(self) -> str:
        """Canonical structural fingerprint of the op graph.

        Two programs share a signature iff they are the same computation:
        same ring degree, scheme, and op sequence (kind, argument wiring,
        level, rotation amount).  Names — of the program or of individual
        ops — are presentation only and do not enter the hash, so a client
        re-building "the same" program each request maps to one registry
        entry.  Ops are identified positionally, which is well-defined
        because args always point backwards in the append-ordered list.
        """
        h = hashlib.sha256()
        h.update(f"{self.n}|{self.scheme}".encode())
        for op in self.ops:
            h.update(
                f"|{op.kind.value}:{','.join(map(str, op.args))}"
                f":{op.level}:{op.rotate_steps}".encode()
            )
        return h.hexdigest()

    def stats(self) -> dict:
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
        hints = {op.hint_id for op in self.ops if op.hint_id}
        return {
            "ops": len(self.ops),
            "counts": counts,
            "distinct_hints": len(hints),
            "multiplicative_depth": self.multiplicative_depth(),
        }

    def multiplicative_depth(self) -> int:
        depth = [0] * len(self.ops)
        for op in self.ops:
            base = max((depth[a] for a in op.args), default=0)
            depth[op.op_id] = base + (1 if op.kind is OpKind.MUL else 0)
        return max(depth, default=0)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, N={self.n}, scheme={self.scheme}, ops={len(self.ops)})"
