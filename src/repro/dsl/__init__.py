"""F1's high-level domain-specific language (Sec. 4.1, Listing 2).

Programs are dataflow graphs of *homomorphic operations* on ciphertext
handles; there is no control flow (loops in generators are unrolled at build
time, exactly as the F1 compiler unrolls them).  The only implementation
detail exposed is the noise budget L of each input, as in the paper.
"""

from repro.dsl.program import CtHandle, HeOp, OpKind, Program

__all__ = ["CtHandle", "HeOp", "OpKind", "Program"]
