"""Functional non-packed BGV bit bootstrapping (repro.fhe.bootstrap).

This is the real thing at toy scale: the output ciphertext decrypts to the
input bit and sits high on a fresh modulus chain — noise removed without the
secret key, via homomorphic decryption (Sec. 2.2.2 / the paper's BGV
bootstrapping benchmark, Sec. 7).
"""

import numpy as np
import pytest

from repro.fhe.bootstrap import BitBootstrapper

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def booter():
    return BitBootstrapper(n=64, d=5, levels=116, secret_weight=12, seed=3)


class TestBitBootstrap:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_refreshes_bit(self, booter, bit):
        ct = booter.encrypt_bit(bit)
        refreshed = booter.bootstrap(ct)
        assert booter.decrypt_bit(refreshed) == bit

    def test_output_has_usable_levels(self, booter):
        refreshed = booter.bootstrap(booter.encrypt_bit(1))
        # e(e-1) limbs consumed by the triangular extraction; margin remains.
        assert refreshed.level >= 4

    def test_output_noise_budget_positive(self, booter):
        refreshed = booter.bootstrap(booter.encrypt_bit(1))
        phase = refreshed.b - refreshed.a * booter.secret.poly(refreshed.basis)
        worst = max(abs(c) for c in phase.to_int_coeffs(centered=True))
        budget = refreshed.basis.modulus.bit_length() - worst.bit_length() - 1
        assert budget > 20

    def test_bootstrapped_ciphertext_supports_more_computation(self, booter):
        """The point of bootstrapping: the refreshed bit can be multiplied."""
        refreshed = booter.bootstrap(booter.encrypt_bit(1))
        squared = booter._square(refreshed)
        assert booter.decrypt_bit(squared) == 1

    def test_requires_small_e(self):
        with pytest.raises(ValueError):
            BitBootstrapper(n=1024, d=8)  # d + log2(N) = 18 > 16
