"""RNS basis / CRT reconstruction (repro.rns.crt)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes

PRIMES = ntt_friendly_primes(64, 28, 4)


class TestRnsBasis:
    def test_modulus_is_product(self):
        basis = RnsBasis(PRIMES)
        prod = 1
        for q in PRIMES:
            prod *= q
        assert basis.modulus == prod

    def test_roundtrip(self):
        basis = RnsBasis(PRIMES)
        values = [0, 1, basis.modulus - 1, basis.modulus // 2, 123456789]
        limbs = basis.to_rns(values)
        assert basis.from_rns(limbs) == values

    def test_centered_reconstruction(self):
        basis = RnsBasis(PRIMES[:2])
        small_negatives = [-1, -17, -(10**6)]
        limbs = basis.to_rns(small_negatives)
        assert basis.from_rns(limbs, centered=True) == small_negatives

    def test_drop_chains(self):
        basis = RnsBasis(PRIMES)
        dropped = basis.drop()
        assert dropped.moduli == tuple(PRIMES[:-1])
        assert basis.drop(3).level == 1

    def test_cannot_drop_everything(self):
        with pytest.raises(ValueError):
            RnsBasis(PRIMES[:1]).drop()

    def test_duplicate_moduli_rejected(self):
        with pytest.raises(ValueError):
            RnsBasis([17, 17])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RnsBasis([])

    def test_equality_and_hash(self):
        assert RnsBasis(PRIMES) == RnsBasis(PRIMES)
        assert hash(RnsBasis(PRIMES)) == hash(RnsBasis(PRIMES))
        assert RnsBasis(PRIMES) != RnsBasis(PRIMES[:2])

    def test_wrong_limb_count_rejected(self):
        basis = RnsBasis(PRIMES)
        with pytest.raises(ValueError):
            basis.from_rns(np.zeros((2, 4), dtype=np.uint64))

    def test_crt_weights_identity(self):
        basis = RnsBasis(PRIMES)
        for (q_over, q_over_inv), q in zip(basis.crt_weights(), basis.moduli):
            assert basis.modulus // q == q_over
            assert q_over * q_over_inv % q == 1


@given(st.integers(min_value=0, max_value=10**20))
@settings(max_examples=50, deadline=None)
def test_crt_roundtrip_property(x):
    basis = RnsBasis(PRIMES)
    value = x % basis.modulus
    assert basis.from_rns(basis.to_rns([value]))[0] == value


@given(st.integers(min_value=-(10**15), max_value=10**15))
@settings(max_examples=50, deadline=None)
def test_crt_centered_property(x):
    basis = RnsBasis(PRIMES)
    assert basis.from_rns(basis.to_rns([x]), centered=True)[0] == x
