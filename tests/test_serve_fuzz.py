"""Seeded property fuzz for the serving batcher: batched == solo.

Randomly generated same-signature programs are served two ways — all
requests packed into one :class:`~repro.serve.batcher.SlotBatcher` batch,
and each request run alone through the same batcher — and the per-request
outputs must agree: bit-identical mod t for BGV, within CKKS noise
tolerance for CKKS.  The generator exercises exactly the envelope the
serving layer advertises as batchable:

- random request arrival levels anywhere in the program's
  ``level_alignment_plan`` range (cross-level packing);
- random non-negative CKKS rotations at random positions in the op graph
  (rotate-then-mask lowering);
- random BGV add/sub/plain-op chains (convolution stride growth).

Scale discipline keeps the CKKS comparisons meaningful: inputs sit at
level 4, at most one ct-ct MUL per program and only while its operands
still hold level >= 4, so no random composition pushes a phase past the
modulus.  Base-level requests are additionally cross-checked against a
plain unbatched ``backend.run`` (no layout at all) to anchor the batcher
against the pre-batching execution path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import FunctionalBackend, params_for_program
from repro.dsl.program import Program
from repro.fhe.bgv import BgvContext
from repro.fhe.ckks import CkksContext
from repro.serve.batcher import Request, SlotBatcher, unbatchable_reason

N = 256
WIDTH = 8
ITERATIONS = 4
CKKS_TOL = 2e-2


def _level(p: Program, h) -> int:
    return p.ops[h.op_id].level


def random_ckks_program(rng: np.random.Generator, tag: int) -> Program:
    """A random batchable CKKS program: adds, non-negative rotations,
    per-request plain ops, and at most one shallow ct-ct multiply."""
    p = Program(n=N, scheme="ckks", name=f"fuzz_ckks_{tag}")
    pool = [p.input(4, name="x"), p.input(4, name="y")]
    mul_used = False
    for _ in range(int(rng.integers(3, 6))):
        a = pool[int(rng.integers(len(pool)))]
        kind = str(rng.choice(["add", "rotate", "mul_plain", "add_plain",
                               "mul"]))
        if kind == "mul" and not mul_used:
            b = pool[int(rng.integers(len(pool)))]
            if min(_level(p, a), _level(p, b)) >= 4:
                pool.append(p.mul(a, b))
                mul_used = True
                continue
            kind = "add"
        if kind in ("add", "mul"):
            b = pool[int(rng.integers(len(pool)))]
            pool.append(p.add(a, b))
        elif kind == "rotate":
            pool.append(p.rotate(a, int(rng.integers(1, WIDTH))))
        elif kind == "mul_plain":
            pool.append(p.mul_plain(a))
        else:
            pool.append(p.add_plain(a))
    p.output(pool[-1])
    return p


def random_bgv_program(rng: np.random.Generator, tag: int) -> Program:
    """A random batchable BGV program: add/sub chains plus plain ops
    (each MUL_PLAIN declares its own weight vector, shared batch-wide)."""
    p = Program(n=N, scheme="bgv", name=f"fuzz_bgv_{tag}")
    pool = [p.input(3, name="x"), p.input(3, name="y")]
    for _ in range(int(rng.integers(3, 6))):
        a = pool[int(rng.integers(len(pool)))]
        kind = str(rng.choice(["add", "sub", "mul_plain", "add_plain"]))
        if kind in ("add", "sub"):
            b = pool[int(rng.integers(len(pool)))]
            pool.append(p.add(a, b) if kind == "add" else p.sub(a, b))
        elif kind == "mul_plain":
            pool.append(p.mul_plain(a))
        else:
            pool.append(p.add_plain(a))
    p.output(pool[-1])
    return p


def _requests(program: Program, batcher: SlotBatcher,
              rng: np.random.Generator) -> list[Request]:
    """3-4 requests at random levels across the batchable range."""
    plan = batcher.level_plan
    ckks = program.scheme == "ckks"
    k = int(rng.integers(3, min(batcher.capacity, 4) + 1))
    input_ids = [op.op_id for op in program.ops if op.kind.name == "INPUT"]
    plain_ids = [op.op_id for op in program.ops if op.kind.name == "INPUT_PLAIN"]
    shared = {
        op_id: (np.round(rng.uniform(-1, 1, WIDTH), 3) if ckks
                else rng.integers(1, 5, WIDTH))
        for op_id in plain_ids if op_id in batcher._shared_plains
    }
    reqs = []
    for _ in range(k):
        level = int(rng.integers(plan["min_level"], plan["base_level"] + 1))
        inputs = {
            op_id: (np.round(rng.uniform(-1, 1, WIDTH), 3) if ckks
                    else rng.integers(0, 50, WIDTH))
            for op_id in input_ids
        }
        plains = {
            op_id: shared.get(
                op_id,
                np.round(rng.uniform(-1, 1, WIDTH), 3) if ckks
                else rng.integers(0, 9, WIDTH),
            )
            for op_id in plain_ids
        }
        reqs.append(Request(inputs=inputs, plains=plains, level=level))
    return reqs


class _ContextCache:
    """One keygenned context per (scheme, params) across fuzz iterations."""

    def __init__(self):
        self._cache = {}

    def get(self, program: Program):
        scheme = "ckks" if program.scheme == "ckks" else "bgv"
        params = params_for_program(program, scheme)
        key = (scheme, params)
        if key not in self._cache:
            ctx = (CkksContext(params, seed=7) if scheme == "ckks"
                   else BgvContext(params, seed=7))
            self._cache[key] = ctx
        return self._cache[key]


@pytest.fixture(scope="module")
def contexts():
    return _ContextCache()


def _check_iteration(program: Program, contexts: _ContextCache,
                     rng: np.random.Generator) -> None:
    assert unbatchable_reason(program) is None, program.name
    batcher = SlotBatcher(program, width=WIDTH)
    ctx = contexts.get(program)
    backend = FunctionalBackend(validate=False)
    reqs = _requests(program, batcher, rng)
    batched, _ = batcher.run(reqs, backend=backend, context=ctx, seed=3)

    ckks = program.scheme == "ckks"
    t = None if ckks else ctx.params.plaintext_modulus
    for j, req in enumerate(reqs):
        solo, _ = batcher.run([req], backend=backend, context=ctx, seed=3)
        for out_id, got in batched[j].items():
            want = solo[0][out_id]
            if ckks:
                err = float(np.max(np.abs(got - want)))
                assert err < CKKS_TOL, (program.name, j, out_id, err)
            else:
                assert np.array_equal(got % t, want % t), \
                    (program.name, j, out_id)
        # Base-level requests also anchor against the plain unbatched path
        # (no batcher, no layout) — the execution path serving used before
        # batching existed.
        if req.level == batcher.level_plan["base_level"] and not ckks:
            anchor = backend.run(program, inputs=req.inputs,
                                 plains=req.plains, seed=3, context=ctx)
            for out_id, got in batched[j].items():
                want = np.asarray(anchor.outputs[out_id])[: got.shape[0]]
                assert np.array_equal(got % t, want % t), \
                    (program.name, j, out_id, "anchor")


def test_fuzz_ckks_batched_matches_solo(contexts):
    rng = np.random.default_rng(20260807)
    for i in range(ITERATIONS):
        _check_iteration(random_ckks_program(rng, i), contexts, rng)


def test_fuzz_bgv_batched_matches_solo(contexts):
    rng = np.random.default_rng(20260808)
    for i in range(ITERATIONS):
        _check_iteration(random_bgv_program(rng, i), contexts, rng)
