"""Negacyclic NTT (repro.poly.ntt)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.ntt import NttContext, cyclic_ntt_rows, get_context, naive_negacyclic_multiply
from repro.rns.primes import ntt_friendly_primes, primitive_root_of_unity

N = 128
Q = ntt_friendly_primes(N, 28, 1)[0]


@pytest.fixture(scope="module")
def ctx():
    return get_context(N, Q)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(5)


class TestRoundTrip:
    def test_forward_inverse_identity(self, ctx, rng):
        a = rng.integers(0, Q, N, dtype=np.uint64)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    def test_inverse_forward_identity(self, ctx, rng):
        a = rng.integers(0, Q, N, dtype=np.uint64)
        assert np.array_equal(ctx.forward(ctx.inverse(a)), a)

    def test_zero_fixed_point(self, ctx):
        zero = np.zeros(N, dtype=np.uint64)
        assert np.array_equal(ctx.forward(zero), zero)

    def test_constant_polynomial(self, ctx):
        """NTT of the constant c is the all-c vector (evaluations of c)."""
        c = np.zeros(N, dtype=np.uint64)
        c[0] = 42
        assert np.array_equal(ctx.forward(c), np.full(N, 42, dtype=np.uint64))

    @pytest.mark.parametrize("n", [2, 4, 16, 64, 512, 1024])
    def test_many_sizes(self, n, rng):
        q = ntt_friendly_primes(n, 26, 1)[0]
        local = get_context(n, q)
        a = rng.integers(0, q, n, dtype=np.uint64)
        assert np.array_equal(local.inverse(local.forward(a)), a)


class TestAlgebra:
    def test_linearity(self, ctx, rng):
        a = rng.integers(0, Q, N, dtype=np.uint64)
        b = rng.integers(0, Q, N, dtype=np.uint64)
        lhs = ctx.forward((a + b) % np.uint64(Q))
        rhs = (ctx.forward(a) + ctx.forward(b)) % np.uint64(Q)
        assert np.array_equal(lhs, rhs)

    def test_convolution_theorem(self, ctx, rng):
        """NTT(a*b) = NTT(a) ⊙ NTT(b) — the Sec. 2.3 identity, checked
        against the O(N^2) schoolbook negacyclic convolution."""
        a = rng.integers(0, Q, N, dtype=np.uint64)
        b = rng.integers(0, Q, N, dtype=np.uint64)
        assert np.array_equal(
            ctx.negacyclic_multiply(a, b), naive_negacyclic_multiply(a, b, Q)
        )

    def test_negacyclic_wraparound_sign(self, ctx):
        """x^(N-1) * x = x^N = -1 in R_q."""
        a = np.zeros(N, dtype=np.uint64)
        b = np.zeros(N, dtype=np.uint64)
        a[N - 1] = 1
        b[1] = 1
        prod = ctx.negacyclic_multiply(a, b)
        expected = np.zeros(N, dtype=np.uint64)
        expected[0] = Q - 1
        assert np.array_equal(prod, expected)

    def test_multiply_by_one(self, ctx, rng):
        one = np.zeros(N, dtype=np.uint64)
        one[0] = 1
        a = rng.integers(0, Q, N, dtype=np.uint64)
        assert np.array_equal(ctx.negacyclic_multiply(a, one), a)


class TestValidation:
    def test_non_ntt_friendly_modulus_rejected(self):
        with pytest.raises(ValueError):
            NttContext(N, 97)  # 97-1 not divisible by 256

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            NttContext(100, Q)

    def test_33_bit_modulus_rejected(self):
        """A >=2^32 prime would silently wrap hi*tw in uint64; must be refused."""
        q33 = ntt_friendly_primes(N, 33, 1)[0]
        assert q33 >= 2**32 and (q33 - 1) % (2 * N) == 0  # NTT-friendly, too wide
        with pytest.raises(ValueError, match="2\\^32"):
            NttContext(N, q33)

    def test_cyclic_ntt_rows_rejects_wide_modulus(self):
        q33 = ntt_friendly_primes(16, 33, 1)[0]
        omega = primitive_root_of_unity(16, q33)
        with pytest.raises(ValueError, match="2\\^32"):
            cyclic_ntt_rows(np.zeros((1, 16), dtype=np.uint64), omega, q33)

    def test_wrong_shape_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.forward(np.zeros(N + 1, dtype=np.uint64))

    def test_context_cache_identity(self):
        assert get_context(N, Q) is get_context(N, Q)


class TestCyclicNttRows:
    def test_matches_dft_definition(self, rng):
        n, rows = 16, 3
        omega = primitive_root_of_unity(n, Q)
        m = rng.integers(0, Q, (rows, n), dtype=np.uint64)
        out = cyclic_ntt_rows(m, omega, Q)
        for r in range(rows):
            for k in range(n):
                expected = sum(int(m[r, i]) * pow(omega, i * k, Q) for i in range(n)) % Q
                assert out[r, k] == expected

    def test_rejects_non_primitive_root(self):
        with pytest.raises(ValueError):
            cyclic_ntt_rows(np.zeros((1, 8), dtype=np.uint64), 1, Q)


@given(st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=N, max_size=N))
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(coeffs):
    ctx = get_context(N, Q)
    a = np.array(coeffs, dtype=np.uint64)
    assert np.array_equal(ctx.inverse(ctx.forward(a)), a)


@given(
    st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=16, max_size=16),
    st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=16, max_size=16),
)
@settings(max_examples=25, deadline=None)
def test_convolution_property_small(a, b):
    q16 = ntt_friendly_primes(16, 24, 1)[0]
    ctx = get_context(16, q16)
    av = np.array(a, dtype=np.uint64) % np.uint64(q16)
    bv = np.array(b, dtype=np.uint64) % np.uint64(q16)
    assert np.array_equal(
        ctx.negacyclic_multiply(av, bv), naive_negacyclic_multiply(av, bv, q16)
    )
