"""Tests for the modular-kernel layer and the lazy (Harvey/Shoup) hot paths.

Three families:

- unit oracles for :mod:`repro.poly.kernels` against plain ``%`` arithmetic,
  across the modulus widths the engine admits (28/30/31-bit lazy, 32-bit
  strict-only), including the documented overflow edges;
- bit-identity of the lazy NTT paths against the strict ``%``-reduction
  paths (and the per-limb reference), including the largest admissible lazy
  modulus with adversarial all-(q-1) inputs;
- behavioral equivalence of the fused/hoisted composites: fused
  ``key_switch_v1`` vs. the unfused reference loop, ``rotate_many`` vs.
  sequential rotations on both schemes and both key-switch variants, and the
  chained ``mod_switch_to`` / ``rescale_to`` vs. step-by-step chains.
"""

import numpy as np
import pytest

from repro.fhe.bgv import BgvContext
from repro.fhe.ckks import CkksContext
from repro.fhe.keyswitch import HoistedDecomposition, key_switch_v1
from repro.fhe.params import FheParams
from repro.fhe.sampling import uniform_poly
from repro.poly import kernels
from repro.poly.ntt import MAX_LAZY_MODULUS, NttContext, RnsNttContext
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes

RNG = np.random.default_rng(20260727)


def _random_limbs(moduli, n, rng=RNG):
    return np.stack([rng.integers(0, q, n, dtype=np.uint64) for q in moduli])


# --------------------------------------------------------------- kernel units
@pytest.mark.parametrize("bits", [28, 30, 31, 32])
def test_elementwise_kernels_match_modular_arithmetic(bits):
    n = 64
    moduli = ntt_friendly_primes(n, bits, 3)
    q = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
    x = _random_limbs(moduli, n)
    y = _random_limbs(moduli, n)
    assert np.array_equal(kernels.add_mod(x, y, q), (x + y) % q)
    assert np.array_equal(kernels.sub_mod(x, y, q), (x + q - y) % q)
    assert np.array_equal(kernels.neg_mod(x, q), (q - x) % q)
    assert np.array_equal(kernels.mul_mod(x, y, q), (x * y) % q)


@pytest.mark.parametrize("bits", [28, 31, 32])
def test_elementwise_kernels_at_extremes(bits):
    """x, y at 0 and q-1 — the cond-sub boundary cases."""
    n = 32
    moduli = ntt_friendly_primes(n, bits, 2)
    q = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
    zeros = np.zeros((2, n), dtype=np.uint64)
    tops = np.broadcast_to(q - 1, (2, n)).copy()
    for x in (zeros, tops):
        for y in (zeros, tops):
            assert np.array_equal(kernels.add_mod(x, y, q), (x + y) % q)
            assert np.array_equal(kernels.sub_mod(x, y, q), (x + q - y) % q)
        assert np.array_equal(kernels.neg_mod(x, q), (q - x) % q)


def test_cond_sub_and_reduce_once():
    q = np.uint64(97)
    x = np.arange(2 * 97, dtype=np.uint64)  # the full [0, 2q) range
    assert np.array_equal(kernels.cond_sub(x, q), x % q)
    assert np.array_equal(kernels.reduce_once(x, q), x % q)


@pytest.mark.parametrize("bits", [28, 30, 31])
def test_fused_mul_add_and_mul_accumulate(bits):
    n, level, k = 64, 3, 6
    moduli = ntt_friendly_primes(n, bits, level)
    q = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
    a, b, c, d = (_random_limbs(moduli, n) for _ in range(4))
    assert np.array_equal(
        kernels.fused_mul_add(a, b, c, d, q), ((a * b) % q + (c * d) % q) % q
    )
    stack_a = np.stack([_random_limbs(moduli, n) for _ in range(k)])
    stack_b = np.stack([_random_limbs(moduli, n) for _ in range(k)])
    want = np.zeros((level, n), dtype=np.uint64)
    for i in range(k):
        want = (want + stack_a[i] * stack_b[i] % q) % q
    assert np.array_equal(kernels.mul_accumulate(stack_a, stack_b, q), want)


def test_mul_accumulate_reduced_path_for_wide_moduli():
    """K * (q-1)^2 >= 2^64 forces the reduce-first branch; still exact."""
    n, k = 32, 8
    moduli = ntt_friendly_primes(n, 32, 2)
    q = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
    assert k * (int(q.max()) - 1) ** 2 >= 1 << 64
    stack_a = np.stack([_random_limbs(moduli, n) for _ in range(k)])
    stack_b = np.stack([_random_limbs(moduli, n) for _ in range(k)])
    want = np.zeros((2, n), dtype=np.uint64)
    for i in range(k):
        want = (want + stack_a[i] * stack_b[i] % q) % q
    assert np.array_equal(kernels.mul_accumulate(stack_a, stack_b, q), want)


@pytest.mark.parametrize("q", [ntt_friendly_primes(64, b, 1)[0] for b in (28, 30, 31)])
def test_shoup_mul_congruent_and_lazy_bounded(q):
    rng = np.random.default_rng(q)
    shift = np.uint64(kernels.shoup_shift(q))
    qq = np.uint64(q)
    w = rng.integers(0, q, 256, dtype=np.uint64)
    ws = kernels.shoup_precompute(w, q)
    x = rng.integers(0, 2 * q, 256, dtype=np.uint64)  # full lazy input range
    t = kernels.shoup_mul(x, w, ws, shift, qq)
    bound = 3 * q if kernels.shoup_needs_extra_sub(q) else 2 * q
    assert int(t.max()) < bound
    assert np.array_equal(t % qq, (x * w) % qq)


def test_debug_validate_catches_unreduced_operands(monkeypatch):
    monkeypatch.setattr(kernels, "DEBUG_VALIDATE", True)
    q = np.uint64(97)
    good = np.arange(10, dtype=np.uint64)
    bad = good + q  # not reduced
    kernels.sub_mod(good, good, q)  # fine
    with pytest.raises(AssertionError):
        kernels.sub_mod(good, bad, q)
    with pytest.raises(AssertionError):
        kernels.neg_mod(bad, q)


# ------------------------------------------------------- lazy vs strict NTT
@pytest.mark.parametrize("bits", [28, 30, 31])
@pytest.mark.parametrize("n", [16, 256, 1024])
def test_lazy_ntt_bit_identical_to_strict(bits, n):
    moduli = tuple(ntt_friendly_primes(n, bits, 3))
    lazy = RnsNttContext(n, moduli, lazy=True)
    strict = RnsNttContext(n, moduli, lazy=False)
    assert lazy.lazy and not strict.lazy
    for _ in range(3):
        limbs = _random_limbs(moduli, n)
        assert np.array_equal(lazy.forward(limbs), strict.forward(limbs))
        assert np.array_equal(lazy.inverse(limbs), strict.inverse(limbs))
        assert np.array_equal(lazy.inverse(lazy.forward(limbs)), limbs)


def test_lazy_ntt_mixed_width_basis_and_batched_stacks():
    n = 128
    moduli = tuple(
        ntt_friendly_primes(n, 28, 2)
        + ntt_friendly_primes(n, 30, 2)
        + ntt_friendly_primes(n, 31, 1)
    )
    lazy = RnsNttContext(n, moduli)
    strict = RnsNttContext(n, moduli, lazy=False)
    assert lazy.lazy  # auto-selected
    limbs = _random_limbs(moduli, n)
    assert np.array_equal(lazy.forward(limbs), strict.forward(limbs))
    stack = np.stack([limbs, strict.forward(limbs), limbs])
    fwd = lazy.forward(stack)
    for i in range(3):
        assert np.array_equal(fwd[i], strict.forward(stack[i]))
    inv = lazy.inverse(stack)
    for i in range(3):
        assert np.array_equal(inv[i], strict.inverse(stack[i]))


def test_overflow_edge_at_largest_admissible_lazy_modulus():
    """The largest NTT-friendly prime below 2^31, driven with all-(q-1)
    inputs — the worst case for every uint64 headroom bound in the proofs."""
    n = 256
    q = ntt_friendly_primes(n, 31, 1)[0]  # scans downward from 2^31 - 1
    assert q < MAX_LAZY_MODULUS and q.bit_length() == 31
    lazy = NttContext(n, q, lazy=True)
    strict = NttContext(n, q, lazy=False)
    tops = np.full(n, q - 1, dtype=np.uint64)
    assert np.array_equal(lazy.forward(tops), strict.forward(tops))
    assert np.array_equal(lazy.inverse(tops), strict.inverse(tops))
    assert np.array_equal(lazy.inverse(lazy.forward(tops)), tops)
    rng = np.random.default_rng(0)
    x = rng.integers(0, q, n, dtype=np.uint64)
    assert np.array_equal(lazy.forward(x), strict.forward(x))


def test_strict_fallback_for_wide_moduli():
    n = 64
    q = ntt_friendly_primes(n, 32, 1)[0]
    assert q >= MAX_LAZY_MODULUS
    ctx = NttContext(n, q)  # auto-selects strict
    assert not ctx.lazy
    x = RNG.integers(0, q, n, dtype=np.uint64)
    assert np.array_equal(ctx.inverse(ctx.forward(x)), x)
    with pytest.raises(ValueError, match="lazy reduction requires"):
        NttContext(n, q, lazy=True)
    with pytest.raises(ValueError, match="lazy reduction requires"):
        RnsNttContext(n, tuple(ntt_friendly_primes(n, 28, 1)) + (q,), lazy=True)


# ------------------------------------------------- fused/hoisted composites
def _reference_key_switch_v1(x, hint):
    """The pre-fusion Listing-1 loop: per-digit NTT + reduce-accumulate."""
    from repro.poly.ntt import get_rns_context

    basis = x.basis
    ctx = get_rns_context(x.n, basis.moduli)
    q_col = basis.moduli_column()
    y = ctx.inverse(x.limbs)
    u0 = np.zeros_like(x.limbs)
    u1 = np.zeros_like(x.limbs)
    for i in range(basis.level):
        digit_ntt = ctx.forward(np.remainder(y[i][None, :], q_col))
        u0 = (u0 + digit_ntt * hint.hint0[i].limbs % q_col) % q_col
        u1 = (u1 + digit_ntt * hint.hint1[i].limbs % q_col) % q_col
    return u0, u1


def test_fused_key_switch_matches_reference_loop():
    params = FheParams.build(n=128, levels=4, prime_bits=28, plaintext_modulus=256)
    bgv = BgvContext(params, seed=5)
    hint = bgv.hint_v1("relin", params.basis)
    rng = np.random.default_rng(9)
    x = uniform_poly(params.basis, params.n, rng, Domain.NTT)
    u0, u1 = key_switch_v1(x, hint)
    ref0, ref1 = _reference_key_switch_v1(x, hint)
    assert np.array_equal(u0.limbs, ref0)
    assert np.array_equal(u1.limbs, ref1)


def test_hoisted_decomposition_reuse_matches_unhoisted():
    params = FheParams.build(n=128, levels=3, prime_bits=28, plaintext_modulus=256)
    bgv = BgvContext(params, seed=5)
    hint = bgv.hint_v1("relin", params.basis)
    rng = np.random.default_rng(10)
    x = uniform_poly(params.basis, params.n, rng, Domain.NTT)
    dec = HoistedDecomposition(x)
    u0, u1 = dec.key_switch(hint)
    v0, v1 = key_switch_v1(x, hint)
    assert np.array_equal(u0.limbs, v0.limbs)
    assert np.array_equal(u1.limbs, v1.limbs)


@pytest.mark.parametrize("ks_variant", [1, 2])
def test_bgv_rotate_many_decrypts_like_sequential(ks_variant):
    params = FheParams.build(n=256, levels=5, prime_bits=28, plaintext_modulus=256)
    bgv = BgvContext(params, seed=7, ks_variant=ks_variant)
    msg = np.arange(256) % 256
    ct = bgv.encrypt(msg)
    steps = [1, 2, 5, -1]
    hoisted = bgv.rotate_many(ct, steps)
    for h, s in zip(hoisted, steps):
        seq = bgv.rotate(ct, s)
        assert np.array_equal(bgv.decrypt(h), bgv.decrypt(seq))
        assert h.noise_bits == seq.noise_bits


def test_ckks_rotate_many_decrypts_like_sequential():
    params = FheParams.build(n=256, levels=5, prime_bits=28, plaintext_modulus=1)
    ck = CkksContext(params, seed=7)
    vals = np.linspace(-1.0, 1.0, 128)
    ct = ck.encrypt_values(vals)
    steps = [1, 3, 7]
    hoisted = ck.rotate_many(ct, steps)
    for h, s in zip(hoisted, steps):
        seq = ck.rotate(ct, s)
        assert np.allclose(
            ck.decrypt_values(h, 128), ck.decrypt_values(seq, 128), atol=1e-2
        )


def test_rotate_many_single_step_falls_back():
    params = FheParams.build(n=128, levels=3, prime_bits=28, plaintext_modulus=256)
    bgv = BgvContext(params, seed=3)
    ct = bgv.encrypt(np.arange(128) % 256)
    [only] = bgv.rotate_many(ct, [4])
    assert np.array_equal(bgv.decrypt(only), bgv.decrypt(bgv.rotate(ct, 4)))


# --------------------------------------------------------- chained rescales
def test_bgv_mod_switch_chain_bit_identical_to_sequential():
    params = FheParams.build(n=128, levels=6, prime_bits=28, plaintext_modulus=256)
    bgv = BgvContext(params, seed=13)
    ct = bgv.encrypt(np.arange(128) % 256)
    chained = bgv.mod_switch_to(ct, 2)
    seq = ct
    while seq.level > 2:
        seq = bgv.mod_switch(seq)
    assert np.array_equal(chained.a.limbs, seq.a.limbs)
    assert np.array_equal(chained.b.limbs, seq.b.limbs)
    assert chained.plaintext_scale == seq.plaintext_scale
    assert chained.noise_bits == pytest.approx(seq.noise_bits)
    assert np.array_equal(bgv.decrypt(chained), bgv.decrypt(seq))
    # rescale_to is the same chain under the unified-surface name.
    alias = bgv.rescale_to(ct, 2)
    assert np.array_equal(alias.a.limbs, chained.a.limbs)
    # No-op and error edges match the sequential semantics.
    assert bgv.mod_switch_to(ct, ct.level) is ct
    with pytest.raises(ValueError):
        bgv.mod_switch_to(ct, 0)


def test_ckks_rescale_chain_bit_identical_to_sequential():
    params = FheParams.build(n=128, levels=6, prime_bits=28, plaintext_modulus=1)
    ck = CkksContext(params, seed=13)
    ct = ck.encrypt_values(np.linspace(0.0, 1.0, 64))
    chained = ck.rescale_to(ct, 3)
    seq = ct
    while seq.level > 3:
        seq = ck.rescale(seq)
    assert np.array_equal(chained.a.limbs, seq.a.limbs)
    assert np.array_equal(chained.b.limbs, seq.b.limbs)
    assert chained.scale == pytest.approx(seq.scale)
    assert chained.noise_bits == pytest.approx(seq.noise_bits)


def test_ckks_mod_switch_chain_bit_identical_to_sequential():
    params = FheParams.build(n=128, levels=6, prime_bits=28, plaintext_modulus=1)
    ck = CkksContext(params, seed=13)
    ct = ck.encrypt_values(np.linspace(0.0, 1.0, 64))
    chained = ck.mod_switch_to(ct, 2)
    seq = ct
    while seq.level > 2:
        seq = ck.mod_switch(seq)
    assert np.array_equal(chained.a.limbs, seq.a.limbs)
    assert np.array_equal(chained.b.limbs, seq.b.limbs)
    assert np.allclose(
        ck.decrypt_values(chained, 64), ck.decrypt_values(ct, 64), atol=1e-2
    )


# ----------------------------------------------- interpreter-level hoisting
def test_functional_interpreter_hoists_shared_rotations():
    """A program rotating one handle repeatedly (the dot-product pattern)
    still validates exactly against the plaintext reference."""
    from repro.backends import FunctionalBackend
    from repro.dsl.program import Program

    p = Program(n=128, scheme="bgv", name="hoist_dot")
    x = p.input(3, name="x")
    acc = p.add(x, p.rotate(x, 1))
    acc = p.add(acc, p.rotate(x, 2))
    acc = p.add(acc, p.rotate(x, 4))
    p.output(acc, name="windows")
    result = FunctionalBackend().run(p, seed=1)
    assert result.stats.get("validated") is True