"""Shared fixtures: small parameter sets and contexts, cached per session.

Functional tests run at toy ring sizes (N = 64..512) — the math is identical
at every power-of-two N (the paper's own functional simulator spans
N = 1024..16384; we go smaller for speed and cover the large sizes in the
performance-model tests, which are size-independent)."""

import numpy as np
import pytest

from repro.fhe.bgv import BgvContext
from repro.fhe.ckks import CkksContext
from repro.fhe.params import FheParams


@pytest.fixture(scope="session")
def bgv_params():
    return FheParams.build(n=256, levels=4, prime_bits=28, plaintext_modulus=256)


@pytest.fixture(scope="session")
def bgv(bgv_params):
    return BgvContext(bgv_params, seed=7)


@pytest.fixture(scope="session")
def bgv_v2(bgv_params):
    return BgvContext(bgv_params, seed=7, ks_variant=2)


@pytest.fixture(scope="session")
def ckks_params():
    return FheParams.build(n=256, levels=4, prime_bits=28, plaintext_modulus=1)


@pytest.fixture(scope="session")
def ckks(ckks_params):
    return CkksContext(ckks_params, seed=9)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
