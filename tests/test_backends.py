"""Unified execution-backend API (repro.backends).

The core contract: one Program, many backends, identical semantics.  These
tests generate small random programs and check that the functional backend
(real BGV/CKKS encryption) agrees with the plaintext reference evaluator,
and that the F1 compiler consumes the exact graph the functional run did.
"""

import numpy as np
import pytest

import repro
from repro.backends import BACKENDS
from repro.dsl.program import Program

N = 128


def random_program(seed: int, *, scheme: str, n: int = N, levels: int = 5,
                   n_ops: int = 8) -> Program:
    """A random small op graph covering the full DSL op mix.

    Multiplications are only emitted while both operands keep >= 3 limbs so
    the rescale chain never reaches level 1, where toy CKKS scales run out
    of modulus headroom.
    """
    rng = np.random.default_rng(seed)
    p = Program(n=n, scheme=scheme, name=f"random_{scheme}_{seed}")
    pool = [p.input(levels) for _ in range(int(rng.integers(2, 4)))]
    kinds = ["add", "sub", "mul", "mul_plain", "add_plain", "rotate"]
    for _ in range(n_ops):
        kind = kinds[rng.integers(len(kinds))]
        a = pool[rng.integers(len(pool))]
        b = pool[rng.integers(len(pool))]
        if kind == "add":
            pool.append(p.add(a, b))
        elif kind == "sub":
            pool.append(p.sub(a, b))
        elif kind == "mul":
            if min(a.level, b.level) < 3:
                continue
            pool.append(p.mul(a, b))
        elif kind == "mul_plain":
            pool.append(p.mul_plain(a))
        elif kind == "add_plain":
            pool.append(p.add_plain(a))
        elif kind == "rotate":
            pool.append(p.rotate(a, int(rng.integers(1, 8))))
    p.output(pool[-1])
    return p


class TestFunctionalMatchesReference:
    """Property-style: random programs, functional output == reference."""

    @pytest.mark.parametrize("seed", range(6))
    def test_bgv(self, seed):
        program = random_program(seed, scheme="bgv")
        result = repro.run(program, backend=repro.FunctionalBackend("bgv"))
        # validate=True already raised on mismatch; check the record and
        # re-verify bit-equality against the standalone reference backend.
        assert result.stats["validated"]
        assert result.stats["max_error"] == 0.0
        reference = repro.run(program, backend="reference")
        t = min(256, 2 * program.n)
        assert reference.outputs.keys() == result.outputs.keys()
        for key in reference.outputs:
            assert np.array_equal(
                result.outputs[key] % t, reference.outputs[key] % t
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_ckks(self, seed):
        program = random_program(seed, scheme="ckks")
        result = repro.run(program, backend=repro.FunctionalBackend("ckks"))
        assert result.stats["validated"]
        assert result.stats["max_error"] < 1e-2

    def test_validation_catches_corruption(self):
        """Corrupted outputs must fail the cross-validation, not slide by."""
        program = random_program(0, scheme="bgv")
        backend = repro.FunctionalBackend("bgv")
        result = repro.run(program, backend=backend)
        reference = repro.run(program, backend="reference").outputs
        corrupted = {k: v + 1 for k, v in result.outputs.items()}
        params = backend._params_for(program, "bgv")
        with pytest.raises(AssertionError, match="does not match"):
            backend._validated("bgv", params, corrupted, reference)

    def test_validation_catches_ckks_drift(self):
        program = random_program(0, scheme="ckks")
        backend = repro.FunctionalBackend("ckks")
        result = repro.run(program, backend=backend)
        reference = {
            k: np.asarray(v[: program.n // 2]) + 1.0
            for k, v in result.outputs.items()
        }
        params = backend._params_for(program, "ckks")
        with pytest.raises(AssertionError, match="exceeds tolerance"):
            backend._validated("ckks", params, result.outputs, reference)


class TestF1ConsumesSameGraph:
    """The compiled backend executes the exact graph the functional run did."""

    @pytest.mark.parametrize("scheme", ["bgv", "ckks"])
    def test_op_and_hint_counts(self, scheme):
        program = random_program(3, scheme=scheme)
        functional = repro.run(program, backend=repro.FunctionalBackend(scheme))
        f1 = repro.run(program, backend="f1")
        assert f1.op_counts == functional.op_counts
        assert f1.distinct_hints == functional.distinct_hints
        # And the analytic baselines see it too.
        cpu = repro.run(program, backend="cpu")
        heax = repro.run(program, backend="heax")
        assert cpu.op_counts == heax.op_counts == f1.op_counts

    def test_f1_stats_surface(self):
        program = random_program(1, scheme="bgv")
        result = repro.run(program, backend="f1")
        assert result.time_ms > 0
        assert result.stats["schedule_checked"]["instructions"] > 0
        assert sum(result.stats["traffic_bytes"].values()) > 0


class TestRunDispatch:
    def test_string_names(self):
        program = random_program(2, scheme="bgv")
        for name in BACKENDS:
            result = repro.run(program, backend=name)
            assert result.backend == name
            assert result.program == program.name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            repro.run(random_program(0, scheme="bgv"), backend="gpu")

    def test_not_a_backend(self):
        with pytest.raises(TypeError):
            repro.run(random_program(0, scheme="bgv"), backend=42)

    def test_backend_class_not_instance(self):
        with pytest.raises(TypeError, match="instantiate"):
            repro.run(random_program(0, scheme="bgv"), backend=repro.F1Backend)

    def test_scheme_program_mismatch(self):
        program = random_program(0, scheme="ckks")
        with pytest.raises(ValueError, match="cannot run"):
            repro.run(program, backend=repro.FunctionalBackend("bgv"))

    def test_partial_inputs_are_generated(self):
        """Passing only plains (fixed weights) still generates inputs."""
        p = Program(n=64, name="partial")
        x = p.input(3)
        w = p.input_plain(3)
        p.output(p.mul_plain(x, w))
        result = repro.run(
            p, backend="functional",
            plains={w.op_id: np.arange(1, 5) % 64},
        )
        assert result.stats["validated"]
        result = repro.run(p, backend="functional", inputs=None, plains=None)
        assert result.stats["validated"]

    def test_decrypt_values_count_zero(self):
        ctx = repro.BgvContext(
            repro.FheParams.build(n=64, levels=2, prime_bits=28,
                                  plaintext_modulus=128)
        )
        ct = ctx.encrypt_values(np.arange(4))
        assert ctx.decrypt_values(ct, count=0).shape == (0,)
        assert ctx.decrypt_values(ct).shape == (64,)

    def test_injected_context_validated(self):
        program = random_program(0, scheme="bgv")
        params = repro.FheParams.build(n=2 * N, levels=5, prime_bits=28,
                                       plaintext_modulus=256)
        ctx = repro.BgvContext(params)
        with pytest.raises(ValueError, match="N="):
            repro.FunctionalSimulator(
                program,
                repro.FheParams.build(n=N, levels=5, prime_bits=28,
                                      plaintext_modulus=256),
                context=ctx,
            )

    def test_modeled_backends_skip_inputs(self):
        """Analytic backends never touch values; outputs stay empty."""
        program = random_program(4, scheme="bgv")
        for name in ("f1", "cpu", "heax"):
            assert repro.run(program, backend=name).outputs == {}

    def test_heax_program_model_scales(self):
        slow = repro.run(random_program(5, scheme="bgv", n=4096), backend="heax")
        fast = repro.run(random_program(5, scheme="bgv", n=256), backend="heax")
        assert slow.time_ms > fast.time_ms


class TestProgramHandleValidation:
    """Satellite: handles from another Program must be rejected."""

    def test_cross_program_binary_op(self):
        p, q = Program(n=64, name="p"), Program(n=64, name="q")
        xp, xq = p.input(3), q.input(3)
        with pytest.raises(ValueError, match="another Program"):
            p.add(xp, xq)

    def test_cross_program_unary_op(self):
        p, q = Program(n=64, name="p"), Program(n=64, name="q")
        xq = q.input(3)
        for method in (p.mod_switch, p.output, lambda h: p.rotate(h, 1)):
            with pytest.raises(ValueError, match="another Program"):
                method(xq)

    def test_cross_program_rotate_zero(self):
        p, q = Program(n=64, name="p"), Program(n=64, name="q")
        xq = q.input(3)
        with pytest.raises(ValueError, match="another Program"):
            p.rotate(xq, 0)

    def test_cross_program_plain_operand(self):
        p, q = Program(n=64, name="p"), Program(n=64, name="q")
        xp, wq = p.input(3), q.input_plain(3)
        with pytest.raises(ValueError, match="another Program"):
            p.mul_plain(xp, wq)


class TestPackageExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_key_exports(self):
        for name in ("Program", "FheParams", "FunctionalBackend", "F1Backend",
                     "CpuBackend", "HeaxBackend", "ReferenceBackend",
                     "RunResult", "run"):
            assert name in repro.__all__
