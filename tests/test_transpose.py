"""Quadrant-swap transpose (repro.poly.transpose, Sec. 5.1/Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.transpose import quadrant_swap_transpose, transpose_chunked


@pytest.mark.parametrize("size", [1, 2, 4, 8, 16, 32, 64, 128])
def test_matches_numpy_transpose(size):
    rng = np.random.default_rng(size)
    m = rng.integers(0, 1 << 32, (size, size), dtype=np.uint64)
    assert np.array_equal(quadrant_swap_transpose(m), m.T)


def test_involution():
    rng = np.random.default_rng(0)
    m = rng.integers(0, 100, (16, 16))
    assert np.array_equal(quadrant_swap_transpose(quadrant_swap_transpose(m)), m)


def test_rejects_non_square():
    with pytest.raises(ValueError):
        quadrant_swap_transpose(np.zeros((4, 8)))


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        quadrant_swap_transpose(np.zeros((6, 6)))


class TestChunked:
    """The G x E view used for residue polynomials (G <= E, Fig. 7 right)."""

    @pytest.mark.parametrize("g,e", [(1, 8), (2, 8), (4, 8), (8, 8), (4, 128)])
    def test_matches_reshape_transpose(self, g, e):
        rng = np.random.default_rng(g * e)
        flat = rng.integers(0, 1 << 20, g * e, dtype=np.uint64)
        expected = flat.reshape(g, e).T.reshape(-1)
        assert np.array_equal(transpose_chunked(flat, e), expected)

    def test_square_path_uses_quadrant_swap(self):
        e = 16
        rng = np.random.default_rng(3)
        flat = rng.integers(0, 100, e * e, dtype=np.uint64)
        assert np.array_equal(
            transpose_chunked(flat, e), flat.reshape(e, e).T.reshape(-1)
        )

    def test_rejects_g_greater_than_e(self):
        with pytest.raises(ValueError):
            transpose_chunked(np.zeros(64, dtype=np.uint64), 4)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            transpose_chunked(np.zeros(65, dtype=np.uint64), 8)


@given(st.integers(min_value=0, max_value=6))
@settings(max_examples=7, deadline=None)
def test_transpose_property_all_sizes(log_size):
    size = 1 << log_size
    rng = np.random.default_rng(log_size)
    m = rng.integers(0, 1000, (size, size))
    assert np.array_equal(quadrant_swap_transpose(m), m.T)
