"""BGV scheme end-to-end (repro.fhe.bgv)."""

import numpy as np
import pytest

from repro.fhe.bgv import BgvContext, rotation_exponent
from repro.fhe.params import FheParams
from repro.poly.automorphism import automorphism_coeff
from repro.poly.ntt import naive_negacyclic_multiply

N = 256
T = 256


@pytest.fixture(scope="module")
def msgs():
    rng = np.random.default_rng(21)
    return rng.integers(0, T, N), rng.integers(0, T, N)


class TestEncryptDecrypt:
    def test_roundtrip(self, bgv, msgs):
        m0, _ = msgs
        assert np.array_equal(bgv.decrypt(bgv.encrypt(m0)), m0)

    def test_short_vector_padded(self, bgv):
        out = bgv.decrypt(bgv.encrypt([1, 2, 3]))
        assert list(out[:3]) == [1, 2, 3]
        assert not out[3:].any()

    def test_too_long_rejected(self, bgv):
        with pytest.raises(ValueError):
            bgv.encrypt(np.zeros(N + 1))

    def test_encrypt_at_lower_level(self, bgv, msgs):
        m0, _ = msgs
        ct = bgv.encrypt(m0, level=2)
        assert ct.level == 2
        assert np.array_equal(bgv.decrypt(ct), m0)

    def test_fresh_noise_budget_positive(self, bgv, msgs):
        assert bgv.noise_budget_bits(bgv.encrypt(msgs[0])) > 40

    def test_ciphertexts_randomized(self, bgv, msgs):
        c1, c2 = bgv.encrypt(msgs[0]), bgv.encrypt(msgs[0])
        assert not np.array_equal(c1.a.limbs, c2.a.limbs)


class TestHomomorphicOps:
    def test_add(self, bgv, msgs):
        m0, m1 = msgs
        out = bgv.decrypt(bgv.add(bgv.encrypt(m0), bgv.encrypt(m1)))
        assert np.array_equal(out, (m0 + m1) % T)

    def test_sub(self, bgv, msgs):
        m0, m1 = msgs
        out = bgv.decrypt(bgv.sub(bgv.encrypt(m0), bgv.encrypt(m1)))
        assert np.array_equal(out, (m0 - m1) % T)

    def test_add_plain(self, bgv, msgs):
        m0, m1 = msgs
        out = bgv.decrypt(bgv.add_plain(bgv.encrypt(m0), m1))
        assert np.array_equal(out, (m0 + m1) % T)

    def test_mul_plain(self, bgv, msgs):
        m0, m1 = msgs
        out = bgv.decrypt(bgv.mul_plain(bgv.encrypt(m0), m1))
        assert np.array_equal(out, naive_negacyclic_multiply(m0, m1, T))

    def test_mul(self, bgv, msgs):
        """Homomorphic multiply = negacyclic polynomial product mod t."""
        m0, m1 = msgs
        out = bgv.decrypt(bgv.mul(bgv.encrypt(m0), bgv.encrypt(m1)))
        assert np.array_equal(out, naive_negacyclic_multiply(m0, m1, T))

    def test_mul_consumes_noise(self, bgv, msgs):
        m0, m1 = msgs
        ct = bgv.mul(bgv.encrypt(m0), bgv.encrypt(m1))
        assert bgv.noise_budget_bits(ct) < bgv.noise_budget_bits(bgv.encrypt(m0))

    def test_level_mismatch_rejected(self, bgv, msgs):
        m0, m1 = msgs
        with pytest.raises(ValueError):
            bgv.add(bgv.encrypt(m0), bgv.encrypt(m1, level=2))


class TestModSwitch:
    def test_plaintext_invariant(self, bgv, msgs):
        m0, _ = msgs
        ct = bgv.mod_switch(bgv.encrypt(m0))
        assert ct.level == bgv.params.level - 1
        assert np.array_equal(bgv.decrypt(ct), m0)

    def test_chain_to_bottom(self, bgv, msgs):
        m0, _ = msgs
        ct = bgv.mod_switch_to(bgv.encrypt(m0), 1)
        assert ct.level == 1
        assert np.array_equal(bgv.decrypt(ct), m0)

    def test_cannot_drop_last_limb(self, bgv, msgs):
        ct = bgv.mod_switch_to(bgv.encrypt(msgs[0]), 1)
        with pytest.raises(ValueError):
            bgv.mod_switch(ct)

    def test_reduces_noise_magnitude(self, bgv, msgs):
        """Budget loss from dropping a 28-bit limb is far less than 28 bits —
        the noise scales down with the modulus (Sec. 2.2.2)."""
        m0, m1 = msgs
        prod = bgv.mul(bgv.encrypt(m0), bgv.encrypt(m1))
        before = bgv.noise_budget_bits(prod)
        after = bgv.noise_budget_bits(bgv.mod_switch(prod))
        assert after > before - 10

    def test_power_of_two_t_needs_no_scale_correction(self, bgv, msgs):
        """q ≡ 1 (mod 2N) implies q ≡ 1 (mod t) for power-of-two t <= 2N, so
        modulus switching leaves the plaintext scale at 1 — mixing fresh and
        switched ciphertexts is safe for these parameters."""
        m0, _ = msgs
        fresh = bgv.encrypt(m0, level=bgv.params.level - 1)
        switched = bgv.mod_switch(bgv.encrypt(m0))
        assert switched.plaintext_scale == 1 == fresh.plaintext_scale
        assert np.array_equal(bgv.decrypt(bgv.add(fresh, switched)), (2 * m0) % T)

    def test_scale_mismatch_detected_for_general_t(self, msgs):
        """With t not dividing 2N the scale correction is real, and adding
        ciphertexts with different modulus-switch histories must be refused."""
        params = FheParams.build(n=N, levels=3, prime_bits=28,
                                 plaintext_modulus=12289)
        ctx = BgvContext(params, seed=3)
        m = np.arange(N) % 12289
        fresh = ctx.encrypt(m, level=2)
        switched = ctx.mod_switch(ctx.encrypt(m))
        assert switched.plaintext_scale != 1
        assert np.array_equal(ctx.decrypt(switched), m)  # correction works
        with pytest.raises(ValueError):
            ctx.add(fresh, switched)

    def test_depth_two_with_mod_switch(self, bgv, msgs):
        m0, m1 = msgs
        ref = naive_negacyclic_multiply(
            naive_negacyclic_multiply(m0, m1, T), m1, T
        )
        p1 = bgv.mod_switch(bgv.mul(bgv.encrypt(m0), bgv.encrypt(m1)))
        other = bgv.mod_switch_to(bgv.encrypt(m1), p1.level)
        # Align plaintext scales by matching modulus-switch history: re-derive
        # the second operand through the same chain.
        other.plaintext_scale = p1.plaintext_scale
        # (The DSL/compiler path aligns automatically; here we exercise math.)
        p2 = bgv.mul(p1, other)
        got = np.array(
            [(c * pow(p2.plaintext_scale, -1, T)) % T
             for c in (p2.b - p2.a * bgv.secret.poly(p2.basis)).to_int_coeffs()]
        )
        assert np.array_equal(bgv.decrypt(p2), ref) or np.array_equal(got, ref)


class TestAutomorphismsAndRotations:
    @pytest.mark.parametrize("k", [3, 5, 2 * N - 1])
    def test_homomorphic_automorphism(self, bgv, msgs, k):
        m0, _ = msgs
        out = bgv.decrypt(bgv.automorphism(bgv.encrypt(m0), k))
        expected = automorphism_coeff(m0.astype(np.uint64), k, T)
        assert np.array_equal(out, expected)

    def test_rotate_is_power_of_three_automorphism(self, bgv, msgs):
        m0, _ = msgs
        k = rotation_exponent(2, N)
        assert k == pow(3, 2, 2 * N)
        via_rotate = bgv.decrypt(bgv.rotate(bgv.encrypt(m0), 2))
        via_aut = automorphism_coeff(m0.astype(np.uint64), k, T)
        assert np.array_equal(via_rotate, via_aut)


class TestKeySwitchVariants:
    def test_v2_mul_correct(self, bgv_v2, msgs):
        m0, m1 = msgs
        out = bgv_v2.decrypt(bgv_v2.mul(bgv_v2.encrypt(m0), bgv_v2.encrypt(m1)))
        assert np.array_equal(out, naive_negacyclic_multiply(m0, m1, T))

    def test_v2_automorphism_correct(self, bgv_v2, msgs):
        m0, _ = msgs
        out = bgv_v2.decrypt(bgv_v2.automorphism(bgv_v2.encrypt(m0), 3))
        assert np.array_equal(out, automorphism_coeff(m0.astype(np.uint64), 3, T))

    def test_v2_less_noisy_than_v1(self, bgv, bgv_v2, msgs):
        """The raised-modulus variant adds ~q_i-fold less noise (why CKKS
        defaults to it)."""
        m0, m1 = msgs
        n1 = bgv.noise_budget_bits(bgv.mul(bgv.encrypt(m0), bgv.encrypt(m1)))
        n2 = bgv_v2.noise_budget_bits(bgv_v2.mul(bgv_v2.encrypt(m0), bgv_v2.encrypt(m1)))
        assert n2 > n1 + 5

    def test_invalid_variant_rejected(self, bgv_params):
        with pytest.raises(ValueError):
            BgvContext(bgv_params, ks_variant=3)

    def test_hints_cached(self, bgv, msgs):
        m0, m1 = msgs
        bgv.mul(bgv.encrypt(m0), bgv.encrypt(m1))
        count = len(bgv._hints_v1)
        bgv.mul(bgv.encrypt(m0), bgv.encrypt(m1))
        assert len(bgv._hints_v1) == count
