"""Four-step NTT decomposition (repro.poly.fourstep) vs. the direct NTT."""

import numpy as np
import pytest

from repro.poly.fourstep import _split, four_step_intt, four_step_ntt
from repro.poly.ntt import get_context
from repro.rns.primes import ntt_friendly_primes


@pytest.mark.parametrize("n", [4, 16, 64, 256, 1024, 4096])
def test_forward_bit_exact(n):
    q = ntt_friendly_primes(n, 26, 1)[0]
    rng = np.random.default_rng(n)
    a = rng.integers(0, q, n, dtype=np.uint64)
    assert np.array_equal(four_step_ntt(a, n, q), get_context(n, q).forward(a))


@pytest.mark.parametrize("n", [4, 16, 64, 256, 1024, 4096])
def test_inverse_bit_exact(n):
    q = ntt_friendly_primes(n, 26, 1)[0]
    rng = np.random.default_rng(n + 1)
    a = rng.integers(0, q, n, dtype=np.uint64)
    evals = get_context(n, q).forward(a)
    assert np.array_equal(four_step_intt(evals, n, q), a)


def test_roundtrip_composition():
    n = 256
    q = ntt_friendly_primes(n, 26, 1)[0]
    rng = np.random.default_rng(2)
    a = rng.integers(0, q, n, dtype=np.uint64)
    assert np.array_equal(four_step_intt(four_step_ntt(a, n, q), n, q), a)


def test_split_shapes():
    assert _split(16384) == (128, 128)
    assert _split(8192) == (64, 128)
    assert _split(4) == (2, 2)
    for n in (16, 64, 1024, 16384):
        n1, n2 = _split(n)
        assert n1 * n2 == n
        assert n1 <= n2 <= 128 * max(1, n // 16384) or n <= 16384


def test_multiple_moduli_same_n():
    n = 64
    for q in ntt_friendly_primes(n, 26, 3):
        rng = np.random.default_rng(q)
        a = rng.integers(0, q, n, dtype=np.uint64)
        assert np.array_equal(four_step_ntt(a, n, q), get_context(n, q).forward(a))
