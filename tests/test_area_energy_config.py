"""Architecture model: config math, Table-2 area, energy (repro.core.*)."""

import pytest

from repro.core.area import area_mm2, area_report, tdp_w
from repro.core.config import F1Config
from repro.core.energy import EnergyModel


class TestConfigDerived:
    def test_rvec_bytes(self):
        assert F1Config().rvec_bytes(16384) == 64 * 1024  # 64 KB (Sec. 2.4)

    def test_chunks(self):
        cfg = F1Config()
        assert cfg.chunks(16384) == 128
        assert cfg.chunks(1024) == 8
        assert cfg.chunks(64) == 1

    def test_scratchpad_capacity_paper_claim(self):
        """Sec. 4: 'our scratchpad stores at least 1024 residue vectors'."""
        assert F1Config().scratchpad_capacity_rvecs(16384) == 1024

    def test_hbm_bandwidth(self):
        assert F1Config().hbm_bytes_per_cycle() == 1024  # 1 TB/s at 1 GHz

    def test_load_cycles(self):
        assert F1Config().load_cycles(16384) == 64.0

    def test_transfer_matches_consumption_rate(self):
        """512 B ports stream a vector at the FU consumption rate: G cycles."""
        cfg = F1Config()
        assert cfg.transfer_cycles(16384) == cfg.chunks(16384)

    def test_occupancy_full_throughput(self):
        cfg = F1Config()
        for fu in ("ntt", "aut", "mul", "add"):
            assert cfg.fu_occupancy(fu, 16384) == 128

    def test_latency_exceeds_occupancy(self):
        cfg = F1Config()
        for kind in ("ntt", "intt", "aut", "mul", "add"):
            assert cfg.fu_latency(kind, 16384) >= cfg.fu_occupancy(
                "ntt" if kind == "intt" else kind, 16384
            )

    def test_fu_count(self):
        cfg = F1Config()
        assert cfg.fu_count("ntt") == 16
        assert cfg.fu_count("mul") == 32

    def test_unknown_fu_rejected(self):
        with pytest.raises(ValueError):
            F1Config().fu_occupancy("fft", 1024)


class TestVariants:
    def test_low_throughput_ntt_preserves_aggregate(self):
        cfg = F1Config()
        lt = cfg.with_low_throughput_ntt()
        base_throughput = cfg.ntt.count / cfg.ntt.throughput_div
        lt_throughput = lt.ntt.count / lt.ntt.throughput_div
        assert base_throughput == lt_throughput
        assert lt.fu_occupancy("ntt", 16384) == 128 * 7

    def test_low_throughput_aut_preserves_aggregate(self):
        cfg = F1Config()
        lt = cfg.with_low_throughput_aut()
        assert lt.aut.count / lt.aut.throughput_div == cfg.aut.count

    def test_scaled_config(self):
        small = F1Config().scaled(clusters=8, banks=8, phys=1)
        assert small.clusters == 8
        assert small.scratchpad_mb == 32
        assert small.hbm_phys == 1


class TestAreaModel:
    def test_table2_total_area(self):
        """Table 2: total F1 area 151.4 mm^2."""
        assert area_mm2(F1Config()) == pytest.approx(151.4, abs=0.5)

    def test_table2_total_tdp(self):
        """Table 2: TDP 180.4 W."""
        assert tdp_w(F1Config()) == pytest.approx(180.4, abs=1.0)

    def test_table2_component_rows(self):
        report = area_report()
        assert report["Compute cluster"]["area_mm2"] == pytest.approx(3.97, abs=0.05)
        assert report["Total compute"]["area_mm2"] == pytest.approx(63.52, abs=0.5)
        assert report["Scratchpad"]["area_mm2"] == pytest.approx(48.09, abs=0.1)
        assert report["Memory interface"]["area_mm2"] == pytest.approx(29.80, abs=0.1)

    def test_area_scales_down_with_clusters(self):
        assert area_mm2(F1Config().scaled(clusters=8)) < area_mm2(F1Config())

    def test_fus_are_42_percent(self):
        """Sec. 6: 'FUs take 42% of the area'."""
        report = area_report()
        frac = report["Total compute"]["area_mm2"] / report["Total F1"]["area_mm2"]
        assert frac == pytest.approx(0.42, abs=0.02)


class TestEnergyModel:
    def test_positive_and_finite(self):
        e = EnergyModel.from_config(F1Config())
        assert all(v > 0 for v in e.fu_busy_nj_per_cycle.values())
        assert e.hbm_nj_per_byte > 0
        assert e.noc_nj_per_byte > 0

    def test_ntt_fu_costliest(self):
        e = EnergyModel.from_config(F1Config())
        fu = e.fu_busy_nj_per_cycle
        assert fu["ntt"] > fu["aut"] > fu["mul"] > fu["add"]
