"""Observability tier: mergeable metrics, tracing, kernel timers, logging.

Covers the cross-process contracts the serving stack now leans on:

- histogram states merge into the same distribution the union of
  observations would produce (counts exact, percentiles within one
  log-bucket), counters add, gauges take the max, schema drift raises;
- ``FheServer.stats()`` keeps one golden schema across the thread,
  process, and remote executors — dropped or retyped keys fail here
  before any dashboard notices;
- trace spans stitch across process boundaries on shared trace ids and
  the dumped file is valid Chrome trace-event JSON;
- kernel timers are off by default, on under ``profiled()``, and
  attribute per-signature time under ``attributed()``;
- the structured logger emits parseable JSON when ``REPRO_LOG=json``.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.dsl.program import Program
from repro.obs import profile
from repro.obs.log import get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    GROWTH,
    global_metrics,
    merge_snapshots,
    summarize_state,
)
from repro.obs.trace import Tracer, new_trace_id, tracer
from repro.serve.server import FheServer

N = 256
WIDTH = 8


def linear_bgv(n=N, name="linear", level=3):
    p = Program(n=n, scheme="bgv", name=name)
    x = p.input(level, name="x")
    w = p.input_plain(level, name="w")
    b = p.input_plain(level, name="b")
    p.output(p.add_plain(p.mul_plain(x, w), b))
    return p


def submit_all(server, program, count, *, seed=0):
    rng = np.random.default_rng(seed)
    x, w, b = (op.op_id for op in program.ops[:3])
    shared_w = rng.integers(0, 256, WIDTH)
    futures = [
        server.submit(program,
                      inputs={x: rng.integers(0, 256, WIDTH)},
                      plains={w: shared_w, b: rng.integers(0, 256, WIDTH)},
                      width=WIDTH)
        for _ in range(count)
    ]
    server.flush()
    return [f.result(timeout=60) for f in futures]


# ------------------------------------------------------------------- metrics
class TestHistogram:
    def test_percentiles_within_one_bucket(self):
        h = Histogram()
        values = np.random.default_rng(0).lognormal(2.0, 1.0, 5000)
        for v in values:
            h.observe(float(v))
        for q in (50, 90, 99):
            exact = float(np.percentile(values, q))
            got = h.percentile(q)
            assert exact / GROWTH <= got <= exact * GROWTH

    def test_min_max_mean_count_exact(self):
        h = Histogram()
        for v in (0.5, 3.0, 7.5, 100.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["max"] == 100.0
        assert s["mean"] == pytest.approx((0.5 + 3.0 + 7.5 + 100.0) / 4)
        # extremes stay within one bucket of the exact observed min/max
        assert 0.5 <= h.percentile(0) <= 0.5 * GROWTH
        assert 100.0 / GROWTH <= h.percentile(100) <= 100.0

    def test_merge_equals_union_of_observations(self):
        rng = np.random.default_rng(1)
        a_vals = rng.lognormal(1.0, 1.0, 400)
        b_vals = rng.lognormal(3.0, 0.5, 600)
        a, b, union = Histogram(), Histogram(), Histogram()
        for v in a_vals:
            a.observe(float(v)); union.observe(float(v))
        for v in b_vals:
            b.observe(float(v)); union.observe(float(v))
        merged = Histogram()
        merged.merge_state(a.to_state())
        merged.merge_state(b.to_state())
        m, u = merged.summary(), union.summary()
        assert (m["count"], m["max"]) == (u["count"], u["max"])
        assert (m["p50"], m["p99"]) == (u["p50"], u["p99"])
        assert m["mean"] == pytest.approx(u["mean"])

    def test_merge_rejects_schema_drift(self):
        bad = dict(Histogram().to_state(), schema=99)
        with pytest.raises(ValueError, match="schema"):
            Histogram().merge_state(bad)

    def test_counter_adds_and_gauge_maxes(self):
        c1, c2 = Counter(), Counter()
        c1.inc(3), c2.inc(4)
        g1, g2 = Gauge(), Gauge()
        g1.set(2.0), g2.set(9.0)
        merged = merge_snapshots({"c": c1.to_state(), "g": g1.to_state()},
                                 {"c": c2.to_state(), "g": g2.to_state()})
        assert merged["c"]["value"] == 7
        assert merged["g"]["value"] == 9.0


class TestMergeSnapshots:
    def test_merges_across_blobs_and_skips_none(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("reqs").inc(2)
        r2.counter("reqs").inc(5)
        r1.histogram("lat").observe(1.0)
        r2.histogram("lat").observe(100.0)
        r2.counter("only_b").inc(1)
        merged = merge_snapshots(r1.snapshot(), None, r2.snapshot())
        assert merged["reqs"]["value"] == 7
        assert merged["only_b"]["value"] == 1
        s = summarize_state(merged["lat"])
        assert s["count"] == 2 and s["max"] == 100.0


# -------------------------------------------------------------------- tracer
class TestTracer:
    def test_disabled_span_records_nothing(self):
        t = Tracer()
        with t.span("x"):
            pass
        assert t.spans() == []
        assert not t.active

    def test_enabled_span_records(self):
        t = Tracer()
        t.enable()
        with t.span("x", trace="1.1"):
            pass
        (span,) = t.spans()
        assert span["name"] == "x"
        assert span["args"]["trace"] == "1.1"
        assert span["pid"] == os.getpid()

    def test_capture_collects_without_enabling(self):
        t = Tracer()
        with t.capture() as spans:
            with t.span("inner"):
                pass
            t.ingest([{"name": "forwarded", "ts": 0, "dur": 1,
                       "pid": 1, "args": {}}])
        assert [s["name"] for s in spans] == ["inner", "forwarded"]
        assert t.spans() == []   # ring untouched: tracing was never enabled

    def test_dump_is_chrome_trace_json(self, tmp_path):
        t = Tracer()
        t.enable()
        t.set_label("test proc")
        with t.span("work", trace=new_trace_id()):
            pass
        path = tmp_path / "trace.json"
        assert t.dump(str(path)) == 1
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x["name"] == "work" and x["dur"] >= 0


# ------------------------------------------------------------ kernel timers
class TestKernelProfiling:
    def _crt_count(self):
        state = global_metrics().snapshot().get("kernel.crt_to_rns.ms")
        return state["count"] if state else 0

    def _run_kernel(self):
        from repro.rns.crt import RnsBasis
        from repro.rns.primes import ntt_friendly_primes

        basis = RnsBasis(ntt_friendly_primes(64, 28, 2))
        basis.to_rns(np.arange(64, dtype=np.int64))

    def test_off_by_default_on_under_profiled(self):
        assert not profile.kernels_enabled()
        before = self._crt_count()
        self._run_kernel()
        assert self._crt_count() == before   # disabled: no observation
        with profile.profiled():
            self._run_kernel()
        assert self._crt_count() == before + 1
        self._run_kernel()
        assert self._crt_count() == before + 1   # disabled again on exit

    def test_attribution_and_breakdown(self):
        with profile.profiled(), profile.attributed("sig_test"):
            self._run_kernel()
        blob = global_metrics().snapshot()
        assert "kernel.crt_to_rns.ms|sig=sig_test" in blob
        breakdown = profile.kernel_breakdown(blob)
        assert breakdown["sig_test"]["crt_to_rns"]["count"] >= 1
        assert breakdown["all"]["crt_to_rns"]["count"] >= 1


# ------------------------------------------------------------------- logging
class TestStructLog:
    def test_json_mode_emits_parseable_lines(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "json")
        log = get_logger("repro.test", host="h1").bind(port=7)
        log.info("listening", pid=123)
        line = capsys.readouterr().err.strip().splitlines()[-1]
        record = json.loads(line)
        assert record["event"] == "listening"
        assert record["logger"] == "repro.test"
        assert (record["host"], record["port"], record["pid"]) == ("h1", 7, 123)
        assert record["level"] == "INFO"

    def test_text_mode_is_one_line(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "text")
        get_logger("repro.test").warning("odd_state", detail="x")
        err = capsys.readouterr().err.strip()
        assert "odd_state" in err and "detail=x" in err
        assert "\n" not in err


# --------------------------------------------------- stats() golden schema
SUMMARY_KEYS = {"p50": float, "p99": float, "mean": float, "max": float,
                "count": int}

TOP_LEVEL = {
    "requests": int, "batches": int, "errors": int, "expired": int,
    "requests_per_s": float, "mean_batch_size": float,
    "mean_occupancy": float,
    "latency_ms": dict, "queue_ms": dict, "dispatch_ms": dict,
    "execute_ms": dict,
    "per_signature": dict, "metrics": dict, "kernels": dict,
    "registry": dict, "executor": dict,
}

PER_SIGNATURE = {
    "program": str, "requests": int, "batches": int, "capacity": int,
    "batchable": bool, "mean_occupancy": float, "latency_ms": dict,
    "queue_ms": dict, "batch_size_histogram": dict,
    "effective_wait_ms": float,
}

REGISTRY_KEYS = {"entries", "contexts", "compiled", "hits", "misses",
                 "hit_rate"}


def assert_summary(d, where):
    missing = set(SUMMARY_KEYS) - set(d)
    assert not missing, f"{where}: summary lost keys {missing}"
    for key, typ in SUMMARY_KEYS.items():
        assert isinstance(d[key], typ), f"{where}.{key} is {type(d[key])}"


def assert_stats_schema(stats, *, executor_name):
    for key, typ in TOP_LEVEL.items():
        assert key in stats, f"stats() lost key {key!r}"
        assert isinstance(stats[key], typ), \
            f"stats()[{key!r}] retyped to {type(stats[key])}"
    for key in ("latency_ms", "queue_ms", "dispatch_ms", "execute_ms"):
        assert_summary(stats[key], key)
    assert stats["per_signature"], "no per-signature rows"
    for sig, row in stats["per_signature"].items():
        for key, typ in PER_SIGNATURE.items():
            assert key in row, f"per_signature[{sig}] lost {key!r}"
            assert isinstance(row[key], typ)
        assert_summary(row["latency_ms"], f"per_signature[{sig}].latency_ms")
    for name, state in stats["metrics"].items():
        assert state["type"] in ("counter", "gauge", "hist"), name
    assert set(stats["registry"]) == REGISTRY_KEYS
    assert stats["executor"]["executor"] == executor_name
    # The numbers themselves must be live, not zeroed by the rebase.
    assert stats["requests"] >= 1
    assert stats["latency_ms"]["p50"] > 0
    assert stats["execute_ms"]["count"] >= 1


class TestStatsGoldenSchema:
    def test_thread_executor(self):
        program = linear_bgv()
        with FheServer(max_batch=4, max_wait_ms=5.0) as server:
            results = submit_all(server, program, 6)
            stats = server.stats()
        assert all(r.status == "ok" for r in results)
        assert_stats_schema(stats, executor_name="thread")
        for r in results:
            where = r.stats["executed_on"]
            assert where["executor"] == "thread"
            assert where["pid"] == os.getpid()

    def test_process_executor(self):
        program = linear_bgv()
        with FheServer(executor="process", workers=2,
                       max_batch=4, max_wait_ms=5.0) as server:
            results = submit_all(server, program, 6)
            stats = server.stats()
        assert all(r.status == "ok" for r in results)
        assert_stats_schema(stats, executor_name="process")
        pids = set()
        for r in results:
            where = r.stats["executed_on"]
            assert where["executor"] == "process"
            assert "replica" in where
            pids.add(where["pid"])
        assert pids and os.getpid() not in pids

    def test_remote_executor_with_trace_stitch(self, tmp_path):
        from repro.net.cluster import LocalCluster

        program = linear_bgv()
        tr = tracer()
        tr.clear()
        try:
            with LocalCluster(2) as cluster:
                with cluster.executor() as pool:
                    with FheServer(executor=pool, workers=2, max_batch=4,
                                   max_wait_ms=5.0, trace=True) as server:
                        results = submit_all(server, program, 6)
                        stats = server.stats()
                        path = tmp_path / "trace.json"
                        n_spans = server.dump_trace(str(path))
        finally:
            tr.disable()
            spans = tr.spans()
            tr.clear()
        assert all(r.status == "ok" for r in results)
        assert_stats_schema(stats, executor_name="remote")
        for r in results:
            where = r.stats["executed_on"]
            assert where["executor"] == "remote"
            assert ":" in where["addr"]
            assert r.stats["trace"]

        # Stitching: a worker-pid execute span carries an id the
        # coordinator minted at admit time.  Clock skew across processes
        # may reorder timestamps slightly, so assert on ids, not order.
        coord_pid = os.getpid()
        minted = {s["args"]["trace"] for s in spans
                  if s["name"] == "admit" and s["pid"] == coord_pid}
        assert minted
        worker_execs = [s for s in spans
                        if s["name"] == "execute" and s["pid"] != coord_pid]
        assert any(set(s["args"].get("traces", [])) & minted
                   for s in worker_execs)

        # The dump is a valid Chrome trace with both sides present.
        assert n_spans == len(spans)
        doc = json.loads(path.read_text())
        x_pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert coord_pid in x_pids and len(x_pids) >= 2

        # Merged-histogram criterion: under a remote executor the
        # coordinator never runs batches, so a populated execute_ms
        # proves worker blobs merged into the percentile source.
        assert stats["metrics"]["serve.execute_ms"]["count"] >= 1
