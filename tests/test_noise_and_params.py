"""Noise model (repro.fhe.noise) and parameter validation (repro.fhe.params)."""

import numpy as np
import pytest

from repro.fhe import noise
from repro.fhe.params import FheParams, max_secure_log_q
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes


class TestNoiseEstimates:
    """The analytic estimates must upper-bound the measured noise."""

    def _measured_bits(self, bgv, ct):
        phase = ct.b - ct.a * bgv.secret.poly(ct.basis)
        wide = phase.to_int_coeffs(centered=True)
        worst = max(abs(c) for c in wide)
        return max(worst, 1).bit_length()

    def test_fresh_estimate_bounds_measurement(self, bgv, rng):
        ct = bgv.encrypt(rng.integers(0, 256, 256))
        assert ct.noise_bits >= self._measured_bits(bgv, ct) - 1

    def test_mul_estimate_bounds_measurement(self, bgv, rng):
        m = rng.integers(0, 256, 256)
        ct = bgv.mul(bgv.encrypt(m), bgv.encrypt(m))
        assert ct.noise_bits >= self._measured_bits(bgv, ct) - 1

    def test_add_estimate_bounds_measurement(self, bgv, rng):
        m = rng.integers(0, 256, 256)
        ct = bgv.add(bgv.encrypt(m), bgv.encrypt(m))
        assert ct.noise_bits >= self._measured_bits(bgv, ct) - 1

    def test_rotation_estimate_bounds_measurement(self, bgv, rng):
        m = rng.integers(0, 256, 256)
        ct = bgv.rotate(bgv.encrypt(m), 1)
        assert ct.noise_bits >= self._measured_bits(bgv, ct) - 1

    def test_mod_switch_reduces_estimate(self, bgv, rng):
        m = rng.integers(0, 256, 256)
        prod = bgv.mul(bgv.encrypt(m), bgv.encrypt(m))
        assert bgv.mod_switch(prod).noise_bits < prod.noise_bits

    def test_formula_monotonicity(self):
        assert noise.mul_noise_bits(20, 20, 1024, 256) > 40
        assert noise.add_noise_bits(20, 10) == 21
        assert noise.keyswitch_v2_noise_bits(1024, 256, 8) < \
            noise.keyswitch_v1_noise_bits(1024, 256, 8, 1 << 28, 8)


class TestParams:
    def test_security_table(self):
        assert max_secure_log_q(4096) == 109
        assert max_secure_log_q(16384) == 438
        assert max_secure_log_q(512) == 0

    def test_insecure_params_rejected_when_enforced(self):
        primes = ntt_friendly_primes(1024, 28, 4)  # logQ ~112 >> 27
        with pytest.raises(ValueError):
            FheParams(
                n=1024, basis=RnsBasis(primes), allow_insecure=False
            )

    def test_secure_params_accepted(self):
        primes = ntt_friendly_primes(4096, 26, 4)  # logQ ~104 <= 109
        FheParams(n=4096, basis=RnsBasis(primes), allow_insecure=False)

    def test_non_ntt_friendly_modulus_rejected(self):
        with pytest.raises(ValueError):
            FheParams(n=1024, basis=RnsBasis([97]))

    def test_basis_at(self, bgv_params):
        assert bgv_params.basis_at(2).level == 2
        assert bgv_params.basis_at(bgv_params.level) == bgv_params.basis
        with pytest.raises(ValueError):
            bgv_params.basis_at(0)
        with pytest.raises(ValueError):
            bgv_params.basis_at(bgv_params.level + 1)

    def test_build_respects_plaintext_modulus(self):
        p = FheParams.build(n=128, levels=2, plaintext_modulus=16)
        assert p.plaintext_modulus == 16
        # q ≡ 1 mod 2N implies q ≡ 1 mod t for power-of-two t <= 2N.
        for q in p.basis.moduli:
            assert q % 16 == 1

    def test_log_q(self, bgv_params):
        assert bgv_params.log_q == bgv_params.basis.modulus.bit_length()
