"""Compiler phase 1 (repro.compiler.hecompiler): ordering + translation."""

import pytest

from repro.compiler.hecompiler import KsChoice, compile_to_instructions, order_he_ops
from repro.core.isa import InstrKind, ValueKind
from repro.dsl.program import OpKind, Program


def _matvec(n=1024, rows=4, level=4):
    p = Program(n=n, name="matvec")
    row_handles = [p.input(level=level) for _ in range(rows)]
    v = p.input(level=level)
    for r in row_handles:
        p.output(p.inner_sum(p.mul(r, v)))
    return p


class TestOrdering:
    def test_topological(self):
        p = _matvec()
        order = order_he_ops(p)
        position = {op: i for i, op in enumerate(order)}
        for op in p.ops:
            for arg in op.args:
                assert position[arg] < position[op.op_id]

    def test_all_ops_once(self):
        p = _matvec()
        order = order_he_ops(p)
        assert sorted(order) == list(range(len(p.ops)))

    def test_hint_clustering(self):
        """Independent same-hint ops are batched: the 4 muls of the matvec
        run consecutively (Sec. 4.2's reuse ordering)."""
        p = _matvec()
        order = order_he_ops(p)
        mul_positions = [
            i for i, op_id in enumerate(order) if p.ops[op_id].kind is OpKind.MUL
        ]
        assert max(mul_positions) - min(mul_positions) == len(mul_positions) - 1

    def test_rotation_amounts_batched(self):
        p = _matvec()
        order = order_he_ops(p)
        hints = [p.ops[o].hint_id for o in order if p.ops[o].hint_id]
        # Count transitions between distinct hints: with perfect batching it
        # equals the number of distinct hints minus... (each hint appears in
        # one contiguous run, possibly chunked but adjacent).
        runs = 1 + sum(1 for a, b in zip(hints, hints[1:]) if a != b)
        distinct = len(set(hints))
        assert runs <= distinct * 2  # chunking may split runs, but not shred

    def test_chunk_cap_bounds_cluster_bursts(self):
        """At high level the per-chunk emission is capped."""
        p = Program(n=16384)
        x = p.input(18)
        ys = [p.mul(x, p.input(18), rescale=False) for _ in range(40)]
        order = order_he_ops(p, capacity_rvecs=1024)
        position = {op: i for i, op in enumerate(order)}
        assert sorted(order) == list(range(len(p.ops)))


class TestTranslationCounts:
    def test_mul_instruction_count(self):
        """One L-level mul: 4L+2L^2 MUL, L(L-1) NTT, L INTT, ~2L^2+3L ADD."""
        level = 4
        p = Program(n=1024)
        x, y = p.input(level), p.input(level)
        p.output(p.mul(x, y, rescale=False))
        result = compile_to_instructions(p, ks_choice=KsChoice(force=1))
        stats = result.graph.stats()["by_kind"]
        assert stats["mul"] == 4 * level + 2 * level * level
        assert stats["ntt"] == level * (level - 1)
        assert stats["intt"] == level
        # accumulation adds: l1 (L) + 2*(L^2-L) + recombination 2L
        assert stats["add"] == level + 2 * (level * level - level) + 2 * level

    def test_rotate_instruction_count(self):
        level = 3
        p = Program(n=1024)
        x = p.input(level)
        p.output(p.rotate(x, 1))
        result = compile_to_instructions(p, ks_choice=KsChoice(force=1))
        stats = result.graph.stats()["by_kind"]
        assert stats["aut"] == 2 * level
        assert stats["ntt"] == level * (level - 1)

    def test_add_instruction_count(self):
        p = Program(n=1024)
        x, y = p.input(5), p.input(5)
        p.output(p.add(x, y))
        result = compile_to_instructions(p)
        assert result.graph.stats()["by_kind"] == {"add": 10}

    def test_mod_switch_instruction_count(self):
        level = 4
        p = Program(n=1024)
        x = p.input(level)
        p.output(p.mod_switch(x))
        stats = compile_to_instructions(p).graph.stats()["by_kind"]
        new = level - 1
        assert stats["intt"] == 2
        assert stats["ntt"] == 2 * new
        assert stats["sub"] == 2 * new
        assert stats["mul"] == 2 * new


class TestHintValues:
    def test_v1_hint_rvec_count(self):
        level = 4
        p = Program(n=1024)
        x, y = p.input(level), p.input(level)
        p.output(p.mul(x, y, rescale=False))
        result = compile_to_instructions(p, ks_choice=KsChoice(force=1))
        assert result.hint_rvecs[f"relin@L{level}"] == 2 * level * level

    def test_v2_hint_rvec_count(self):
        level = 4
        p = Program(n=1024)
        x, y = p.input(level), p.input(level)
        p.output(p.mul(x, y, rescale=False))
        result = compile_to_instructions(p, ks_choice=KsChoice(force=2))
        assert result.hint_rvecs[f"relin@L{level}:v2"] == 4 * level

    def test_hint_values_shared_across_ops(self):
        """Two muls at the same level consume the same KSH value ids —
        the reuse that Fig. 9a's compulsory traffic measures."""
        p = Program(n=1024)
        x, y = p.input(3), p.input(3)
        p.output(p.mul(x, y, rescale=False))
        p.output(p.mul(y, x, rescale=False))
        result = compile_to_instructions(p, ks_choice=KsChoice(force=1))
        ksh_values = [v for v in result.graph.values if v.kind is ValueKind.KSH]
        assert len(ksh_values) == 2 * 9  # one hint only, not two

    def test_ks_choice_auto(self):
        choice = KsChoice()
        assert choice.pick(level=24, hint_reuse=1) == 2
        assert choice.pick(level=24, hint_reuse=5) == 1
        assert choice.pick(level=8, hint_reuse=1) == 1
        assert KsChoice(force=2).pick(level=2, hint_reuse=9) == 2

    def test_variant_recorded_per_op(self):
        p = Program(n=16384)
        x, y = p.input(24), p.input(24)
        m = p.mul(x, y, rescale=False)
        p.output(m)
        result = compile_to_instructions(p)
        assert result.ks_variant_used[m.op_id - 0] == 2 or 2 in result.ks_variant_used.values()


class TestGraphIntegrity:
    def test_validate_passes(self):
        result = compile_to_instructions(_matvec())
        result.graph.validate()  # should not raise

    def test_outputs_registered(self):
        p = Program(n=1024)
        x = p.input(2)
        p.output(p.add(x, x))
        result = compile_to_instructions(p)
        assert len(result.outputs) == 2 * 2  # a and b polys, L=2 limbs

    def test_inputs_are_offchip_values(self):
        p = Program(n=1024)
        x = p.input(3)
        p.output(p.add(x, x))
        result = compile_to_instructions(p)
        inputs = [v for v in result.graph.values if v.kind is ValueKind.INPUT]
        assert len(inputs) == 2 * 3
        assert all(v.producer is None for v in inputs)
