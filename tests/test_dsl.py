"""DSL program builder (repro.dsl.program)."""

import pytest

from repro.dsl.program import OpKind, Program


def test_listing2_matrix_vector():
    """The paper's running example builds and reports sensible stats."""
    p = Program(n=1024, name="matvec")
    rows = [p.input(level=4) for _ in range(4)]
    v = p.input(level=4)
    for r in rows:
        p.output(p.inner_sum(p.mul(r, v)))
    stats = p.stats()
    assert stats["counts"]["mul"] == 4
    assert stats["counts"]["rotate"] == 4 * 10  # log2(1024) rotations each
    assert stats["multiplicative_depth"] == 1
    # One relin hint + one hint per distinct rotation amount.
    assert stats["distinct_hints"] == 1 + 10


class TestLevels:
    def test_mul_auto_rescales(self):
        p = Program(n=64)
        x, y = p.input(3), p.input(3)
        assert p.mul(x, y).level == 2

    def test_mul_without_rescale(self):
        p = Program(n=64)
        x, y = p.input(3), p.input(3)
        assert p.mul(x, y, rescale=False).level == 3

    def test_align_inserts_mod_switch(self):
        p = Program(n=64)
        x, y = p.input(4), p.input(2)
        out = p.add(x, y)
        assert out.level == 2
        assert sum(1 for op in p.ops if op.kind is OpKind.MOD_SWITCH) == 2

    def test_mod_switch_floor(self):
        p = Program(n=64)
        x = p.input(1)
        with pytest.raises(ValueError):
            p.mod_switch(x)

    def test_mul_at_level_one_not_rescaled(self):
        p = Program(n=64)
        x = p.input(1)
        assert p.mul(x, x).level == 1


class TestHints:
    def test_mul_hint_per_level(self):
        p = Program(n=64)
        x, y = p.input(3), p.input(3)
        m = p.mul(x, y)
        assert p.ops[m.op_id - 1].hint_id == "relin@L3"

    def test_rotate_hint_per_amount_and_level(self):
        p = Program(n=64)
        x = p.input(3)
        r1 = p.rotate(x, 1)
        r2 = p.rotate(x, 2)
        assert p.ops[r1.op_id].hint_id == "galois_1@L3"
        assert p.ops[r2.op_id].hint_id == "galois_2@L3"

    def test_hint_free_ops(self):
        p = Program(n=64)
        x = p.input(2)
        assert p.ops[p.add(x, x).op_id].hint_id is None
        assert p.ops[p.mul_plain(x).op_id].hint_id is None


class TestStructure:
    def test_rotate_zero_is_noop(self):
        p = Program(n=64)
        x = p.input(2)
        assert p.rotate(x, 0) is x

    def test_users_tracked(self):
        p = Program(n=64)
        x, y = p.input(2), p.input(2)
        s = p.add(x, y)
        assert s.op_id in p.ops[x.op_id].users
        assert s.op_id in p.ops[y.op_id].users

    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            Program(n=64, scheme="tfhe")

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            Program(n=100)

    def test_invalid_level(self):
        p = Program(n=64)
        with pytest.raises(ValueError):
            p.input(0)

    def test_depth_tracking(self):
        p = Program(n=64)
        x = p.input(5)
        y = p.mul(p.mul(x, x), x)
        assert p.multiplicative_depth() == 2

    def test_square_is_self_mul(self):
        p = Program(n=64)
        x = p.input(3)
        sq = p.square(x, rescale=False)
        op = p.ops[sq.op_id]
        assert op.kind is OpKind.MUL
        assert op.args == (x.op_id, x.op_id)
