"""Automorphisms (repro.poly.automorphism, Sec. 2.2.1 & 5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.automorphism import (
    apply_decomposed_automorphism,
    automorphism_coeff,
    automorphism_ntt,
    automorphism_ntt_permutation,
    decompose_automorphism,
    valid_automorphism_exponents,
)
from repro.poly.ntt import get_context
from repro.rns.primes import ntt_friendly_primes

N = 64
Q = ntt_friendly_primes(N, 26, 1)[0]


@pytest.fixture(scope="module")
def poly():
    return np.random.default_rng(7).integers(0, Q, N, dtype=np.uint64)


class TestCoefficientDomain:
    def test_identity(self, poly):
        assert np.array_equal(automorphism_coeff(poly, 1, Q), poly)

    def test_paper_example_sigma5(self):
        """Sec. 2.2.1: with sigma_5, a_1 goes to position 5."""
        a = np.zeros(N, dtype=np.uint64)
        a[1] = 7
        out = automorphism_coeff(a, 5, Q)
        assert out[5] == 7

    def test_sign_flip_on_wraparound(self):
        """a_i lands negated when i*k mod 2N >= N."""
        a = np.zeros(N, dtype=np.uint64)
        i = N - 1
        a[i] = 3
        out = automorphism_coeff(a, 3, Q)  # i*k = 189; 189 mod 128 = 61 >= 64? 189%128=61 <64
        dest = (i * 3) % N
        sign_flip = ((i * 3) % (2 * N)) >= N
        expected = Q - 3 if sign_flip else 3
        assert out[dest] == expected

    def test_group_law(self, poly):
        """sigma_j(sigma_k(a)) = sigma_{jk mod 2N}(a)."""
        for j, k in ((3, 5), (7, 9), (63, 3)):
            lhs = automorphism_coeff(automorphism_coeff(poly, k, Q), j, Q)
            rhs = automorphism_coeff(poly, (j * k) % (2 * N), Q)
            assert np.array_equal(lhs, rhs), (j, k)

    def test_inverse_element(self, poly):
        """sigma_k composed with sigma_{k^-1 mod 2N} is the identity."""
        k = 5
        k_inv = pow(k, -1, 2 * N)
        roundtrip = automorphism_coeff(automorphism_coeff(poly, k, Q), k_inv, Q)
        assert np.array_equal(roundtrip, poly)

    def test_even_exponent_rejected(self, poly):
        with pytest.raises(ValueError):
            automorphism_coeff(poly, 4, Q)

    def test_count_of_automorphisms(self):
        """There are N automorphisms: odd k in [1, 2N)."""
        assert len(valid_automorphism_exponents(N)) == N


class TestNttDomain:
    @pytest.mark.parametrize("k", [3, 5, 7, 25, 127])
    def test_ntt_domain_is_pure_permutation(self, poly, k):
        """NTT(sigma_k(a)) == permute(NTT(a)) — the hardware's view."""
        ctx = get_context(N, Q)
        direct = ctx.forward(automorphism_coeff(poly, k, Q))
        permuted = automorphism_ntt(ctx.forward(poly), k)
        assert np.array_equal(direct, permuted)

    def test_permutation_is_bijective(self):
        for k in (3, 9, 127):
            perm = automorphism_ntt_permutation(N, k)
            assert sorted(perm) == list(range(N))


class TestHardwareDecomposition:
    """Sec. 5.1: sigma_k factors into chunk-local column/row permutations
    around transposes — the insight enabling the vector automorphism unit."""

    @pytest.mark.parametrize("k", [3, 5, 31, 127])
    @pytest.mark.parametrize("e", [4, 8, 16])
    def test_decomposed_matches_direct(self, poly, k, e):
        ctx = get_context(N, Q)
        evals = ctx.forward(poly)
        assert np.array_equal(
            apply_decomposed_automorphism(evals, e, k), automorphism_ntt(evals, k)
        )

    def test_stage_permutations_are_chunk_local(self):
        col_perm, row_perm = decompose_automorphism(N, 8, 5)
        g, e = N // 8, 8
        assert col_perm.shape == (g, e)
        assert row_perm.shape == (e, g)
        for row in col_perm:
            assert sorted(row) == list(range(e))
        for row in row_perm:
            assert sorted(row) == list(range(g))

    def test_rejects_bad_chunking(self):
        with pytest.raises(ValueError):
            decompose_automorphism(N, 7, 3)


@given(st.sampled_from([k for k in range(1, 2 * N, 2)]))
@settings(max_examples=40, deadline=None)
def test_ntt_permutation_consistency_property(k):
    """Every automorphism is a slot permutation in the NTT domain."""
    rng = np.random.default_rng(k)
    poly = rng.integers(0, Q, N, dtype=np.uint64)
    ctx = get_context(N, Q)
    direct = ctx.forward(automorphism_coeff(poly, k, Q))
    assert np.array_equal(direct, automorphism_ntt(ctx.forward(poly), k))
