"""Network tier: framing, remote execution, failover, and eviction.

The wire invariants:

- frames round-trip exactly; oversized/garbage/truncated/corrupted input
  is rejected with a typed ``FrameError`` *before* anything is unpickled,
  and a live worker answers such input with a clean ``ERROR`` reply;
- a ``RemoteExecutor``-served batch is bit-identical (BGV) /
  tolerance-equal (CKKS) to in-process execution, whichever host serves
  it — hosts restore the coordinator's secret and never keygen;
- killing a worker mid-load loses no request: every in-flight batch is
  retried transparently on a surviving host (execution is pure and
  seeded, so the re-run is bit-identical), never hangs, and the dead
  host is routed around until it reconnects (at which point state
  re-replicates);
- released entries are evicted host-side, so long-lived pools do not
  accumulate contexts without bound.
"""

import pickle
import socket
import time

import numpy as np
import pytest

from repro.backends import FunctionalBackend
from repro.dsl.program import Program
from repro.net import (
    FrameError,
    FrameTooLarge,
    LocalCluster,
    MsgType,
    RemoteExecutor,
    decode_frame,
    encode_frame,
    recv_msg,
    send_msg,
    shard_key,
)
from repro.net.framing import FRAME_VERSION, HEADER_BYTES, Truncated
from repro.serve import (
    BatchJob,
    FheServer,
    ProgramRegistry,
    Request,
    RetryPolicy,
    SlotBatcher,
    ThreadExecutor,
    resolve_executor,
)

N = 256
WIDTH = 8


def linear_bgv(n=N, level=3):
    p = Program(n=n, scheme="bgv", name="net_linear")
    x = p.input(level, name="x")
    w = p.input_plain(level, name="w")
    p.output(p.mul_plain(x, w))
    return p


def poly_ckks(n=N, level=4):
    p = Program(n=n, scheme="ckks", name="net_poly")
    x, y = p.input(level), p.input(level)
    p.output(p.add(p.mul(x, y), x))
    return p


def rotate_bgv(n=N, level=2):
    """BGV rotation: unbatchable, exercises the singly execution mode."""
    p = Program(n=n, scheme="bgv", name="net_rotator")
    x = p.input(level, name="x")
    p.output(p.rotate(x, 1))
    return p


def bgv_job(registry, count=4, *, seed=0):
    program = linear_bgv()
    x, w = (op.op_id for op in program.ops[:2])
    rng = np.random.default_rng(seed)
    shared_w = rng.integers(0, 256, WIDTH)
    requests = [Request(inputs={x: rng.integers(0, 256, WIDTH)},
                        plains={w: shared_w}) for _ in range(count)]
    entry, _ = registry.context_for(program, seed=11)
    return BatchJob(
        program=program, signature=program.signature(), requests=requests,
        batcher=SlotBatcher(program, width=WIDTH),
        backend=FunctionalBackend(validate=False), context_entry=entry,
    ), entry


@pytest.fixture(scope="module")
def cluster():
    """One 2-host local cluster shared by the non-destructive tests."""
    with LocalCluster(2) as c:
        yield c


@pytest.fixture(scope="module")
def pool(cluster):
    with cluster.executor() as executor:
        yield executor


# ------------------------------------------------------------------- framing
class TestFraming:
    def test_roundtrip_property(self):
        rng = np.random.default_rng(7)
        types = list(MsgType)
        for size in (0, 1, 13, 255, 4096, 1 << 17):
            payload = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            msg_type = types[int(rng.integers(len(types)))]
            got_type, got = decode_frame(encode_frame(msg_type, payload))
            assert got_type is msg_type
            assert got == payload

    def test_oversized_rejected_both_ends(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(MsgType.EXECUTE, b"x" * 1024, max_frame=512)
        frame = encode_frame(MsgType.EXECUTE, b"x" * 1024)
        with pytest.raises(FrameTooLarge):
            decode_frame(frame, max_frame=512)

    def test_corruption_rejected(self):
        frame = bytearray(encode_frame(MsgType.RESULT, b"payload bytes"))
        for index in (0, 3, 5, HEADER_BYTES - 1, HEADER_BYTES + 2):
            bad = bytearray(frame)
            bad[index] ^= 0xFF
            with pytest.raises(FrameError):
                decode_frame(bytes(bad))

    def test_truncation_rejected(self):
        frame = encode_frame(MsgType.RESULT, b"payload bytes")
        with pytest.raises(Truncated):
            decode_frame(frame[:-3])
        with pytest.raises(FrameError):
            decode_frame(frame[: HEADER_BYTES - 2])

    def test_garbage_fuzz_never_reaches_pickle(self):
        """Random byte soup must always raise the typed FrameError family
        (the gate that keeps attacker bytes away from the unpickler)."""
        rng = np.random.default_rng(1234)
        for _ in range(200):
            size = int(rng.integers(0, 200))
            junk = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            with pytest.raises((FrameError, ValueError)):
                decode_frame(junk)

    def test_shard_key_is_stable_and_params_sensitive(self):
        registry = ProgramRegistry()
        program = linear_bgv()
        entry, _ = registry.context_for(program, seed=11)
        other, _ = registry.context_for(poly_ckks(), seed=11)
        key = shard_key(program.signature(), entry.params)
        assert key == shard_key(program.signature(), entry.params)
        assert key != shard_key(poly_ckks().signature(), other.params)


# ------------------------------------------------------ live-worker robustness
class TestWorkerRobustness:
    def _raw(self, cluster, index=0):
        host, port = cluster._addrs[index]
        sock = socket.create_connection((host, port), timeout=10)
        sock.settimeout(10)
        return sock

    def test_malformed_frames_get_clean_error(self, cluster):
        """Garbage on the wire draws an ERROR reply (or a clean close),
        never a worker crash; the worker keeps serving afterwards."""
        rng = np.random.default_rng(99)
        for _ in range(20):
            size = int(rng.integers(1, 400))
            junk = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            with self._raw(cluster) as sock:
                sock.sendall(junk)
                try:
                    # EOF our half so short junk reads as a truncated
                    # frame; the worker may have already hung up on
                    # longer junk, which is equally acceptable.
                    sock.shutdown(socket.SHUT_WR)
                except OSError:
                    continue
                try:
                    msg_type, reply = recv_msg(sock)
                except (ConnectionError, FrameError, OSError):
                    continue   # clean close is acceptable too
                assert msg_type is MsgType.ERROR
                assert "error" in reply
        # The worker survived the fuzz and still answers the handshake.
        with self._raw(cluster) as sock:
            send_msg(sock, MsgType.HELLO, {"version": FRAME_VERSION})
            msg_type, reply = recv_msg(sock)
            assert msg_type is MsgType.HELLO
            assert reply["pid"] > 0

    def test_version_mismatch_parts_cleanly(self, cluster):
        with self._raw(cluster) as sock:
            send_msg(sock, MsgType.HELLO, {"version": 999})
            msg_type, reply = recv_msg(sock)
            assert msg_type is MsgType.ERROR
            assert "version" in reply["error"]

    def test_execution_error_ships_remote_traceback(self, pool):
        registry = ProgramRegistry()
        job, _ = bgv_job(registry)
        # Poison one request: a missing input fails inside the worker.
        job.requests[1] = Request(inputs={}, plains={})
        with pytest.raises(RuntimeError, match="worker host"):
            pool.execute(job)
        # The pool is still healthy: the same traffic, unpoisoned, runs.
        job2, _ = bgv_job(registry)
        outputs, _ = pool.execute(job2)
        assert len(outputs) == len(job2.requests)


# ------------------------------------------------------------ remote execution
class TestRemoteExecution:
    def test_bgv_batched_bit_identical_to_local(self, pool):
        job, _ = bgv_job(ProgramRegistry())
        remote_outputs, _ = pool.execute(job)
        local_outputs, _ = ThreadExecutor().execute(job)
        for got, want in zip(remote_outputs, local_outputs):
            for out_id in want:
                assert np.array_equal(got[out_id], want[out_id])

    def test_ckks_batched_within_tolerance(self, pool):
        program = poly_ckks()
        x, y = (op.op_id for op in program.ops[:2])
        rng = np.random.default_rng(3)
        requests = [Request(inputs={x: rng.uniform(-1, 1, WIDTH),
                                    y: rng.uniform(-1, 1, WIDTH)})
                    for _ in range(4)]
        entry, _ = ProgramRegistry().context_for(program, seed=5)
        job = BatchJob(
            program=program, signature=program.signature(),
            requests=requests, batcher=SlotBatcher(program, width=WIDTH),
            backend=FunctionalBackend(validate=False), context_entry=entry,
        )
        remote_outputs, _ = pool.execute(job)
        local_outputs, _ = ThreadExecutor().execute(job)
        for got, want in zip(remote_outputs, local_outputs):
            for out_id in want:
                assert np.max(np.abs(got[out_id] - want[out_id])) < 1e-2

    def test_unbatchable_served_singly_remote(self, pool):
        program = rotate_bgv()
        x = program.ops[0].op_id
        rng = np.random.default_rng(8)
        requests = [Request(inputs={x: rng.integers(0, 256, WIDTH)})
                    for _ in range(3)]
        entry, _ = ProgramRegistry().context_for(program, seed=5)
        job = BatchJob(
            program=program, signature=program.signature(),
            requests=requests, batcher=None,
            backend=FunctionalBackend(validate=False), context_entry=entry,
        )
        remote_outputs, _ = pool.execute(job)
        local_outputs, _ = ThreadExecutor().execute(job)
        for got, want in zip(remote_outputs, local_outputs):
            for out_id in want:
                assert np.array_equal(got[out_id], want[out_id])

    def test_replication_invariant(self, pool):
        """Same secret on every host, distinct processes, RNGs apart —
        keygen happened exactly once, on the coordinator."""
        _, entry = bgv_job(ProgramRegistry())
        probes = pool.probe(entry)
        assert len(probes) == 2
        assert len({p["secret_sha"] for p in probes}) == 1
        assert len({p["pid"] for p in probes}) == 2
        assert len({tuple(p["rng_fingerprint"]) for p in probes}) == 2

    def test_release_evicts_host_side(self, pool):
        registry = ProgramRegistry()
        job, entry = bgv_job(registry)
        pool.execute(job)
        before = max(p["replicated"]["contexts"]
                     for p in pool.probe(entry))
        pool.release(entry)
        assert id(entry) not in pool._ctx_keys   # coordinator pin dropped
        # probe() re-replicates the entry it probes, so compare counts:
        # after release every host dropped it (and re-gained exactly it).
        after = max(p["replicated"]["contexts"] for p in pool.probe(entry))
        assert after <= before
        # Releasing twice is a no-op, and the entry still serves (it
        # simply re-replicates on the next batch).
        pool.release(entry)
        outputs, _ = pool.execute(job)
        assert len(outputs) == len(job.requests)

    def test_stats_schema(self, pool):
        stats = pool.stats()
        assert stats["executor"] == "remote"
        assert len(stats["hosts"]) == 2
        for host in stats["hosts"]:
            assert {"addr", "alive", "inflight", "dispatched", "failed",
                    "reconnects", "latency_ms", "remote"} <= set(host)
        assert stats["dispatched"] >= 1


# --------------------------------------------------------------- server + name
class TestServerIntegration:
    def test_server_over_cluster_with_stats(self, cluster):
        program = linear_bgv()
        x, w = (op.op_id for op in program.ops[:2])
        rng = np.random.default_rng(0)
        shared = rng.integers(0, 256, WIDTH)
        with cluster.executor() as pool:
            with FheServer(executor=pool, workers=2,
                           max_wait_ms=5.0) as server:
                futures = [
                    server.submit(program,
                                  inputs={x: rng.integers(0, 256, WIDTH)},
                                  plains={w: shared}, width=WIDTH)
                    for _ in range(12)
                ]
                server.flush()
                results = [f.result(timeout=60) for f in futures]
                stats = server.stats()
        assert all(r.status == "ok" for r in results)
        assert stats["executor"]["executor"] == "remote"
        assert sum(h["dispatched"] for h in stats["executor"]["hosts"]) >= 1
        assert stats["dispatch_ms"]["p50"] > 0

    def test_resolve_executor_lists_remote(self):
        with pytest.raises(ValueError, match="'remote'"):
            resolve_executor("bogus")

    def test_resolve_remote_spawns_and_reaps_cluster(self):
        executor = resolve_executor("remote")
        try:
            assert isinstance(executor, RemoteExecutor)
            cluster = executor._owned_cluster
            assert cluster is not None
            procs = list(cluster._procs)
            job, _ = bgv_job(ProgramRegistry())
            outputs, _ = executor.execute(job)
            assert len(outputs) == len(job.requests)
        finally:
            executor.close()
        assert executor._owned_cluster is None
        assert all(proc.poll() is not None for proc in procs)


# ------------------------------------------------------------------- failover
class TestFailover:
    def test_kill_worker_mid_load_retries_transparently(self):
        """The acceptance scenario: SIGKILL one of two hosts under load.
        Every submitted request resolves ``ok`` — in-flight batches on
        the dead host are re-dispatched to the survivor by the retry
        loop (execution is pure and seeded, so the re-run is identical)
        — and nothing hangs."""
        program = poly_ckks()
        x, y = (op.op_id for op in program.ops[:2])
        rng = np.random.default_rng(1)
        with LocalCluster(2) as cluster:
            with cluster.executor(heartbeat_s=0.1) as pool:
                with FheServer(executor=pool, workers=2, max_batch=2,
                               max_wait_ms=2.0) as server:
                    futures = [
                        server.submit(program,
                                      inputs={x: rng.uniform(-1, 1, WIDTH),
                                              y: rng.uniform(-1, 1, WIDTH)},
                                      width=WIDTH)
                        for _ in range(24)
                    ]
                    server.flush()
                    cluster.kill(0)
                    # Retries are transparent: every future resolves ok,
                    # nothing hangs, nothing is silently dropped.
                    for future in futures:
                        assert future.result(timeout=120).status == "ok"
                    # The surviving host keeps serving new traffic.
                    late = server.submit(
                        program,
                        inputs={x: rng.uniform(-1, 1, WIDTH),
                                y: rng.uniform(-1, 1, WIDTH)},
                        width=WIDTH,
                    )
                    server.flush()
                    assert late.result(timeout=120).status == "ok"
                    stats = pool.stats()
                alive = [h for h in stats["hosts"] if h["alive"]]
                assert len(alive) >= 1

    def test_midstream_truncation_recovers_after_redial(self):
        """A frame truncated mid-stream desynchronizes the connection:
        the worker answers the garbage with a fatal ERROR and hangs up,
        the executor marks the host dead, the heartbeat monitor redials
        it, replication state re-ships (the reconnect cleared the
        shipped-set), and the next EXECUTE succeeds transparently."""
        registry = ProgramRegistry()
        with LocalCluster(1) as cluster:
            with cluster.executor(
                heartbeat_s=0.05, channels=1,
                retry=RetryPolicy(max_attempts=8, base_delay_s=0.05,
                                  max_delay_s=0.2),
            ) as pool:
                job, entry = bgv_job(registry)
                outputs, _ = pool.execute(job)
                assert len(outputs) == len(job.requests)
                # Inject: half a REPLICATE frame straight onto the live
                # command channel.  The worker reads its header, blocks
                # for the missing payload bytes, and will consume the
                # next EXECUTE's bytes as that remainder — a checksum
                # violation, so the stream past this point is dead.
                host = pool._hosts[0]
                frame = encode_frame(MsgType.REPLICATE,
                                     pickle.dumps({"kind": "context"}))
                channel = host.next_channel()
                with channel.lock:
                    channel.sock.sendall(frame[: len(frame) // 2])
                # The next batch rides the retry loop: fatal ERROR ->
                # host marked dead -> heartbeat redial -> re-ship ->
                # EXECUTE succeeds, all inside one execute() call.
                job2, _ = bgv_job(registry, seed=1)
                outputs, _ = pool.execute(job2)
                local, _ = ThreadExecutor().execute(job2)
                for got, want in zip(outputs, local):
                    for out_id in want:
                        assert np.array_equal(got[out_id], want[out_id])
                stats = pool.stats()
                assert stats["reconnects"] >= 1
                assert stats["resilience"]["retries"] >= 1
                # The reconnect re-shipped the entry (fresh shipped-set).
                assert len(host.replicated) >= 3

    def test_dead_host_reconnects_and_rereplicates(self):
        with LocalCluster(2) as cluster:
            with cluster.executor(heartbeat_s=0.1) as pool:
                job, entry = bgv_job(ProgramRegistry())
                pool.execute(job)
                cluster.kill(1)
                # The monitor must notice within a few heartbeats.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if not all(h["alive"] for h in pool.stats()["hosts"]):
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("dead host never detected")
                # Traffic keeps flowing around the hole.
                outputs, _ = pool.execute(job)
                assert len(outputs) == len(job.requests)
                # Bring the host back on the same port; the monitor
                # redials it and replication state starts empty.
                cluster.restart(1)
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    stats = pool.stats()
                    if all(h["alive"] for h in stats["hosts"]):
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("restarted host never reconnected")
                assert stats["reconnects"] >= 1
                # Both hosts hold the entry again after a full probe —
                # the keygen-once invariant survived the bounce.
                probes = pool.probe(entry)
                assert len(probes) == 2
                assert len({p["secret_sha"] for p in probes}) == 1
