"""RnsPolynomial value type (repro.poly.polynomial)."""

import numpy as np
import pytest

from repro.poly.ntt import naive_negacyclic_multiply
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes

N = 64
BASIS = RnsBasis(ntt_friendly_primes(N, 26, 3))


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


@pytest.fixture()
def a(rng):
    return RnsPolynomial.random_uniform(BASIS, N, rng)


@pytest.fixture()
def b(rng):
    return RnsPolynomial.random_uniform(BASIS, N, rng)


class TestConstruction:
    def test_zeros(self):
        z = RnsPolynomial.zeros(BASIS, N)
        assert z.to_int_coeffs() == [0] * N

    def test_from_int_roundtrip(self):
        values = [0, 1, -1, BASIS.modulus // 3, -(BASIS.modulus // 3)]
        poly = RnsPolynomial.from_int_coeffs(BASIS, values + [0] * (N - len(values)))
        assert poly.to_int_coeffs(centered=True)[: len(values)] == values

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RnsPolynomial(BASIS, np.zeros((2, N), dtype=np.uint64), Domain.COEFF)


class TestDomainConversion:
    def test_ntt_roundtrip(self, a):
        assert np.array_equal(a.to_ntt().to_coeff().limbs, a.limbs)

    def test_idempotent(self, a):
        ntt = a.to_ntt()
        assert ntt.to_ntt() is ntt

    def test_mul_requires_ntt(self, a, b):
        with pytest.raises(ValueError):
            _ = a * b  # both in COEFF domain

    def test_mixed_domain_rejected(self, a, b):
        with pytest.raises(ValueError):
            _ = a.to_ntt() + b


class TestArithmetic:
    def test_add_matches_integer_math(self, a, b):
        q = BASIS.modulus
        expected = [(x + y) % q for x, y in zip(a.to_int_coeffs(centered=False),
                                                b.to_int_coeffs(centered=False))]
        got = (a + b).to_int_coeffs(centered=False)
        assert got == expected

    def test_sub_add_neg_consistency(self, a, b):
        via_sub = (a - b).to_int_coeffs()
        via_neg = (a + (-b)).to_int_coeffs()
        assert via_sub == via_neg

    def test_ntt_mul_matches_naive_per_limb(self, a, b):
        prod = (a.to_ntt() * b.to_ntt()).to_coeff()
        for i, q in enumerate(BASIS.moduli):
            expected = naive_negacyclic_multiply(a.limbs[i], b.limbs[i], q)
            assert np.array_equal(prod.limbs[i], expected)

    def test_scalar_mul(self, a):
        tripled = (a.scalar_mul(3)).to_int_coeffs(centered=False)
        expected = [(3 * c) % BASIS.modulus
                    for c in a.to_int_coeffs(centered=False)]
        assert tripled == expected

    def test_int_mul_operator(self, a):
        assert np.array_equal((a * 5).limbs, a.scalar_mul(5).limbs)

    def test_basis_mismatch_rejected(self, a, rng):
        other = RnsPolynomial.random_uniform(RnsBasis(BASIS.moduli[:2]), N, rng)
        with pytest.raises(ValueError):
            _ = a + other


class TestAutomorphismAndLimbs:
    def test_automorphism_domain_agnostic(self, a):
        coeff_route = a.automorphism(3).to_ntt()
        ntt_route = a.to_ntt().automorphism(3)
        assert np.array_equal(coeff_route.limbs, ntt_route.limbs)

    def test_drop_limb(self, a):
        dropped = a.drop_limb()
        assert dropped.basis.level == BASIS.level - 1
        assert np.array_equal(dropped.limbs, a.limbs[:-1])

    def test_copy_is_independent(self, a):
        c = a.copy()
        c.limbs[0][0] += np.uint64(1)
        assert not np.array_equal(c.limbs[0], a.limbs[0])
