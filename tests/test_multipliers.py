"""Modular multiplier designs (repro.rns.multipliers, Table 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rns.multipliers import (
    ALL_MULTIPLIERS,
    BarrettMultiplier,
    FheFriendlyMultiplier,
    MontgomeryMultiplier,
    NttFriendlyMultiplier,
    multiplier_comparison_table,
)
from repro.rns.primes import fhe_friendly_primes, ntt_friendly_primes

GENERAL_Q = ntt_friendly_primes(128, 31, 1)[0]
FHE_Q = fhe_friendly_primes(1024, 32, 1)[0]


def _check_all_pairs(mult, q, pairs):
    for a, b in pairs:
        assert mult.multiply(a, b) == (a * b) % q, (a, b, q)


EDGE_PAIRS = lambda q: [  # noqa: E731
    (0, 0), (1, 1), (0, q - 1), (q - 1, q - 1), (q // 2, 2), (1, q - 1),
    (q - 1, 1), (12345, 67890),
]


class TestFunctionalCorrectness:
    def test_barrett(self):
        _check_all_pairs(BarrettMultiplier(GENERAL_Q), GENERAL_Q, EDGE_PAIRS(GENERAL_Q))

    def test_montgomery(self):
        _check_all_pairs(MontgomeryMultiplier(GENERAL_Q), GENERAL_Q, EDGE_PAIRS(GENERAL_Q))

    def test_ntt_friendly(self):
        m = NttFriendlyMultiplier(GENERAL_Q, two_n=256)
        _check_all_pairs(m, GENERAL_Q, EDGE_PAIRS(GENERAL_Q))

    def test_fhe_friendly(self):
        _check_all_pairs(FheFriendlyMultiplier(FHE_Q), FHE_Q, EDGE_PAIRS(FHE_Q))

    def test_fhe_friendly_montgomery_constant_is_minus_one(self):
        m = FheFriendlyMultiplier(FHE_Q)
        assert m._q_inv_neg % (1 << 16) == (1 << 16) - 1

    def test_ntt_friendly_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            NttFriendlyMultiplier(GENERAL_Q, two_n=1 << 20)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            BarrettMultiplier(1 << 20)

    def test_oversized_modulus_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryMultiplier((1 << 33) + 1)


@given(
    a=st.integers(min_value=0, max_value=FHE_Q - 1),
    b=st.integers(min_value=0, max_value=FHE_Q - 1),
)
@settings(max_examples=200, deadline=None)
def test_all_designs_agree_property(a, b):
    expected = (a * b) % FHE_Q
    assert BarrettMultiplier(FHE_Q).multiply(a, b) == expected
    assert MontgomeryMultiplier(FHE_Q).multiply(a, b) == expected
    assert FheFriendlyMultiplier(FHE_Q).multiply(a, b) == expected


class TestCostModel:
    """Table 1: Barrett 5271/18.40/1317; Montgomery 2916/9.29/1040;
    NTT-friendly 2165/5.36/1000; FHE-friendly 1817/4.10/1000."""

    PAPER = {
        "Barrett": (5271, 18.40, 1317),
        "Montgomery": (2916, 9.29, 1040),
        "NTT-friendly": (2165, 5.36, 1000),
        "FHE-friendly (ours)": (1817, 4.10, 1000),
    }

    def test_matches_paper_within_tolerance(self):
        for row in multiplier_comparison_table():
            area, power, delay = self.PAPER[row["design"]]
            assert row["area_um2"] == pytest.approx(area, rel=0.10)
            assert row["power_mw"] == pytest.approx(power, rel=0.15)
            assert row["delay_ps"] == pytest.approx(delay, rel=0.01)

    def test_ordering(self):
        """The paper's headline: each specialization shrinks the multiplier."""
        costs = [cls.cost() for cls in ALL_MULTIPLIERS]
        areas = [c.area_um2 for c in costs]
        powers = [c.power_mw for c in costs]
        assert areas == sorted(areas, reverse=True)
        assert powers == sorted(powers, reverse=True)

    def test_fhe_friendly_savings_vs_ntt_friendly(self):
        """Sec. 5.3 claims ~19%/~30% savings vs. [51]; Table 1's own numbers
        work out to 16% area and 23.5% power, which is what we pin here."""
        ntt = NttFriendlyMultiplier.cost()
        fhe = FheFriendlyMultiplier.cost()
        assert 1 - fhe.area_um2 / ntt.area_um2 == pytest.approx(0.16, abs=0.03)
        assert 1 - fhe.power_mw / ntt.power_mw == pytest.approx(0.235, abs=0.03)
