"""Batched residue-matrix engine (repro.poly.ntt.RnsNttContext and the
vectorized CRT / base-conversion paths): bit-identity with the per-limb
reference path and exact big-int oracles, across several (N, L) shapes."""

import numpy as np
import pytest

from repro.fhe.keyswitch import base_extend, scale_down
from repro.poly.ntt import get_context, get_rns_context
from repro.poly.polynomial import Domain, RnsPolynomial
from repro.rns.crt import RnsBasis
from repro.rns.primes import ntt_friendly_primes

SHAPES = [(16, 1), (64, 3), (128, 2), (256, 5)]


def _basis(n: int, level: int, bits: int = 28) -> RnsBasis:
    return RnsBasis(ntt_friendly_primes(n, bits, level))


@pytest.fixture()
def rng():
    return np.random.default_rng(321)


class TestBatchedNtt:
    @pytest.mark.parametrize("n,level", SHAPES)
    def test_forward_matches_per_limb(self, n, level, rng):
        basis = _basis(n, level)
        ctx = get_rns_context(n, basis.moduli)
        limbs = np.stack(
            [rng.integers(0, q, size=n, dtype=np.uint64) for q in basis.moduli]
        )
        batched = ctx.forward(limbs)
        for i, q in enumerate(basis.moduli):
            assert np.array_equal(batched[i], get_context(n, q).forward(limbs[i]))

    @pytest.mark.parametrize("n,level", SHAPES)
    def test_inverse_matches_per_limb(self, n, level, rng):
        basis = _basis(n, level)
        ctx = get_rns_context(n, basis.moduli)
        limbs = np.stack(
            [rng.integers(0, q, size=n, dtype=np.uint64) for q in basis.moduli]
        )
        batched = ctx.inverse(limbs)
        for i, q in enumerate(basis.moduli):
            assert np.array_equal(batched[i], get_context(n, q).inverse(limbs[i]))

    @pytest.mark.parametrize("n,level", SHAPES)
    def test_roundtrip_identity(self, n, level, rng):
        basis = _basis(n, level)
        poly = RnsPolynomial.random_uniform(basis, n, rng)
        back = poly.to_ntt().to_coeff()
        assert np.array_equal(back.limbs, poly.limbs)
        assert back.domain is Domain.COEFF

    def test_shape_mismatch_rejected(self):
        basis = _basis(64, 2)
        ctx = get_rns_context(64, basis.moduli)
        with pytest.raises(ValueError):
            ctx.forward(np.zeros((2, 32), dtype=np.uint64))
        with pytest.raises(ValueError):
            ctx.inverse(np.zeros((3, 64), dtype=np.uint64))

    def test_context_cache_identity(self):
        basis = _basis(64, 2)
        assert get_rns_context(64, basis.moduli) is get_rns_context(64, basis.moduli)


class TestVectorizedCrt:
    @pytest.mark.parametrize("n,level", SHAPES)
    def test_to_rns_matches_bigint_oracle(self, n, level, rng):
        basis = _basis(n, level)
        big_q = basis.modulus
        wide = [int(rng.integers(0, 1 << 62)) * 7 - big_q // 3 for _ in range(n)]
        limbs = basis.to_rns(wide)
        for i, q in enumerate(basis.moduli):
            assert [int(x) for x in limbs[i]] == [v % q for v in wide]

    @pytest.mark.parametrize("n,level", SHAPES)
    def test_from_rns_matches_bigint_oracle(self, n, level, rng):
        basis = _basis(n, level)
        big_q = basis.modulus
        values = [int(rng.integers(0, 1 << 62)) % big_q for _ in range(n)]
        values[0] = 0
        values[1] = big_q - 1
        limbs = basis.to_rns(values)
        assert basis.from_rns(limbs) == values
        centered = basis.from_rns(limbs, centered=True)
        for got, v in zip(centered, values):
            assert got == (v - big_q if v > big_q // 2 else v)

    def test_machine_and_object_paths_agree(self, rng):
        basis = _basis(64, 3)
        small = rng.integers(-(1 << 40), 1 << 40, size=64, dtype=np.int64)
        fast = basis.to_rns(small)
        slow = basis.to_rns([int(v) for v in small] + [])  # still int64 array
        obj = basis.to_rns([int(v) + basis.modulus * 3 for v in small])  # wide
        assert np.array_equal(fast, slow)
        assert np.array_equal(fast, obj)


class TestBaseConversionOracles:
    @pytest.mark.parametrize("n,level", [(64, 3), (128, 2), (256, 4)])
    def test_base_extend_exact_crt_oracle(self, n, level, rng):
        basis = _basis(n, level)
        extra = [
            p
            for p in ntt_friendly_primes(n, 27, level + 4)
            if p not in basis.moduli
        ][:level]
        extended = RnsBasis(basis.moduli + tuple(extra))
        x = RnsPolynomial.random_uniform(basis, n, rng)
        lifted = base_extend(x, extended)
        big_q = basis.modulus
        x_ints = basis.from_rns(x.limbs)
        lifted_ints = extended.from_rns(lifted.limbs)
        for lv, xv in zip(lifted_ints, x_ints):
            diff = (lv - xv) % extended.modulus
            assert diff % big_q == 0          # lifted value is x + u*Q exactly
            assert diff // big_q < basis.level  # with 0 <= u < L

    @pytest.mark.parametrize("n,level", [(64, 3), (128, 2)])
    def test_scale_down_exact_multiples(self, n, level, rng):
        t = 256
        basis = _basis(n, level)
        special = RnsBasis(
            [
                p
                for p in ntt_friendly_primes(n, 27, level + 4)
                if p not in basis.moduli
            ][:level]
        )
        extended = RnsBasis(basis.moduli + special.moduli)
        p_product = special.modulus
        # x = P * v for known small v: scale-down must return exactly v.
        v_ints = [int(rng.integers(-50, 50)) * t for _ in range(n)]
        x = RnsPolynomial.from_int_coeffs(
            extended, [c * p_product for c in v_ints]
        )
        out = scale_down(x, special, t)
        assert out.basis == basis
        assert out.to_int_coeffs(centered=True) == v_ints

    @pytest.mark.parametrize("n,level", [(64, 3)])
    def test_scale_down_rounding_bigint_oracle(self, n, level, rng):
        t = 256
        basis = _basis(n, level)
        special = RnsBasis(
            [
                p
                for p in ntt_friendly_primes(n, 27, level + 4)
                if p not in basis.moduli
            ][:level]
        )
        extended = RnsBasis(basis.moduli + special.moduli)
        p_product = special.modulus
        x = RnsPolynomial.random_uniform(extended, n, rng)
        out = scale_down(x, special, t)
        big_q = basis.modulus
        for xi, oi in zip(
            x.to_int_coeffs(centered=True), out.to_int_coeffs(centered=True)
        ):
            # Oracle: out*P ≡ x - delta (mod Q) with |delta| <= P*(t+2)/2.
            err = (oi * p_product - xi) % big_q
            err = min(err, big_q - err)
            assert err <= p_product * (t + 2) // 2


class TestRandomUniformRegression:
    def test_samples_span_full_modulus_width(self, rng):
        """logQ ≈ 224 basis: the old 128-bit draw confined every coefficient
        to [0, 2^128); correct sampling reaches the top bits of Q."""
        basis = _basis(256, 8)  # 8 x 28-bit primes: logQ ≈ 224
        log_q = basis.modulus.bit_length()
        assert log_q > 128 + 60
        poly = RnsPolynomial.random_uniform(basis, 256, rng)
        coeffs = poly.to_int_coeffs(centered=False)
        top = max(coeffs)
        # P(a single coefficient < 2^128) ~ 2^-96; over 256 draws this fails
        # with probability ~2^-88 — i.e. only if sampling is still truncated.
        assert top.bit_length() > 128
        # And the max of 256 uniform draws sits within 16 bits of Q w.h.p.
        assert top.bit_length() >= log_q - 16

    def test_every_limb_uniformly_occupied(self, rng):
        basis = _basis(128, 8)
        poly = RnsPolynomial.random_uniform(basis, 128, rng)
        q_col = np.array(basis.moduli, dtype=np.float64).reshape(-1, 1)
        ratios = poly.limbs.astype(np.float64) / q_col
        # Every limb row should have draws in its upper half.
        assert (ratios.max(axis=1) > 0.5).all()
