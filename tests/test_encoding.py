"""Plaintext encoders (repro.fhe.encoding)."""

import numpy as np
import pytest

from repro.fhe.bgv import BgvContext
from repro.fhe.encoding import BatchEncoder, CkksEncoder
from repro.fhe.params import FheParams

N = 256
T_BATCH = 12289  # prime, 12289 ≡ 1 (mod 512)


@pytest.fixture(scope="module")
def batch():
    return BatchEncoder(N, T_BATCH)


class TestBatchEncoder:
    def test_roundtrip(self, batch):
        rng = np.random.default_rng(3)
        vals = rng.integers(0, T_BATCH, N)
        assert np.array_equal(batch.decode(batch.encode(vals)), vals)

    def test_short_input_padded(self, batch):
        out = batch.decode(batch.encode([5, 6]))
        assert out[0] == 5 and out[1] == 6

    def test_slotwise_addition(self, batch):
        """Adding encodings adds slots — the SIMD property."""
        rng = np.random.default_rng(4)
        a, b = rng.integers(0, T_BATCH, N), rng.integers(0, T_BATCH, N)
        summed = (batch.encode(a) + batch.encode(b)) % T_BATCH
        assert np.array_equal(batch.decode(summed), (a + b) % T_BATCH)

    def test_requires_splitting_prime(self):
        with pytest.raises(ValueError):
            BatchEncoder(N, 257)  # 257 not ≡ 1 mod 512

    def test_homomorphic_slot_rotation(self):
        """decrypt(sigma_3(ct)) decodes to the rotated hypercolumns."""
        params = FheParams.build(n=N, levels=3, prime_bits=28,
                                 plaintext_modulus=T_BATCH)
        ctx = BgvContext(params, seed=13)
        be = BatchEncoder(N, T_BATCH)
        rng = np.random.default_rng(5)
        vals = rng.integers(0, T_BATCH, N)
        ct = ctx.encrypt(be.encode(vals))
        rotated = be.decode(ctx.decrypt(ctx.rotate(ct, 1)))
        assert np.array_equal(rotated, be.rotated(vals, 1))

    def test_rotated_reference_semantics(self, batch):
        vals = np.arange(N)
        rot = batch.rotated(vals, 2)
        half = N // 2
        assert np.array_equal(rot[:half], np.roll(vals[:half], -2))
        assert np.array_equal(rot[half:], np.roll(vals[half:], -2))


class TestCkksEncoder:
    def test_roundtrip_precision(self):
        enc = CkksEncoder(N, scale=2.0**30)
        rng = np.random.default_rng(6)
        z = rng.normal(size=N // 2) + 1j * rng.normal(size=N // 2)
        back = enc.decode(enc.encode(z))
        assert np.max(np.abs(back - z)) < 1e-6

    def test_encoding_is_real_integers(self):
        enc = CkksEncoder(N, scale=2.0**20)
        coeffs = enc.encode(np.ones(N // 2))
        assert coeffs.dtype == np.int64

    def test_scale_tradeoff(self):
        """Higher scale, finer precision."""
        z = np.array([np.pi] * (N // 2))
        coarse = CkksEncoder(N, scale=2.0**10)
        fine = CkksEncoder(N, scale=2.0**30)
        err_coarse = np.max(np.abs(coarse.decode(coarse.encode(z)) - z))
        err_fine = np.max(np.abs(fine.decode(fine.encode(z)) - z))
        assert err_fine < err_coarse

    def test_too_many_slots_rejected(self):
        enc = CkksEncoder(N, scale=2.0**20)
        with pytest.raises(ValueError):
            enc.encode(np.ones(N))

    def test_additivity(self):
        enc = CkksEncoder(N, scale=2.0**25)
        rng = np.random.default_rng(7)
        a = rng.normal(size=N // 2)
        b = rng.normal(size=N // 2)
        summed = enc.decode(enc.encode(a) + enc.encode(b))
        assert np.max(np.abs(summed - (a + b))) < 1e-5
