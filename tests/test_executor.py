"""Executor layer: thread/process batch execution and context replication.

The process-pool invariants:

- a ``ProcessExecutor``-served batch is bit-identical (BGV) /
  tolerance-equal (CKKS) to thread-served and solo runs;
- worker replicas are restored from the parent's serialized keys — same
  secret in every worker process, no silent per-worker keygen;
- same-signature traffic shards across replicas;
- ``repro.run(..., seed=)`` determinism holds across process boundaries
  (the seed rides the request, not the process);
- worker-side failures surface on the submitting future, not in a
  worker process's stderr.
"""

import numpy as np
import pytest

import repro
from repro.backends import FunctionalBackend
from repro.dsl.program import Program
from repro.serve import (
    BatchJob,
    FheServer,
    ProcessExecutor,
    ProgramRegistry,
    Request,
    SlotBatcher,
    ThreadExecutor,
    resolve_executor,
)
from repro.serve.executor import process_smoke

N = 256
WIDTH = 8


def linear_bgv(n=N, level=3):
    p = Program(n=n, scheme="bgv", name="linear")
    x = p.input(level, name="x")
    w = p.input_plain(level, name="w")
    b = p.input_plain(level, name="b")
    p.output(p.add_plain(p.mul_plain(x, w), b))
    return p


def poly_ckks(n=N, level=4):
    p = Program(n=n, scheme="ckks", name="poly")
    x, y = p.input(level), p.input(level)
    p.output(p.add(p.mul(x, y), x))
    return p


def rotate_bgv(n=N, level=2):
    p = Program(n=n, scheme="bgv", name="rotator")
    x = p.input(level, name="x")
    p.output(p.rotate(x, 1))
    return p


def bgv_requests(program, count, *, width=WIDTH, seed=0, t=256):
    rng = np.random.default_rng(seed)
    x, w, b = (op.op_id for op in program.ops[:3])
    shared_w = rng.integers(0, t, width)
    return [
        Request(inputs={x: rng.integers(0, t, width)},
                plains={w: shared_w, b: rng.integers(0, t, width)})
        for _ in range(count)
    ]


@pytest.fixture(scope="module")
def pool():
    """One 2-process pool for the whole module (forked before servers)."""
    with ProcessExecutor(2) as executor:
        yield executor


class TestThreadExecutor:
    def test_matches_direct_batcher_run(self):
        program = linear_bgv()
        registry = ProgramRegistry()
        entry, _ = registry.context_for(program, seed=5)
        batcher = SlotBatcher(program, width=WIDTH)
        requests = bgv_requests(program, 3)
        backend = FunctionalBackend(validate=False)
        job = BatchJob(program=program, signature=program.signature(),
                       requests=requests, batcher=batcher, backend=backend,
                       context_entry=entry)
        outputs, result = ThreadExecutor().execute(job)
        assert len(outputs) == 3 and result.backend == "functional"
        # Same entry again: decrypts identically (context reuse is sound).
        outputs2, _ = ThreadExecutor().execute(job)
        for a, b in zip(outputs, outputs2):
            for out_id in a:
                assert np.array_equal(a[out_id], b[out_id])

    def test_resolve_executor(self):
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")
        with pytest.raises(TypeError, match="not an executor"):
            resolve_executor(42)


class TestProcessExecutor:
    def test_replicas_share_parent_keys(self, pool):
        """The cross-process convergence rule: one keygen (parent), every
        worker restored from the same serialized secret, distinct pids."""
        import os

        registry = ProgramRegistry()
        entry, _ = registry.context_for(linear_bgv(), seed=5)
        probes = pool.probe(entry)
        assert len(probes) == 2
        assert len({p["secret_sha"] for p in probes}) == 1
        assert len({p["pid"] for p in probes}) == 2
        assert os.getpid() not in {p["pid"] for p in probes}
        assert all(tuple(p["moduli"]) == entry.params.basis.moduli
                   for p in probes)

    def test_replicas_reseeded_apart(self, pool):
        """Replicas share the secret but never the randomness stream:
        identical (a, e) draws across replicas would leak plaintext
        differences, so replication reseeds each worker's RNG."""
        registry = ProgramRegistry()
        entry, _ = registry.context_for(linear_bgv(), seed=5)
        probes = pool.probe(entry)
        fingerprints = [tuple(p["rng_fingerprint"]) for p in probes]
        assert len(set(fingerprints)) == len(fingerprints)
        # Without the reseed, every replica would continue the parent's
        # serialized stream and produce exactly this draw.
        import pickle

        restored = pickle.loads(pickle.dumps(entry.context))
        parent_stream = tuple(restored.rng.integers(0, 2**63, 4).tolist())
        assert all(f != parent_stream for f in fingerprints)

    def test_context_lock_shared_across_executors(self):
        """Two ThreadExecutors (e.g. two servers sharing one registry)
        serialize on the same per-context lock."""
        from repro.serve.executor import _context_lock

        registry = ProgramRegistry()
        entry, _ = registry.context_for(linear_bgv(), seed=5)
        assert _context_lock(entry.context) is _context_lock(entry.context)
        other, _ = registry.context_for(linear_bgv(), seed=6)
        assert _context_lock(entry.context) is not _context_lock(other.context)

    def test_ctx_keys_pin_entries_against_id_reuse(self):
        """The replication map holds strong references: a dropped registry
        entry's id can never be recycled into a stale context key."""
        import gc

        with ProcessExecutor(1) as fresh:
            registry = ProgramRegistry()
            entry, _ = registry.context_for(linear_bgv(), seed=5)
            first_key = fresh._ctx_key(entry)
            entry_id = id(entry)
            del entry, registry
            gc.collect()
            # A new entry allocated now may land at the same address; the
            # executor still resolves the old id to the pinned old entry.
            registry2 = ProgramRegistry()
            entry2, _ = registry2.context_for(poly_ckks(), seed=9)
            key2 = fresh._ctx_key(entry2)
            assert key2 != first_key
            assert fresh._ctx_keys[entry_id][0] == first_key

    def test_bgv_server_matches_solo_runs(self, pool):
        program = linear_bgv()
        requests = bgv_requests(program, 10)
        with FheServer(max_batch=4, max_wait_ms=5.0, workers=2,
                       executor=pool) as server:
            futures = [server.submit(program, inputs=r.inputs,
                                     plains=r.plains) for r in requests]
            results = [f.result(timeout=120) for f in futures]
        for request, result in zip(requests, results):
            solo = repro.run(
                program, backend=FunctionalBackend(validate=False),
                inputs=request.inputs, plains=request.plains, seed=1,
            )
            for out_id, want in solo.outputs.items():
                got = result.values[out_id]
                assert np.array_equal(got % 256,
                                      np.asarray(want)[: got.shape[0]] % 256)

    def test_ckks_server_within_tolerance(self, pool):
        program = poly_ckks()
        rng = np.random.default_rng(2)
        x, y = program.ops[0].op_id, program.ops[1].op_id
        requests = [Request(inputs={x: rng.uniform(-1, 1, WIDTH),
                                    y: rng.uniform(-1, 1, WIDTH)})
                    for _ in range(8)]
        with FheServer(max_batch=4, max_wait_ms=5.0, workers=2,
                       executor=pool) as server:
            futures = [server.submit(program, inputs=r.inputs)
                       for r in requests]
            results = [f.result(timeout=120) for f in futures]
        for request, result in zip(requests, results):
            want = (np.asarray(request.inputs[x]) * request.inputs[y]
                    + request.inputs[x])
            got = next(iter(result.values.values()))[:WIDTH]
            assert np.max(np.abs(got - want)) < 2e-2

    def test_traffic_shards_across_replicas(self):
        """Same-signature batches spread over both worker processes."""
        program = linear_bgv()
        registry = ProgramRegistry()
        entry, _ = registry.context_for(program, seed=5)
        batcher = SlotBatcher(program, width=WIDTH)
        backend = FunctionalBackend(validate=False)
        job = BatchJob(program=program, signature=program.signature(),
                       requests=bgv_requests(program, 2), batcher=batcher,
                       backend=backend, context_entry=entry)
        with ProcessExecutor(2) as fresh:
            for _ in range(4):
                fresh.execute(job)
            stats = fresh.stats()
        # Least-in-flight with sequential calls round-robins evenly, and
        # the context was replicated once into each worker.
        assert stats["dispatched_per_replica"] == [2, 2]
        assert stats["replicated_contexts"] == [1, 1]

    def test_singly_served_unbatchable_program(self, pool):
        """Rotation programs run request-at-a-time inside the worker."""
        program = rotate_bgv()
        x = program.ops[0].op_id
        data = np.arange(WIDTH) % 256
        with FheServer(max_wait_ms=2.0, workers=1, executor=pool) as server:
            result = server.request(program, inputs={x: data})
        solo = repro.run(program, backend=FunctionalBackend(validate=False),
                         inputs={x: data}, seed=1)
        for out_id, want in solo.outputs.items():
            got = result.values[out_id]
            assert np.array_equal(got, np.asarray(want)[: got.shape[0]])

    def test_seed_travels_with_request_across_processes(self, pool):
        """Seeded generated-input runs are deterministic no matter which
        process executes them (unbatchable program => singly path)."""
        program = rotate_bgv()
        with FheServer(max_wait_ms=2.0, workers=1, executor=pool) as server:
            via_process = server.request(program, seed=42)
        with FheServer(max_wait_ms=2.0, workers=1) as server:
            via_thread = server.request(program, seed=42)
        baseline = repro.run(program,
                             backend=FunctionalBackend(validate=False),
                             seed=42)
        for out_id, want in baseline.outputs.items():
            want = np.asarray(want)
            got_p = via_process.values[out_id]
            got_t = via_thread.values[out_id]
            assert np.array_equal(got_p, want[: got_p.shape[0]])
            assert np.array_equal(got_t, want[: got_t.shape[0]])

    def test_worker_error_reaches_future(self, pool):
        program = poly_ckks()
        backend = FunctionalBackend("ckks", validate=True, tolerance=0.0)
        rng = np.random.default_rng(4)
        x, y = program.ops[0].op_id, program.ops[1].op_id
        inputs = {x: rng.uniform(-1, 1, WIDTH), y: rng.uniform(-1, 1, WIDTH)}
        with FheServer(backend=backend, max_batch=1, max_wait_ms=5.0,
                       executor=pool) as server:
            future = server.submit(program, inputs=inputs)
            with pytest.raises(RuntimeError, match="exceeds tolerance"):
                future.result(timeout=120)

    def test_modeled_backend_falls_back_in_process(self, pool):
        """Analytic backends have no per-process state: inner thread path."""
        program = poly_ckks()
        with FheServer(backend="cpu", max_batch=2, max_wait_ms=5.0,
                       executor=pool) as server:
            result = server.request(program, width=WIDTH)
        assert result.backend == "cpu" and result.values == {}
        assert pool.stats()["fallback"]["dispatched"] >= 1

    def test_release_unpins_and_evicts_replicas(self):
        """release() drops the parent pin and worker-side replicas; later
        traffic for the entry simply replicates again."""
        program = linear_bgv()
        registry = ProgramRegistry()
        entry, _ = registry.context_for(program, seed=5)
        batcher = SlotBatcher(program, width=WIDTH)
        job = BatchJob(program=program, signature=program.signature(),
                       requests=bgv_requests(program, 2), batcher=batcher,
                       backend=FunctionalBackend(validate=False),
                       context_entry=entry)
        with ProcessExecutor(1) as fresh:
            outputs_before, _ = fresh.execute(job)
            assert fresh.stats()["replicated_contexts"] == [1]
            fresh.release(entry)
            assert fresh._ctx_keys == {}
            assert fresh.stats()["replicated_contexts"] == [0]
            fresh.release(entry)   # double release is a no-op
            outputs_after, _ = fresh.execute(job)   # re-replicates
            assert fresh.stats()["replicated_contexts"] == [1]
        for a, b in zip(outputs_before, outputs_after):
            for out_id in a:
                assert np.array_equal(a[out_id], b[out_id])

    def test_server_process_string_sizes_pool_to_workers(self):
        """FheServer(executor=\"process\", workers=N) gets N replicas."""
        program = poly_ckks()
        request = Request(inputs={
            program.ops[0].op_id: np.linspace(-1, 1, WIDTH),
            program.ops[1].op_id: np.linspace(-1, 1, WIDTH),
        })
        with FheServer(executor="process", workers=3,
                       max_wait_ms=2.0) as server:
            assert server.executor.processes == 3
            result = server.request(program, inputs=request.inputs)
            assert result.values

    def test_dead_worker_fails_batch_then_pool_heals(self):
        """A crashed worker fails its in-flight batch, then is respawned:
        the next batch re-replicates state and succeeds."""
        program = linear_bgv()
        registry = ProgramRegistry()
        entry, _ = registry.context_for(program, seed=5)
        batcher = SlotBatcher(program, width=WIDTH)
        job = BatchJob(program=program, signature=program.signature(),
                       requests=bgv_requests(program, 2), batcher=batcher,
                       backend=FunctionalBackend(validate=False),
                       context_entry=entry)
        with ProcessExecutor(1) as fresh:
            healthy, _ = fresh.execute(job)
            victim = fresh._replicas[0].process
            victim.kill()
            victim.join(timeout=5)
            with pytest.raises(RuntimeError, match="died"):
                fresh.execute(job)
            healed, _ = fresh.execute(job)   # respawned + re-replicated
            assert fresh._replicas[0].process is not victim
        for a, b in zip(healthy, healed):
            for out_id in a:
                assert np.array_equal(a[out_id], b[out_id])

    def test_closed_executor_rejects_work(self):
        executor = ProcessExecutor(1)
        executor.close()
        entry_job = BatchJob(program=linear_bgv(), signature="sig",
                             requests=[], batcher=None,
                             backend=FunctionalBackend(validate=False),
                             context_entry=object())
        with pytest.raises(RuntimeError, match="closed"):
            executor.execute(entry_job)

    def test_process_smoke_passes(self):
        assert process_smoke(2, verbose=False) == 0
