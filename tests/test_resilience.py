"""Resilience tier: retry/backoff, breakers, shedding, chaos, degradation.

The contract under test, end to end: **no future is ever lost**.  Every
submitted request resolves with a status in ``{ok, expired, failed,
shed}`` (or an exception for deterministic application errors), within
its deadline plus the watchdog budget — under transport faults, worker
kills, and overload.  Retrying a batch elsewhere is safe because
execution is pure and seeded, so every ``ok`` result stays identical to
a solo run.

Unit tests drive the state machines with fake clocks and seeded RNGs
(no sleeping); integration tests use a real LocalCluster; the full
seeded soak (kill + restart under drop/corrupt/delay injection) is
``@slow``.
"""

import pickle
import socket
import time
import types

import numpy as np
import pytest

from repro.backends import FunctionalBackend
from repro.dsl.program import Program
from repro.net import LocalCluster
from repro.net.chaos import ChaosEngine, ChaosPolicy, ChaosSocket, chaos_soak
from repro.net.framing import FrameError, MsgType, recv_msg, send_msg
from repro.serve import (
    BatchJob,
    CircuitBreaker,
    FheServer,
    LoadShedder,
    ProgramRegistry,
    Request,
    RetryPolicy,
    SlotBatcher,
    STATUS_FAILED,
    STATUS_SHED,
)

N = 256
WIDTH = 8


def linear_bgv(n=N, level=3):
    p = Program(n=n, scheme="bgv", name="res_linear")
    x = p.input(level, name="x")
    w = p.input_plain(level, name="w")
    p.output(p.mul_plain(x, w))
    return p


def bgv_job(registry, count=4, *, seed=0):
    program = linear_bgv()
    x, w = (op.op_id for op in program.ops[:2])
    rng = np.random.default_rng(seed)
    shared_w = rng.integers(0, 256, WIDTH)
    requests = [Request(inputs={x: rng.integers(0, 256, WIDTH)},
                        plains={w: shared_w}) for _ in range(count)]
    entry, _ = registry.context_for(program, seed=11)
    return BatchJob(
        program=program, signature=program.signature(), requests=requests,
        batcher=SlotBatcher(program, width=WIDTH),
        backend=FunctionalBackend(validate=False), context_entry=entry,
    ), entry


# ---------------------------------------------------------------- RetryPolicy
class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(max_attempts=8, base_delay_s=0.02,
                             multiplier=2.0, max_delay_s=0.1, jitter=0.0)
        delays = [policy.backoff_s(k) for k in range(1, 8)]
        assert delays[0] == pytest.approx(0.02)
        assert delays[1] == pytest.approx(0.04)
        assert delays[2] == pytest.approx(0.08)
        assert all(d == pytest.approx(0.1) for d in delays[3:])

    def test_attempts_exhausted_returns_none(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.backoff_s(2) is not None
        assert policy.backoff_s(3) is None
        assert policy.backoff_s(99) is None

    def test_deadline_awareness(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.2, jitter=0.0)
        # No budget left: stop retrying.
        assert policy.backoff_s(1, remaining_s=0.0) is None
        assert policy.backoff_s(1, remaining_s=-1.0) is None
        # A sleep never eats more than half the remaining budget.
        assert policy.backoff_s(1, remaining_s=0.1) == pytest.approx(0.05)
        # Plenty of budget: the normal delay applies.
        assert policy.backoff_s(1, remaining_s=10.0) == pytest.approx(0.2)

    def test_jitter_is_seeded_and_bounded(self):
        import random

        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        a = [policy.backoff_s(1, rng=random.Random(7)) for _ in range(3)]
        b = [policy.backoff_s(1, rng=random.Random(7)) for _ in range(3)]
        assert a == b                       # same seed, same schedule
        for delay in a:
            assert 0.1 <= delay <= 0.15     # within [base, base*(1+jitter)]


# ------------------------------------------------------------- CircuitBreaker
class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=1.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert not breaker.would_allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # would_allow never consumes the probe slot; allow does, once.
        assert breaker.would_allow()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=1.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()             # the half-open probe
        breaker.record_failure()           # one probe failure re-opens
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_transition_callback_sees_the_full_cycle(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0,
                                 clock=clock,
                                 on_transition=lambda a, b: seen.append((a, b)))
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert seen == [("closed", "open"), ("open", "half_open"),
                        ("half_open", "closed")]


# ----------------------------------------------------------------- LoadShedder
class TestLoadShedder:
    def test_cold_start_never_sheds(self):
        shedder = LoadShedder(workers=1, min_samples=4)
        for _ in range(100):
            shedder.admitted()
        assert not shedder.should_shed(1e-9)

    def test_sheds_infeasible_deadline_after_history(self):
        shedder = LoadShedder(workers=1, min_samples=4)
        for _ in range(4):
            shedder.observe_batch(0.1, 1)     # 100 ms per request
        for _ in range(10):
            shedder.admitted()
        # 10 queued x 100 ms = ~1 s of work ahead.
        assert shedder.should_shed(0.05)      # 50 ms budget: infeasible
        assert not shedder.should_shed(5.0)   # 5 s budget: fine

    def test_resolved_drains_the_queue(self):
        shedder = LoadShedder(workers=1, min_samples=1)
        shedder.observe_batch(0.1, 1)
        for _ in range(10):
            shedder.admitted()
        assert shedder.should_shed(0.05)
        shedder.resolved(10)
        assert shedder.queued == 0
        assert not shedder.should_shed(0.05)
        shedder.resolved(5)                  # never goes negative
        assert shedder.queued == 0

    def test_workers_divide_the_wait(self):
        one = LoadShedder(workers=1, min_samples=1)
        four = LoadShedder(workers=4, min_samples=1)
        for s in (one, four):
            s.observe_batch(0.4, 4)          # 100 ms per request
            for _ in range(8):
                s.admitted()
        assert one.estimated_wait_s() == pytest.approx(0.8)
        assert four.estimated_wait_s() == pytest.approx(0.2)


# ----------------------------------------------------------------- ChaosPolicy
class TestChaosPolicy:
    def test_parse_spec_roundtrip(self):
        policy = ChaosPolicy(seed=7, drop_rate=0.05, delay_rate=0.2,
                             delay_ms=5.0, crash_rate=0.01)
        assert ChaosPolicy.parse(policy.spec()) == policy

    def test_parse_accepts_aliases(self):
        policy = ChaosPolicy.parse("seed=3,drop=0.1,corrupt=0.2,hang=0.3")
        assert policy.seed == 3
        assert policy.drop_rate == pytest.approx(0.1)
        assert policy.corrupt_rate == pytest.approx(0.2)
        assert policy.hang_rate == pytest.approx(0.3)

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown chaos field"):
            ChaosPolicy.parse("seed=1,explode=0.5")

    def test_same_seed_same_schedule(self):
        policy = ChaosPolicy(seed=42, drop_rate=0.2, corrupt_rate=0.2,
                             truncate_rate=0.1, delay_rate=0.3,
                             heavy_tail_ms=2.0)
        def schedule(engine):
            out = []
            for _ in range(64):
                out.append((engine.send_fault(), engine.send_delay_s()))
            return out
        a = schedule(ChaosEngine(policy))
        b = schedule(ChaosEngine(policy))
        assert a == b
        c = schedule(ChaosEngine(policy.with_seed(43)))
        assert a != c


class TestChaosSocket:
    def _pair(self, policy):
        left, right = socket.socketpair()
        left.settimeout(5)
        right.settimeout(5)
        return ChaosSocket(left, ChaosEngine(policy)), right

    def test_corruption_is_caught_by_frame_crc(self):
        chaotic, peer = self._pair(ChaosPolicy(seed=1, corrupt_rate=1.0))
        with peer:
            send_msg(chaotic, MsgType.HEARTBEAT, {"x": 1})
            with pytest.raises(FrameError):
                recv_msg(peer)
        chaotic.close()

    def test_truncation_presents_as_short_stream(self):
        chaotic, peer = self._pair(ChaosPolicy(seed=1, truncate_rate=1.0))
        with peer:
            with pytest.raises(ConnectionResetError, match="truncate"):
                send_msg(chaotic, MsgType.HEARTBEAT, {"x": 1})
            with pytest.raises((FrameError, OSError)):
                recv_msg(peer)

    def test_drop_resets_the_connection(self):
        chaotic, peer = self._pair(ChaosPolicy(seed=1, drop_rate=1.0))
        with peer:
            with pytest.raises(ConnectionResetError, match="drop"):
                send_msg(chaotic, MsgType.HEARTBEAT, {"x": 1})
            with pytest.raises((FrameError, OSError)):
                recv_msg(peer)

    def test_no_faults_is_fully_transparent(self):
        chaotic, peer = self._pair(ChaosPolicy(seed=1))
        with peer:
            send_msg(chaotic, MsgType.RESULT, {"payload": list(range(32))})
            msg_type, msg = recv_msg(peer)
            assert msg_type is MsgType.RESULT
            assert msg == {"payload": list(range(32))}
        chaotic.close()


# --------------------------------------------------- executor-level resilience
class TestRemoteResilience:
    def test_reconnect_resets_inflight_and_latency_stats(self):
        """Satellite fix: a bounced host's fresh process shares nothing
        with its predecessor — reconnect must zero the inflight count
        and the latency history, and stale slot releases must no-op."""
        with LocalCluster(1) as cluster:
            with cluster.executor() as pool:
                job, _ = bgv_job(ProgramRegistry())
                pool.execute(job)
                host = pool._hosts[0]
                assert host.latencies_ms.count > 0
                host.inflight = 3              # pretend slots are in flight
                old_epoch = host.epoch
                pool._connect_host(host)       # the reconnect path
                assert host.epoch == old_epoch + 1
                assert host.inflight == 0
                assert host.latencies_ms.count == 0
                host.inflight = 1
                pool._release_slot(host, old_epoch)   # stale: must no-op
                assert host.inflight == 1
                pool._release_slot(host, host.epoch)
                assert host.inflight == 0

    def test_hedge_first_success_wins(self):
        """With the primary wedged past ``hedge_after_s``, the hedge's
        result is returned and the hedge counter moves."""
        with LocalCluster(2) as cluster:
            with cluster.executor(hedge_after_s=0.6) as pool:
                registry = ProgramRegistry()
                job, _ = bgv_job(registry)
                calls = []
                real_attempt = pool._attempt

                def stub(self, job, key, backend_key, deadline,
                         exclude=frozenset(), chosen=None):
                    calls.append(time.perf_counter())
                    if chosen is not None:
                        chosen.append(0)
                    if len(calls) == 1:
                        time.sleep(1.2)       # wedged primary
                        return "slow"
                    return "fast"

                pool._attempt = types.MethodType(stub, pool)
                try:
                    deadline = time.perf_counter() + 0.8
                    result = pool._hedged_attempt(job, 0, 0, deadline)
                finally:
                    pool._attempt = real_attempt
                assert result == "fast"
                assert pool.stats()["resilience"]["hedges"] == 1

    def test_breaker_opens_and_host_is_skipped(self):
        """Consecutive transport failures open the per-host breaker and
        routing stops offering that host."""
        with LocalCluster(2) as cluster:
            with cluster.executor(heartbeat_s=30.0,
                                  breaker_failures=2) as pool:
                job, _ = bgv_job(ProgramRegistry())
                pool.execute(job)
                host = pool._hosts[0]
                host.breaker.record_failure()
                host.breaker.record_failure()
                assert host.breaker.state == CircuitBreaker.OPEN
                stats = pool.stats()
                assert stats["hosts"][0]["breaker"] == "open"
                routable = [h for _, h in pool._candidates(0)]
                assert host not in routable
                # Traffic still flows through the other host.
                outputs, _ = pool.execute(job)
                assert len(outputs) == len(job.requests)


# ----------------------------------------------------- server-level resilience
class TestServerResilience:
    def _submit_all(self, server, program, count, rng, **kw):
        x, w = (op.op_id for op in program.ops[:2])
        shared = rng.integers(0, 256, WIDTH)
        return [server.submit(program,
                              inputs={x: rng.integers(0, 256, WIDTH)},
                              plains={w: shared}, width=WIDTH, **kw)
                for _ in range(count)]

    def test_exhausted_retries_resolve_failed_not_hung(self):
        """Hosts all dead and degradation off: futures resolve with
        ``status == "failed"`` carrying the typed error chain — never an
        exception, never a hang."""
        program = linear_bgv()
        rng = np.random.default_rng(2)
        with LocalCluster(1) as cluster:
            pool = cluster.executor(
                heartbeat_s=30.0,
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.01),
            )
            with pool:
                with FheServer(executor=pool, workers=1, max_wait_ms=2.0,
                               degrade=False) as server:
                    # Warm the pipeline so registry state exists, then
                    # kill the only host.
                    ok = self._submit_all(server, program, 2, rng)
                    server.flush()
                    for f in ok:
                        assert f.result(timeout=60).status == "ok"
                    cluster.kill(0)
                    futures = self._submit_all(server, program, 4, rng)
                    server.flush()
                    results = [f.result(timeout=60) for f in futures]
                    assert all(r.status == STATUS_FAILED for r in results)
                    for r in results:
                        assert "error" in r.stats
                    stats = server.stats()
                    assert stats["failed"] == 4
                    assert stats["errors"] == 0

    def test_degrades_to_local_fallback_and_recovers(self):
        """Every host down: batches run on the embedded fallback with
        correct outputs and ``degraded`` flagged; once the host returns,
        remote serving resumes and the flag clears."""
        program = linear_bgv()
        rng = np.random.default_rng(3)
        with LocalCluster(1) as cluster:
            pool = cluster.executor(
                heartbeat_s=0.05,
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.01),
            )
            with pool:
                with FheServer(executor=pool, workers=1,
                               max_wait_ms=2.0) as server:
                    ok = self._submit_all(server, program, 2, rng)
                    server.flush()
                    for f in ok:
                        assert f.result(timeout=60).status == "ok"
                    cluster.kill(0)
                    # Wait for the monitor to notice the death so the
                    # retry loop sees "no routable host" deterministically.
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline and not pool._hosts[0].dead:
                        time.sleep(0.02)
                    degraded = self._submit_all(server, program, 3, rng)
                    server.flush()
                    for f in degraded:
                        assert f.result(timeout=60).status == "ok"
                    assert server.stats()["degraded"] is True
                    assert server.stats()["degradations"] >= 1
                    # Host comes back: remote serving resumes, flag clears.
                    cluster.restart(0)
                    deadline = time.monotonic() + 30
                    recovered = False
                    while time.monotonic() < deadline:
                        if pool.healthy():
                            fs = self._submit_all(server, program, 1, rng)
                            server.flush()
                            assert fs[0].result(timeout=60).status == "ok"
                            if server.stats()["degraded"] is False:
                                recovered = True
                                break
                        time.sleep(0.05)
                    assert recovered, "server never returned to remote serving"

    def test_overload_sheds_infeasible_deadlines_at_submit(self):
        """With measured service history and a deep queue, a request
        whose deadline cannot be met resolves ``shed`` immediately."""
        program = linear_bgv()
        rng = np.random.default_rng(4)
        with FheServer(workers=1, max_wait_ms=2.0) as server:
            warm = self._submit_all(server, program, 2, rng)
            server.flush()
            for f in warm:
                assert f.result(timeout=60).status == "ok"
            # Force the estimator into a known overloaded state rather
            # than racing real traffic: 200 ms/request, 64 queued.
            for _ in range(8):
                server._shedder.observe_batch(0.2, 1)
            for _ in range(64):
                server._shedder.admitted()
            future = self._submit_all(server, program, 1, rng,
                                      deadline_ms=5.0)[0]
            result = future.result(timeout=10)
            assert result.status == STATUS_SHED
            assert result.values == {}
            assert result.stats["estimated_wait_ms"] > 5.0
            assert server.stats()["shed"] == 1
            # Without a deadline there is nothing to shed against.
            server._shedder.resolved(64)
            free = self._submit_all(server, program, 1, rng)
            server.flush()
            assert free[0].result(timeout=60).status == "ok"

    def test_worker_crash_chaos_is_survivable(self):
        """A worker started with --chaos crash injection dies mid-run;
        the other host (no chaos) absorbs the retried batches."""
        program = linear_bgv()
        rng = np.random.default_rng(5)
        with LocalCluster(2) as cluster:
            # Restart worker 0 under a crash-always policy by hand: the
            # cluster-level chaos seeds hosts apart, but this test wants
            # one poisoned host and one clean one, deterministically.
            cluster.chaos = ChaosPolicy(crash_rate=1.0)
            cluster.restart(0)
            cluster.chaos = None
            with cluster.executor(heartbeat_s=0.1) as pool:
                with FheServer(executor=pool, workers=2,
                               max_wait_ms=2.0) as server:
                    futures = self._submit_all(server, program, 8, rng)
                    server.flush()
                    for f in futures:
                        assert f.result(timeout=120).status == "ok"


# ------------------------------------------------------------------- the soak
@pytest.mark.slow
def test_chaos_soak_with_kill_and_restart():
    """The full seeded soak: drops, corrupt frames, heavy-tailed delays,
    a worker kill AND restart mid-run, at 2x the smoke's request count.
    Zero lost futures; every ok result identical to a solo run."""
    policy = ChaosPolicy(seed=13, drop_rate=0.05, corrupt_rate=0.03,
                         delay_rate=0.25, delay_ms=1.0, heavy_tail_ms=5.0,
                         stall_rate=0.03, stall_ms=50.0)
    assert chaos_soak(seed=13, hosts=2, requests=24, kill=True,
                      restart=True, policy=policy, verbose=False) == 0
