"""Compiler phases 2-3 and the CSR baseline (repro.compiler.*)."""

import pytest

from repro.compiler.csr_scheduler import csr_order
from repro.compiler.cycle_scheduler import schedule_cycles
from repro.compiler.data_scheduler import schedule_data_movement
from repro.compiler.hecompiler import compile_to_instructions
from repro.compiler.pipeline import compile_program
from repro.core.config import F1Config
from repro.dsl.program import Program
from repro.sim.simulator import check_schedule


def _small_program(n=2048, level=4, rows=2):
    p = Program(n=n, name="small")
    hs = [p.input(level) for _ in range(rows)]
    v = p.input(level)
    for h in hs:
        acc = p.mul(h, v)
        acc = p.add(acc, p.rotate(acc, 1))
        p.output(acc)
    return p


@pytest.fixture(scope="module")
def compiled():
    p = _small_program()
    cfg = F1Config()
    translation = compile_to_instructions(p)
    movement = schedule_data_movement(translation.graph, translation.outputs, cfg)
    schedule = schedule_cycles(translation.graph, movement, cfg)
    return p, cfg, translation, movement, schedule


class TestDataMovement:
    def test_compulsory_loads_match_touched_values(self, compiled):
        _, cfg, translation, movement, _ = compiled
        t = movement.traffic
        offchip_used = {
            vid
            for instr in translation.graph.instructions
            for vid in instr.inputs
            if translation.graph.values[vid].producer is None
        }
        compulsory = (
            t.ksh_compulsory + t.input_compulsory + t.plain_compulsory
        )
        assert compulsory == len(offchip_used)

    def test_event_stream_shape(self, compiled):
        _, _, translation, movement, _ = compiled
        execs = [e for e in movement.events if e.kind == "exec"]
        assert len(execs) == len(translation.graph.instructions)

    def test_every_exec_operand_loaded_before_use(self, compiled):
        _, _, translation, movement, _ = compiled
        resident = set()
        for e in movement.events:
            if e.kind == "load":
                resident.add(e.target)
            elif e.kind in ("store", "evict"):
                resident.discard(e.target)
            elif e.kind == "exec":
                instr = translation.graph.instructions[e.target]
                for vid in instr.inputs:
                    producer = translation.graph.values[vid].producer
                    assert producer is not None or vid in resident
                resident.add(instr.output)

    def test_outputs_recorded(self, compiled):
        _, _, translation, movement, _ = compiled
        assert movement.outputs == translation.outputs

    def test_tiny_scratchpad_forces_spills(self):
        """Squeezing the scratchpad produces capacity misses and spills —
        the non-compulsory traffic of Fig. 9a."""
        p = _small_program(n=2048, level=6, rows=3)
        cfg = F1Config(scratchpad_mb=1)  # 128 RVecs at N=2048... tight
        cp = compile_program(p, cfg)
        t = cp.movement.traffic
        assert t.ksh_capacity + t.intermediate_loads + t.intermediate_stores > 0

    def test_big_scratchpad_is_compulsory_only(self, compiled):
        _, _, _, movement, _ = compiled
        t = movement.traffic
        assert t.ksh_capacity == 0
        assert t.intermediate_loads == 0

    def test_breakdown_sums_to_total(self, compiled):
        _, cfg, _, movement, _ = compiled
        rvec = cfg.rvec_bytes(2048)
        assert sum(movement.traffic.breakdown(rvec).values()) == \
            movement.traffic.total_rvecs() * rvec


class TestCycleScheduler:
    def test_makespan_at_least_traffic_bound(self, compiled):
        _, cfg, _, movement, schedule = compiled
        bytes_total = movement.traffic.total_rvecs() * cfg.rvec_bytes(2048)
        assert schedule.makespan >= bytes_total / cfg.hbm_bytes_per_cycle()

    def test_makespan_at_least_compute_bound(self, compiled):
        _, cfg, translation, _, schedule = compiled
        for fu, busy in schedule.fu_busy_cycles.items():
            assert schedule.makespan >= busy / cfg.fu_count(fu)

    def test_utilizations_within_unit_interval(self, compiled):
        _, _, _, _, schedule = compiled
        for util in schedule.fu_utilization().values():
            assert 0.0 <= util <= 1.0
        assert 0.0 <= schedule.hbm_utilization() <= 1.0

    def test_every_instruction_scheduled(self, compiled):
        _, _, translation, _, schedule = compiled
        assert len(schedule.instrs) == len(translation.graph.instructions)

    def test_checker_validates(self, compiled):
        _, cfg, translation, movement, schedule = compiled
        report = check_schedule(translation.graph, movement, schedule, cfg)
        report.raise_if_failed()
        assert report.instructions_checked == len(schedule.instrs)

    def test_low_throughput_ntt_not_faster_on_serial_chain(self):
        """A serial NTT-heavy chain cannot speed up with 7x-slower NTT units."""
        p = Program(n=2048, name="chain")
        x = p.input(4)
        for _ in range(6):
            x = p.mul(x, x, rescale=False)
        p.output(x)
        base = compile_program(p, F1Config()).makespan
        lt = compile_program(p, F1Config().with_low_throughput_ntt()).makespan
        assert lt >= base

    def test_more_clusters_not_slower(self):
        p = _small_program(rows=4)
        small = compile_program(p, F1Config().scaled(clusters=2)).makespan
        big = compile_program(p, F1Config().scaled(clusters=16)).makespan
        assert big <= small * 1.05


class TestCsrScheduler:
    def test_topological_and_complete(self):
        p = _small_program()
        translation = compile_to_instructions(p)
        order = csr_order(translation.graph)
        assert sorted(order) == list(range(len(translation.graph.instructions)))
        position = {i: pos for pos, i in enumerate(order)}
        for instr in translation.graph.instructions:
            for vid in instr.inputs:
                producer = translation.graph.values[vid].producer
                if producer is not None:
                    assert position[producer] < position[instr.instr_id]

    def test_csr_pipeline_end_to_end(self):
        p = _small_program()
        cp = compile_program(p, scheduler="csr")
        report = check_schedule(cp.translation.graph, cp.movement, cp.schedule)
        report.raise_if_failed()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            compile_program(_small_program(), scheduler="magic")
