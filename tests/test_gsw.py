"""GSW external products (repro.fhe.gsw)."""

import numpy as np
import pytest

from repro.fhe.gsw import GswContext
from repro.poly.ntt import naive_negacyclic_multiply

pytestmark = pytest.mark.slow

N = 256
T = 256


@pytest.fixture(scope="module")
def gsw(bgv):
    return GswContext(bgv)


@pytest.fixture(scope="module")
def message(bgv):
    rng = np.random.default_rng(41)
    m = rng.integers(0, T, N)
    return m, bgv.encrypt(m)


class TestExternalProduct:
    def test_multiply_by_monomial(self, bgv, gsw, message):
        m, ct = message
        mono = np.zeros(N, dtype=np.int64)
        mono[3] = 1
        out = gsw.external_product(gsw.encrypt(mono), ct)
        expected = naive_negacyclic_multiply(mono % T, m, T)
        assert np.array_equal(gsw.decrypt(out), expected)

    def test_multiply_by_zero(self, bgv, gsw, message):
        _, ct = message
        out = gsw.external_product(gsw.encrypt(np.zeros(N, dtype=np.int64)), ct)
        assert not gsw.decrypt(out).any()

    def test_multiply_by_one_is_identity(self, bgv, gsw, message):
        m, ct = message
        one = np.zeros(N, dtype=np.int64)
        one[0] = 1
        out = gsw.external_product(gsw.encrypt(one), ct)
        assert np.array_equal(gsw.decrypt(out), m)

    def test_small_polynomial_multiplier(self, bgv, gsw, message):
        m, ct = message
        small = np.zeros(N, dtype=np.int64)
        small[0], small[1], small[5] = 2, -1, 3
        out = gsw.external_product(gsw.encrypt(small), ct)
        expected = naive_negacyclic_multiply(small % T, m, T)
        assert np.array_equal(gsw.decrypt(out), expected)

    def test_noise_growth_is_small(self, bgv, gsw, message):
        """GSW's hallmark: external products add noise proportional to the
        (small) GSW message, not to the ciphertext noise product."""
        m, ct = message
        bit = np.zeros(N, dtype=np.int64)
        bit[0] = 1
        out = gsw.external_product(gsw.encrypt(bit), ct)
        assert bgv.noise_budget_bits(out) > bgv.noise_budget_bits(ct) - 45

    def test_chained_external_products(self, bgv, gsw, message):
        m, ct = message
        mono = np.zeros(N, dtype=np.int64)
        mono[1] = 1
        g = gsw.encrypt(mono)
        out = gsw.external_product(g, gsw.external_product(g, ct))
        sq = naive_negacyclic_multiply(mono % T, mono % T, T)
        expected = naive_negacyclic_multiply(sq, m, T)
        assert np.array_equal(gsw.decrypt(out), expected)

    def test_level_mismatch_rejected(self, bgv, gsw, message):
        _, ct = message
        low = bgv.mod_switch(ct)
        bit = np.zeros(N, dtype=np.int64)
        bit[0] = 1
        with pytest.raises(ValueError):
            gsw.external_product(gsw.encrypt(bit), low)
