"""CKKS scheme end-to-end (repro.fhe.ckks)."""

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext, ckks_rotation_exponent

SLOTS = 128  # N = 256


@pytest.fixture(scope="module")
def vals():
    rng = np.random.default_rng(31)
    z0 = rng.normal(size=SLOTS) + 1j * rng.normal(size=SLOTS)
    z1 = rng.normal(size=SLOTS) + 1j * rng.normal(size=SLOTS)
    return z0, z1


def _err(a, b):
    return float(np.max(np.abs(a - b)))


class TestEncryptDecrypt:
    def test_roundtrip_precision(self, ckks, vals):
        z0, _ = vals
        dec = ckks.decrypt_values(ckks.encrypt_values(z0), SLOTS)
        assert _err(dec, z0) < 1e-4

    def test_real_values(self, ckks):
        xs = np.linspace(-2, 2, SLOTS)
        dec = ckks.decrypt_values(ckks.encrypt_values(xs), SLOTS)
        assert _err(dec.real, xs) < 1e-4

    def test_forces_t_equals_one(self, ckks):
        assert ckks.params.plaintext_modulus == 1


class TestArithmetic:
    def test_add(self, ckks, vals):
        z0, z1 = vals
        out = ckks.add(ckks.encrypt_values(z0), ckks.encrypt_values(z1))
        assert _err(ckks.decrypt_values(out, SLOTS), z0 + z1) < 1e-3

    def test_sub(self, ckks, vals):
        z0, z1 = vals
        out = ckks.sub(ckks.encrypt_values(z0), ckks.encrypt_values(z1))
        assert _err(ckks.decrypt_values(out, SLOTS), z0 - z1) < 1e-3

    def test_mul_then_rescale(self, ckks, vals):
        z0, z1 = vals
        prod = ckks.rescale(ckks.mul(ckks.encrypt_values(z0), ckks.encrypt_values(z1)))
        assert prod.level == ckks.params.level - 1
        assert _err(ckks.decrypt_values(prod, SLOTS), z0 * z1) < 1e-2

    def test_mul_plain(self, ckks, vals):
        z0, z1 = vals
        out = ckks.rescale(ckks.mul_plain(ckks.encrypt_values(z0), z1))
        assert _err(ckks.decrypt_values(out, SLOTS), z0 * z1) < 1e-2

    def test_add_plain(self, ckks, vals):
        z0, z1 = vals
        out = ckks.add_plain(ckks.encrypt_values(z0), z1)
        assert _err(ckks.decrypt_values(out, SLOTS), z0 + z1) < 1e-3

    def test_depth_two(self, ckks, vals):
        z0, z1 = vals
        p = ckks.rescale(ckks.mul(ckks.encrypt_values(z0), ckks.encrypt_values(z1)))
        # Fresh operand encrypted directly at the product's level and scale.
        other = ckks.encrypt_values(z1, level=p.level, scale=p.scale)
        p2 = ckks.rescale(ckks.mul(p, other))
        assert _err(ckks.decrypt_values(p2, SLOTS), z0 * z1 * z1) < 5e-2

    def test_mod_switch_preserves_value(self, ckks, vals):
        z0, _ = vals
        dropped = ckks.mod_switch(ckks.encrypt_values(z0))
        assert dropped.level == ckks.params.level - 1
        assert _err(ckks.decrypt_values(dropped, SLOTS), z0) < 1e-3

    def test_scale_mismatch_rejected(self, ckks, vals):
        z0, z1 = vals
        a = ckks.encrypt_values(z0)
        b = ckks.mul_plain(ckks.encrypt_values(z1), z1,
                           scale=2 * ckks.default_scale)
        with pytest.raises(ValueError):
            ckks.add(a, b)


class TestRotationsAndConjugation:
    @pytest.mark.parametrize("steps", [1, 3, 7])
    def test_rotate(self, ckks, vals, steps):
        z0, _ = vals
        out = ckks.rotate(ckks.encrypt_values(z0), steps)
        assert _err(ckks.decrypt_values(out, SLOTS), np.roll(z0, -steps)) < 1e-3

    def test_rotation_exponent(self):
        assert ckks_rotation_exponent(2, 256) == pow(5, 2, 512)

    def test_conjugate(self, ckks, vals):
        z0, _ = vals
        out = ckks.conjugate(ckks.encrypt_values(z0))
        assert _err(ckks.decrypt_values(out, SLOTS), np.conj(z0)) < 1e-3

    def test_rotate_composes(self, ckks, vals):
        z0, _ = vals
        ct = ckks.rotate(ckks.rotate(ckks.encrypt_values(z0), 2), 3)
        assert _err(ckks.decrypt_values(ct, SLOTS), np.roll(z0, -5)) < 1e-3


class TestRescaleBookkeeping:
    def test_rescale_tracks_scale(self, ckks, vals):
        z0, z1 = vals
        prod = ckks.mul(ckks.encrypt_values(z0), ckks.encrypt_values(z1))
        scale_before = prod.scale
        rescaled = ckks.rescale(prod)
        q_last = prod.basis.moduli[-1]
        assert rescaled.scale == pytest.approx(scale_before / q_last)

    def test_rescale_bottom_rejected(self, ckks, vals):
        ct = ckks.encrypt_values(vals[0], level=1)
        with pytest.raises(ValueError):
            ckks.rescale(ct)
